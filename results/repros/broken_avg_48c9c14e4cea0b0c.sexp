(repro
  (expr (cast u8 (shr (add (cast u16 (load a u8 0 0)) (cast u16 (load a u8 1 0))) 1)))
  (origin 0 0 8)
  (want 0 0 0 0 98 214 116 0)
  (got 0 0 0 0 98 86 116 0)
  (buffer a u8 32 1 0 0 0 0 0 196 233 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0)
)
