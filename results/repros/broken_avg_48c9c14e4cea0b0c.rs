// Minimized by rake-oracle: the compiled HVX program disagreed with
// the Halide IR interpreter on this case before the fix.
#[test]
fn repro_broken_avg_48c9c14e4cea0b0c() {
    use halide_ir::{Buffer2D, Env, EvalCtx};
    use rake::{Rake, Target};

    let e = halide_ir::sexpr::parse("(cast u8 (shr (add (cast u16 (load a u8 0 0)) (cast u16 (load a u8 1 0))) 1))").unwrap();
    let mut env = Env::new();
    let data: &[i64] = &[0, 0, 0, 0, 0, 196, 233, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0];
    env.insert(Buffer2D::from_fn("a", lanes::ElemType::U8, 32, 1, |x, y| data[y * 32 + x]));

    let c = Rake::new(Target::hvx_small(8)).compile(&e).expect("compiles");
    let ctx = EvalCtx { env: &env, x0: 0, y0: 0, lanes: 8 };
    let want = halide_ir::eval(&e, &ctx).unwrap();
    let got = c.program.run(&env, 0, 0, 8).unwrap().typed_lanes(e.ty());
    assert_eq!(got, want);
}
