#!/usr/bin/env bash
# Repo-wide CI gate: formatting, lints on the driver crate, full test
# suite. Everything runs offline against the committed Cargo.lock — the
# workspace has no external dependencies.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check (rake-driver)"
# The seed crates predate the fmt gate and keep their original style; the
# service layer is rustfmt-clean and stays that way.
cargo fmt -p rake-driver --check

echo "== cargo clippy (rake-driver, -D warnings)"
# The new service layer is held to a stricter bar than the older crates.
# Linted twice: the production build and the chaos (fault-injection) build.
cargo clippy --offline --locked -p rake-driver --all-targets -- -D warnings
cargo clippy --offline --locked -p rake-driver --features chaos --all-targets -- -D warnings

echo "== cargo test: fast partition (everything but the socket/e2e suites)"
# The workspace tests are split so a hang or runaway is localized fast:
# the fast partition is pure-compute unit + integration tests, the slow
# partition is the real-socket server suites and the end-to-end bench
# suites. Each partition asserts a wall-clock budget — generous enough
# for a loaded CI machine, tight enough that a deadlock (a test waiting
# forever on a condition) fails the gate instead of stalling it.
fast_t0="$(date +%s)"
cargo test -q --offline --locked --workspace \
  --exclude rake-served --exclude rake-bench
fast_elapsed="$(( $(date +%s) - fast_t0 ))"
echo "   fast partition: ${fast_elapsed}s"
[ "$fast_elapsed" -le 900 ] \
  || { echo "fast test partition blew its 900s budget (${fast_elapsed}s)"; exit 1; }

echo "== cargo test: slow partition (rake-served + rake-bench suites)"
slow_t0="$(date +%s)"
cargo test -q --offline --locked -p rake-served -p rake-bench
slow_elapsed="$(( $(date +%s) - slow_t0 ))"
echo "   slow partition: ${slow_elapsed}s"
[ "$slow_elapsed" -le 2700 ] \
  || { echo "slow test partition blew its 2700s budget (${slow_elapsed}s)"; exit 1; }

echo "== oracle smoke (seeded differential fuzz, 60s budget)"
# Every workload compiled and executed against the interpreter, plus a
# budget-capped slice of generated expressions. Deterministic seed, so a
# failure here is immediately reproducible.
cargo run -q --release --offline --locked -p rake-bench --bin oracle_fuzz -- \
  --seed 0xRAKE --cases 60 --budget 60

echo "== conform smoke (metamorphic relations, fixed seed, filtered)"
# A filtered slice of the metamorphic conformance harness: the first two
# workloads plus the coverage-seeded corpus under four relations, both
# sides compiled and compared lane-for-lane. Deterministic seed; the full
# catalog × all 21 workloads is the nightly CI job (conform-nightly).
conform_cov="$(mktemp /tmp/rake-conform-XXXXXX.json)"
cargo run -q --release --offline --locked -p rake-bench --bin conform -- \
  --seed 0xRAKE --workloads 2 --generated 2 --budget 600 \
  --relations commute,offset-shift,widen-narrow,identity-pad \
  --coverage-out "$conform_cov"
grep -q '"schema":"rake-conform-coverage-v1"' "$conform_cov" \
  || { echo "conform smoke: coverage report missing its schema tag"; exit 1; }
rm -f "$conform_cov"

echo "== perf smoke (3 workloads, snapshot structure only)"
# Runs the synthesis performance harness on the first three workloads and
# validates the emitted snapshot's structure (schema tag, totals keys,
# verified flags). No timing thresholds — machine speed must not fail CI.
perf_snapshot="$(mktemp /tmp/rake-perf-XXXXXX.json)"
cargo run -q --release --offline --locked -p rake-bench --bin perf -- \
  --workloads 3 --out "$perf_snapshot"
cargo run -q --release --offline --locked -p rake-bench --bin perf -- \
  --check "$perf_snapshot"
rm -f "$perf_snapshot"

echo "== server smoke (rake-served round-trip, warm cache, metrics)"
# Boots the compilation server on an ephemeral port, compiles three
# expressions through rake-client, then repeats them and asserts the
# second round is answered from the cache. /healthz and /metrics are
# scraped over the same socket the real clients use.
cargo build -q --release --offline --locked -p rake-served
smoke_dir="$(mktemp -d /tmp/rake-smoke-XXXXXX)"
./target/release/rake-served --addr 127.0.0.1:0 --port-file "$smoke_dir/port" \
  --cache "$smoke_dir/cache" --log "$smoke_dir/journal.jsonl" \
  >"$smoke_dir/server.log" 2>&1 &
served_pid=$!
cleanup_smoke() {
  kill "$served_pid" 2>/dev/null || true
  wait "$served_pid" 2>/dev/null || true
  rm -rf "$smoke_dir"
}
trap cleanup_smoke EXIT
for _ in $(seq 100); do
  [ -s "$smoke_dir/port" ] && break
  sleep 0.1
done
addr="$(cat "$smoke_dir/port")"
smoke_exprs=(
  '(add (load a u8 0 0) (load b u8 0 0))'
  '(max (load a u8 0 0) (load b u8 0 0))'
  '(min (load a u8 0 0) (load b u8 0 0))'
)
for expr in "${smoke_exprs[@]}"; do
  echo "$expr" | ./target/release/rake-client --addr "$addr" --lanes 128 >/dev/null
done
for expr in "${smoke_exprs[@]}"; do
  echo "$expr" | ./target/release/rake-client --addr "$addr" --lanes 128 --json \
    | grep -q '"cache_hit":true' \
    || { echo "server smoke: warm round missed the cache for: $expr"; exit 1; }
done
./target/release/rake-client --addr "$addr" --healthz | grep -qx ok
./target/release/rake-client --addr "$addr" --metrics \
  | grep -q 'rake_served_requests_total{endpoint="compile"} 6' \
  || { echo "server smoke: /metrics does not reflect the 6 compiles"; exit 1; }
kill "$served_pid"
wait "$served_pid" 2>/dev/null || true
trap - EXIT
rm -rf "$smoke_dir"

echo "== soak smoke (bounded cache lifecycle: eviction, compaction, bounded files)"
# A tightly-capped server under a soak workload where every request is a
# unique cache key: the entry cap must evict (cost-aware LRU), the tiny
# segment-log threshold must compact, and the on-disk snapshot/log/journal
# must stay bounded while the server stays healthy.
cargo build -q --release --offline --locked -p rake-bench
soak_dir="$(mktemp -d /tmp/rake-soak-XXXXXX)"
./target/release/rake-served --addr 127.0.0.1:0 --port-file "$soak_dir/port" \
  --cache "$soak_dir/cache" --log "$soak_dir/journal.jsonl" \
  --cache-max-entries 6 --cache-log-max-bytes 16384 --journal-rotate-bytes 32768 \
  >"$soak_dir/server.log" 2>&1 &
soak_pid=$!
cleanup_soak() {
  kill "$soak_pid" 2>/dev/null || true
  wait "$soak_pid" 2>/dev/null || true
  rm -rf "$soak_dir"
}
trap cleanup_soak EXIT
for _ in $(seq 100); do
  [ -s "$soak_dir/port" ] && break
  sleep 0.1
done
addr="$(cat "$soak_dir/port")"
./target/release/loadgen --addr "$addr" --connections 4 --soak 18 \
  --out "$soak_dir/soak.json" --check
soak_metrics="$(./target/release/rake-client --addr "$addr" --metrics)"
soak_metric() { echo "$soak_metrics" | awk -v n="$1" '$1 == n { print int($2) }'; }
evicted="$(soak_metric rake_served_cache_evicted_total)"
entries="$(soak_metric rake_served_cache_entries)"
compactions="$(soak_metric rake_served_cache_compactions_total)"
log_bytes="$(soak_metric rake_served_cache_log_bytes)"
journal_bytes="$(soak_metric rake_served_journal_bytes)"
[ "${evicted:-0}" -ge 1 ] \
  || { echo "soak smoke: 18 unique keys into 6 slots must evict (got ${evicted:-none})"; exit 1; }
[ "${entries:-99}" -le 6 ] \
  || { echo "soak smoke: entry cap violated (${entries:-none} > 6)"; exit 1; }
[ "${compactions:-0}" -ge 1 ] \
  || { echo "soak smoke: the segment log never compacted"; exit 1; }
[ "${log_bytes:-999999}" -le 65536 ] \
  || { echo "soak smoke: segment log unbounded (${log_bytes} bytes)"; exit 1; }
[ "${journal_bytes:-999999}" -le 131072 ] \
  || { echo "soak smoke: journal unbounded (${journal_bytes} bytes)"; exit 1; }
./target/release/rake-client --addr "$addr" --healthz | grep -qx ok \
  || { echo "soak smoke: /healthz went red under soak"; exit 1; }
kill "$soak_pid"
wait "$soak_pid" 2>/dev/null || true
trap - EXIT
rm -rf "$soak_dir"

echo "== crash smoke (worker isolation: abort containment, quarantine, respawn)"
# An --isolate server with the chaos plane on. A poison expression aborts
# its worker subprocess mid-compile: the request must fail structured
# (rake-client exit 5), /healthz must stay green, a repeat of the key must
# be answered from the quarantine (exit 7) without risking another worker,
# a fresh key must still compile, and the supervisor must have recorded
# the respawn. A crash-storm loadgen then mixes poison and healthy keys
# and asserts containment end to end (zero transport errors, every poison
# key quarantined, crash/restart counters moved).
crash_dir="$(mktemp -d /tmp/rake-crash-XXXXXX)"
./target/release/rake-served --addr 127.0.0.1:0 --port-file "$crash_dir/port" \
  --cache "$crash_dir/cache" --log "$crash_dir/journal.jsonl" \
  --isolate --workers 2 --chaos --crash-threshold 1 \
  >"$crash_dir/server.log" 2>&1 &
crash_pid=$!
cleanup_crash() {
  kill "$crash_pid" 2>/dev/null || true
  wait "$crash_pid" 2>/dev/null || true
  rm -rf "$crash_dir"
}
trap cleanup_crash EXIT
for _ in $(seq 100); do
  [ -s "$crash_dir/port" ] && break
  sleep 0.1
done
addr="$(cat "$crash_dir/port")"
poison='(add (load a u8 9 9) (load b u8 9 9))'
echo "$poison" | ./target/release/rake-client --addr "$addr" --chaos abort >/dev/null \
  && rc=0 || rc=$?
[ "$rc" -eq 5 ] \
  || { echo "crash smoke: worker abort must fail the job as panicked (exit 5), got $rc"; exit 1; }
./target/release/rake-client --addr "$addr" --healthz | grep -qx ok \
  || { echo "crash smoke: /healthz went red after a worker crash"; exit 1; }
echo "$poison" | ./target/release/rake-client --addr "$addr" >/dev/null \
  && rc=0 || rc=$?
[ "$rc" -eq 7 ] \
  || { echo "crash smoke: the crashing key must be quarantined (exit 7), got $rc"; exit 1; }
echo '(add (load a u8 0 0) (load b u8 0 0))' \
  | ./target/release/rake-client --addr "$addr" >/dev/null \
  || { echo "crash smoke: a fresh key must still compile after the crash"; exit 1; }
./target/release/rake-client --addr "$addr" --metrics \
  | awk '$1 == "rake_served_worker_restarts_total" && int($2) >= 1 { ok = 1 } END { exit !ok }' \
  || { echo "crash smoke: the supervisor never recorded a respawn"; exit 1; }
./target/release/loadgen --addr "$addr" --connections 4 --crash-storm 24 \
  --out "$crash_dir/storm.json" --check
kill "$crash_pid"
wait "$crash_pid" 2>/dev/null || true
trap - EXIT
rm -rf "$crash_dir"

echo "== trace smoke (end-to-end spans: CLI, isolated server, trace_report)"
# A CLI compile and an --isolate server compile, both traced. The server
# trace must be one stitched tree: the worker subprocess's spans (pid !=
# server pid) riding back over the job frame into the request's file.
# trace_report --check strictly validates every event in both files.
trace_dir="$(mktemp -d /tmp/rake-trace-XXXXXX)"
# absd is non-linear, so its lift verification must issue a real solver
# query — the trace has to show it.
echo '(absd (load a u8 0 0) (load b u8 0 0))' \
  | ./target/release/rakec --trace-out "$trace_dir/cli.json" >/dev/null
grep -q '"rake-trace-v1"' "$trace_dir/cli.json" \
  || { echo "trace smoke: rakec trace missing its schema tag"; exit 1; }
grep -q '"smt.prove_unsat"' "$trace_dir/cli.json" \
  || { echo "trace smoke: rakec trace has no SMT query spans"; exit 1; }
# Three real paper workloads through the perf harness, one trace file.
./target/release/perf --workloads 3 \
  --out "$trace_dir/perf-snapshot.json" --trace-out "$trace_dir/perf.json" >/dev/null
grep -q '"perf.workload"' "$trace_dir/perf.json" \
  || { echo "trace smoke: perf trace has no per-workload spans"; exit 1; }
mkdir "$trace_dir/served"
./target/release/rake-served --addr 127.0.0.1:0 --port-file "$trace_dir/port" \
  --cache "$trace_dir/cache" --log "$trace_dir/journal.jsonl" \
  --isolate --workers 2 --trace-out "$trace_dir/served" \
  >"$trace_dir/server.log" 2>&1 &
trace_pid=$!
cleanup_trace() {
  kill "$trace_pid" 2>/dev/null || true
  wait "$trace_pid" 2>/dev/null || true
  rm -rf "$trace_dir"
}
trap cleanup_trace EXIT
for _ in $(seq 100); do
  [ -s "$trace_dir/port" ] && break
  sleep 0.1
done
addr="$(cat "$trace_dir/port")"
echo '(add (cast u16 (load a u8 0 0)) (cast u16 (load a u8 1 0)))' \
  | ./target/release/rake-client --addr "$addr" --json \
  | grep -q '"trace_id"' \
  || { echo "trace smoke: /compile response did not echo a trace_id"; exit 1; }
served_trace="$(ls "$trace_dir"/served/trace-*.json 2>/dev/null | head -1)"
[ -n "$served_trace" ] \
  || { echo "trace smoke: the server wrote no trace file"; exit 1; }
grep -q '"worker.compile"' "$served_trace" \
  || { echo "trace smoke: worker spans did not stitch into the request trace"; exit 1; }
./target/release/trace_report --check \
  "$trace_dir/cli.json" "$trace_dir/perf.json" "$trace_dir/served" \
  || { echo "trace smoke: trace_report --check rejected the traces"; exit 1; }
./target/release/trace_report "$trace_dir/served" | grep -q 'per-stage' \
  || { echo "trace smoke: trace_report rendered no breakdown"; exit 1; }
kill "$trace_pid"
wait "$trace_pid" 2>/dev/null || true
trap - EXIT
rm -rf "$trace_dir"

echo "== chaos smoke (seeded fault injection, one schedule, ~60s budget)"
# The full 21-workload suite under one deterministic fault schedule:
# injected panics, forced deadline exhaustion, latency, and cache
# corruption. Asserts the resilience invariants (batches terminate in
# order, compiled programs stay oracle-clean, the degradation ladder
# recovers starved jobs, the cache self-heals). Same seed every run.
cargo run -q --release --offline --locked -p rake-bench --features chaos --bin chaos -- \
  --seeds 1

echo "all checks passed"
