//! Integration: full compile-and-execute runs of representative paper
//! benchmarks at scaled width, asserting correctness and the paper's
//! qualitative outcomes (who wins and why).

use rake_bench::{run_workload, RunConfig};
use workloads::by_name;

fn quick(name: &str) -> rake_bench::WorkloadRun {
    let w = by_name(name).unwrap_or_else(|| panic!("{name} registered"));
    run_workload(&w, RunConfig::quick(&w))
}

#[test]
#[cfg_attr(debug_assertions, ignore = "heavy synthesis; run with: cargo test --release -- --ignored")]
fn sobel_wins_with_vtmpy() {
    let run = quick("sobel");
    assert!(run.all_verified(), "sobel output mismatch");
    assert_eq!(run.optimized(), run.exprs.len());
    assert!(
        run.speedup() > 1.05,
        "sobel should beat the baseline, got {:.3}x",
        run.speedup()
    );
    let rake_listing = run.exprs[0]
        .rake_program
        .as_ref()
        .expect("optimized")
        .to_string();
    assert!(rake_listing.contains("vtmpy"), "sobel rake code:\n{rake_listing}");
}

#[test]
#[cfg_attr(debug_assertions, ignore = "heavy synthesis; run with: cargo test --release -- --ignored")]
fn gaussian3x3_is_the_biggest_win() {
    let run = quick("gaussian3x3");
    assert!(run.all_verified());
    assert!(
        run.speedup() > 1.3,
        "gaussian3x3 should be a large win, got {:.3}x",
        run.speedup()
    );
    let listing = run.exprs[0].rake_program.as_ref().expect("optimized").to_string();
    assert!(listing.contains("vasr-narrow:rnd:sat"), "gaussian rake code:\n{listing}");
}

#[test]
#[cfg_attr(debug_assertions, ignore = "heavy synthesis; run with: cargo test --release -- --ignored")]
fn camera_pipe_drops_redundant_max() {
    let run = quick("camera_pipe");
    assert!(run.all_verified());
    let listing = run.exprs[0].rake_program.as_ref().expect("optimized").to_string();
    let base = run.exprs[0].baseline_program.to_string();
    assert!(!listing.contains("vmax"), "rake should drop the max:\n{listing}");
    assert!(base.contains("vmax"), "baseline keeps the max:\n{base}");
}

#[test]
fn add_uses_widening_multiply_accumulate() {
    let run = quick("add");
    assert!(run.all_verified());
    let listing = run.exprs[0].rake_program.as_ref().expect("optimized").to_string();
    assert!(listing.contains("vmpy-acc"), "add rake code:\n{listing}");
    assert!(run.speedup() >= 1.0);
}

#[test]
fn average_pool_accumulation_fuses() {
    let run = quick("average_pool");
    assert!(run.all_verified());
    let listing = run.exprs[0].rake_program.as_ref().expect("optimized").to_string();
    assert!(listing.contains("vmpy-acc"), "average_pool rake code:\n{listing}");
}

#[test]
#[cfg_attr(debug_assertions, ignore = "heavy synthesis; run with: cargo test --release -- --ignored")]
fn l2norm_semantic_reasoning() {
    let run = quick("l2norm");
    assert!(run.all_verified());
    let listing = run.exprs[0].rake_program.as_ref().expect("optimized").to_string();
    assert!(listing.contains("vmpyie"), "l2norm rake code:\n{listing}");
    let base = run.exprs[0].baseline_program.to_string();
    assert!(!base.contains("vmpyie"), "baseline must not use vmpyie:\n{base}");
    assert!(base.contains("vmpyio"), "baseline uses the vmpyio dance:\n{base}");
}

#[test]
fn elementwise_benchmarks_tie() {
    for name in ["dilate", "max_pool", "median"] {
        let run = quick(name);
        assert!(run.all_verified(), "{name} mismatch");
        let s = run.speedup();
        assert!(
            (0.9..=1.35).contains(&s),
            "{name}: element-wise benchmark should be near parity, got {s:.3}x"
        );
    }
}

#[test]
#[cfg_attr(debug_assertions, ignore = "heavy synthesis; run with: cargo test --release -- --ignored")]
fn depthwise_conv_loses_from_layout_isolation() {
    let run = quick("depthwise_conv");
    assert!(run.all_verified());
    assert!(
        run.speedup() < 1.0,
        "depthwise_conv reproduces the paper's regression, got {:.3}x",
        run.speedup()
    );
}

#[test]
#[cfg_attr(debug_assertions, ignore = "heavy synthesis; run with: cargo test --release -- --ignored")]
fn matmul_and_fully_connected_verify() {
    for name in ["matmul", "fully_connected", "conv_nn"] {
        let run = quick(name);
        assert!(run.all_verified(), "{name} mismatch");
        assert!(run.optimized() >= 1, "{name}: rake should optimize something");
        assert!(run.speedup() >= 0.95, "{name}: {:.3}x", run.speedup());
    }
}
