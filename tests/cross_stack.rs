//! Integration across the solver stack: lifting queries discharged by the
//! linear decision procedure and by the bit-blasting solver must agree,
//! and the end-to-end verifier must be sound on engineered near-misses.

use halide_ir::builder::*;
use halide_ir::Expr;
use lanes::ElemType::{I16, U16, U8};
use lanes::rng::Rng;
use synth::linear::{decide_linear, linear_halide};
use synth::Verifier;
use uber_ir::UberExpr;

fn v() -> Verifier {
    Verifier::fast()
}

#[test]
fn linear_and_solver_agree_on_small_kernels() {
    // For 2-tap kernels over u8 cells, compare decide_linear against the
    // full oracle for every weight pair in a small grid.
    for w0 in 1..4i64 {
        for w1 in 1..4i64 {
            let h = add(
                mul(widen(load("in", U8, 0, 0)), bcast(w0, U16)),
                mul(widen(load("in", U8, 1, 0)), bcast(w1, U16)),
            );
            for c0 in 1..4i64 {
                for c1 in 1..4i64 {
                    let u = UberExpr::conv("in", U8, 0, 0, &[c0, c1], U16);
                    let lin = decide_linear(&h, &u).expect("both sides linear");
                    let full = v().equiv_halide_uber(&h, &u);
                    assert_eq!(
                        lin, full,
                        "disagreement at weights ({w0},{w1}) vs kernel ({c0},{c1})"
                    );
                }
            }
        }
    }
}

#[test]
fn near_miss_candidates_are_rejected() {
    let t = |dx| widen(load("in", U8, dx, 0));
    let h = add(add(t(-1), mul(t(0), bcast(2, U16))), t(1));
    // Right kernel, shifted window.
    let u = UberExpr::conv("in", U8, 0, 0, &[1, 2, 1], U16);
    assert!(!v().equiv_halide_uber(&h, &u));
    // Right window, permuted kernel.
    let u = UberExpr::conv("in", U8, -1, 0, &[2, 1, 1], U16);
    assert!(!v().equiv_halide_uber(&h, &u));
    // Wrong output type.
    let u = UberExpr::conv("in", U8, -1, 0, &[1, 2, 1], I16);
    assert!(!v().equiv_halide_uber(&h, &u));
}

#[test]
fn saturation_vs_wrap_distinguished_by_nonlinear_path() {
    // u8(x + y) vs sat_u8(x + y) over u16 sums that can exceed 255: the
    // linear path bails (wrap) and the solver must find a counterexample.
    let x = add(widen(load("a", U8, 0, 0)), widen(load("b", U8, 0, 0)));
    let truncating = cast(U8, x.clone());
    assert!(linear_halide(&truncating).is_none());
    let u_sat = UberExpr::Narrow {
        arg: Box::new(lift_of(&x)),
        shift: 0,
        round: false,
        saturating: true,
        out: U8,
    };
    assert!(!v().equiv_halide_uber(&truncating, &u_sat));
    let u_wrap = UberExpr::Narrow {
        arg: Box::new(lift_of(&x)),
        shift: 0,
        round: false,
        saturating: false,
        out: U8,
    };
    assert!(v().equiv_halide_uber(&truncating, &u_wrap));
}

/// The known-correct lift of `widen(a(0)) + widen(b(0))`.
fn lift_of(_x: &Expr) -> UberExpr {
    UberExpr::VsMpyAdd(uber_ir::VsMpyAdd {
        inputs: vec![
            UberExpr::Data(halide_ir::Load { buffer: "a".into(), dx: 0, dy: 0, ty: U8 }),
            UberExpr::Data(halide_ir::Load { buffer: "b".into(), dx: 0, dy: 0, ty: U8 }),
        ],
        kernel: vec![1, 1],
        saturating: false,
        out: U16,
    })
}

/// Random wrap-free weighted sums: the linear path must accept the
/// true lift and reject a perturbed kernel.
#[test]
fn prop_linear_path_correct() {
    let mut rng = Rng::seed_from_u64(0xc505);
    for _ in 0..24 {
        let k: Vec<i64> =
            (0..rng.gen_range_usize(2..=4)).map(|_| rng.gen_range(1..=7)).collect();
        let perturb = rng.gen_range_usize(0..=3);
        let mut h: Option<Expr> = None;
        for (i, &w) in k.iter().enumerate() {
            let t = widen(load("in", U8, i as i32, 0));
            let term = if w == 1 { t } else { mul(t, bcast(w, U16)) };
            h = Some(match h {
                None => term,
                Some(a) => add(a, term),
            });
        }
        let h = h.expect("non-empty");
        let u = UberExpr::conv("in", U8, 0, 0, &k, U16);
        assert_eq!(decide_linear(&h, &u), Some(true));

        let mut k2 = k.clone();
        let idx = perturb % k2.len();
        k2[idx] += 1;
        let u2 = UberExpr::conv("in", U8, 0, 0, &k2, U16);
        assert_eq!(decide_linear(&h, &u2), Some(false));
    }
}
