//! Hot-path equivalence and regression properties: memoization and
//! parallel lifting must be pure speedups. Verdicts, lifted programs and
//! compiled output are identical with them on or off, and the memoized
//! path never issues more SMT queries than the unmemoized one.

use oracle::{gen_expr, GenConfig};
use rake::{Rake, Target};
use synth::{lift_expr, SynthStats, Verifier};

fn verifier(memoize: bool, parallel_lifting: bool) -> Verifier {
    // fast() with a tighter proof budget: generated streams hit a few
    // adversarial queries that would otherwise burn the full 50k-conflict
    // budget twice per expression. Both sides share the budget, so the
    // equivalence property is unaffected.
    Verifier { memoize, parallel_lifting, smt_conflict_budget: 5_000, ..Verifier::fast() }
}

fn rake(memoize: bool) -> Rake {
    Rake::new(Target::hvx_small(8)).with_verifier(verifier(memoize, false))
}

/// Property: over a seeded stream of generated expressions, the memoized
/// and unmemoized verifiers reach identical compilation outcomes — same
/// accept/reject verdicts all the way down, same final programs.
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "compiles a generated stream twice; run with: cargo test --release"
)]
fn memoized_and_unmemoized_compilations_agree_on_generated_streams() {
    let cfg = GenConfig::default();
    let mut rng = lanes::rng::Rng::seed_from_u64(0x5EED_4);
    let memo = rake(true);
    let plain = rake(false);
    for i in 0..30 {
        let e = gen_expr(&mut rng, &cfg);
        let a = memo.compile(&e);
        let b = plain.compile(&e);
        match (&a, &b) {
            (Ok(ca), Ok(cb)) => {
                assert_eq!(ca.uber, cb.uber, "lifted programs differ on #{i}: {e}");
                assert_eq!(
                    ca.program.to_string(),
                    cb.program.to_string(),
                    "compiled programs differ on #{i}: {e}"
                );
            }
            (Err(ea), Err(eb)) => assert_eq!(ea, eb, "errors differ on #{i}: {e}"),
            _ => panic!(
                "outcomes differ on #{i}: {e}\nmemoized: {:?}\nunmemoized: {:?}",
                a.as_ref().map(|c| c.program.to_string()),
                b.as_ref().map(|c| c.program.to_string()),
            ),
        }
    }
    // The memoized run answered from cache at least some of the time and
    // never proved more than the unmemoized run.
    let (m, p) = (memo.verifier().memo_snapshot(), plain.verifier().memo_snapshot());
    assert!(m.verdict_hits > 0, "stream produced no cache hits");
    assert!(m.smt_queries <= p.smt_queries, "memoization increased SMT queries");
}

/// Property: parallel candidate screening selects exactly the candidate
/// serial screening selects, over a seeded generated stream.
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "lifts a generated stream twice; run with: cargo test --release"
)]
fn parallel_and_serial_lifting_agree_on_generated_streams() {
    // Grant helpers explicitly: on a single-core machine the pool would
    // otherwise hand out zero permits and the parallel path would never
    // be exercised.
    synth::pool::set_thread_budget(4);
    let cfg = GenConfig::default();
    let mut rng = lanes::rng::Rng::seed_from_u64(0xF00D_4);
    let par = verifier(true, true);
    let ser = verifier(true, false);
    for i in 0..40 {
        let e = gen_expr(&mut rng, &cfg);
        let mut sa = SynthStats::default();
        let mut sb = SynthStats::default();
        let a = lift_expr(&e, &par, &mut sa);
        let b = lift_expr(&e, &ser, &mut sb);
        match (&a, &b) {
            (Some((ua, _)), Some((ub, _))) => {
                assert_eq!(ua, ub, "lifted programs differ on #{i}: {e}");
            }
            (None, None) => {}
            _ => panic!("lift outcomes differ on #{i}: {e}\n{a:?}\nvs\n{b:?}"),
        }
    }
}

/// Regression: with memoization on, compiling the sobel workload issues no
/// more SMT queries than the unmemoized pre-memo path did — the cache can
/// only remove proofs, never add them.
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "full sobel synthesis; run with: cargo test --release"
)]
fn sobel_smt_queries_are_monotone_non_increasing_under_memoization() {
    let w = workloads::by_name("sobel").expect("sobel registered");
    let lanes = (16 * w.lanes / 128).max(4); // quick geometry
    let bench_like = |memoize: bool| Verifier {
        lanes,
        vec_bytes: 16,
        alt_lanes: (lanes / 2).max(4),
        random_envs: 6,
        use_smt: true,
        smt_lanes: 1,
        smt_conflict_budget: 10_000,
        smt_lowering: false,
        memoize,
        parallel_lifting: false,
        ..Verifier::default()
    };
    let target = Target { lanes, vec_bytes: 16 };
    let compile = |memoize: bool| {
        Rake::new(target)
            .with_verifier(bench_like(memoize))
            .compile_pipeline(&w.exprs)
            .stats
    };
    let plain = compile(false);
    let memo = compile(true);
    assert!(
        memo.smt_queries <= plain.smt_queries,
        "memoized sobel proved more: {} > {}",
        memo.smt_queries,
        plain.smt_queries
    );
    assert!(memo.verdict_cache_hits > 0, "sobel should hit the verdict cache");
}
