//! Integration: both code generators agree with the IR interpreter on
//! randomized programs, and Rake's output never costs more than the
//! baseline's under the paper's cost model (it searched a superset).

use halide_ir::builder::*;
use halide_ir::{Buffer2D, Env, EvalCtx, Expr};
use hvx::CostModel;
use lanes::ElemType::{U16, U8};
use rake::{Rake, Target};
use lanes::rng::Rng;
use synth::Verifier;

const LANES: usize = 8;

fn rake() -> Rake {
    Rake::new(Target::hvx_small(LANES)).with_verifier(Verifier::fast())
}

/// Random wrap-free stencil expressions over one u8 buffer.
fn random_stencil(rng: &mut Rng) -> Expr {
    let taps = rng.gen_range_usize(2..=3);
    let mut acc: Option<Expr> = None;
    for k in 0..taps {
        let w = rng.gen_range(1..=3);
        let t = widen(load("in", U8, k as i32 - 1, rng.gen_range(-1..=1) as i32));
        let term = if w == 1 { t } else { mul(t, bcast(w, U16)) };
        acc = Some(match acc {
            None => term,
            Some(a) => add(a, term),
        });
    }
    let acc = acc.expect("taps");
    match rng.gen_range(0..=2) {
        0 => acc,
        1 => cast(U8, shr(add(acc, bcast(4, U16)), 3)),
        _ => absd(acc.clone(), acc),
    }
}

fn random_env(rng: &mut Rng) -> Env {
    let mut env = Env::new();
    env.insert(Buffer2D::from_fn("in", U8, 96, 9, |_, _| rng.gen_range(0..=255)));
    env
}

#[test]
fn randomized_programs_agree_with_interpreter() {
    let rake = rake();
    let mut rng = Rng::seed_from_u64(2024);
    let mut compiled_count = 0;
    for _ in 0..12 {
        let e = random_stencil(&mut rng);
        if !halide_ir::analysis::is_qualifying(&e) {
            continue;
        }
        let baseline = halide_opt::select(&e, halide_opt::BaselineOptions::small(LANES))
            .expect("baseline covers stencils")
            .to_program();
        let compiled = match rake.compile(&e) {
            Ok(c) => c,
            Err(err) => panic!("rake failed on {e}: {err}"),
        };
        compiled_count += 1;
        let env = random_env(&mut rng);
        for x0 in [16i64, 24, 40] {
            let ctx = EvalCtx { env: &env, x0, y0: 4, lanes: LANES };
            let want = halide_ir::eval(&e, &ctx).expect("interpretable");
            let got_b = baseline.run(&env, x0, 4, LANES).expect("baseline runs");
            let got_r = compiled.program.run(&env, x0, 4, LANES).expect("rake runs");
            assert_eq!(got_b.typed_lanes(e.ty()), want, "baseline wrong for {e}");
            assert_eq!(got_r.typed_lanes(e.ty()), want, "rake wrong for {e}");
        }
    }
    assert!(compiled_count >= 8, "rake compiled only {compiled_count} stencils");
}

#[test]
fn rake_cost_never_exceeds_baseline() {
    let rake = rake();
    let model = CostModel::new(LANES, LANES);
    let mut rng = Rng::seed_from_u64(77);
    for _ in 0..10 {
        let e = random_stencil(&mut rng);
        let Ok(c) = rake.compile(&e) else { continue };
        let baseline = halide_opt::select(&e, halide_opt::BaselineOptions::small(LANES))
            .expect("covers")
            .to_program();
        let (cb, cr) = (model.cost(&baseline), model.cost(&c.program));
        assert!(
            cr <= cb,
            "rake ({cr:?}) costlier than baseline ({cb:?}) for {e}\nrake:\n{}\nbaseline:\n{baseline}",
            c.program
        );
    }
}

#[test]
fn pipeline_compiles_whole_sobel_workload() {
    let rake = rake();
    let sobel = workloads::by_name("sobel").expect("registered");
    let report = rake.compile_pipeline(&sobel.exprs);
    assert_eq!(report.optimized(), sobel.exprs.len());
    assert_eq!(report.failed, 0);
    assert!(report.stats.lifting_queries > 0);
    assert!(report.stats.total_time().as_nanos() > 0);
}
