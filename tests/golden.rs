//! Golden snapshots of the programs Rake synthesizes for all 21 paper
//! workloads at the quick geometry (fixed harness seed).
//!
//! The snapshot for each workload lives in `tests/golden/<name>.txt`.
//! Regenerate after an intended codegen change with:
//!
//! ```sh
//! UPDATE_GOLDEN=1 cargo test --release -p rake-bench --test golden
//! ```
//!
//! The suite runs twice — once with memoization and parallel lifting on
//! (the default) and once with both off — and requires byte-identical
//! output under both configurations: the hot-path machinery must be a
//! pure speedup, never a behavioral change.

use std::fmt::Write as _;
use std::path::PathBuf;

use rake_bench::{run_workload, RunConfig};

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden")
}

fn snapshot(w: &workloads::Workload) -> String {
    let run = run_workload(w, RunConfig::quick(w));
    assert!(run.all_verified(), "{}: output mismatch against the interpreter", w.name);
    let mut out = String::new();
    let _ = writeln!(out, "# {} (quick geometry)", w.name);
    for (i, e) in run.exprs.iter().enumerate() {
        let _ = writeln!(out, "\n[{i}] {}", e.halide);
        match &e.rake_program {
            Some(p) => {
                let _ = writeln!(out, "{p}");
            }
            None => {
                let _ = writeln!(out, "(baseline: not optimized)");
            }
        }
    }
    out
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "synthesizes all 21 workloads twice; run with: cargo test --release"
)]
fn golden_snapshots_hold_under_both_hot_path_configs() {
    let dir = golden_dir();
    let update = std::env::var("UPDATE_GOLDEN").is_ok();
    if update {
        std::fs::create_dir_all(&dir).expect("create golden dir");
    }
    // The toggles are read per `Rake` construction, and this binary holds
    // only this test, so setting them here is race-free.
    for (memo, parallel) in [(true, true), (false, false)] {
        std::env::set_var("RAKE_MEMO", if memo { "1" } else { "0" });
        std::env::set_var("RAKE_PARALLEL_LIFT", if parallel { "1" } else { "0" });
        for w in workloads::all() {
            let got = snapshot(&w);
            let path = dir.join(format!("{}.txt", w.name));
            if update && memo {
                std::fs::write(&path, &got).expect("write golden");
                continue;
            }
            let want = std::fs::read_to_string(&path).unwrap_or_else(|_| {
                panic!("missing {}; regenerate with UPDATE_GOLDEN=1", path.display())
            });
            assert_eq!(
                got, want,
                "{} diverged from its golden snapshot under memo={memo} \
                 parallel={parallel}; if the change is intended, regenerate \
                 with UPDATE_GOLDEN=1",
                w.name
            );
        }
    }
    std::env::remove_var("RAKE_MEMO");
    std::env::remove_var("RAKE_PARALLEL_LIFT");
}
