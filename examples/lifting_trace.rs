//! Reproduces the paper's Figure 9: the step-by-step bottom-up lifting of
//! a Sobel filter row from Halide IR to the Uber-Instruction IR, with the
//! rule (update / replace / extend) each step used.
//!
//! ```sh
//! cargo run --example lifting_trace
//! ```

use halide_ir::builder::*;
use lanes::ElemType;
use rake::{Rake, Target};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Figure 9's input: u16(in(x-1,y-1)) + u16(in(x,y-1))*2 + u16(in(x+1,y-1)).
    let tap = |dx| widen(load("input", ElemType::U8, dx, -1));
    let expr = add(add(tap(-1), mul(tap(0), bcast(2, ElemType::U16))), tap(1));

    let rake = Rake::new(Target::hvx_small(8));
    let compiled = rake.compile(&expr)?;

    println!("Lifting `{expr}`:\n");
    for (i, step) in compiled.trace.steps.iter().enumerate() {
        println!("step {:>2} [{:?}]", i + 1, step.rule);
        println!("  halide: {}", step.halide);
        for line in step.lifted.lines() {
            println!("  {line}");
        }
        println!();
    }
    println!("final Uber-Instruction IR:\n{}", compiled.uber);
    println!("lifting queries issued: {}", compiled.stats.lifting_queries);
    Ok(())
}
