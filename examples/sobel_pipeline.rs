//! The paper's motivating example (§2.1): the Sobel filter, compiled with
//! the baseline pattern-matching backend and with Rake, executed on a
//! synthetic image, and compared on simulated cycles — a one-benchmark
//! version of Figure 4 / Figure 11.
//!
//! ```sh
//! cargo run --example sobel_pipeline
//! ```

use halide_opt::BaselineOptions;
use hvx::{CostModel, SlotBudget};
use lanes::ElemType;
use rake::{Rake, Target};

const LANES: usize = 16; // scaled-down registers so the example runs fast

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let sobel = workloads::by_name("sobel").expect("sobel is registered");
    let expr = &sobel.exprs[0];
    println!("Sobel output expression (Figure 3):\n  {expr}\n");

    // Baseline: greedy pattern matching.
    let baseline = halide_opt::select(expr, BaselineOptions::small(LANES))?;
    let bprog = baseline.to_program();

    // Rake: three-stage synthesis.
    let rake = Rake::new(Target::hvx_small(LANES));
    let compiled = rake.compile(expr)?;
    let rprog = &compiled.program;

    let model = CostModel::new(LANES, LANES);
    let slots = SlotBudget::hvx();
    println!("== Halide-style baseline codegen ==\n{bprog}");
    println!(
        "counts {:?}  latency {}  cycles/tile {}\n",
        model.count(&bprog),
        bprog.latency_sum(LANES, LANES),
        bprog.schedule(LANES, LANES, slots).cycles
    );
    println!("== Rake codegen ==\n{rprog}");
    println!(
        "counts {:?}  latency {}  cycles/tile {}\n",
        model.count(rprog),
        rprog.latency_sum(LANES, LANES),
        rprog.schedule(LANES, LANES, slots).cycles
    );

    // Execute both on an image sweep and confirm they agree with the IR.
    let env = sobel.env(LANES * 6, 24, 7);
    let mut checked = 0;
    for ty in 0..8i64 {
        for tx in 1..4i64 {
            let (x0, y0) = (tx * LANES as i64, 8 + ty);
            let ctx = halide_ir::EvalCtx { env: &env, x0, y0, lanes: LANES };
            let want = halide_ir::eval(expr, &ctx)?;
            let hctx = hvx::ExecCtx { env: &env, x0, y0, lanes: LANES, vec_bytes: LANES };
            assert_eq!(bprog.run_ctx(&hctx)?.typed_lanes(ElemType::U8), want);
            assert_eq!(rprog.run_ctx(&hctx)?.typed_lanes(ElemType::U8), want);
            checked += 1;
        }
    }
    let b = bprog.schedule(LANES, LANES, slots).cycles;
    let r = rprog.schedule(LANES, LANES, slots).cycles;
    println!("verified {checked} tiles; speedup {:.2}x ({b} -> {r} cycles/tile)", b as f64 / r as f64);
    Ok(())
}
