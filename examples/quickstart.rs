//! Quickstart: compile one vector expression with Rake and run it.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use halide_ir::builder::*;
use halide_ir::{Buffer2D, Env, EvalCtx};
use lanes::ElemType;
use rake::{Rake, Target};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A lowered Halide IR vector expression: a 3-tap [1,2,1] filter row
    //    with a rounding shift back to u8 (the gaussian3x3 inner loop).
    let tap = |dx| widen(load("image", ElemType::U8, dx, 0));
    let row = add(add(tap(-1), mul(tap(0), bcast(2, ElemType::U16))), tap(1));
    let expr = cast(ElemType::U8, shr(add(row, bcast(2, ElemType::U16)), 2));
    println!("Halide IR:\n  {expr}\n");

    // 2. Synthesize an HVX implementation.
    let rake = Rake::new(Target::hvx_small(16));
    let compiled = rake.compile(&expr)?;

    println!("Lifted to Uber-Instruction IR:\n{}", compiled.uber);
    println!("Synthesized HVX program:\n{}", compiled.program);
    println!(
        "Synthesis effort: {} lifting, {} sketching, {} swizzling queries\n",
        compiled.stats.lifting_queries,
        compiled.stats.sketching_queries,
        compiled.stats.swizzling_queries
    );

    // 3. Execute the synthesized program on an image tile and check it
    //    against the IR interpreter.
    let mut env = Env::new();
    env.insert(Buffer2D::from_fn("image", ElemType::U8, 64, 1, |x, _| {
        ((x * 37) % 256) as i64
    }));
    let got = compiled.program.run(&env, 8, 0, 16)?;
    let want = halide_ir::eval(&expr, &EvalCtx { env: &env, x0: 8, y0: 0, lanes: 16 })?;
    assert_eq!(got.typed_lanes(ElemType::U8), want);
    println!("Output lanes: {want}");
    println!("Synthesized code matches the reference interpreter.");
    Ok(())
}
