//! Using the public API on a kernel of your own: a 5-tap binomial filter
//! with runtime per-row weights (the shape an unrolled reduction loop
//! produces), compiled with both backends and simulated.
//!
//! ```sh
//! cargo run --example custom_kernel
//! ```

use halide_ir::builder::*;
use halide_ir::{Buffer2D, Env, Expr};
use hvx::SlotBudget;
use lanes::ElemType;
use rake::{Rake, Target};

const LANES: usize = 16;

/// Σ_k x(x+k-2) * w(k), accumulated at u16, then requantized to u8.
fn my_kernel() -> Expr {
    let mut acc: Option<Expr> = None;
    for k in 0..5i32 {
        let term = mul(
            widen(load("x", ElemType::U8, k - 2, 0)),
            widen(bcast_load("w", k, 0, ElemType::U8)),
        );
        acc = Some(match acc {
            None => term,
            Some(a) => add(a, term),
        });
    }
    sat_cast(ElemType::U8, shr(add(acc.expect("taps"), bcast(128, ElemType::U16)), 8))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let expr = my_kernel();
    println!("kernel:\n  {expr}\n");

    let rake = Rake::new(Target::hvx_small(LANES));
    let compiled = rake.compile(&expr)?;
    let baseline = halide_opt::select(&expr, halide_opt::BaselineOptions::small(LANES))?
        .to_program();

    println!("Rake program ({} instructions):\n{}", compiled.program.len(), compiled.program);
    println!("baseline program ({} instructions):\n{baseline}", baseline.len());

    let slots = SlotBudget::hvx();
    let (b, r) = (
        baseline.schedule(LANES, LANES, slots).cycles,
        compiled.program.schedule(LANES, LANES, slots).cycles,
    );
    println!("cycles/tile: baseline {b}, rake {r} ({:.2}x)", b as f64 / r as f64);

    // Run on data: a ramp image and a binomial weight row [1, 4, 6, 4, 1].
    let mut env = Env::new();
    env.insert(Buffer2D::from_fn("x", ElemType::U8, 96, 1, |x, _| (x % 251) as i64));
    env.insert(Buffer2D::from_fn("w", ElemType::U8, 8, 1, |x, _| [1, 4, 6, 4, 1, 0, 0, 0][x]));
    let out = compiled.program.run(&env, 32, 0, LANES)?;
    println!("\noutput tile: {}", out.typed_lanes(ElemType::U8));
    Ok(())
}
