//! The paper's Figure 2, end to end: write the Sobel filter as a Halide
//! algorithm (pure stages), apply a schedule (vectorize), lower to the
//! Figure-3 vector expression, and run Rake's instruction selection on it.
//!
//! ```sh
//! cargo run --release --example halide_style
//! ```

use halide_ir::builder::{absd, add, bcast, cast, max, min, mul, widen};
use halide_ir::pipeline::{Func, Pipeline};
use lanes::ElemType::{U16, U8};
use rake::{Rake, Target};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // -- The algorithm (Figure 2, lines 6-15) -----------------------------
    let input = Func::input("input", U8);
    let in16 = Func::define({
        let input = input.clone();
        move |x, y| widen(input.at(x, y))
    });
    let x_avg = Func::define({
        let in16 = in16.clone();
        move |x, y| add(add(in16.at(x - 1, y), mul(in16.at(x, y), bcast(2, U16))), in16.at(x + 1, y))
    });
    let y_avg = Func::define({
        let in16 = in16.clone();
        move |x, y| add(add(in16.at(x, y - 1), mul(in16.at(x, y), bcast(2, U16))), in16.at(x, y + 1))
    });
    let sobel_x = Func::define({
        let x_avg = x_avg.clone();
        move |x, y| absd(x_avg.at(x, y - 1), x_avg.at(x, y + 1))
    });
    let sobel_y = Func::define({
        let y_avg = y_avg.clone();
        move |x, y| absd(y_avg.at(x - 1, y), y_avg.at(x + 1, y))
    });
    let output = Func::define({
        let (sx, sy) = (sobel_x.clone(), sobel_y.clone());
        move |x, y| {
            cast(
                U8,
                max(min(add(sx.at(x, y), sy.at(x, y)), bcast(255, U16)), bcast(0, U16)),
            )
        }
    });

    // -- The schedule (Figure 2, lines 18-21) -----------------------------
    // output.hexagon().tile(...).vectorize(xi): only the vector width
    // matters to instruction selection; we scale it down to run fast here.
    let pipeline = Pipeline::new(output).vectorize(16);

    // -- Lowering (Figure 3) ----------------------------------------------
    let expr = pipeline.lower();
    println!("Lowered loop-body expression (Figure 3):\n  {expr}\n");

    // -- Instruction selection (Rake) --------------------------------------
    let compiled = Rake::new(Target::hvx_small(pipeline.lanes())).compile(&expr)?;
    println!("Synthesized HVX ({} instructions):\n{}", compiled.program.len(), compiled.program);
    println!(
        "queries: {} lift, {} sketch, {} swizzle",
        compiled.stats.lifting_queries,
        compiled.stats.sketching_queries,
        compiled.stats.swizzling_queries
    );
    Ok(())
}
