//! Structured span tracing for the rake pipeline.
//!
//! The paper's headline cost is synthesis time, and synthesis time hides
//! inside solver queries and candidate screening. This crate gives every
//! layer of the pipeline — HTTP accept, driver job, lift-rule firing,
//! swizzle search, individual SMT query — a named, timed span in one
//! shared tree, so a slow workload can be attributed to the stage that
//! actually burned the time.
//!
//! Design constraints, in order:
//!
//! 1. **Disabled means free.** Tracing is runtime-gated; when off, the
//!    only cost at an instrumentation point is a single `Relaxed` atomic
//!    load ([`enabled`]). No allocation, no clock read, no thread-local
//!    touch.
//! 2. **No dependencies.** std only, like the rest of the workspace.
//! 3. **Lock-free hot path.** Completed spans land in a fixed-capacity
//!    ring of `AtomicPtr` slots: one `fetch_add` to claim a slot, one
//!    `swap` to publish. Under overflow the oldest record is dropped and
//!    counted, never blocked on.
//! 4. **Cross-process stitching.** A span context (`trace_id` +
//!    `span_id`) serializes to a pair of integers, crosses the
//!    `--isolate` worker frame protocol, and worker-side spans re-enter
//!    the parent's ring via [`submit`] with their parent pointers intact.
//!    Worker clocks are aligned with [`set_clock_offset_us`].
//!
//! ## Span model
//!
//! A *trace* is one end-to-end request (or one CLI compile batch). A
//! *span* is a named interval with a category (pipeline stage), a parent
//! span, and a small list of key/value annotations. Parentage is implicit
//! through a thread-local span stack; crossing a thread or process
//! boundary requires explicitly carrying a [`TraceContext`] and
//! re-entering it with [`adopt`].
//!
//! IDs are 64-bit. Span IDs are allocated from a per-process counter
//! seeded with the pid in the high bits, so spans minted on both sides of
//! a worker boundary never collide within one trace. `0` is reserved to
//! mean "no parent".
//!
//! ## Export
//!
//! [`chrome_trace_json`] renders records as Chrome trace-event JSON
//! (schema tag `rake-trace-v1`, complete events `ph:"X"`, microsecond
//! timestamps) loadable in `chrome://tracing` / Perfetto.
//! [`folded_stacks`] renders the same records as flamegraph-compatible
//! folded stacks with self-time weights.

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicPtr, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Default ring capacity (spans) installed by [`enable`].
pub const DEFAULT_CAPACITY: usize = 1 << 16;

/// Cap on the slow-span side log, so a pathological threshold cannot
/// accumulate unbounded memory.
const SLOW_LOG_CAP: usize = 4096;

/// Bound on parent-chain walks during export, against cyclic or torn
/// foreign records.
const MAX_STACK_DEPTH: usize = 64;

static ENABLED: AtomicBool = AtomicBool::new(false);
static SLOW_US: AtomicU64 = AtomicU64::new(0);
/// Added to raw monotonic micros when a record is published; workers set
/// this to align their clock with the dispatching parent process.
static CLOCK_OFFSET_US: AtomicI64 = AtomicI64::new(0);
static NEXT_ID: AtomicU64 = AtomicU64::new(0);
static SEQ: AtomicU64 = AtomicU64::new(0);
static EPOCH: OnceLock<Instant> = OnceLock::new();
static RING: OnceLock<Ring> = OnceLock::new();
static SLOW: Mutex<Vec<SpanRecord>> = Mutex::new(Vec::new());

thread_local! {
    /// Stack of (trace_id, span_id) for implicit parenting.
    static STACK: RefCell<Vec<(u64, u64)>> = const { RefCell::new(Vec::new()) };
}

/// Whether tracing is currently recording. A single `Relaxed` load — the
/// entire disabled-path cost of an instrumentation point.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turn tracing on, installing the global ring sink on first use.
pub fn enable() {
    EPOCH.get_or_init(Instant::now);
    RING.get_or_init(|| Ring::new(DEFAULT_CAPACITY));
    if NEXT_ID.load(Ordering::Relaxed) == 0 {
        NEXT_ID.store(id_seed(), Ordering::Relaxed);
    }
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turn tracing off. Already-recorded spans stay in the ring until
/// drained; in-flight guards finish quietly.
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// Set the slow-span threshold. Spans with duration >= the threshold are
/// additionally copied to a capped side log ([`drain_slow`]) that
/// survives ring overflow. `0` disables the side log.
pub fn set_slow_threshold_us(us: u64) {
    SLOW_US.store(us, Ordering::Relaxed);
}

/// Align this process's clock with a parent process: `offset_us` is
/// added to every subsequently published record's timestamp. A worker
/// computes it as `parent_now_us - now_us()` from the frame it received.
pub fn set_clock_offset_us(offset_us: i64) {
    CLOCK_OFFSET_US.store(offset_us, Ordering::Relaxed);
}

/// Microseconds since this process's trace epoch (first [`enable`] /
/// first clock read). Monotonic; unaffected by wall-clock steps.
pub fn now_us() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_micros() as u64
}

fn id_seed() -> u64 {
    // Pid in the high bits keeps IDs minted on both sides of a worker
    // boundary disjoint; the low 32 bits count allocations.
    (u64::from(std::process::id()) << 32) | 1
}

fn next_id() -> u64 {
    let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
    if id == 0 {
        // enable() was never called (pure in-process use); seed lazily.
        NEXT_ID.store(id_seed() + 1, Ordering::Relaxed);
        return id_seed();
    }
    id
}

/// A span's identity, compact enough to cross thread and process
/// boundaries: carry the two integers, then [`adopt`] on the far side.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// The end-to-end request this span belongs to.
    pub trace_id: u64,
    /// The span itself (a parent for whatever is created under it).
    pub span_id: u64,
}

/// Allocate a fresh trace ID (one per request / CLI invocation).
pub fn new_trace_id() -> u64 {
    next_id()
}

/// Render an ID the way responses and exports spell it.
pub fn fmt_id(id: u64) -> String {
    format!("{id:016x}")
}

/// Parse an ID rendered by [`fmt_id`].
pub fn parse_id(s: &str) -> Option<u64> {
    u64::from_str_radix(s, 16).ok()
}

/// The context of the innermost open span on this thread, if any.
pub fn current() -> Option<TraceContext> {
    STACK.with(|s| {
        s.borrow().last().map(|&(trace_id, span_id)| TraceContext { trace_id, span_id })
    })
}

/// An annotation value on a span.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgValue {
    /// Unsigned counter/size.
    U64(u64),
    /// Signed quantity.
    I64(i64),
    /// Short label. Keep these small; they are copied per span.
    Str(String),
    /// Flag.
    Bool(bool),
}

impl From<u64> for ArgValue {
    fn from(v: u64) -> ArgValue {
        ArgValue::U64(v)
    }
}
impl From<usize> for ArgValue {
    fn from(v: usize) -> ArgValue {
        ArgValue::U64(v as u64)
    }
}
impl From<u32> for ArgValue {
    fn from(v: u32) -> ArgValue {
        ArgValue::U64(u64::from(v))
    }
}
impl From<i64> for ArgValue {
    fn from(v: i64) -> ArgValue {
        ArgValue::I64(v)
    }
}
impl From<bool> for ArgValue {
    fn from(v: bool) -> ArgValue {
        ArgValue::Bool(v)
    }
}
impl From<&str> for ArgValue {
    fn from(v: &str) -> ArgValue {
        ArgValue::Str(v.to_owned())
    }
}
impl From<String> for ArgValue {
    fn from(v: String) -> ArgValue {
        ArgValue::Str(v)
    }
}

/// A completed span, as stored in the ring and consumed by exporters.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Global publish order (survives ring reshuffling).
    pub seq: u64,
    /// The trace this span belongs to.
    pub trace_id: u64,
    /// This span's ID.
    pub span_id: u64,
    /// Parent span ID; `0` for a trace root.
    pub parent_id: u64,
    /// Span name (stage or rule site).
    pub name: &'static str,
    /// Category: `http`, `driver`, `lift`, `lower`, `swizzle`, `verify`,
    /// `smt`, `worker`, ...
    pub cat: &'static str,
    /// Start, micros since the trace epoch (clock offset applied).
    pub start_us: u64,
    /// Duration in micros.
    pub dur_us: u64,
    /// Process that minted the span.
    pub pid: u32,
    /// Annotations.
    pub args: Vec<(&'static str, ArgValue)>,
}

/// An open span. Records itself (and pops the thread-local stack) on
/// drop. Obtained from [`span`], [`span_root`], or [`span_under`];
/// guards from a disabled tracer are inert.
pub struct SpanGuard {
    active: bool,
    trace_id: u64,
    span_id: u64,
    parent_id: u64,
    name: &'static str,
    cat: &'static str,
    start_us_raw: u64,
    args: Vec<(&'static str, ArgValue)>,
}

impl SpanGuard {
    const INERT: SpanGuard = SpanGuard {
        active: false,
        trace_id: 0,
        span_id: 0,
        parent_id: 0,
        name: "",
        cat: "",
        start_us_raw: 0,
        args: Vec::new(),
    };

    fn open(name: &'static str, cat: &'static str, trace_id: u64, parent_id: u64) -> SpanGuard {
        let span_id = next_id();
        STACK.with(|s| s.borrow_mut().push((trace_id, span_id)));
        SpanGuard {
            active: true,
            trace_id,
            span_id,
            parent_id,
            name,
            cat,
            start_us_raw: now_us(),
            args: Vec::new(),
        }
    }

    /// Whether this guard is recording. Gate expensive annotation
    /// construction (`format!`, sexpr printing) on this.
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// This span's context, for handing to another thread or process.
    pub fn context(&self) -> Option<TraceContext> {
        self.active.then_some(TraceContext { trace_id: self.trace_id, span_id: self.span_id })
    }

    /// Attach an annotation. No-op (and allocation-free for scalar
    /// values) on an inert guard.
    pub fn arg(&mut self, key: &'static str, value: impl Into<ArgValue>) {
        if self.active {
            self.args.push((key, value.into()));
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        STACK.with(|s| {
            let mut stack = s.borrow_mut();
            // Pop our own entry specifically: panics can unwind guards
            // out of order, and a mispop would reparent later spans.
            if let Some(pos) = stack.iter().rposition(|&(_, id)| id == self.span_id) {
                stack.remove(pos);
            }
        });
        let end = now_us();
        let offset = CLOCK_OFFSET_US.load(Ordering::Relaxed);
        let record = SpanRecord {
            seq: SEQ.fetch_add(1, Ordering::Relaxed),
            trace_id: self.trace_id,
            span_id: self.span_id,
            parent_id: self.parent_id,
            name: self.name,
            cat: self.cat,
            start_us: self.start_us_raw.saturating_add_signed(offset),
            dur_us: end.saturating_sub(self.start_us_raw),
            pid: std::process::id(),
            args: std::mem::take(&mut self.args),
        };
        let slow = SLOW_US.load(Ordering::Relaxed);
        if slow > 0 && record.dur_us >= slow {
            if let Ok(mut log) = SLOW.lock() {
                if log.len() < SLOW_LOG_CAP {
                    log.push(record.clone());
                }
            }
        }
        submit(record);
    }
}

/// Open a span under the innermost open span on this thread. If no span
/// is open, the span becomes the root of a fresh trace. Inert when
/// tracing is disabled.
pub fn span(name: &'static str, cat: &'static str) -> SpanGuard {
    if !enabled() {
        return SpanGuard::INERT;
    }
    match current() {
        Some(ctx) => SpanGuard::open(name, cat, ctx.trace_id, ctx.span_id),
        None => SpanGuard::open(name, cat, new_trace_id(), 0),
    }
}

/// Open the root span of trace `trace_id`. Inert when disabled.
pub fn span_root(name: &'static str, cat: &'static str, trace_id: u64) -> SpanGuard {
    if !enabled() {
        return SpanGuard::INERT;
    }
    SpanGuard::open(name, cat, trace_id, 0)
}

/// Open a span under an explicit parent context — the cross-thread /
/// cross-process entry point. Inert when disabled.
pub fn span_under(name: &'static str, cat: &'static str, ctx: TraceContext) -> SpanGuard {
    if !enabled() {
        return SpanGuard::INERT;
    }
    SpanGuard::open(name, cat, ctx.trace_id, ctx.span_id)
}

/// Make `ctx` the implicit parent for spans opened on this thread, until
/// the returned guard drops. Use when work moves to a thread that has no
/// open spans (driver queue workers, isolate workers).
pub fn adopt(ctx: TraceContext) -> AdoptGuard {
    if !enabled() {
        return AdoptGuard { span_id: 0 };
    }
    STACK.with(|s| s.borrow_mut().push((ctx.trace_id, ctx.span_id)));
    AdoptGuard { span_id: ctx.span_id }
}

/// Reverts [`adopt`] on drop.
pub struct AdoptGuard {
    span_id: u64,
}

impl Drop for AdoptGuard {
    fn drop(&mut self) {
        if self.span_id == 0 {
            return;
        }
        STACK.with(|s| {
            let mut stack = s.borrow_mut();
            if let Some(pos) = stack.iter().rposition(|&(_, id)| id == self.span_id) {
                stack.remove(pos);
            }
        });
    }
}

/// Intern a dynamic string (a foreign span name parsed off the wire)
/// into a `&'static str`. Leaks once per distinct string; span and
/// category names form a small closed set, so the leak is bounded.
pub fn intern(s: &str) -> &'static str {
    static INTERNED: Mutex<Vec<&'static str>> = Mutex::new(Vec::new());
    let mut table = INTERNED.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(hit) = table.iter().find(|t| **t == s) {
        return hit;
    }
    let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
    table.push(leaked);
    leaked
}

// ---------------------------------------------------------------------------
// Ring sink
// ---------------------------------------------------------------------------

struct Ring {
    slots: Box<[AtomicPtr<SpanRecord>]>,
    cursor: AtomicUsize,
    dropped: AtomicU64,
}

impl Ring {
    fn new(capacity: usize) -> Ring {
        let slots =
            (0..capacity.max(1)).map(|_| AtomicPtr::new(std::ptr::null_mut())).collect();
        Ring { slots, cursor: AtomicUsize::new(0), dropped: AtomicU64::new(0) }
    }

    fn push(&self, record: SpanRecord) {
        let i = self.cursor.fetch_add(1, Ordering::Relaxed) % self.slots.len();
        let old = self.slots[i].swap(Box::into_raw(Box::new(record)), Ordering::AcqRel);
        if !old.is_null() {
            // SAFETY: the swap transferred exclusive ownership of `old`
            // to this thread; nobody else can observe that pointer again.
            drop(unsafe { Box::from_raw(old) });
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn sweep(&self) -> Vec<SpanRecord> {
        let mut out = Vec::new();
        for slot in self.slots.iter() {
            let p = slot.swap(std::ptr::null_mut(), Ordering::AcqRel);
            if !p.is_null() {
                // SAFETY: as in push — the swap made us the sole owner.
                out.push(*unsafe { Box::from_raw(p) });
            }
        }
        out.sort_by_key(|r| r.seq);
        out
    }
}

/// Publish an already-built record (used to re-ingest worker-side spans
/// whose IDs were minted in another process). Silently dropped when
/// tracing is disabled or the sink was never installed.
pub fn submit(record: SpanRecord) {
    if let Some(ring) = RING.get() {
        ring.push(record);
    }
}

/// Remove and return every record in the ring, in publish order.
pub fn drain() -> Vec<SpanRecord> {
    RING.get().map(Ring::sweep).unwrap_or_default()
}

/// Remove and return the records of one trace, leaving other traces'
/// records in the ring (they are re-published, keeping their original
/// sequence numbers).
pub fn drain_trace(trace_id: u64) -> Vec<SpanRecord> {
    let Some(ring) = RING.get() else {
        return Vec::new();
    };
    let mut mine = Vec::new();
    for record in ring.sweep() {
        if record.trace_id == trace_id {
            mine.push(record);
        } else {
            ring.push(record);
        }
    }
    mine
}

/// Remove and return the slow-span side log.
pub fn drain_slow() -> Vec<SpanRecord> {
    std::mem::take(&mut *SLOW.lock().unwrap_or_else(|e| e.into_inner()))
}

/// Number of records lost to ring overflow so far.
pub fn dropped() -> u64 {
    RING.get().map(|r| r.dropped.load(Ordering::Relaxed)).unwrap_or(0)
}

// ---------------------------------------------------------------------------
// Export
// ---------------------------------------------------------------------------

fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_arg_value(out: &mut String, v: &ArgValue) {
    match v {
        ArgValue::U64(n) => out.push_str(&n.to_string()),
        ArgValue::I64(n) => out.push_str(&n.to_string()),
        ArgValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        ArgValue::Str(s) => push_json_str(out, s),
    }
}

/// Render records as Chrome trace-event JSON (`rake-trace-v1`): complete
/// events (`ph:"X"`), microsecond timestamps, span identity under
/// `args.span` / `args.parent` / `args.trace`. Loadable in
/// `chrome://tracing` and Perfetto.
pub fn chrome_trace_json(records: &[SpanRecord]) -> String {
    let mut out = String::with_capacity(records.len() * 160 + 128);
    out.push_str("{\"schema\":\"rake-trace-v1\",\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    for (i, r) in records.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":");
        push_json_str(&mut out, r.name);
        out.push_str(",\"cat\":");
        push_json_str(&mut out, r.cat);
        out.push_str(&format!(
            ",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":{},\"tid\":{}",
            r.start_us, r.dur_us, r.pid, r.pid
        ));
        out.push_str(",\"args\":{\"trace\":");
        push_json_str(&mut out, &fmt_id(r.trace_id));
        out.push_str(",\"span\":");
        push_json_str(&mut out, &fmt_id(r.span_id));
        out.push_str(",\"parent\":");
        push_json_str(&mut out, &fmt_id(r.parent_id));
        for (k, v) in &r.args {
            out.push(',');
            push_json_str(&mut out, k);
            out.push(':');
            push_arg_value(&mut out, v);
        }
        out.push_str("}}");
    }
    out.push_str("]}");
    out
}

/// Render records as flamegraph folded stacks: one `a;b;c weight` line
/// per span, where the path is the parent chain of span names and the
/// weight is the span's *self* time in micros (duration minus direct
/// children). Spans whose parents fall outside `records` (lost to ring
/// overflow, or crashed workers) root their own stacks.
pub fn folded_stacks(records: &[SpanRecord]) -> String {
    let by_id: HashMap<u64, &SpanRecord> =
        records.iter().map(|r| (r.span_id, r)).collect();
    let mut child_us: HashMap<u64, u64> = HashMap::new();
    for r in records {
        if r.parent_id != 0 {
            *child_us.entry(r.parent_id).or_insert(0) += r.dur_us;
        }
    }
    let mut lines: HashMap<String, u64> = HashMap::new();
    for r in records {
        let self_us = r.dur_us.saturating_sub(child_us.get(&r.span_id).copied().unwrap_or(0));
        if self_us == 0 {
            continue;
        }
        let mut path = vec![r.name];
        let mut cursor = r.parent_id;
        for _ in 0..MAX_STACK_DEPTH {
            let Some(p) = (cursor != 0).then(|| by_id.get(&cursor)).flatten() else {
                break;
            };
            path.push(p.name);
            cursor = p.parent_id;
        }
        path.reverse();
        *lines.entry(path.join(";")).or_insert(0) += self_us;
    }
    let mut sorted: Vec<(String, u64)> = lines.into_iter().collect();
    sorted.sort();
    let mut out = String::new();
    for (path, us) in sorted {
        out.push_str(&path);
        out.push(' ');
        out.push_str(&us.to_string());
        out.push('\n');
    }
    out
}

/// Render the slow-span log as human-readable lines (one per span,
/// slowest first).
pub fn slow_log_lines(records: &[SpanRecord]) -> String {
    let mut sorted: Vec<&SpanRecord> = records.iter().collect();
    sorted.sort_by_key(|r| std::cmp::Reverse(r.dur_us));
    let mut out = String::new();
    for r in sorted {
        out.push_str(&format!(
            "{:>10}us  {}/{}  trace={} span={} parent={}",
            r.dur_us,
            r.cat,
            r.name,
            fmt_id(r.trace_id),
            fmt_id(r.span_id),
            fmt_id(r.parent_id)
        ));
        for (k, v) in &r.args {
            let mut rendered = String::new();
            push_arg_value(&mut rendered, v);
            out.push_str(&format!(" {k}={rendered}"));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    // The tests share global tracer state, so they serialize on a lock
    // and fully drain between cases.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn locked() -> std::sync::MutexGuard<'static, ()> {
        let guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        enable();
        let _ = drain();
        let _ = drain_slow();
        set_slow_threshold_us(0);
        set_clock_offset_us(0);
        guard
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let _l = locked();
        disable();
        {
            let mut sp = span("lift", "synth");
            sp.arg("rule", "add.vvmpy-merge");
            assert!(!sp.is_active());
            assert!(sp.context().is_none());
        }
        enable();
        assert!(drain().is_empty());
    }

    #[test]
    fn nested_spans_parent_through_the_thread_stack() {
        let _l = locked();
        let trace_id;
        {
            let root = span("request", "http");
            trace_id = root.context().unwrap().trace_id;
            {
                let mid = span("job", "driver");
                assert_eq!(mid.context().unwrap().trace_id, trace_id);
                let _leaf = span("smt.prove", "smt");
            }
        }
        let records = drain();
        assert_eq!(records.len(), 3);
        // Drained in publish (completion) order: leaf, mid, root.
        assert_eq!(records[0].name, "smt.prove");
        assert_eq!(records[2].name, "request");
        assert_eq!(records[2].parent_id, 0);
        assert_eq!(records[1].parent_id, records[2].span_id);
        assert_eq!(records[0].parent_id, records[1].span_id);
        assert!(records.iter().all(|r| r.trace_id == trace_id));
    }

    #[test]
    fn adopt_carries_context_across_threads() {
        let _l = locked();
        let root = span_root("request", "http", new_trace_id());
        let ctx = root.context().unwrap();
        std::thread::scope(|s| {
            s.spawn(move || {
                let _adopted = adopt(ctx);
                let _child = span("job", "driver");
            });
        });
        drop(root);
        let records = drain();
        let child = records.iter().find(|r| r.name == "job").unwrap();
        assert_eq!(child.parent_id, ctx.span_id);
        assert_eq!(child.trace_id, ctx.trace_id);
    }

    #[test]
    fn drain_trace_keeps_other_traces() {
        let _l = locked();
        let ta = new_trace_id();
        let tb = new_trace_id();
        drop(span_root("a", "http", ta));
        drop(span_root("b", "http", tb));
        let mine = drain_trace(ta);
        assert_eq!(mine.len(), 1);
        assert_eq!(mine[0].name, "a");
        let rest = drain();
        assert_eq!(rest.len(), 1);
        assert_eq!(rest[0].name, "b");
    }

    #[test]
    fn slow_log_captures_spans_over_threshold() {
        let _l = locked();
        set_slow_threshold_us(1);
        {
            let _sp = span("slow.op", "driver");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        set_slow_threshold_us(0);
        let slow = drain_slow();
        assert_eq!(slow.len(), 1);
        assert_eq!(slow[0].name, "slow.op");
        assert!(slow_log_lines(&slow).contains("slow.op"));
        let _ = drain();
    }

    #[test]
    fn chrome_export_has_schema_and_span_identity() {
        let _l = locked();
        {
            let mut sp = span("smt.prove", "smt");
            sp.arg("terms", 41u64);
            sp.arg("outcome", "unsat");
            sp.arg("cached", false);
        }
        let records = drain();
        let json = chrome_trace_json(&records);
        assert!(json.starts_with("{\"schema\":\"rake-trace-v1\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"terms\":41"));
        assert!(json.contains("\"outcome\":\"unsat\""));
        assert!(json.contains(&fmt_id(records[0].span_id)));
    }

    #[test]
    fn folded_stacks_attribute_self_time() {
        let _l = locked();
        let mk = |seq, span_id, parent_id, name: &'static str, dur_us| SpanRecord {
            seq,
            trace_id: 7,
            span_id,
            parent_id,
            name,
            cat: "t",
            start_us: 0,
            dur_us,
            pid: 1,
            args: Vec::new(),
        };
        let records =
            vec![mk(0, 10, 0, "root", 100), mk(1, 11, 10, "mid", 60), mk(2, 12, 11, "leaf", 25)];
        let folded = folded_stacks(&records);
        assert!(folded.contains("root 40\n"), "{folded}");
        assert!(folded.contains("root;mid 35\n"), "{folded}");
        assert!(folded.contains("root;mid;leaf 25\n"), "{folded}");
    }

    #[test]
    fn foreign_records_submit_and_stitch() {
        let _l = locked();
        let root = span_root("dispatch", "driver", new_trace_id());
        let ctx = root.context().unwrap();
        // Simulate a worker-side span parsed off the wire.
        submit(SpanRecord {
            seq: SEQ.fetch_add(1, Ordering::Relaxed),
            trace_id: ctx.trace_id,
            span_id: 0xdead_0001,
            parent_id: ctx.span_id,
            name: intern("worker.compile"),
            cat: intern("worker"),
            start_us: 5,
            dur_us: 9,
            pid: 4242,
            args: vec![(intern("tier"), ArgValue::Str("full".into()))],
        });
        drop(root);
        let records = drain_trace(ctx.trace_id);
        assert_eq!(records.len(), 2);
        let foreign = records.iter().find(|r| r.name == "worker.compile").unwrap();
        assert_eq!(foreign.parent_id, ctx.span_id);
        assert_eq!(foreign.pid, 4242);
    }

    #[test]
    fn ring_overflow_drops_oldest_and_counts() {
        let _l = locked();
        let before = dropped();
        let n = DEFAULT_CAPACITY + 8;
        for _ in 0..n {
            drop(span_root("x", "t", 1));
        }
        let records = drain();
        assert_eq!(records.len(), DEFAULT_CAPACITY);
        assert!(dropped() >= before + 8);
    }

    #[test]
    fn interning_is_stable() {
        let a = intern("lift.screen");
        let b = intern(&String::from("lift.screen"));
        assert!(std::ptr::eq(a, b));
    }

    #[test]
    fn id_formatting_roundtrips() {
        let id = new_trace_id();
        assert_eq!(parse_id(&fmt_id(id)), Some(id));
        assert_eq!(fmt_id(id).len(), 16);
    }
}
