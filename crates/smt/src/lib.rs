//! Quantifier-free bit-vector SMT via bit-blasting.
//!
//! This crate is the reproduction's stand-in for Z3 (see DESIGN.md): the
//! synthesis queries Rake issues are quantifier-free bit-vector equivalence
//! checks, which we decide by Tseitin-encoding the terms to CNF and running
//! the [`rake-sat`](sat) CDCL core.
//!
//! The flow is:
//!
//! 1. build terms in a [`Context`] (hash-consed, constant-folding),
//! 2. assert width-1 terms on a [`BvSolver`],
//! 3. [`BvSolver::check`] returns [`SmtResult::Unsat`] or a counterexample
//!    [`BvModel`] assigning every bit-vector variable.
//!
//! # Example: prove `x + y == y + x` over 8-bit vectors
//!
//! ```
//! use rake_smt::{BvSolver, Context, SmtResult};
//!
//! let mut ctx = Context::new();
//! let x = ctx.var("x", 8);
//! let y = ctx.var("y", 8);
//! let lhs = ctx.add(x, y);
//! let rhs = ctx.add(y, x);
//! let diff = ctx.ne(lhs, rhs);
//!
//! let mut solver = BvSolver::new(&ctx);
//! solver.assert_term(diff);
//! assert_eq!(solver.check(), SmtResult::Unsat); // no distinguishing input
//! ```

mod blast;
mod shared;
mod solver;
mod term;

pub use shared::SharedSolver;
pub use solver::{check_equivalent, BvModel, BvSolver, SmtResult};
pub use term::{Context, TermId};
