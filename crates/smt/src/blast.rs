//! Tseitin bit-blasting of terms to CNF.

use std::collections::HashMap;

use sat::{Lit, Solver};

use crate::term::{Context, Node, TermId};

/// Blasts terms into an underlying SAT solver. Each term becomes a vector
/// of literals, LSB first.
pub(crate) struct Blaster<'a> {
    ctx: &'a Context,
    pub(crate) sat: Solver,
    bits: HashMap<TermId, Vec<Lit>>,
    tt: Lit,
}

impl<'a> Blaster<'a> {
    pub(crate) fn new(ctx: &'a Context) -> Blaster<'a> {
        let mut sat = Solver::new();
        let tt = Lit::pos(sat.new_var());
        sat.add_clause([tt]);
        Blaster { ctx, sat, bits: HashMap::new(), tt }
    }

    fn tt(&self) -> Lit {
        self.tt
    }

    fn ff(&self) -> Lit {
        !self.tt
    }

    fn fresh(&mut self) -> Lit {
        Lit::pos(self.sat.new_var())
    }

    fn const_bits(&self, value: u64, width: u32) -> Vec<Lit> {
        (0..width)
            .map(|i| if (value >> i) & 1 == 1 { self.tt() } else { self.ff() })
            .collect()
    }

    /// `x <-> a & b`.
    fn and2(&mut self, a: Lit, b: Lit) -> Lit {
        if a == self.ff() || b == self.ff() || a == !b {
            return self.ff();
        }
        if a == self.tt() || a == b {
            return b;
        }
        if b == self.tt() {
            return a;
        }
        let x = self.fresh();
        self.sat.add_clause([!x, a]);
        self.sat.add_clause([!x, b]);
        self.sat.add_clause([x, !a, !b]);
        x
    }

    /// `x <-> a | b`.
    fn or2(&mut self, a: Lit, b: Lit) -> Lit {
        
        !self.and2(!a, !b)
    }

    /// `x <-> a ^ b`.
    fn xor2(&mut self, a: Lit, b: Lit) -> Lit {
        if a == self.ff() {
            return b;
        }
        if b == self.ff() {
            return a;
        }
        if a == self.tt() {
            return !b;
        }
        if b == self.tt() {
            return !a;
        }
        if a == b {
            return self.ff();
        }
        if a == !b {
            return self.tt();
        }
        let x = self.fresh();
        self.sat.add_clause([!x, a, b]);
        self.sat.add_clause([!x, !a, !b]);
        self.sat.add_clause([x, !a, b]);
        self.sat.add_clause([x, a, !b]);
        x
    }

    /// `x <-> c ? t : e`.
    fn mux(&mut self, c: Lit, t: Lit, e: Lit) -> Lit {
        if t == e {
            return t;
        }
        if c == self.tt() {
            return t;
        }
        if c == self.ff() {
            return e;
        }
        let x = self.fresh();
        self.sat.add_clause([!c, !t, x]);
        self.sat.add_clause([!c, t, !x]);
        self.sat.add_clause([c, !e, x]);
        self.sat.add_clause([c, e, !x]);
        x
    }

    fn full_adder(&mut self, a: Lit, b: Lit, cin: Lit) -> (Lit, Lit) {
        let axb = self.xor2(a, b);
        let sum = self.xor2(axb, cin);
        let ab = self.and2(a, b);
        let axb_c = self.and2(axb, cin);
        let cout = self.or2(ab, axb_c);
        (sum, cout)
    }

    /// Ripple-carry addition of equal-width bit vectors.
    fn adder(&mut self, a: &[Lit], b: &[Lit], mut carry: Lit) -> Vec<Lit> {
        let mut out = Vec::with_capacity(a.len());
        for i in 0..a.len() {
            let (s, c) = self.full_adder(a[i], b[i], carry);
            out.push(s);
            carry = c;
        }
        out
    }

    /// Unsigned less-than: scan LSB to MSB, the most significant differing
    /// bit decides.
    fn ult_lit(&mut self, a: &[Lit], b: &[Lit]) -> Lit {
        let mut lt = self.ff();
        for i in 0..a.len() {
            let d = self.xor2(a[i], b[i]);
            lt = self.mux(d, b[i], lt);
        }
        lt
    }

    fn eq_lit(&mut self, a: &[Lit], b: &[Lit]) -> Lit {
        let mut acc = self.tt();
        for i in 0..a.len() {
            let x = self.xor2(a[i], b[i]);
            acc = self.and2(acc, !x);
        }
        acc
    }

    /// Bit vector of a term, LSB first (memoized).
    pub(crate) fn blast(&mut self, t: TermId) -> Vec<Lit> {
        if let Some(bits) = self.bits.get(&t) {
            return bits.clone();
        }
        let w = self.ctx.width(t) as usize;
        let bits: Vec<Lit> = match self.ctx.node(t) {
            Node::Const { width, value } => self.const_bits(*value, *width),
            Node::Var { .. } => (0..w).map(|_| self.fresh()).collect(),
            Node::Add(a, b) => {
                let (a, b) = (self.blast(*a), self.blast(*b));
                let ff = self.ff();
                self.adder(&a, &b, ff)
            }
            Node::Sub(a, b) => {
                let (a, b) = (self.blast(*a), self.blast(*b));
                let nb: Vec<Lit> = b.iter().map(|&l| !l).collect();
                let tt = self.tt();
                self.adder(&a, &nb, tt)
            }
            Node::Mul(a, b) => {
                let (a, b) = (self.blast(*a), self.blast(*b));
                let mut acc = vec![self.ff(); w];
                for i in 0..w {
                    // acc[i..] += a[..w-i] & b[i]
                    let mut carry = self.ff();
                    for j in 0..w - i {
                        let pp = self.and2(a[j], b[i]);
                        let (s, c) = self.full_adder(acc[i + j], pp, carry);
                        acc[i + j] = s;
                        carry = c;
                    }
                }
                acc
            }
            Node::And(a, b) => {
                let (a, b) = (self.blast(*a), self.blast(*b));
                (0..w).map(|i| self.and2(a[i], b[i])).collect()
            }
            Node::Or(a, b) => {
                let (a, b) = (self.blast(*a), self.blast(*b));
                (0..w).map(|i| self.or2(a[i], b[i])).collect()
            }
            Node::Xor(a, b) => {
                let (a, b) = (self.blast(*a), self.blast(*b));
                (0..w).map(|i| self.xor2(a[i], b[i])).collect()
            }
            Node::Not(a) => self.blast(*a).iter().map(|&l| !l).collect(),
            Node::Shl(a, n) => {
                let a = self.blast(*a);
                let n = *n as usize;
                let mut out = vec![self.ff(); n];
                out.extend_from_slice(&a[..w - n]);
                out
            }
            Node::Lshr(a, n) => {
                let a = self.blast(*a);
                let n = *n as usize;
                let mut out = a[n..].to_vec();
                out.extend(std::iter::repeat_n(self.ff(), n));
                out
            }
            Node::Ashr(a, n) => {
                let a = self.blast(*a);
                let n = *n as usize;
                let msb = *a.last().expect("non-empty");
                let mut out = a[n..].to_vec();
                out.extend(std::iter::repeat_n(msb, n));
                out
            }
            Node::ZeroExt(a, extra) => {
                let a = self.blast(*a);
                let mut out = a;
                out.extend(std::iter::repeat_n(self.ff(), *extra as usize));
                out
            }
            Node::SignExt(a, extra) => {
                let a = self.blast(*a);
                let msb = *a.last().expect("non-empty");
                let mut out = a;
                out.extend(std::iter::repeat_n(msb, *extra as usize));
                out
            }
            Node::Extract(a, hi, lo) => {
                let a = self.blast(*a);
                a[*lo as usize..=*hi as usize].to_vec()
            }
            Node::Concat(hi, lo) => {
                let (hi, lo) = (self.blast(*hi), self.blast(*lo));
                let mut out = lo;
                out.extend(hi);
                out
            }
            Node::Eq(a, b) => {
                let (a, b) = (self.blast(*a), self.blast(*b));
                vec![self.eq_lit(&a, &b)]
            }
            Node::Ult(a, b) => {
                let (a, b) = (self.blast(*a), self.blast(*b));
                vec![self.ult_lit(&a, &b)]
            }
            Node::Slt(a, b) => {
                // Signed compare = unsigned compare with MSBs flipped.
                let (mut a, mut b) = (self.blast(*a), self.blast(*b));
                let la = a.len();
                a[la - 1] = !a[la - 1];
                let lb = b.len();
                b[lb - 1] = !b[lb - 1];
                vec![self.ult_lit(&a, &b)]
            }
            Node::Ite(c, t2, e) => {
                let c = self.blast(*c)[0];
                let (t2, e) = (self.blast(*t2), self.blast(*e));
                (0..w).map(|i| self.mux(c, t2[i], e[i])).collect()
            }
        };
        debug_assert_eq!(bits.len(), w);
        self.bits.insert(t, bits.clone());
        bits
    }

    /// Assert a width-1 term to be 1.
    pub(crate) fn assert_true(&mut self, t: TermId) {
        assert_eq!(self.ctx.width(t), 1, "assertions must have width 1");
        let bits = self.blast(t);
        self.sat.add_clause([bits[0]]);
    }

    /// Literals of a term if it has been blasted.
    pub(crate) fn bits_of(&self, t: TermId) -> Option<&[Lit]> {
        self.bits.get(&t).map(|v| v.as_slice())
    }
}
