//! Hash-consed bit-vector terms with constant folding.

use std::collections::HashMap;

/// A handle to a term in a [`Context`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TermId(pub(crate) u32);

/// Internal term node. Booleans are width-1 bit-vectors.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) enum Node {
    Const { width: u32, value: u64 },
    Var { width: u32, name: String },
    Add(TermId, TermId),
    Sub(TermId, TermId),
    Mul(TermId, TermId),
    And(TermId, TermId),
    Or(TermId, TermId),
    Xor(TermId, TermId),
    Not(TermId),
    /// Shift left by a constant amount.
    Shl(TermId, u32),
    /// Logical shift right by a constant amount.
    Lshr(TermId, u32),
    /// Arithmetic shift right by a constant amount.
    Ashr(TermId, u32),
    ZeroExt(TermId, u32),
    SignExt(TermId, u32),
    /// Bits `hi..=lo` (inclusive), LSB-indexed.
    Extract(TermId, u32, u32),
    /// `hi ++ lo` — `hi` occupies the most-significant bits.
    Concat(TermId, TermId),
    Eq(TermId, TermId),
    Ult(TermId, TermId),
    Slt(TermId, TermId),
    /// `cond ? then : else`; `cond` has width 1.
    Ite(TermId, TermId, TermId),
}

fn mask(width: u32) -> u64 {
    if width == 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

fn sext_val(v: u64, width: u32) -> i64 {
    let shift = 64 - width;
    ((v << shift) as i64) >> shift
}

/// A term-building context. Terms are immutable, hash-consed and
/// constant-folded at construction.
///
/// # Panics
///
/// All constructors panic on width mismatches or out-of-range widths — a
/// malformed query is a bug in the encoder, not a runtime condition.
#[derive(Debug, Default)]
pub struct Context {
    pub(crate) nodes: Vec<Node>,
    widths: Vec<u32>,
    dedup: HashMap<Node, TermId>,
}

impl Context {
    /// An empty context.
    pub fn new() -> Context {
        Context::default()
    }

    /// Number of distinct terms created.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether no terms have been created.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The width in bits of a term.
    pub fn width(&self, t: TermId) -> u32 {
        self.widths[t.0 as usize]
    }

    pub(crate) fn node(&self, t: TermId) -> &Node {
        &self.nodes[t.0 as usize]
    }

    fn intern(&mut self, node: Node, width: u32) -> TermId {
        assert!((1..=64).contains(&width), "width {width} out of range");
        if let Some(&id) = self.dedup.get(&node) {
            return id;
        }
        let id = TermId(self.nodes.len() as u32);
        self.nodes.push(node.clone());
        self.widths.push(width);
        self.dedup.insert(node, id);
        id
    }

    fn const_of(&self, t: TermId) -> Option<u64> {
        match self.node(t) {
            Node::Const { value, .. } => Some(*value),
            _ => None,
        }
    }

    /// A constant of the given width (value is masked).
    pub fn constant(&mut self, value: u64, width: u32) -> TermId {
        self.intern(Node::Const { width, value: value & mask(width) }, width)
    }

    /// A signed constant of the given width (two's-complement wrapped).
    pub fn constant_signed(&mut self, value: i64, width: u32) -> TermId {
        self.constant(value as u64, width)
    }

    /// The width-1 constant 1.
    pub fn tt(&mut self) -> TermId {
        self.constant(1, 1)
    }

    /// The width-1 constant 0.
    pub fn ff(&mut self) -> TermId {
        self.constant(0, 1)
    }

    /// A free variable. Variables are identified by name: asking twice for
    /// the same `(name, width)` returns the same term.
    pub fn var(&mut self, name: &str, width: u32) -> TermId {
        self.intern(Node::Var { width, name: name.to_owned() }, width)
    }

    fn bin_width(&self, a: TermId, b: TermId, what: &str) -> u32 {
        let (wa, wb) = (self.width(a), self.width(b));
        assert_eq!(wa, wb, "{what}: operand widths {wa} and {wb} differ");
        wa
    }

    /// Wrapping addition.
    pub fn add(&mut self, a: TermId, b: TermId) -> TermId {
        let w = self.bin_width(a, b, "add");
        if let (Some(x), Some(y)) = (self.const_of(a), self.const_of(b)) {
            return self.constant(x.wrapping_add(y), w);
        }
        self.intern(Node::Add(a, b), w)
    }

    /// Wrapping subtraction.
    pub fn sub(&mut self, a: TermId, b: TermId) -> TermId {
        let w = self.bin_width(a, b, "sub");
        if let (Some(x), Some(y)) = (self.const_of(a), self.const_of(b)) {
            return self.constant(x.wrapping_sub(y), w);
        }
        self.intern(Node::Sub(a, b), w)
    }

    /// Wrapping multiplication.
    pub fn mul(&mut self, a: TermId, b: TermId) -> TermId {
        let w = self.bin_width(a, b, "mul");
        if let (Some(x), Some(y)) = (self.const_of(a), self.const_of(b)) {
            return self.constant(x.wrapping_mul(y), w);
        }
        self.intern(Node::Mul(a, b), w)
    }

    /// Bitwise and.
    pub fn and(&mut self, a: TermId, b: TermId) -> TermId {
        let w = self.bin_width(a, b, "and");
        if let (Some(x), Some(y)) = (self.const_of(a), self.const_of(b)) {
            return self.constant(x & y, w);
        }
        self.intern(Node::And(a, b), w)
    }

    /// Bitwise or.
    pub fn or(&mut self, a: TermId, b: TermId) -> TermId {
        let w = self.bin_width(a, b, "or");
        if let (Some(x), Some(y)) = (self.const_of(a), self.const_of(b)) {
            return self.constant(x | y, w);
        }
        self.intern(Node::Or(a, b), w)
    }

    /// Bitwise xor.
    pub fn xor(&mut self, a: TermId, b: TermId) -> TermId {
        let w = self.bin_width(a, b, "xor");
        if let (Some(x), Some(y)) = (self.const_of(a), self.const_of(b)) {
            return self.constant(x ^ y, w);
        }
        self.intern(Node::Xor(a, b), w)
    }

    /// Bitwise not.
    pub fn not(&mut self, a: TermId) -> TermId {
        let w = self.width(a);
        if let Some(x) = self.const_of(a) {
            return self.constant(!x, w);
        }
        self.intern(Node::Not(a), w)
    }

    /// Shift left by a constant; `n` must be `< width`.
    pub fn shl(&mut self, a: TermId, n: u32) -> TermId {
        let w = self.width(a);
        assert!(n < w, "shift amount {n} out of range for width {w}");
        if n == 0 {
            return a;
        }
        if let Some(x) = self.const_of(a) {
            return self.constant(x << n, w);
        }
        self.intern(Node::Shl(a, n), w)
    }

    /// Logical shift right by a constant; `n` must be `< width`.
    pub fn lshr(&mut self, a: TermId, n: u32) -> TermId {
        let w = self.width(a);
        assert!(n < w, "shift amount {n} out of range for width {w}");
        if n == 0 {
            return a;
        }
        if let Some(x) = self.const_of(a) {
            return self.constant(x >> n, w);
        }
        self.intern(Node::Lshr(a, n), w)
    }

    /// Arithmetic shift right by a constant; `n` must be `< width`.
    pub fn ashr(&mut self, a: TermId, n: u32) -> TermId {
        let w = self.width(a);
        assert!(n < w, "shift amount {n} out of range for width {w}");
        if n == 0 {
            return a;
        }
        if let Some(x) = self.const_of(a) {
            return self.constant((sext_val(x, w) >> n) as u64, w);
        }
        self.intern(Node::Ashr(a, n), w)
    }

    /// Zero-extend by `extra` bits.
    pub fn zero_ext(&mut self, a: TermId, extra: u32) -> TermId {
        if extra == 0 {
            return a;
        }
        let w = self.width(a) + extra;
        if let Some(x) = self.const_of(a) {
            return self.constant(x, w);
        }
        self.intern(Node::ZeroExt(a, extra), w)
    }

    /// Sign-extend by `extra` bits.
    pub fn sign_ext(&mut self, a: TermId, extra: u32) -> TermId {
        if extra == 0 {
            return a;
        }
        let aw = self.width(a);
        let w = aw + extra;
        if let Some(x) = self.const_of(a) {
            return self.constant(sext_val(x, aw) as u64, w);
        }
        self.intern(Node::SignExt(a, extra), w)
    }

    /// Bits `hi..=lo` (LSB-indexed, inclusive).
    pub fn extract(&mut self, a: TermId, hi: u32, lo: u32) -> TermId {
        let aw = self.width(a);
        assert!(lo <= hi && hi < aw, "extract [{hi}:{lo}] out of range for width {aw}");
        if lo == 0 && hi == aw - 1 {
            return a;
        }
        let w = hi - lo + 1;
        if let Some(x) = self.const_of(a) {
            return self.constant(x >> lo, w);
        }
        self.intern(Node::Extract(a, hi, lo), w)
    }

    /// Concatenation `hi ++ lo`; `hi` becomes the most-significant bits.
    pub fn concat(&mut self, hi: TermId, lo: TermId) -> TermId {
        let w = self.width(hi) + self.width(lo);
        if let (Some(h), Some(l)) = (self.const_of(hi), self.const_of(lo)) {
            return self.constant((h << self.width(lo)) | l, w);
        }
        self.intern(Node::Concat(hi, lo), w)
    }

    /// Equality (width-1 result).
    pub fn eq(&mut self, a: TermId, b: TermId) -> TermId {
        self.bin_width(a, b, "eq");
        if a == b {
            return self.tt();
        }
        if let (Some(x), Some(y)) = (self.const_of(a), self.const_of(b)) {
            return self.constant(u64::from(x == y), 1);
        }
        self.intern(Node::Eq(a, b), 1)
    }

    /// Disequality (width-1 result).
    pub fn ne(&mut self, a: TermId, b: TermId) -> TermId {
        let e = self.eq(a, b);
        self.not(e)
    }

    /// Unsigned less-than (width-1 result).
    pub fn ult(&mut self, a: TermId, b: TermId) -> TermId {
        self.bin_width(a, b, "ult");
        if let (Some(x), Some(y)) = (self.const_of(a), self.const_of(b)) {
            return self.constant(u64::from(x < y), 1);
        }
        self.intern(Node::Ult(a, b), 1)
    }

    /// Signed less-than (width-1 result).
    pub fn slt(&mut self, a: TermId, b: TermId) -> TermId {
        let w = self.bin_width(a, b, "slt");
        if let (Some(x), Some(y)) = (self.const_of(a), self.const_of(b)) {
            return self.constant(u64::from(sext_val(x, w) < sext_val(y, w)), 1);
        }
        self.intern(Node::Slt(a, b), 1)
    }

    /// `cond ? then : else`; `cond` must have width 1.
    pub fn ite(&mut self, cond: TermId, then: TermId, els: TermId) -> TermId {
        assert_eq!(self.width(cond), 1, "ite condition must have width 1");
        let w = self.bin_width(then, els, "ite");
        if let Some(c) = self.const_of(cond) {
            return if c == 1 { then } else { els };
        }
        if then == els {
            return then;
        }
        self.intern(Node::Ite(cond, then, els), w)
    }

    // ---- Derived constructors -------------------------------------------

    /// Signed minimum.
    pub fn smin(&mut self, a: TermId, b: TermId) -> TermId {
        let c = self.slt(a, b);
        self.ite(c, a, b)
    }

    /// Signed maximum.
    pub fn smax(&mut self, a: TermId, b: TermId) -> TermId {
        let c = self.slt(a, b);
        self.ite(c, b, a)
    }

    /// Unsigned minimum.
    pub fn umin(&mut self, a: TermId, b: TermId) -> TermId {
        let c = self.ult(a, b);
        self.ite(c, a, b)
    }

    /// Unsigned maximum.
    pub fn umax(&mut self, a: TermId, b: TermId) -> TermId {
        let c = self.ult(a, b);
        self.ite(c, b, a)
    }

    /// Signed clamp of `a` to `[lo, hi]` given as signed i64 constants.
    pub fn sclamp(&mut self, a: TermId, lo: i64, hi: i64) -> TermId {
        let w = self.width(a);
        let lo_t = self.constant_signed(lo, w);
        let hi_t = self.constant_signed(hi, w);
        let m = self.smax(a, lo_t);
        self.smin(m, hi_t)
    }

    /// Evaluate a term under an assignment of variable names to values
    /// (used to validate counterexamples and for differential testing).
    ///
    /// # Panics
    ///
    /// Panics if a variable is missing from `env`.
    pub fn eval(&self, t: TermId, env: &HashMap<String, u64>) -> u64 {
        let w = self.width(t);
        let v = match self.node(t) {
            Node::Const { value, .. } => *value,
            Node::Var { name, .. } => {
                *env.get(name).unwrap_or_else(|| panic!("unbound variable `{name}`"))
            }
            Node::Add(a, b) => self.eval(*a, env).wrapping_add(self.eval(*b, env)),
            Node::Sub(a, b) => self.eval(*a, env).wrapping_sub(self.eval(*b, env)),
            Node::Mul(a, b) => self.eval(*a, env).wrapping_mul(self.eval(*b, env)),
            Node::And(a, b) => self.eval(*a, env) & self.eval(*b, env),
            Node::Or(a, b) => self.eval(*a, env) | self.eval(*b, env),
            Node::Xor(a, b) => self.eval(*a, env) ^ self.eval(*b, env),
            Node::Not(a) => !self.eval(*a, env),
            Node::Shl(a, n) => self.eval(*a, env) << n,
            Node::Lshr(a, n) => (self.eval(*a, env) & mask(self.width(*a))) >> n,
            Node::Ashr(a, n) => (sext_val(self.eval(*a, env), self.width(*a)) >> n) as u64,
            Node::ZeroExt(a, _) => self.eval(*a, env) & mask(self.width(*a)),
            Node::SignExt(a, _) => sext_val(self.eval(*a, env), self.width(*a)) as u64,
            Node::Extract(a, _, lo) => self.eval(*a, env) >> lo,
            Node::Concat(hi, lo) => {
                let lw = self.width(*lo);
                ((self.eval(*hi, env)) << lw) | (self.eval(*lo, env) & mask(lw))
            }
            Node::Eq(a, b) => {
                let w = self.width(*a);
                u64::from(self.eval(*a, env) & mask(w) == self.eval(*b, env) & mask(w))
            }
            Node::Ult(a, b) => {
                let w = self.width(*a);
                u64::from((self.eval(*a, env) & mask(w)) < (self.eval(*b, env) & mask(w)))
            }
            Node::Slt(a, b) => {
                let w = self.width(*a);
                u64::from(sext_val(self.eval(*a, env), w) < sext_val(self.eval(*b, env), w))
            }
            Node::Ite(c, a, b) => {
                if self.eval(*c, env) & 1 == 1 {
                    self.eval(*a, env)
                } else {
                    self.eval(*b, env)
                }
            }
        };
        v & mask(w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_consing_dedupes() {
        let mut ctx = Context::new();
        let x = ctx.var("x", 8);
        let y = ctx.var("y", 8);
        let a = ctx.add(x, y);
        let b = ctx.add(x, y);
        assert_eq!(a, b);
        assert_ne!(a, ctx.add(y, x));
    }

    #[test]
    fn constant_folding() {
        let mut ctx = Context::new();
        let a = ctx.constant(250, 8);
        let b = ctx.constant(10, 8);
        let sum = ctx.add(a, b);
        assert_eq!(ctx.node(sum), &Node::Const { width: 8, value: 4 });
        let prod = ctx.mul(a, b);
        assert_eq!(ctx.node(prod), &Node::Const { width: 8, value: (250u64 * 10) & 0xff });
    }

    #[test]
    fn signed_folding() {
        let mut ctx = Context::new();
        let a = ctx.constant_signed(-1, 8);
        let b = ctx.constant_signed(-2, 8);
        let lt = ctx.slt(b, a);
        assert_eq!(ctx.node(lt), &Node::Const { width: 1, value: 1 });
        let ext = ctx.sign_ext(a, 8);
        assert_eq!(ctx.node(ext), &Node::Const { width: 16, value: 0xffff });
        let sh = ctx.ashr(b, 1);
        assert_eq!(ctx.node(sh), &Node::Const { width: 8, value: 0xff });
    }

    #[test]
    fn widths_propagate() {
        let mut ctx = Context::new();
        let x = ctx.var("x", 8);
        let z = ctx.zero_ext(x, 8);
        assert_eq!(ctx.width(z), 16);
        let hi = ctx.extract(x, 7, 4);
        assert_eq!(ctx.width(hi), 4);
        let cc = ctx.concat(x, x);
        assert_eq!(ctx.width(cc), 16);
        let e = ctx.eq(x, x);
        assert_eq!(ctx.width(e), 1);
    }

    #[test]
    #[should_panic(expected = "widths 8 and 16 differ")]
    fn mismatched_widths_panic() {
        let mut ctx = Context::new();
        let x = ctx.var("x", 8);
        let y = ctx.var("y", 16);
        let _ = ctx.add(x, y);
    }

    #[test]
    fn eval_matches_semantics() {
        let mut ctx = Context::new();
        let x = ctx.var("x", 8);
        let y = ctx.var("y", 8);
        let t1 = ctx.mul(x, y);
        let t2 = ctx.sub(t1, x);
        let env: HashMap<String, u64> = [("x".into(), 7u64), ("y".into(), 40u64)].into();
        assert_eq!(ctx.eval(t2, &env), (7u64 * 40 - 7) & 0xff);
        let c = ctx.slt(x, y);
        let m = ctx.ite(c, x, y);
        assert_eq!(ctx.eval(m, &env), 7);
    }

    #[test]
    fn derived_min_max_clamp() {
        let mut ctx = Context::new();
        let a = ctx.constant_signed(-5, 8);
        let b = ctx.constant(3, 8);
        let m = ctx.smin(a, b);
        assert_eq!(ctx.node(m), &Node::Const { width: 8, value: 0xfb });
        let clamped = ctx.sclamp(a, 0, 100);
        assert_eq!(ctx.node(clamped), &Node::Const { width: 8, value: 0 });
    }
}
