//! The bit-vector solver façade.

use std::collections::HashMap;

use sat::SatResult;

use crate::blast::Blaster;
use crate::term::{Context, Node, TermId};

/// Result of a [`BvSolver::check`] call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SmtResult {
    /// Satisfiable; the model assigns every variable of the context.
    Sat(BvModel),
    /// Unsatisfiable.
    Unsat,
}

impl SmtResult {
    /// Whether the result is [`SmtResult::Sat`].
    pub fn is_sat(&self) -> bool {
        matches!(self, SmtResult::Sat(_))
    }
}

/// A satisfying assignment of bit-vector variables, keyed by name.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BvModel {
    values: HashMap<String, u64>,
}

impl BvModel {
    /// The value of a variable, if it occurs in the model. Variables that
    /// never appeared in an assertion are unconstrained and reported as 0.
    pub fn get(&self, name: &str) -> Option<u64> {
        self.values.get(name).copied()
    }

    /// The full assignment, for handing to [`Context::eval`].
    pub fn as_env(&self) -> &HashMap<String, u64> {
        &self.values
    }
}

/// A one-shot solver over terms of a [`Context`].
///
/// Build all terms first, then create the solver, assert width-1 terms and
/// call [`BvSolver::check`]. See the crate docs for an example.
pub struct BvSolver<'a> {
    ctx: &'a Context,
    blaster: Blaster<'a>,
}

impl<'a> BvSolver<'a> {
    /// A solver over the given context.
    pub fn new(ctx: &'a Context) -> BvSolver<'a> {
        BvSolver { ctx, blaster: Blaster::new(ctx) }
    }

    /// Assert that a width-1 term is true.
    ///
    /// # Panics
    ///
    /// Panics if the term does not have width 1.
    pub fn assert_term(&mut self, t: TermId) {
        self.blaster.assert_true(t);
    }

    /// Decide the conjunction of all assertions.
    pub fn check(&mut self) -> SmtResult {
        self.check_limited(u64::MAX).expect("unlimited check always decides")
    }

    /// Like [`BvSolver::check`], but give up after `max_conflicts` CDCL
    /// conflicts and return `None` ("unknown").
    pub fn check_limited(&mut self, max_conflicts: u64) -> Option<SmtResult> {
        Some(match self.blaster.sat.solve_limited(max_conflicts)? {
            SatResult::Unsat => SmtResult::Unsat,
            SatResult::Sat(model) => {
                let mut values = HashMap::new();
                for i in 0..self.ctx.len() {
                    let t = TermId(i as u32);
                    if let Node::Var { name, width } = self.ctx.node(t) {
                        let v = match self.blaster.bits_of(t) {
                            Some(bits) => bits
                                .iter()
                                .enumerate()
                                .fold(0u64, |acc, (i, &l)| {
                                    acc | (u64::from(model.lit_value(l)) << i)
                                }),
                            // Variable never blasted: unconstrained.
                            None => 0,
                        };
                        let _ = width;
                        values.insert(name.clone(), v);
                    }
                }
                SmtResult::Sat(BvModel { values })
            }
        })
    }
}

/// Check whether two terms are equivalent for all variable assignments.
///
/// Returns `Ok(())` when equivalent, or `Err(model)` with a distinguishing
/// assignment otherwise. This is the workhorse query of Rake's lifting and
/// lowering verification.
///
/// # Panics
///
/// Panics if the terms have different widths.
pub fn check_equivalent(ctx: &mut Context, a: TermId, b: TermId) -> Result<(), BvModel> {
    let ne = ctx.ne(a, b);
    let mut solver = BvSolver::new(ctx);
    solver.assert_term(ne);
    match solver.check() {
        SmtResult::Unsat => Ok(()),
        SmtResult::Sat(model) => Err(model),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> Context {
        Context::new()
    }

    #[test]
    fn sat_finds_model() {
        let mut c = ctx();
        let x = c.var("x", 8);
        let k = c.constant(42, 8);
        let eq = c.eq(x, k);
        let mut s = BvSolver::new(&c);
        s.assert_term(eq);
        match s.check() {
            SmtResult::Sat(m) => assert_eq!(m.get("x"), Some(42)),
            SmtResult::Unsat => panic!("x = 42 should be sat"),
        }
    }

    #[test]
    fn unsat_contradiction() {
        let mut c = ctx();
        let x = c.var("x", 8);
        let k1 = c.constant(1, 8);
        let k2 = c.constant(2, 8);
        let e1 = c.eq(x, k1);
        let e2 = c.eq(x, k2);
        let mut s = BvSolver::new(&c);
        s.assert_term(e1);
        s.assert_term(e2);
        assert_eq!(s.check(), SmtResult::Unsat);
    }

    #[test]
    fn add_commutes() {
        let mut c = ctx();
        let x = c.var("x", 8);
        let y = c.var("y", 8);
        let l = c.add(x, y);
        let r = c.add(y, x);
        assert!(check_equivalent(&mut c, l, r).is_ok());
    }

    #[test]
    fn mul_by_two_is_shl() {
        let mut c = ctx();
        let x = c.var("x", 16);
        let two = c.constant(2, 16);
        let l = c.mul(x, two);
        let r = c.shl(x, 1);
        assert!(check_equivalent(&mut c, l, r).is_ok());
    }

    #[test]
    fn sub_self_is_zero() {
        let mut c = ctx();
        let x = c.var("x", 12);
        let l = c.sub(x, x);
        let r = c.constant(0, 12);
        assert!(check_equivalent(&mut c, l, r).is_ok());
    }

    #[test]
    fn counterexample_is_genuine() {
        // x + 1 != x - 1: the counterexample must actually distinguish them.
        let mut c = ctx();
        let x = c.var("x", 8);
        let one = c.constant(1, 8);
        let l = c.add(x, one);
        let r = c.sub(x, one);
        let m = check_equivalent(&mut c, l, r).unwrap_err();
        let lv = c.eval(l, m.as_env());
        let rv = c.eval(r, m.as_env());
        assert_ne!(lv, rv);
    }

    #[test]
    fn signed_compare_differs_from_unsigned() {
        let mut c = ctx();
        let x = c.var("x", 8);
        let zero = c.constant(0, 8);
        let s = c.slt(x, zero); // x < 0 signed: true for 128..=255
        let u = c.ult(x, zero); // never true
        let m = check_equivalent(&mut c, s, u).unwrap_err();
        let xv = m.get("x").expect("x must be in the model");
        assert!(xv >= 128, "counterexample must have sign bit set, got {xv}");
    }

    #[test]
    fn saturating_add_identity_via_clamp() {
        // For u8 zero-extended to 16 bits, x + y <= 510 < 2^16, so
        // clamping to [0, 255] equals min(x + y, 255).
        let mut c = ctx();
        let x8 = c.var("x", 8);
        let y8 = c.var("y", 8);
        let x = c.zero_ext(x8, 8);
        let y = c.zero_ext(y8, 8);
        let sum = c.add(x, y);
        let k255 = c.constant(255, 16);
        let l = c.sclamp(sum, 0, 255);
        let r = c.umin(sum, k255);
        assert!(check_equivalent(&mut c, l, r).is_ok());
    }

    #[test]
    fn rounding_shift_fusion_requires_range() {
        // The gaussian3x3 soundness condition (§7.1.2): for arbitrary i16 x,
        // wrap16(x + 8) >> 4 as u8  !=  sat_u8((x + 8) >> 4).
        let mut c = ctx();
        let x = c.var("x", 16);
        let eight = c.constant(8, 16);
        let sum = c.add(x, eight);
        let shifted = c.ashr(sum, 4);
        let truncated = c.extract(shifted, 7, 0);
        let saturated = {
            let s = c.sclamp(shifted, 0, 255);
            c.extract(s, 7, 0)
        };
        // Unconstrained: distinguishable.
        assert!(check_equivalent(&mut c, truncated, saturated).is_err());

        // Constrained to the analyzed range [0, 1020]: equivalent.
        let mut c = ctx();
        let x = c.var("x", 16);
        let hi = c.constant(1020, 16);
        let in_range = c.ult(x, hi);
        let eight = c.constant(8, 16);
        let sum = c.add(x, eight);
        let shifted = c.ashr(sum, 4);
        let truncated = c.extract(shifted, 7, 0);
        let saturated = {
            let s = c.sclamp(shifted, 0, 255);
            c.extract(s, 7, 0)
        };
        let ne = c.ne(truncated, saturated);
        let both = c.and(in_range, ne);
        let mut s = BvSolver::new(&c);
        s.assert_term(both);
        assert_eq!(s.check(), SmtResult::Unsat);
    }

    /// The blasted semantics agree with the interpreter on random
    /// expressions: solve `out == expr(x, y)` with x/y pinned, and the
    /// model value of `out` must equal the evaluated value.
    #[test]
    fn prop_blast_matches_eval() {
        let mut rng = lanes::rng::Rng::seed_from_u64(0xb1a5);
        for _ in 0..16 {
            let xv = rng.next_u64() % 256;
            let yv = rng.next_u64() % 256;
            let op = rng.gen_range_usize(0..=7);
            let mut c = ctx();
            let x = c.var("x", 8);
            let y = c.var("y", 8);
            let expr = match op {
                0 => c.add(x, y),
                1 => c.sub(x, y),
                2 => c.mul(x, y),
                3 => c.smin(x, y),
                4 => c.umax(x, y),
                5 => { let s = c.ashr(x, 2); c.xor(s, y) }
                6 => { let z = c.zero_ext(x, 8); let w = c.sign_ext(y, 8); let s = c.add(z, w); c.extract(s, 7, 0) }
                _ => { let lt = c.ult(x, y); c.ite(lt, x, y) }
            };
            let out = c.var("out", 8);
            let kx = c.constant(xv, 8);
            let ky = c.constant(yv, 8);
            let ex = c.eq(x, kx);
            let ey = c.eq(y, ky);
            let eo = c.eq(out, expr);
            let mut s = BvSolver::new(&c);
            s.assert_term(ex);
            s.assert_term(ey);
            s.assert_term(eo);
            match s.check() {
                SmtResult::Sat(m) => {
                    let env: std::collections::HashMap<String, u64> =
                        [("x".to_owned(), xv), ("y".to_owned(), yv)].into();
                    assert_eq!(m.get("out").unwrap(), c.eval(expr, &env) & 0xff);
                }
                SmtResult::Unsat => panic!("pinned query must be sat"),
            }
        }
    }
}
