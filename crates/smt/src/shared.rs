//! A shareable, long-lived solver handle over one hash-consed [`Context`].
//!
//! Every equivalence proof Rake issues used to build a fresh [`Context`],
//! re-interning the same load/constant/arithmetic terms thousands of times
//! per compilation. [`SharedSolver`] keeps a single context alive behind a
//! mutex: queries build their terms under the lock (hash-consing reuses
//! any structurally-identical term from earlier queries) and then solve
//! with a throwaway [`BvSolver`].
//!
//! Sharing the context cannot change verdicts: the CNF a query sees is
//! produced by a fresh `Blaster` that allocates SAT variables lazily, in
//! traversal order of the *asserted term*, so it depends only on that
//! term's structure — never on how many unrelated terms the context
//! already holds or on the numeric values of their [`TermId`]s. DESIGN.md
//! ("Performance") spells out the full determinism argument.

use std::sync::Mutex;

use crate::solver::{BvSolver, SmtResult};
use crate::term::{Context, TermId};

/// A mutex-guarded [`Context`] reused across many queries.
///
/// Cheap to share behind an `Arc`; each query holds the lock only for its
/// own term construction and solve.
#[derive(Debug, Default)]
pub struct SharedSolver {
    ctx: Mutex<Context>,
}

impl SharedSolver {
    /// A fresh shared solver with an empty context.
    pub fn new() -> SharedSolver {
        SharedSolver::default()
    }

    /// Run `f` with exclusive access to the shared context. Use this for
    /// queries that need more than a single asserted term (e.g. building a
    /// [`BvSolver`] with several assertions).
    ///
    /// # Panics
    ///
    /// Panics if the mutex was poisoned by a panicking query.
    pub fn run<R>(&self, f: impl FnOnce(&mut Context) -> R) -> R {
        let mut ctx = self.ctx.lock().expect("shared solver context poisoned");
        f(&mut ctx)
    }

    /// Build a width-1 term under the shared context and decide whether it
    /// is unsatisfiable within `max_conflicts` CDCL conflicts.
    ///
    /// Returns `Some(true)` when unsatisfiable, `Some(false)` when a model
    /// exists, `None` when the conflict budget ran out ("unknown").
    pub fn prove_unsat(
        &self,
        build: impl FnOnce(&mut Context) -> TermId,
        max_conflicts: u64,
    ) -> Option<bool> {
        let mut sp = trace::span("smt.prove_unsat", "smt");
        self.run(|ctx| {
            let before = ctx.len();
            let t = build(ctx);
            let mut solver = BvSolver::new(ctx);
            solver.assert_term(t);
            let verdict = solver.check_limited(max_conflicts).map(|r| r == SmtResult::Unsat);
            if sp.is_active() {
                sp.arg("terms", ctx.len());
                sp.arg("new_terms", ctx.len() - before);
                sp.arg(
                    "outcome",
                    match verdict {
                        Some(true) => "unsat",
                        Some(false) => "sat",
                        None => "unknown",
                    },
                );
            }
            verdict
        })
    }

    /// Number of terms interned in the shared context — the observable
    /// measure of cross-query reuse (a repeated query adds zero terms).
    pub fn terms(&self) -> usize {
        self.run(|ctx| ctx.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn commutes(s: &SharedSolver) -> Option<bool> {
        s.prove_unsat(
            |ctx| {
                let x = ctx.var("x", 8);
                let y = ctx.var("y", 8);
                let l = ctx.add(x, y);
                let r = ctx.add(y, x);
                ctx.ne(l, r)
            },
            u64::MAX,
        )
    }

    #[test]
    fn decides_across_queries() {
        let s = SharedSolver::new();
        assert_eq!(commutes(&s), Some(true));
        // A satisfiable query on the same context.
        let sat = s.prove_unsat(
            |ctx| {
                let x = ctx.var("x", 8);
                let k = ctx.constant(3, 8);
                ctx.eq(x, k)
            },
            u64::MAX,
        );
        assert_eq!(sat, Some(false));
    }

    #[test]
    fn repeated_queries_intern_no_new_terms() {
        let s = SharedSolver::new();
        assert_eq!(commutes(&s), Some(true));
        let after_first = s.terms();
        for _ in 0..5 {
            assert_eq!(commutes(&s), Some(true));
        }
        assert_eq!(s.terms(), after_first, "hash-consing must absorb repeats");
    }

    #[test]
    fn verdicts_match_fresh_context() {
        // The same query answered on a polluted shared context and on a
        // fresh private context must agree.
        let s = SharedSolver::new();
        for seed in 0..20u64 {
            let _ = s.prove_unsat(
                |ctx| {
                    let x = ctx.var(&format!("p{seed}"), 16);
                    let k = ctx.constant(seed, 16);
                    let sum = ctx.add(x, k);
                    ctx.eq(sum, x)
                },
                u64::MAX,
            );
        }
        let build = |ctx: &mut Context| {
            let x = ctx.var("x", 16);
            let two = ctx.constant(2, 16);
            let l = ctx.mul(x, two);
            let r = ctx.shl(x, 1);
            ctx.ne(l, r)
        };
        let shared = s.prove_unsat(build, u64::MAX);
        let fresh = SharedSolver::new().prove_unsat(build, u64::MAX);
        assert_eq!(shared, fresh);
        assert_eq!(shared, Some(true));
    }
}
