//! Deterministic fault injection for the driver (feature `chaos`).
//!
//! A [`FaultPlan`] is a *seeded, deterministic* schedule of faults: given
//! the same seed and the same batch, the same jobs fail in the same ways
//! on every run, so chaos findings reproduce exactly. The plan can inject
//!
//! * worker **panics** — both `&str` payloads and non-string payloads
//!   (`panic_any(42)`), exercising the panic-capture path end to end;
//! * **forced deadline exhaustion** — the compile call reports
//!   `DeadlineExceeded` immediately, as a starved solver would; the fault
//!   is *sticky* per (job, tier), so retry-with-backoff exhausts its
//!   attempts and the degradation ladder demonstrably moves down a rung;
//! * artificial **latency** before the real compile runs;
//! * persistent **cache-file corruption** ([`corrupt_cache_file`]) —
//!   truncated tail, garbage bytes, or a version bump — used by the chaos
//!   harness between runs to prove the cache self-heals.
//!
//! Nothing in this module runs unless the driver was built with the
//! `chaos` feature *and* given a plan via `Driver::with_chaos`; release
//! binaries without the feature compile the hooks out entirely.

use std::path::Path;
use std::time::Duration;

use crate::tier::Tier;

/// One injected fault, decided per (job key, tier).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// The worker panics with a `&str` payload.
    PanicStr,
    /// The worker panics with a non-string payload (`panic_any(42)`),
    /// exercising the typed-placeholder capture path.
    PanicNonStr,
    /// The compile call reports `DeadlineExceeded` immediately (a starved
    /// solver / exhausted budget). Sticky across retries of the same
    /// (job, tier), so the ladder degrades.
    ForcedDeadline,
    /// The worker sleeps this long before compiling for real.
    Latency(Duration),
    /// The worker process calls `std::process::abort()` — no unwind, no
    /// `catch_unwind` rescue. Only survivable under process isolation.
    Abort,
    /// The worker allocates until the per-worker RSS limit (or the kernel
    /// OOM killer) takes it down. Only survivable under process isolation.
    Oom,
}

/// Execute an injected fault that kills the *process* (not just the
/// unwinding thread). [`Fault::Abort`] aborts outright; [`Fault::Oom`]
/// grows touched heap memory until something (the supervisor's RSS limit,
/// the kernel) kills the process — bounded at 8 GiB so a misconfigured
/// run still terminates via abort rather than swapping forever.
pub fn execute_lethal(fault: Fault) {
    match fault {
        Fault::Abort => std::process::abort(),
        Fault::Oom => {
            let mut hog: Vec<Vec<u8>> = Vec::new();
            for _ in 0..(8 * 1024) {
                // 1 MiB chunks, touched so the pages are actually resident.
                let mut chunk = vec![0u8; 1024 * 1024];
                for page in chunk.chunks_mut(4096) {
                    page[0] = 1;
                }
                hog.push(chunk);
                std::thread::sleep(Duration::from_micros(200));
            }
            std::process::abort();
        }
        _ => {}
    }
}

/// How to corrupt a cache file on disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheCorruption {
    /// Drop the final bytes, as a crash mid-write would (torn tail).
    TruncatedTail,
    /// Overwrite a span in the middle with garbage bytes.
    GarbageBytes,
    /// Rewrite the schema version to an unsupported number.
    VersionMismatch,
}

/// A seeded, deterministic fault schedule.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// The schedule seed: same seed, same batch → same faults.
    pub seed: u64,
    /// Probability a (job, tier) is handed a [`Fault::ForcedDeadline`].
    pub deadline_rate: f64,
    /// Probability a (job, tier) panics (split evenly between string and
    /// non-string payloads).
    pub panic_rate: f64,
    /// Probability a (job, tier) is delayed before compiling.
    pub latency_rate: f64,
    /// Upper bound on the injected delay.
    pub max_latency: Duration,
    /// Probability a (job, tier) aborts the worker process outright.
    /// Zero by default: only meaningful under process isolation.
    pub abort_rate: f64,
    /// Probability a (job, tier) allocates until killed. Zero by default:
    /// only meaningful under process isolation.
    pub oom_rate: f64,
}

impl FaultPlan {
    /// The default schedule for a seed: 20% forced deadlines, 15% panics,
    /// 15% latency injections of up to 3 ms.
    pub fn seeded(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            deadline_rate: 0.20,
            panic_rate: 0.15,
            latency_rate: 0.15,
            max_latency: Duration::from_millis(3),
            abort_rate: 0.0,
            oom_rate: 0.0,
        }
    }

    /// The fault (if any) scheduled for this job at this tier. Purely a
    /// function of `(seed, key, tier)` — retries of the same tier see the
    /// same answer, which is what makes forced deadlines exhaust the
    /// retry budget instead of flaking away.
    pub fn fault_for(&self, key: &str, tier: Tier) -> Option<Fault> {
        let h = mix(self.seed ^ fnv1a(key.as_bytes()) ^ fnv1a(tier.name().as_bytes()));
        let r = unit(h);
        if r < self.deadline_rate {
            return Some(Fault::ForcedDeadline);
        }
        if r < self.deadline_rate + self.panic_rate {
            return Some(if h & (1 << 60) == 0 { Fault::PanicStr } else { Fault::PanicNonStr });
        }
        if r < self.deadline_rate + self.panic_rate + self.latency_rate {
            let micros = 1 + mix(h) % self.max_latency.as_micros().max(2) as u64;
            return Some(Fault::Latency(Duration::from_micros(micros)));
        }
        let lethal_floor = self.deadline_rate + self.panic_rate + self.latency_rate;
        if r < lethal_floor + self.abort_rate {
            return Some(Fault::Abort);
        }
        if r < lethal_floor + self.abort_rate + self.oom_rate {
            return Some(Fault::Oom);
        }
        None
    }
}

/// Corrupt a cache (or journal) file on disk the way a crash or bit-rot
/// would. `seed` picks the damaged span deterministically. Missing files
/// are a no-op for [`CacheCorruption::TruncatedTail`] /
/// [`CacheCorruption::GarbageBytes`] semantics: the error is returned and
/// the caller decides.
pub fn corrupt_cache_file(
    path: &Path,
    corruption: CacheCorruption,
    seed: u64,
) -> std::io::Result<()> {
    let mut bytes = std::fs::read(path)?;
    match corruption {
        CacheCorruption::TruncatedTail => {
            // Keep a prefix: between half and all-but-one bytes.
            let keep = bytes.len() / 2 + (mix(seed) as usize) % (bytes.len() / 2).max(1);
            bytes.truncate(keep.min(bytes.len().saturating_sub(1)));
        }
        CacheCorruption::GarbageBytes => {
            let len = bytes.len();
            if len > 0 {
                let start = (mix(seed) as usize) % len;
                for (i, b) in bytes.iter_mut().skip(start).take(16).enumerate() {
                    *b = (mix(seed.wrapping_add(i as u64)) & 0xff) as u8;
                }
            }
        }
        CacheCorruption::VersionMismatch => {
            let text = String::from_utf8_lossy(&bytes).replace("\"version\":1", "\"version\":999");
            bytes = text.into_bytes();
        }
    }
    std::fs::write(path, bytes)
}

/// FNV-1a over bytes: a stable, dependency-free content hash.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// SplitMix64 finalizer: decorrelates the structured inputs.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Map a hash to [0, 1).
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_deterministic_and_sticky() {
        let plan = FaultPlan::seeded(0xC4A05);
        for key in ["job-a|l8", "job-b|l8", "job-c|l8"] {
            for tier in Tier::ladder() {
                // Ask repeatedly: the answer never changes (stickiness).
                let first = plan.fault_for(key, tier);
                for _ in 0..5 {
                    assert_eq!(plan.fault_for(key, tier), first);
                }
            }
        }
    }

    #[test]
    fn seeds_produce_different_schedules() {
        let keys: Vec<String> = (0..64).map(|i| format!("job-{i}")).collect();
        let a = FaultPlan::seeded(1);
        let b = FaultPlan::seeded(2);
        let differs = keys.iter().any(|k| a.fault_for(k, Tier::Full) != b.fault_for(k, Tier::Full));
        assert!(differs, "different seeds must give different schedules");
    }

    #[test]
    fn rates_are_roughly_respected() {
        let plan = FaultPlan::seeded(7);
        let n = 2000;
        let faults =
            (0..n).filter(|i| plan.fault_for(&format!("job-{i}"), Tier::Full).is_some()).count();
        let expected = plan.deadline_rate + plan.panic_rate + plan.latency_rate;
        let got = faults as f64 / n as f64;
        assert!((got - expected).abs() < 0.05, "fault rate {got} vs configured {expected}");
    }

    #[test]
    fn lethal_faults_schedule_deterministically_and_default_off() {
        // seeded() plans never schedule lethal faults: the in-process chaos
        // harness must keep working unchanged.
        let plan = FaultPlan::seeded(0xDEAD);
        for i in 0..256 {
            let f = plan.fault_for(&format!("job-{i}"), Tier::Full);
            assert!(
                !matches!(f, Some(Fault::Abort) | Some(Fault::Oom)),
                "lethal fault from default plan: {f:?}"
            );
        }

        // With lethal rates dialed up, the schedule is sticky and mixes
        // both lethal kinds across keys.
        let lethal = FaultPlan {
            deadline_rate: 0.0,
            panic_rate: 0.0,
            latency_rate: 0.0,
            abort_rate: 0.5,
            oom_rate: 0.5,
            ..FaultPlan::seeded(0xDEAD)
        };
        let mut aborts = 0;
        let mut ooms = 0;
        for i in 0..64 {
            let key = format!("job-{i}");
            let first = lethal.fault_for(&key, Tier::Full);
            assert_eq!(lethal.fault_for(&key, Tier::Full), first, "sticky");
            match first {
                Some(Fault::Abort) => aborts += 1,
                Some(Fault::Oom) => ooms += 1,
                other => panic!("rates sum to 1.0 yet got {other:?}"),
            }
        }
        assert!(aborts > 0 && ooms > 0, "both lethal kinds appear: {aborts} aborts, {ooms} ooms");
    }

    #[test]
    fn corruptions_damage_the_file() {
        let dir = std::env::temp_dir().join(format!("rake-chaos-corrupt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("synthcache.json");
        let original =
            r#"{"version":1,"entries":[{"key":"k","kind":"failed","error":"lift_failed"}]}"#;

        std::fs::write(&path, original).unwrap();
        corrupt_cache_file(&path, CacheCorruption::TruncatedTail, 3).unwrap();
        assert!(std::fs::read(&path).unwrap().len() < original.len());

        std::fs::write(&path, original).unwrap();
        corrupt_cache_file(&path, CacheCorruption::GarbageBytes, 3).unwrap();
        assert_ne!(std::fs::read(&path).unwrap(), original.as_bytes());

        std::fs::write(&path, original).unwrap();
        corrupt_cache_file(&path, CacheCorruption::VersionMismatch, 3).unwrap();
        assert!(String::from_utf8(std::fs::read(&path).unwrap())
            .unwrap()
            .contains("\"version\":999"));

        let _ = std::fs::remove_dir_all(&dir);
    }
}
