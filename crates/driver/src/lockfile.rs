//! Advisory cross-process file locks.
//!
//! The synthesis cache file can be written by several *processes* at once
//! (a long-lived `rake-served` instance plus ad-hoc `rakec` runs pointed
//! at the same `--cache` directory). The in-process `persist_lock` mutex
//! cannot see those writers, so [`SynthCache::persist`] additionally takes
//! an advisory lock file next to the cache before appending to the
//! segment log or compacting it.
//!
//! The lock is a plain file created with `O_CREAT|O_EXCL` (the only
//! primitive that is atomic on every filesystem std reaches) holding the
//! owner's PID plus a unique acquisition token. Liveness is checked
//! through `/proc/<pid>` on Linux, with an mtime-based staleness fallback
//! elsewhere, so a crashed holder never wedges the cache forever.
//!
//! Breaking a stale lock is a two-step protocol, not a blind unlink: the
//! breaker *renames* the lock file to a unique temp name (atomic — only
//! one breaker wins) and then rechecks that the file it captured still
//! belongs to the dead holder it observed. If another waiter broke the
//! lock and re-acquired it in between, the recheck sees the new holder's
//! token, restores the file (an atomic-exclusive `hard_link`), and backs
//! off — a live lock is never unlinked. Release is token-verified too:
//! [`Drop`] removes the lock file only if it still carries this
//! acquisition's token.
//!
//! [`SynthCache::persist`]: crate::cache::SynthCache::persist

use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// A lock file considered stale by age when the holder's liveness cannot
/// be determined (non-Linux, or a lock file with no readable PID).
const STALE_AFTER: Duration = Duration::from_secs(300);

/// Counter making every acquisition (and every break attempt) within this
/// process unique; combined with the PID it is unique across processes.
static ACQUISITIONS: AtomicU64 = AtomicU64::new(0);

/// An acquired advisory lock. Dropping it releases the lock by removing
/// the file (only if the file still carries this acquisition's token).
#[derive(Debug)]
pub struct LockFile {
    path: PathBuf,
    /// Exactly what we wrote into the lock file: `pid` on the first line,
    /// a unique acquisition token on the second.
    content: String,
}

impl LockFile {
    /// Acquire the lock at `path`, waiting up to `timeout` for a live
    /// holder to release it. Stale locks (holder dead, or unidentifiable
    /// and older than five minutes) are broken via the rename-and-recheck
    /// protocol and re-arbitrated through `create_new`.
    ///
    /// # Errors
    ///
    /// Returns `ErrorKind::TimedOut` if a live holder keeps the lock past
    /// the deadline, or any I/O error creating the lock file.
    pub fn acquire(path: &Path, timeout: Duration) -> io::Result<LockFile> {
        let deadline = Instant::now() + timeout;
        let mut backoff = Duration::from_millis(2);
        loop {
            match fs::OpenOptions::new().write(true).create_new(true).open(path) {
                Ok(mut f) => {
                    let token = ACQUISITIONS.fetch_add(1, Ordering::Relaxed);
                    let content =
                        format!("{}\nt{}-{token}", std::process::id(), std::process::id());
                    // Best-effort: the PID/token are advisory metadata for
                    // the staleness check and token-verified release, not
                    // part of acquisition correctness (`create_new` is).
                    let _ = f.write_all(content.as_bytes());
                    let _ = f.sync_all();
                    return Ok(LockFile { path: path.to_owned(), content });
                }
                Err(e) if e.kind() == io::ErrorKind::AlreadyExists => {
                    if let Some(observed) = observe_stale(path) {
                        // Whether or not *we* freed the slot (another
                        // breaker may have won the rename, or the recheck
                        // may have restored a live re-acquirer),
                        // `create_new` above re-arbitrates the winner.
                        let _ = break_stale(path, &observed);
                        continue;
                    }
                    let now = Instant::now();
                    if now >= deadline {
                        return Err(io::Error::new(
                            io::ErrorKind::TimedOut,
                            format!("lock {} held by a live process", path.display()),
                        ));
                    }
                    std::thread::sleep(backoff.min(deadline - now));
                    backoff = (backoff * 2).min(Duration::from_millis(50));
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// The lock file's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for LockFile {
    fn drop(&mut self) {
        // Token-verified release: remove the file only if it is still the
        // one this acquisition created. If a confused breaker displaced it
        // and someone else acquired, unlinking here would repeat the very
        // race the break protocol exists to prevent.
        if fs::read_to_string(&self.path).is_ok_and(|current| current == self.content) {
            let _ = fs::remove_file(&self.path);
        }
    }
}

/// Observe the lock at `path`: if its holder is judged dead (or the file
/// is stale by age), return the file content identifying that holder, to
/// be rechecked by [`break_stale`]. `None` means the holder looks alive
/// (or the file vanished — the acquire loop re-arbitrates).
fn observe_stale(path: &Path) -> Option<String> {
    let text = match fs::read_to_string(path) {
        Ok(text) => text,
        Err(_) => return None,
    };
    let dead = match text.lines().next().and_then(|l| l.trim().parse::<u32>().ok()) {
        Some(pid) => pid_is_dead(pid, path),
        None => stale_by_age(path),
    };
    dead.then_some(text)
}

/// Break the stale lock whose content was `observed`, without ever
/// unlinking a live lock. Returns `true` if the slot was freed.
///
/// Protocol: atomically *rename* the lock file to a unique temp name —
/// exactly one breaker wins; losers see the rename fail and back off —
/// then recheck the captured file. Only if it still holds the observed
/// dead holder's content is it removed. Otherwise the lock was broken and
/// re-acquired by someone else between our observation and the rename, so
/// the captured (live) lock is put back with an atomic-exclusive
/// `hard_link` that loses gracefully to any newer acquirer.
fn break_stale(path: &Path, observed: &str) -> bool {
    let nonce = ACQUISITIONS.fetch_add(1, Ordering::Relaxed);
    let Some(name) = path.file_name().and_then(|n| n.to_str()) else { return false };
    let temp = path.with_file_name(format!("{name}.break-{}-{nonce}", std::process::id()));
    if fs::rename(path, &temp).is_err() {
        // Another breaker won the rename (or the holder released): the
        // slot is being re-arbitrated without us.
        return false;
    }
    let current = fs::read_to_string(&temp).unwrap_or_default();
    if current == observed {
        let _ = fs::remove_file(&temp);
        return true;
    }
    // We captured a *different* lock than the stale one we observed — a
    // live re-acquirer. Restore it. `hard_link` fails with AlreadyExists
    // if yet another process acquired the slot meanwhile, in which case
    // the displaced holder is already double-held and all we can do is
    // not make it worse (its token-verified Drop will not unlink the
    // newer holder's file).
    match fs::hard_link(&temp, path) {
        Ok(()) => {
            let _ = fs::remove_file(&temp);
        }
        Err(_) => {
            eprintln!(
                "warning: displaced live lock {} could not be restored (slot re-acquired)",
                path.display()
            );
            let _ = fs::remove_file(&temp);
        }
    }
    false
}

#[cfg(target_os = "linux")]
fn pid_is_dead(pid: u32, _path: &Path) -> bool {
    !Path::new("/proc").join(pid.to_string()).exists()
}

#[cfg(not(target_os = "linux"))]
fn pid_is_dead(_pid: u32, path: &Path) -> bool {
    stale_by_age(path)
}

fn stale_by_age(path: &Path) -> bool {
    match fs::metadata(path).and_then(|m| m.modified()) {
        Ok(mtime) => mtime.elapsed().map(|age| age > STALE_AFTER).unwrap_or(false),
        // File vanished → effectively released; other errors → assume live.
        Err(e) => e.kind() == io::ErrorKind::NotFound,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// No real system has a PID this large (kernel max is < 2^22).
    const DEAD_PID: &str = "4194999999";

    fn tmp(name: &str) -> PathBuf {
        let p = std::env::temp_dir().join(format!("rake-lockfile-{name}-{}", std::process::id()));
        let _ = fs::remove_file(&p);
        p
    }

    fn break_temps(path: &Path) -> Vec<PathBuf> {
        let name = path.file_name().unwrap().to_str().unwrap().to_owned();
        fs::read_dir(path.parent().unwrap())
            .unwrap()
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with(&format!("{name}.break-")))
            })
            .collect()
    }

    #[test]
    fn acquire_release_reacquire() {
        let path = tmp("basic");
        let lock = LockFile::acquire(&path, Duration::from_secs(1)).unwrap();
        assert!(path.exists());
        drop(lock);
        assert!(!path.exists(), "drop must release the lock");
        let lock = LockFile::acquire(&path, Duration::from_secs(1)).unwrap();
        drop(lock);
    }

    #[test]
    fn live_holder_times_out_second_acquirer() {
        let path = tmp("contended");
        // Held by this (live) process: a second acquire must time out
        // rather than break the lock.
        let _held = LockFile::acquire(&path, Duration::from_secs(1)).unwrap();
        let start = Instant::now();
        let err = LockFile::acquire(&path, Duration::from_millis(80)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
        assert!(start.elapsed() >= Duration::from_millis(80));
    }

    #[test]
    fn stale_lock_from_dead_pid_is_broken() {
        let path = tmp("stale");
        fs::write(&path, DEAD_PID).unwrap();
        let lock = LockFile::acquire(&path, Duration::from_millis(200)).unwrap();
        drop(lock);
        assert!(!path.exists());
    }

    /// The regression for the stale-break race: waiter B observes dead
    /// holder A; waiter C breaks the lock and re-acquires; B then runs its
    /// (stale) break plan. B must NOT unlink C's live lock — the recheck
    /// sees a different holder and restores the file intact.
    #[test]
    fn stale_break_recheck_spares_a_live_reacquirer() {
        let path = tmp("race");
        fs::write(&path, format!("{DEAD_PID}\ntdead-0")).unwrap();

        // B: observe the dead holder (this is the read the old code acted
        // on directly with remove_file).
        let observed = observe_stale(&path).expect("a dead PID must be observed as stale");

        // C: break the stale lock and re-acquire, before B acts.
        fs::remove_file(&path).unwrap();
        let live = LockFile::acquire(&path, Duration::from_secs(1)).unwrap();

        // B: execute the break plan against the now-live lock.
        assert!(!break_stale(&path, &observed), "the recheck must refuse to free a live lock");
        assert!(path.exists(), "C's live lock must survive B's stale break");
        let content = fs::read_to_string(&path).unwrap();
        assert_eq!(
            content.lines().next().unwrap().trim().parse::<u32>().unwrap(),
            std::process::id(),
            "the surviving lock must still be C's"
        );
        assert!(break_temps(&path).is_empty(), "no temp break files may leak");

        drop(live);
        assert!(!path.exists(), "C can still release its restored lock");
    }

    #[test]
    fn stale_break_frees_an_unchanged_dead_lock() {
        let path = tmp("freed");
        let content = format!("{DEAD_PID}\ntdead-1");
        fs::write(&path, &content).unwrap();
        let observed = observe_stale(&path).expect("dead holder observed");
        assert!(break_stale(&path, &observed), "an unchanged dead lock is freed");
        assert!(!path.exists());
        assert!(break_temps(&path).is_empty());
    }

    #[test]
    fn drop_leaves_a_foreign_lock_alone() {
        let path = tmp("foreign");
        let lock = LockFile::acquire(&path, Duration::from_secs(1)).unwrap();
        // Simulate the displaced-holder scenario: the path now carries a
        // different acquisition's file.
        fs::write(&path, "123\ntother-9").unwrap();
        drop(lock);
        assert!(path.exists(), "drop must not unlink a lock it no longer owns");
        let _ = fs::remove_file(&path);
    }

    /// Stress the break protocol in-process: several threads contend on
    /// one path while a saboteur keeps planting dead-PID lock files
    /// (atomically, via `create_new`, so it never corrupts a live lock).
    /// Mutual exclusion must hold throughout — with the blind-unlink
    /// break this interleaving produces two concurrent holders.
    #[test]
    fn concurrent_stale_breaking_preserves_mutual_exclusion() {
        use std::sync::atomic::{AtomicBool, AtomicI32};

        let path = tmp("mutex-stress");
        fs::write(&path, DEAD_PID).unwrap();
        let holders = AtomicI32::new(0);
        let violated = AtomicBool::new(false);
        let stop = AtomicBool::new(false);

        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..40 {
                        let lock = LockFile::acquire(&path, Duration::from_secs(10))
                            .expect("acquire under stress");
                        if holders.fetch_add(1, Ordering::SeqCst) != 0 {
                            violated.store(true, Ordering::SeqCst);
                        }
                        std::thread::yield_now();
                        holders.fetch_sub(1, Ordering::SeqCst);
                        drop(lock);
                    }
                });
            }
            scope.spawn(|| {
                // The saboteur: keep planting stale locks in the gaps
                // between real holders, forcing break traffic.
                while !stop.load(Ordering::SeqCst) {
                    if let Ok(mut f) =
                        fs::OpenOptions::new().write(true).create_new(true).open(&path)
                    {
                        let _ = f.write_all(DEAD_PID.as_bytes());
                    }
                    std::thread::yield_now();
                }
            });
            // Workers run to completion, then the saboteur is stopped.
            // (Scoped threads join on scope exit; flag it from a watcher.)
            scope.spawn(|| {
                // Crude completion watch: wait until no worker has held
                // the lock for a while by just sleeping past the workload.
                std::thread::sleep(Duration::from_millis(50));
                while holders.load(Ordering::SeqCst) != 0 {
                    std::thread::sleep(Duration::from_millis(10));
                }
                std::thread::sleep(Duration::from_millis(50));
                stop.store(true, Ordering::SeqCst);
            });
        });

        assert!(!violated.load(Ordering::SeqCst), "two processes held the lock at once");
        assert!(break_temps(&path).is_empty(), "no temp break files may leak");
        let _ = fs::remove_file(&path);
    }
}
