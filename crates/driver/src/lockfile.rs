//! Advisory cross-process file locks.
//!
//! The synthesis cache file can be written by several *processes* at once
//! (a long-lived `rake-served` instance plus ad-hoc `rakec` runs pointed
//! at the same `--cache` directory). The in-process `persist_lock` mutex
//! cannot see those writers, so [`SynthCache::persist`] additionally takes
//! an advisory lock file next to the cache before its read-merge-write
//! cycle.
//!
//! The lock is a plain file created with `O_CREAT|O_EXCL` (the only
//! primitive that is atomic on every filesystem std reaches) holding the
//! owner's PID. Liveness is checked through `/proc/<pid>` on Linux, with
//! an mtime-based staleness fallback elsewhere, so a crashed holder never
//! wedges the cache forever: the next acquirer breaks the stale lock and
//! re-arbitrates through `create_new`.
//!
//! [`SynthCache::persist`]: crate::cache::SynthCache::persist

use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// A lock file considered stale by age when the holder's liveness cannot
/// be determined (non-Linux, or a lock file with no readable PID).
const STALE_AFTER: Duration = Duration::from_secs(300);

/// An acquired advisory lock. Dropping it releases the lock by removing
/// the file.
#[derive(Debug)]
pub struct LockFile {
    path: PathBuf,
}

impl LockFile {
    /// Acquire the lock at `path`, waiting up to `timeout` for a live
    /// holder to release it. Stale locks (holder dead, or unidentifiable
    /// and older than five minutes) are broken immediately.
    ///
    /// # Errors
    ///
    /// Returns `ErrorKind::TimedOut` if a live holder keeps the lock past
    /// the deadline, or any I/O error creating the lock file.
    pub fn acquire(path: &Path, timeout: Duration) -> io::Result<LockFile> {
        let deadline = Instant::now() + timeout;
        let mut backoff = Duration::from_millis(2);
        loop {
            match fs::OpenOptions::new().write(true).create_new(true).open(path) {
                Ok(mut f) => {
                    // Best-effort: the PID is advisory metadata for the
                    // staleness check, not part of lock correctness.
                    let _ = write!(f, "{}", std::process::id());
                    let _ = f.sync_all();
                    return Ok(LockFile { path: path.to_owned() });
                }
                Err(e) if e.kind() == io::ErrorKind::AlreadyExists => {
                    if holder_is_dead(path) {
                        // Several waiters may break the same stale lock;
                        // the race is benign because `create_new` above
                        // re-arbitrates who actually wins it.
                        let _ = fs::remove_file(path);
                        continue;
                    }
                    let now = Instant::now();
                    if now >= deadline {
                        return Err(io::Error::new(
                            io::ErrorKind::TimedOut,
                            format!("lock {} held by a live process", path.display()),
                        ));
                    }
                    std::thread::sleep(backoff.min(deadline - now));
                    backoff = (backoff * 2).min(Duration::from_millis(50));
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// The lock file's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for LockFile {
    fn drop(&mut self) {
        let _ = fs::remove_file(&self.path);
    }
}

/// Whether the process that created `path` is known to be gone (or the
/// lock is old enough to presume so). Returns `true` when the file has
/// already vanished — the caller's retry loop handles that case.
fn holder_is_dead(path: &Path) -> bool {
    match fs::read_to_string(path) {
        Ok(text) => match text.trim().parse::<u32>() {
            Ok(pid) => pid_is_dead(pid, path),
            Err(_) => stale_by_age(path),
        },
        Err(e) if e.kind() == io::ErrorKind::NotFound => true,
        Err(_) => stale_by_age(path),
    }
}

#[cfg(target_os = "linux")]
fn pid_is_dead(pid: u32, _path: &Path) -> bool {
    !Path::new("/proc").join(pid.to_string()).exists()
}

#[cfg(not(target_os = "linux"))]
fn pid_is_dead(_pid: u32, path: &Path) -> bool {
    stale_by_age(path)
}

fn stale_by_age(path: &Path) -> bool {
    match fs::metadata(path).and_then(|m| m.modified()) {
        Ok(mtime) => mtime.elapsed().map(|age| age > STALE_AFTER).unwrap_or(false),
        // File vanished → effectively released; other errors → assume live.
        Err(e) => e.kind() == io::ErrorKind::NotFound,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let p = std::env::temp_dir().join(format!("rake-lockfile-{name}-{}", std::process::id()));
        let _ = fs::remove_file(&p);
        p
    }

    #[test]
    fn acquire_release_reacquire() {
        let path = tmp("basic");
        let lock = LockFile::acquire(&path, Duration::from_secs(1)).unwrap();
        assert!(path.exists());
        drop(lock);
        assert!(!path.exists(), "drop must release the lock");
        let lock = LockFile::acquire(&path, Duration::from_secs(1)).unwrap();
        drop(lock);
    }

    #[test]
    fn live_holder_times_out_second_acquirer() {
        let path = tmp("contended");
        // Held by this (live) process: a second acquire must time out
        // rather than break the lock.
        let _held = LockFile::acquire(&path, Duration::from_secs(1)).unwrap();
        let start = Instant::now();
        let err = LockFile::acquire(&path, Duration::from_millis(80)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
        assert!(start.elapsed() >= Duration::from_millis(80));
    }

    #[test]
    fn stale_lock_from_dead_pid_is_broken() {
        let path = tmp("stale");
        // No real system has a PID this large (kernel max is < 2^22).
        fs::write(&path, "4194999999").unwrap();
        let lock = LockFile::acquire(&path, Duration::from_millis(200)).unwrap();
        drop(lock);
        assert!(!path.exists());
    }
}
