//! The content-addressed synthesis cache.
//!
//! Keys are canonical-form S-expressions (see [`crate::canon`]) combined
//! with a fingerprint of the target geometry and search options — two
//! batches compiled for different machines or under different ablations
//! never share entries. Values are either the synthesized artifacts (in
//! canonical buffer names, renamed on the way out) or a *negative* entry
//! recording a deterministic failure, so known-unliftable tiles are not
//! re-searched. Timeouts and panics are never negative-cached: they do not
//! prove anything about the tile.
//!
//! # Lifecycle
//!
//! The in-memory layer is bounded by [`CacheLimits`]: when an entry or
//! byte cap is exceeded, entries are evicted cost-aware-LRU — cheap
//! `Direct`-tier artifacts go first, expensive `Full`-tier proofs and
//! negative verdicts last, least-recently-used within each class.
//!
//! The persistent layer is a segment pair inside the cache directory:
//! a `synthcache.json` snapshot plus a `synthcache.log` of per-entry
//! JSONL appends. [`SynthCache::persist`] appends only the entries stored
//! since the last flush (O(new work), not O(cache)) under the existing
//! cross-process advisory lock; once the log outgrows
//! [`CacheLimits::log_compact_bytes`] it is folded into a fresh snapshot
//! (tmp + rename) and removed. Loading replays snapshot then log, later
//! lines winning. A corrupted or unreadable file is reported to stderr and
//! treated as a cold start — it never aborts compilation — and the next
//! compaction rewrites it.

use std::collections::{BTreeMap, HashMap};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

use rake::CompileError;
use synth::{LiftRule, LiftStep, LiftTrace};

use crate::json::{self, Json};
use crate::tier::Tier;

/// File name of the persistent snapshot inside the cache directory.
pub const CACHE_FILE: &str = "synthcache.json";

/// File name of the append-only segment log next to the snapshot.
pub const LOG_FILE: &str = "synthcache.log";

/// Bounds on the cache lifecycle. The defaults are unbounded in memory
/// (the historical behavior) with a 4 MiB log-compaction threshold.
#[derive(Debug, Clone, Copy)]
pub struct CacheLimits {
    /// Maximum in-memory entries; eviction keeps the count at or under
    /// this. `None` is unbounded.
    pub max_entries: Option<usize>,
    /// Maximum in-memory bytes (serialized-entry accounting, i.e. the
    /// entry's cost on disk). Eviction keeps the total at or under this,
    /// but always retains at least one entry. `None` is unbounded.
    pub max_bytes: Option<usize>,
    /// Segment-log size that triggers folding the log into the snapshot
    /// during [`SynthCache::persist`].
    pub log_compact_bytes: u64,
}

impl CacheLimits {
    /// No in-memory bounds; compaction at the default threshold.
    pub fn unbounded() -> CacheLimits {
        CacheLimits { max_entries: None, max_bytes: None, log_compact_bytes: 4 * 1024 * 1024 }
    }
}

impl Default for CacheLimits {
    fn default() -> CacheLimits {
        CacheLimits::unbounded()
    }
}

/// Synthesized artifacts stored under a canonical key. Buffer names inside
/// are canonical (`b0, b1, …`); [`crate::canon::rename_uber`] /
/// [`crate::canon::rename_hvx`] map them back per requesting tile.
#[derive(Debug, Clone)]
pub struct CachedArtifacts {
    /// The lifted Uber-IR expression.
    pub uber: uber_ir::UberExpr,
    /// The synthesized HVX expression.
    pub hvx: hvx::HvxExpr,
    /// The lifting trace (rendered with canonical buffer names).
    pub trace: LiftTrace,
    /// The degradation-ladder tier that produced the artifacts, so warm
    /// cache hits report honestly which budget the program came from.
    pub tier: Tier,
}

/// The crash verdict stored for a poison-pill key: a key whose jobs
/// repeatedly killed isolated workers is negative-cached with the crash
/// forensics so later requests answer instantly instead of re-burning
/// synthesis budget (and more workers).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantineInfo {
    /// Human-readable crash summary ("worker killed by signal 6 …").
    pub reason: String,
    /// Absolute Unix-seconds expiry; `None` quarantines forever. Expired
    /// entries are dropped lazily on the next lookup, so the key gets a
    /// fresh chance after its TTL.
    pub expires_unix: Option<u64>,
}

impl QuarantineInfo {
    /// Whether this verdict has outlived its TTL.
    pub fn expired(&self) -> bool {
        self.expired_at(unix_now())
    }

    /// Whether this verdict has outlived its TTL as of `now` (Unix
    /// seconds). A verdict expires exactly at its deadline: `now ==
    /// expires_unix` already reads as expired.
    pub fn expired_at(&self, now: u64) -> bool {
        match self.expires_unix {
            Some(deadline) => now >= deadline,
            None => false,
        }
    }
}

/// Seconds since the Unix epoch (0 if the clock is before it).
fn unix_now() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::SystemTime::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs())
}

/// One cache entry.
#[derive(Debug, Clone)]
pub enum CacheEntry {
    /// A successful compilation.
    Compiled(CachedArtifacts),
    /// A deterministic failure (e.g. no verified lifting exists).
    Failed(CompileError),
    /// A poison-pill verdict: this key crashed isolated workers past the
    /// configured threshold and is served as `quarantined` until expiry.
    Quarantined(QuarantineInfo),
}

/// Running cache-effectiveness counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found a usable entry.
    pub hits: u64,
    /// Lookups that found nothing usable.
    pub misses: u64,
    /// Misses caused specifically by a present entry whose producing tier
    /// was below the request's floor (a subset of `misses`).
    pub floor_misses: u64,
    /// Entries loaded from the persistent layer at startup.
    pub loaded: u64,
    /// Entries (or whole files) dropped as corrupted at startup.
    pub corrupted: u64,
    /// Entries evicted to satisfy [`CacheLimits`].
    pub evicted: u64,
    /// Entry lines appended to the segment log by [`SynthCache::persist`].
    pub appended: u64,
    /// Times the segment log was folded into the snapshot.
    pub compactions: u64,
}

/// One resident entry plus its bookkeeping: the pre-serialized JSON line
/// (reused for log appends, snapshot writes, byte accounting, and
/// idempotent-store detection), its eviction class, and its LRU sequence.
#[derive(Debug)]
struct Slot {
    entry: CacheEntry,
    line: String,
    class: u8,
    seq: u64,
}

/// Everything guarded by the in-memory mutex: the entry map, the eviction
/// order index, byte totals, and the lines stored since the last flush.
#[derive(Debug, Default)]
struct MemState {
    map: HashMap<String, Slot>,
    /// `(class, seq) -> key`, ascending = next to evict. Sequences are
    /// unique (a monotone clock), so no two entries share an index key.
    order: BTreeMap<(u8, u64), String>,
    total_bytes: usize,
    clock: u64,
    /// Serialized entry lines stored since the last successful flush —
    /// exactly what the next [`SynthCache::persist`] appends to the log.
    pending: Vec<String>,
}

impl MemState {
    fn insert(&mut self, key: String, entry: CacheEntry, line: String) {
        self.clock += 1;
        let class = evict_class(&entry);
        let slot = Slot { entry, line, class, seq: self.clock };
        self.total_bytes += slot.line.len();
        self.order.insert((class, self.clock), key.clone());
        if let Some(old) = self.map.insert(key, slot) {
            self.order.remove(&(old.class, old.seq));
            self.total_bytes -= old.line.len();
        }
    }

    /// Drop a key outright (expired quarantine verdicts).
    fn remove(&mut self, key: &str) {
        if let Some(slot) = self.map.remove(key) {
            self.order.remove(&(slot.class, slot.seq));
            self.total_bytes -= slot.line.len();
        }
    }

    /// Refresh a key's LRU recency (on hits and idempotent re-stores).
    fn touch(&mut self, key: &str) {
        let Some(slot) = self.map.get_mut(key) else { return };
        self.clock += 1;
        self.order.remove(&(slot.class, slot.seq));
        slot.seq = self.clock;
        self.order.insert((slot.class, slot.seq), key.to_owned());
    }

    /// Evict until within `limits`; returns how many entries were dropped.
    /// The byte bound always retains at least one entry so a single
    /// oversized artifact cannot render the cache useless.
    fn enforce(&mut self, limits: &CacheLimits) -> u64 {
        let mut evicted = 0;
        while self.over(limits) {
            let Some((_, key)) = self.order.pop_first() else { break };
            let slot = self.map.remove(&key).expect("eviction order tracks the map");
            self.total_bytes -= slot.line.len();
            evicted += 1;
        }
        evicted
    }

    fn over(&self, limits: &CacheLimits) -> bool {
        limits.max_entries.is_some_and(|m| self.map.len() > m)
            || (limits.max_bytes.is_some_and(|m| self.total_bytes > m) && self.map.len() > 1)
    }
}

/// Eviction class: lower is evicted first. `Direct`-tier artifacts are
/// cheap to recompute (no SMT proofs) and go first; `Full`-tier proofs
/// are the expensive product; negative verdicts are full-tier SMT work in
/// a handful of bytes, so they go last.
fn evict_class(entry: &CacheEntry) -> u8 {
    match entry {
        CacheEntry::Compiled(a) => match a.tier {
            Tier::Direct | Tier::Baseline => 0,
            Tier::Reduced => 1,
            Tier::Full => 2,
        },
        CacheEntry::Failed(_) => 3,
        // A quarantine verdict cost (at least) `crash_threshold` dead
        // workers to earn; forgetting it early invites more crashes.
        CacheEntry::Quarantined(_) => 3,
    }
}

/// The two-layer synthesis cache. All methods take `&self`; the cache is
/// shared across worker threads behind an `Arc`.
#[derive(Debug)]
pub struct SynthCache {
    mem: Mutex<MemState>,
    path: Option<PathBuf>,
    log_path: Option<PathBuf>,
    limits: CacheLimits,
    stats: Mutex<CacheStats>,
    /// Serializes concurrent [`SynthCache::persist`] calls (workers
    /// persist after every completed job) so two threads never interleave
    /// their log appends or race a compaction.
    persist_lock: Mutex<()>,
    /// Set when loading found a corrupted snapshot or log: the next flush
    /// compacts unconditionally, rewriting the damaged file.
    force_compact: AtomicBool,
    /// Unix-seconds clock used for quarantine TTLs. Injected by tests
    /// (see [`SynthCache::with_clock`]) so expiry-at-the-boundary is
    /// checkable without sleeping; everything else uses the wall clock.
    clock: fn() -> u64,
}

impl SynthCache {
    /// A purely in-memory cache, unbounded.
    pub fn in_memory() -> SynthCache {
        SynthCache::in_memory_bounded(CacheLimits::unbounded())
    }

    /// A purely in-memory cache under the given limits.
    pub fn in_memory_bounded(limits: CacheLimits) -> SynthCache {
        SynthCache {
            mem: Mutex::default(),
            path: None,
            log_path: None,
            limits,
            stats: Mutex::default(),
            persist_lock: Mutex::new(()),
            force_compact: AtomicBool::new(false),
            clock: unix_now,
        }
    }

    /// Replace the quarantine-TTL clock (a plain `fn` returning Unix
    /// seconds). Tests inject a controlled clock to pin expiry exactly
    /// at the deadline without sleeping through a real TTL.
    pub fn with_clock(mut self, clock: fn() -> u64) -> SynthCache {
        self.clock = clock;
        self
    }

    /// A cache backed by `dir/synthcache.json` (+ segment log), loaded now
    /// if present, with no in-memory bounds.
    pub fn persistent(dir: &Path) -> SynthCache {
        SynthCache::bounded(dir, CacheLimits::unbounded())
    }

    /// A cache backed by `dir/synthcache.json` plus the `synthcache.log`
    /// segment log, loaded now if present (snapshot first, then log lines
    /// — later wins), bounded by `limits`. A corrupted file warns, starts
    /// cold, and schedules a repairing compaction; it never panics.
    pub fn bounded(dir: &Path, limits: CacheLimits) -> SynthCache {
        let path = dir.join(CACHE_FILE);
        let log_path = dir.join(LOG_FILE);
        let mut stats = CacheStats::default();
        let mut force_compact = false;
        let mut state = MemState::default();

        match std::fs::read_to_string(&path) {
            Ok(text) => match load_entries(&text, &mut stats) {
                Ok(map) => {
                    // Sorted insertion gives deterministic LRU order (and
                    // thus deterministic trimming) for snapshot entries.
                    let mut keys: Vec<String> = map.keys().cloned().collect();
                    keys.sort();
                    let mut map = map;
                    for key in keys {
                        let entry = map.remove(&key).expect("key came from the map");
                        let line = entry_json(&key, &entry).to_string();
                        state.insert(key, entry, line);
                    }
                }
                Err(err) => {
                    eprintln!(
                        "warning: synthesis cache {} is corrupted ({err}); starting cold",
                        path.display()
                    );
                    stats.corrupted += 1;
                    force_compact = true;
                }
            },
            Err(err) if err.kind() == std::io::ErrorKind::NotFound => {}
            Err(err) => {
                eprintln!(
                    "warning: synthesis cache {} is unreadable ({err}); starting cold",
                    path.display()
                );
                stats.corrupted += 1;
            }
        }

        match std::fs::read_to_string(&log_path) {
            Ok(text) => {
                let lines: Vec<&str> = text.lines().collect();
                for (i, line) in lines.iter().enumerate() {
                    if line.trim().is_empty() {
                        continue;
                    }
                    match json::parse(line).ok().as_ref().and_then(load_entry) {
                        Some((key, entry)) => {
                            stats.loaded += 1;
                            state.insert(key, entry, (*line).to_owned());
                        }
                        // A torn final line is the expected artifact of a
                        // crash mid-append, not corruption.
                        None if i + 1 == lines.len() => {}
                        None => {
                            stats.corrupted += 1;
                            force_compact = true;
                            eprintln!(
                                "warning: skipping malformed synthesis cache log line in {}",
                                log_path.display()
                            );
                        }
                    }
                }
            }
            Err(err) if err.kind() == std::io::ErrorKind::NotFound => {}
            Err(err) => {
                eprintln!(
                    "warning: synthesis cache log {} is unreadable ({err}); ignoring it",
                    log_path.display()
                );
                stats.corrupted += 1;
            }
        }

        stats.evicted += state.enforce(&limits);
        SynthCache {
            mem: Mutex::new(state),
            path: Some(path),
            log_path: Some(log_path),
            limits,
            stats: Mutex::new(stats),
            persist_lock: Mutex::new(()),
            force_compact: AtomicBool::new(force_compact),
            clock: unix_now,
        }
    }

    /// The lifecycle bounds this cache runs under.
    pub fn limits(&self) -> CacheLimits {
        self.limits
    }

    /// Look up a key, counting the hit or miss. Serves any tier.
    pub fn lookup(&self, key: &str) -> Option<CacheEntry> {
        self.lookup_meeting(key, Tier::Baseline)
    }

    /// Look up a key for a request whose weakest acceptable tier is
    /// `floor`. A compiled entry produced below the floor (e.g. a
    /// `Direct`-tier artifact stored under deadline pressure, asked for
    /// with `floor = Full`) is reported as a miss so the caller recompiles
    /// at an acceptable tier and overwrites it with the better entry.
    /// Negative entries always qualify: they are primary-tier verdicts.
    pub fn lookup_meeting(&self, key: &str, floor: Tier) -> Option<CacheEntry> {
        let mut state = self.mem.lock().unwrap();
        let entry = state.map.get(key).map(|s| s.entry.clone());
        let (found, below_floor) = match entry {
            Some(CacheEntry::Compiled(a)) if !a.tier.meets(floor) => (None, true),
            Some(CacheEntry::Quarantined(q)) if q.expired_at((self.clock)()) => {
                // The TTL elapsed: the key earns a fresh attempt. Dropping
                // the resident entry is enough — the next store overwrites
                // the persisted verdict via normal last-wins replay.
                state.remove(key);
                (None, false)
            }
            other => (other, false),
        };
        if found.is_some() {
            state.touch(key);
        }
        drop(state);
        let mut stats = self.stats.lock().unwrap();
        if found.is_some() {
            stats.hits += 1;
        } else {
            stats.misses += 1;
            stats.floor_misses += u64::from(below_floor);
        }
        found
    }

    /// Whether a key is present, without counting a hit or miss — for
    /// admission decisions that precede the real (counted) lookup.
    pub fn contains(&self, key: &str) -> bool {
        self.mem.lock().unwrap().map.contains_key(key)
    }

    /// [`SynthCache::contains`] under a tier floor: present *and* usable
    /// for a request that refuses artifacts below `floor`.
    pub fn contains_meeting(&self, key: &str, floor: Tier) -> bool {
        match self.mem.lock().unwrap().map.get(key) {
            Some(slot) => match &slot.entry {
                CacheEntry::Compiled(a) => a.tier.meets(floor),
                CacheEntry::Failed(_) => true,
                CacheEntry::Quarantined(q) => !q.expired_at((self.clock)()),
            },
            None => false,
        }
    }

    /// Quarantine a key as a poison pill: its jobs crashed isolated
    /// workers past the configured threshold. `ttl = None` is forever.
    pub fn quarantine(&self, key: &str, reason: &str, ttl: Option<std::time::Duration>) {
        self.store(
            key,
            CacheEntry::Quarantined(QuarantineInfo {
                reason: reason.to_owned(),
                expires_unix: ttl.map(|t| (self.clock)().saturating_add(t.as_secs().max(1))),
            }),
        );
    }

    /// The active quarantine verdict for a key, if any — a non-counting
    /// peek (no hit/miss accounting) for pre-dispatch poison checks.
    /// An expired verdict reads as `None` (and is dropped).
    pub fn quarantine_reason(&self, key: &str) -> Option<String> {
        let mut state = self.mem.lock().unwrap();
        match state.map.get(key).map(|s| &s.entry) {
            Some(CacheEntry::Quarantined(q)) if q.expired_at((self.clock)()) => {
                state.remove(key);
                None
            }
            Some(CacheEntry::Quarantined(q)) => Some(q.reason.clone()),
            _ => None,
        }
    }

    /// Number of active (unexpired) quarantine verdicts currently held.
    pub fn quarantined_count(&self) -> usize {
        self.mem
            .lock()
            .unwrap()
            .map
            .values()
            .filter(
                |s| matches!(&s.entry, CacheEntry::Quarantined(q) if !q.expired_at((self.clock)())),
            )
            .count()
    }

    /// Insert an entry. Deadline failures are rejected (they are not
    /// deterministic verdicts) — the call is a no-op for them. Re-storing
    /// a byte-identical entry only refreshes its recency: nothing is
    /// queued for the log, so warm replays never grow the file.
    pub fn store(&self, key: &str, entry: CacheEntry) {
        if matches!(entry, CacheEntry::Failed(CompileError::DeadlineExceeded)) {
            return;
        }
        let line = entry_json(key, &entry).to_string();
        let mut state = self.mem.lock().unwrap();
        if let Some(slot) = state.map.get(key) {
            if slot.line == line {
                state.touch(key);
                return;
            }
        }
        state.insert(key.to_owned(), entry, line.clone());
        state.pending.push(line);
        let evicted = state.enforce(&self.limits);
        drop(state);
        if evicted > 0 {
            self.stats.lock().unwrap().evicted += evicted;
        }
    }

    /// Number of entries currently held.
    pub fn len(&self) -> usize {
        self.mem.lock().unwrap().map.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Approximate in-memory footprint: the summed serialized size of the
    /// resident entries (the same accounting [`CacheLimits::max_bytes`]
    /// bounds).
    pub fn total_bytes(&self) -> usize {
        self.mem.lock().unwrap().total_bytes
    }

    /// On-disk `(snapshot, log)` sizes in bytes; zeros for an in-memory
    /// cache or missing files. Metadata reads, cheap enough for metrics.
    pub fn disk_bytes(&self) -> (u64, u64) {
        let size = |p: &Option<PathBuf>| {
            p.as_ref().and_then(|p| std::fs::metadata(p).ok()).map_or(0, |m| m.len())
        };
        (size(&self.path), size(&self.log_path))
    }

    /// Current cache counters.
    pub fn stats(&self) -> CacheStats {
        *self.stats.lock().unwrap()
    }

    /// Flush the entries stored since the last flush (if a persistent
    /// layer is configured): take the cross-process advisory lock, append
    /// their serialized lines to the segment log, and fsync — O(new work),
    /// not O(cache). When the log outgrows
    /// [`CacheLimits::log_compact_bytes`] (or loading found corruption),
    /// fold snapshot + log + memory into a fresh bounded snapshot via
    /// tmp + rename and remove the log. With nothing pending this is a
    /// no-op, so all-cache-hit batches (the serving layer's warm path)
    /// never touch the disk.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures, including a timeout waiting on another
    /// live process's lock (the caller decides whether they are fatal).
    /// The un-flushed lines are re-queued, so a later persist retries.
    pub fn persist(&self) -> std::io::Result<()> {
        let (Some(path), Some(log_path)) = (&self.path, &self.log_path) else { return Ok(()) };
        let _serialized = self.persist_lock.lock().unwrap();
        let lines: Vec<String> = std::mem::take(&mut self.mem.lock().unwrap().pending);
        if lines.is_empty() {
            return Ok(());
        }
        let result = self.flush(path, log_path, &lines);
        if result.is_err() {
            // Re-queue at the front: entries stored while we were flushing
            // must stay *after* these lines so last-wins replay holds.
            // (Lines that did reach the log before the error will be
            // appended again on retry — harmless, replay is idempotent.)
            let mut state = self.mem.lock().unwrap();
            let tail = std::mem::replace(&mut state.pending, lines);
            state.pending.extend(tail);
        }
        result
    }

    fn flush(&self, path: &Path, log_path: &Path, lines: &[String]) -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        let _cross_process = crate::lockfile::LockFile::acquire(
            &path.with_extension("json.lock"),
            std::time::Duration::from_secs(10),
        )?;
        let mut payload = String::with_capacity(lines.iter().map(|l| l.len() + 1).sum());
        for line in lines {
            payload.push_str(line);
            payload.push('\n');
        }
        let log_len = {
            let mut f = std::fs::OpenOptions::new().create(true).append(true).open(log_path)?;
            f.write_all(payload.as_bytes())?;
            f.sync_all()?;
            f.metadata()?.len()
        };
        self.stats.lock().unwrap().appended += lines.len() as u64;
        // The first persist into a fresh directory compacts immediately so
        // a snapshot always exists once anything has been persisted;
        // subsequent persists are cheap appends until the log outgrows its
        // threshold (or a corrupt snapshot demands a rewrite).
        if log_len > self.limits.log_compact_bytes
            || self.force_compact.load(Ordering::Acquire)
            || !path.exists()
        {
            self.compact(path, log_path)?;
            self.force_compact.store(false, Ordering::Release);
            self.stats.lock().unwrap().compactions += 1;
        }
        Ok(())
    }

    /// Fold snapshot + log + memory into a fresh snapshot. Runs under both
    /// the persist mutex and the cross-process advisory lock. Disk-state
    /// reads make this a union with other processes writing the same
    /// directory; in-memory entries win key collisions (ours are at least
    /// as fresh — every local store is already in the log by now).
    /// In-memory entries are always kept; disk-only entries fill whatever
    /// entry/byte budget the limits leave, in key order.
    fn compact(&self, path: &Path, log_path: &Path) -> std::io::Result<()> {
        let mut merged: HashMap<String, String> = HashMap::new();
        if let Ok(text) = std::fs::read_to_string(path) {
            let mut ignored = CacheStats::default();
            if let Ok(map) = load_entries(&text, &mut ignored) {
                for (key, entry) in map {
                    let line = entry_json(&key, &entry).to_string();
                    merged.insert(key, line);
                }
            }
        }
        if let Ok(text) = std::fs::read_to_string(log_path) {
            for line in text.lines() {
                if let Some((key, _)) = json::parse(line).ok().as_ref().and_then(load_entry) {
                    merged.insert(key, line.to_owned());
                }
            }
        }
        let mut keep: Vec<(String, String)> = {
            let state = self.mem.lock().unwrap();
            state.map.iter().map(|(k, slot)| (k.clone(), slot.line.clone())).collect()
        };
        for (key, _) in &keep {
            merged.remove(key);
        }
        let mut entries_left = self.limits.max_entries.map(|m| m.saturating_sub(keep.len()));
        let mut bytes_left = self
            .limits
            .max_bytes
            .map(|m| m.saturating_sub(keep.iter().map(|(_, l)| l.len()).sum()));
        let mut disk_only: Vec<(String, String)> = merged.into_iter().collect();
        disk_only.sort();
        for (key, line) in disk_only {
            let fits =
                entries_left.is_none_or(|n| n > 0) && bytes_left.is_none_or(|b| line.len() <= b);
            if !fits {
                continue;
            }
            if let Some(n) = &mut entries_left {
                *n -= 1;
            }
            if let Some(b) = &mut bytes_left {
                *b -= line.len();
            }
            keep.push((key, line));
        }
        keep.sort();

        // Each kept line is already a serialized entry object; the
        // snapshot document is just the version-1 envelope around them.
        let mut doc = String::from("{\"version\":1,\"entries\":[");
        for (i, (_, line)) in keep.iter().enumerate() {
            if i > 0 {
                doc.push(',');
            }
            doc.push_str(line);
        }
        doc.push_str("]}");

        let tmp = path.with_extension(format!("json.tmp.{}", std::process::id()));
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(doc.as_bytes())?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, path)?;
        // The log is now redundant: every line is superseded by the
        // snapshot, so a crash before this unlink only replays no-ops.
        match std::fs::remove_file(log_path) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e),
        }
    }
}

fn rule_name(rule: LiftRule) -> &'static str {
    match rule {
        LiftRule::Update => "update",
        LiftRule::Replace => "replace",
        LiftRule::Extend => "extend",
    }
}

fn rule_from(name: &str) -> Option<LiftRule> {
    match name {
        "update" => Some(LiftRule::Update),
        "replace" => Some(LiftRule::Replace),
        "extend" => Some(LiftRule::Extend),
        _ => None,
    }
}

/// Stable wire name of a [`CompileError`] (cache entries, worker replies).
pub fn error_name(err: &CompileError) -> &'static str {
    match err {
        CompileError::NotQualifying => "not_qualifying",
        CompileError::LiftFailed => "lift_failed",
        CompileError::LowerFailed => "lower_failed",
        CompileError::FinalCheckFailed => "final_check_failed",
        CompileError::DeadlineExceeded => "deadline_exceeded",
    }
}

/// Inverse of [`error_name`]. `deadline_exceeded` has no reverse mapping:
/// deadline verdicts are never round-tripped through the cache.
pub fn error_from(name: &str) -> Option<CompileError> {
    match name {
        "not_qualifying" => Some(CompileError::NotQualifying),
        "lift_failed" => Some(CompileError::LiftFailed),
        "lower_failed" => Some(CompileError::LowerFailed),
        "final_check_failed" => Some(CompileError::FinalCheckFailed),
        _ => None,
    }
}

/// One entry as its self-describing JSON object — the shape shared by the
/// snapshot's `entries` array and the segment log's lines.
fn entry_json(key: &str, entry: &CacheEntry) -> Json {
    let mut obj = vec![("key".to_owned(), Json::Str(key.to_owned()))];
    match entry {
        CacheEntry::Compiled(a) => {
            obj.push(("kind".to_owned(), "compiled".into()));
            obj.push(("tier".to_owned(), a.tier.name().into()));
            obj.push(("uber".to_owned(), uber_ir::sexpr::to_sexpr(&a.uber).into()));
            obj.push(("hvx".to_owned(), hvx::sexpr::to_sexpr(&a.hvx).into()));
            let steps = a
                .trace
                .steps
                .iter()
                .map(|s| {
                    Json::obj([
                        ("rule", rule_name(s.rule).into()),
                        ("halide", s.halide.as_str().into()),
                        ("lifted", s.lifted.as_str().into()),
                    ])
                })
                .collect();
            obj.push(("trace".to_owned(), Json::Arr(steps)));
        }
        CacheEntry::Failed(err) => {
            obj.push(("kind".to_owned(), "failed".into()));
            obj.push(("error".to_owned(), error_name(err).into()));
        }
        CacheEntry::Quarantined(q) => {
            obj.push(("kind".to_owned(), "quarantined".into()));
            obj.push(("reason".to_owned(), q.reason.as_str().into()));
            if let Some(deadline) = q.expires_unix {
                obj.push(("expires_unix".to_owned(), deadline.into()));
            }
        }
    }
    Json::Obj(obj)
}

fn load_entries(text: &str, stats: &mut CacheStats) -> Result<HashMap<String, CacheEntry>, String> {
    let doc = json::parse(text).map_err(|e| e.to_string())?;
    if doc.get("version").and_then(Json::as_i64) != Some(1) {
        return Err("unsupported cache version".to_owned());
    }
    let entries = doc
        .get("entries")
        .and_then(Json::as_arr)
        .ok_or_else(|| "missing `entries` array".to_owned())?;
    let mut map = HashMap::new();
    for entry in entries {
        match load_entry(entry) {
            Some((key, value)) => {
                stats.loaded += 1;
                map.insert(key, value);
            }
            None => {
                stats.corrupted += 1;
                eprintln!("warning: skipping malformed synthesis cache entry");
            }
        }
    }
    Ok(map)
}

fn load_entry(entry: &Json) -> Option<(String, CacheEntry)> {
    let key = entry.get("key")?.as_str()?.to_owned();
    let value = match entry.get("kind")?.as_str()? {
        "compiled" => {
            let uber = uber_ir::sexpr::parse(entry.get("uber")?.as_str()?).ok()?;
            let hvx = hvx::sexpr::parse(entry.get("hvx")?.as_str()?).ok()?;
            let mut trace = LiftTrace::default();
            for step in entry.get("trace")?.as_arr()? {
                trace.steps.push(LiftStep {
                    rule: rule_from(step.get("rule")?.as_str()?)?,
                    halide: step.get("halide")?.as_str()?.to_owned(),
                    lifted: step.get("lifted")?.as_str()?.to_owned(),
                });
            }
            // Entries from before tiering default to the full tier.
            let tier = entry
                .get("tier")
                .and_then(Json::as_str)
                .and_then(Tier::from_name)
                .unwrap_or(Tier::Full);
            CacheEntry::Compiled(CachedArtifacts { uber, hvx, trace, tier })
        }
        "failed" => CacheEntry::Failed(error_from(entry.get("error")?.as_str()?)?),
        "quarantined" => CacheEntry::Quarantined(QuarantineInfo {
            reason: entry.get("reason")?.as_str()?.to_owned(),
            expires_unix: entry.get("expires_unix").and_then(Json::as_i64).map(|s| s.max(0) as u64),
        }),
        _ => return None,
    };
    Some((key, value))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lanes::ElemType::{U16, U8};

    fn artifacts() -> CachedArtifacts {
        artifacts_at(Tier::Reduced)
    }

    fn artifacts_at(tier: Tier) -> CachedArtifacts {
        let hvx = hvx::HvxExpr::op(
            hvx::Op::Vtmpy { elem: U8, w0: 1, w1: 2 },
            vec![hvx::HvxExpr::vmem("b0", U8, -1, 0), hvx::HvxExpr::vmem("b0", U8, 7, 0)],
        );
        let uber = uber_ir::UberExpr::conv("b0", U8, -1, 0, &[1, 2, 1], U16);
        let mut trace = LiftTrace::default();
        trace.steps.push(LiftStep {
            rule: LiftRule::Update,
            halide: "u16(b0(x-1, y))".to_owned(),
            lifted: "(vs-mpy-add ...)".to_owned(),
        });
        CachedArtifacts { uber, hvx, trace, tier }
    }

    #[test]
    fn json_roundtrip_preserves_entries() {
        let dir = std::env::temp_dir().join("rake-driver-cache-roundtrip");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();

        let cache = SynthCache::persistent(&dir);
        cache.store("k1|hvx128", CacheEntry::Compiled(artifacts()));
        cache.store("k2|hvx128", CacheEntry::Failed(CompileError::LiftFailed));
        // Deadline failures must not be persisted.
        cache.store("k3|hvx128", CacheEntry::Failed(CompileError::DeadlineExceeded));
        cache.persist().unwrap();

        let warm = SynthCache::persistent(&dir);
        assert_eq!(warm.len(), 2);
        assert_eq!(warm.stats().loaded, 2);
        let Some(CacheEntry::Compiled(a)) = warm.lookup("k1|hvx128") else {
            panic!("expected compiled entry");
        };
        let orig = artifacts();
        assert_eq!(a.uber, orig.uber);
        assert_eq!(a.hvx, orig.hvx);
        assert_eq!(a.tier, Tier::Reduced, "producing tier must survive the roundtrip");
        assert_eq!(a.trace.steps.len(), 1);
        assert_eq!(a.trace.steps[0].rule, LiftRule::Update);
        let Some(CacheEntry::Failed(err)) = warm.lookup("k2|hvx128") else {
            panic!("expected failed entry");
        };
        assert_eq!(err, CompileError::LiftFailed);
        assert!(warm.lookup("k3|hvx128").is_none());

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupted_file_warns_and_starts_cold() {
        let dir = std::env::temp_dir().join("rake-driver-cache-corrupt");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join(CACHE_FILE), "{not json at all").unwrap();

        let cache = SynthCache::persistent(&dir);
        assert!(cache.is_empty());
        assert_eq!(cache.stats().corrupted, 1);
        // Still fully usable, and persist() repairs the file (the load
        // schedules a compaction that rewrites the damaged snapshot).
        cache.store("k", CacheEntry::Failed(CompileError::LowerFailed));
        cache.persist().unwrap();
        assert_eq!(cache.stats().compactions, 1, "corruption must force a repairing compaction");
        let warm = SynthCache::persistent(&dir);
        assert_eq!(warm.len(), 1);
        assert_eq!(warm.stats().corrupted, 0, "the snapshot must be healed");

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn malformed_entries_are_skipped_not_fatal() {
        let dir = std::env::temp_dir().join("rake-driver-cache-badentry");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let text = r#"{"version":1,"entries":[
            {"key":"good","kind":"failed","error":"lift_failed"},
            {"key":"bad","kind":"compiled","uber":"(not valid","hvx":"(nope","trace":[]},
            {"key":"worse","kind":"unknown"}
        ]}"#;
        std::fs::write(dir.join(CACHE_FILE), text).unwrap();

        let cache = SynthCache::persistent(&dir);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.stats().loaded, 1);
        assert_eq!(cache.stats().corrupted, 2);
        assert!(matches!(cache.lookup("good"), Some(CacheEntry::Failed(CompileError::LiftFailed))));

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn persist_appends_to_log_without_rewriting_snapshot() {
        let dir = std::env::temp_dir().join("rake-driver-cache-appendlog");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();

        let cache = SynthCache::persistent(&dir);
        cache.store("k1", CacheEntry::Failed(CompileError::LiftFailed));
        cache.persist().unwrap();
        // The first persist bootstraps the snapshot (and empties the log).
        let snapshot_after_one = std::fs::read_to_string(dir.join(CACHE_FILE)).unwrap();
        assert!(!dir.join(LOG_FILE).exists(), "bootstrap compaction folds the log away");

        cache.store("k2", CacheEntry::Failed(CompileError::LowerFailed));
        cache.persist().unwrap();
        let log_after_two = std::fs::metadata(dir.join(LOG_FILE)).unwrap().len();
        assert!(log_after_two > 0, "later persists append to the log");
        assert_eq!(
            std::fs::read_to_string(dir.join(CACHE_FILE)).unwrap(),
            snapshot_after_one,
            "an append-sized persist must not rewrite the snapshot"
        );
        assert_eq!(cache.stats().appended, 2);

        // Idempotent re-store + persist: nothing new to flush.
        cache.store("k1", CacheEntry::Failed(CompileError::LiftFailed));
        cache.persist().unwrap();
        assert_eq!(
            std::fs::metadata(dir.join(LOG_FILE)).unwrap().len(),
            log_after_two,
            "re-storing an identical entry must not grow the log"
        );

        let warm = SynthCache::persistent(&dir);
        assert_eq!(warm.len(), 2);

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn oversized_log_is_compacted_into_snapshot() {
        let dir = std::env::temp_dir().join("rake-driver-cache-compact");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();

        let limits = CacheLimits { log_compact_bytes: 64, ..CacheLimits::unbounded() };
        let cache = SynthCache::bounded(&dir, limits);
        for i in 0..4 {
            cache.store(&format!("key-{i}"), CacheEntry::Failed(CompileError::LiftFailed));
            cache.persist().unwrap();
        }
        assert!(cache.stats().compactions >= 1, "a 64-byte threshold must trigger compaction");
        assert!(dir.join(CACHE_FILE).exists(), "compaction writes the snapshot");
        let (snapshot_bytes, log_bytes) = cache.disk_bytes();
        assert!(snapshot_bytes > 0);
        assert!(log_bytes <= 64, "the log shrinks back under the threshold after compaction");

        let warm = SynthCache::persistent(&dir);
        assert_eq!(warm.len(), 4, "compaction must not lose entries");
        assert_eq!(warm.stats().corrupted, 0);

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn eviction_prefers_cheap_tiers_then_lru() {
        let limits = CacheLimits { max_entries: Some(3), ..CacheLimits::unbounded() };
        let cache = SynthCache::in_memory_bounded(limits);
        cache.store("full", CacheEntry::Compiled(artifacts_at(Tier::Full)));
        cache.store("direct-old", CacheEntry::Compiled(artifacts_at(Tier::Direct)));
        cache.store("direct-new", CacheEntry::Compiled(artifacts_at(Tier::Direct)));
        // Refresh direct-old: within the Direct class, direct-new is now
        // the least recently used.
        assert!(cache.lookup("direct-old").is_some());

        cache.store("negative", CacheEntry::Failed(CompileError::LiftFailed));
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.stats().evicted, 1);
        assert!(cache.contains("full"), "a Full-tier proof must outlive cheap Direct-tier entries");
        assert!(cache.contains("negative"), "negative verdicts are evicted last");
        assert!(cache.contains("direct-old"), "LRU within the class: the touched entry survives");
        assert!(!cache.contains("direct-new"), "the cold Direct entry goes first");
    }

    #[test]
    fn byte_bound_evicts_but_keeps_at_least_one_entry() {
        let limits = CacheLimits { max_bytes: Some(1), ..CacheLimits::unbounded() };
        let cache = SynthCache::in_memory_bounded(limits);
        cache.store("a", CacheEntry::Failed(CompileError::LiftFailed));
        assert_eq!(cache.len(), 1, "a single oversized entry is retained");
        cache.store("b", CacheEntry::Failed(CompileError::LowerFailed));
        assert_eq!(cache.len(), 1, "the byte bound holds the cache at one entry");
        assert_eq!(cache.stats().evicted, 1);
        assert!(cache.total_bytes() > 0);
    }

    #[test]
    fn bounded_load_trims_disk_state() {
        let dir = std::env::temp_dir().join("rake-driver-cache-boundload");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();

        let writer = SynthCache::persistent(&dir);
        for i in 0..8 {
            writer.store(&format!("key-{i}"), CacheEntry::Failed(CompileError::LiftFailed));
        }
        writer.persist().unwrap();

        let limits = CacheLimits { max_entries: Some(3), ..CacheLimits::unbounded() };
        let bounded = SynthCache::bounded(&dir, limits);
        assert_eq!(bounded.len(), 3, "load must respect the entry bound");
        assert_eq!(bounded.stats().evicted, 5);

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_respects_bounds_on_disk() {
        let dir = std::env::temp_dir().join("rake-driver-cache-boundcompact");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();

        let limits = CacheLimits { max_entries: Some(2), max_bytes: None, log_compact_bytes: 1 };
        let cache = SynthCache::bounded(&dir, limits);
        for i in 0..6 {
            cache.store(&format!("key-{i}"), CacheEntry::Failed(CompileError::LiftFailed));
            cache.persist().unwrap();
        }
        // Every persist compacted (1-byte threshold); the snapshot must
        // carry at most max_entries entries, so the file size plateaus.
        let warm = SynthCache::persistent(&dir);
        assert!(warm.len() <= 2, "snapshot must be bounded, found {} entries", warm.len());

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn quarantine_roundtrips_and_meets_any_floor() {
        let dir = std::env::temp_dir().join("rake-driver-cache-quarantine");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();

        let cache = SynthCache::persistent(&dir);
        cache.quarantine("poison", "worker killed by signal 6", None);
        assert_eq!(cache.quarantine_reason("poison").as_deref(), Some("worker killed by signal 6"));
        assert_eq!(cache.quarantined_count(), 1);
        // Quarantine verdicts are floor-independent: they answer even the
        // strictest request (re-running would just crash another worker).
        assert!(cache.contains_meeting("poison", Tier::Full));
        assert!(matches!(
            cache.lookup_meeting("poison", Tier::Full),
            Some(CacheEntry::Quarantined(_))
        ));
        cache.persist().unwrap();

        // The verdict survives a restart via the normal snapshot/log path.
        let warm = SynthCache::persistent(&dir);
        let Some(CacheEntry::Quarantined(q)) = warm.lookup("poison") else {
            panic!("quarantine verdict must survive persistence");
        };
        assert_eq!(q.reason, "worker killed by signal 6");
        assert_eq!(q.expires_unix, None);

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn quarantine_expires_after_ttl() {
        let cache = SynthCache::in_memory();
        // An already-expired verdict (expiry in the past) reads as absent
        // everywhere and is dropped on first contact.
        cache.store(
            "stale",
            CacheEntry::Quarantined(QuarantineInfo {
                reason: "old crash".to_owned(),
                expires_unix: Some(1),
            }),
        );
        assert!(cache.quarantine_reason("stale").is_none());
        assert!(!cache.contains_meeting("stale", Tier::Direct));
        assert!(cache.lookup_meeting("stale", Tier::Direct).is_none());
        assert_eq!(cache.len(), 0, "expired verdicts are dropped, not served");

        // A fresh TTL keeps the verdict live.
        cache.quarantine("live", "recent crash", Some(std::time::Duration::from_secs(3600)));
        assert!(cache.quarantine_reason("live").is_some());
        assert_eq!(cache.quarantined_count(), 1);

        // Recompiling a previously-quarantined key overwrites the verdict.
        cache.store("live", CacheEntry::Compiled(artifacts_at(Tier::Full)));
        assert!(cache.quarantine_reason("live").is_none());
        assert!(matches!(cache.lookup("live"), Some(CacheEntry::Compiled(_))));
    }

    #[test]
    fn floor_lookup_rejects_degraded_entries() {
        let cache = SynthCache::in_memory();
        cache.store("k", CacheEntry::Compiled(artifacts_at(Tier::Direct)));
        assert!(cache.lookup_meeting("k", Tier::Direct).is_some());
        assert!(cache.lookup_meeting("k", Tier::Full).is_none(), "Direct entry under a Full floor");
        assert!(!cache.contains_meeting("k", Tier::Reduced));
        assert!(cache.contains_meeting("k", Tier::Direct));
        let stats = cache.stats();
        assert_eq!(stats.floor_misses, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 1);

        // Negative entries are primary-tier verdicts: they meet any floor.
        cache.store("neg", CacheEntry::Failed(CompileError::LiftFailed));
        assert!(cache.lookup_meeting("neg", Tier::Full).is_some());
        assert!(cache.contains_meeting("neg", Tier::Full));

        // Recompiling at a better tier overwrites; the floor now passes.
        cache.store("k", CacheEntry::Compiled(artifacts_at(Tier::Full)));
        assert!(cache.lookup_meeting("k", Tier::Full).is_some());
    }
}
