//! The content-addressed synthesis cache.
//!
//! Keys are canonical-form S-expressions (see [`crate::canon`]) combined
//! with a fingerprint of the target geometry and search options — two
//! batches compiled for different machines or under different ablations
//! never share entries. Values are either the synthesized artifacts (in
//! canonical buffer names, renamed on the way out) or a *negative* entry
//! recording a deterministic failure, so known-unliftable tiles are not
//! re-searched. Timeouts and panics are never negative-cached: they do not
//! prove anything about the tile.
//!
//! The cache has two layers: a process-wide in-memory map, and an optional
//! JSON file (`synthcache.json` in the configured directory) giving warm
//! starts across processes. A corrupted or unreadable file is reported to
//! stderr and treated as a cold start — it never aborts compilation.

use std::collections::HashMap;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

use rake::CompileError;
use synth::{LiftRule, LiftStep, LiftTrace};

use crate::json::{self, Json};
use crate::tier::Tier;

/// File name of the persistent layer inside the cache directory.
pub const CACHE_FILE: &str = "synthcache.json";

/// Synthesized artifacts stored under a canonical key. Buffer names inside
/// are canonical (`b0, b1, …`); [`crate::canon::rename_uber`] /
/// [`crate::canon::rename_hvx`] map them back per requesting tile.
#[derive(Debug, Clone)]
pub struct CachedArtifacts {
    /// The lifted Uber-IR expression.
    pub uber: uber_ir::UberExpr,
    /// The synthesized HVX expression.
    pub hvx: hvx::HvxExpr,
    /// The lifting trace (rendered with canonical buffer names).
    pub trace: LiftTrace,
    /// The degradation-ladder tier that produced the artifacts, so warm
    /// cache hits report honestly which budget the program came from.
    pub tier: Tier,
}

/// One cache entry.
#[derive(Debug, Clone)]
pub enum CacheEntry {
    /// A successful compilation.
    Compiled(CachedArtifacts),
    /// A deterministic failure (e.g. no verified lifting exists).
    Failed(CompileError),
}

/// Running cache-effectiveness counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found an entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries loaded from the persistent layer at startup.
    pub loaded: u64,
    /// Entries (or whole files) dropped as corrupted at startup.
    pub corrupted: u64,
}

/// The two-layer synthesis cache. All methods take `&self`; the cache is
/// shared across worker threads behind an `Arc`.
#[derive(Debug)]
pub struct SynthCache {
    mem: Mutex<HashMap<String, CacheEntry>>,
    path: Option<PathBuf>,
    stats: Mutex<CacheStats>,
    /// Serializes concurrent [`SynthCache::persist`] calls (workers
    /// persist after every completed job) so two threads never race on
    /// the same temporary file.
    persist_lock: Mutex<()>,
    /// Set by [`SynthCache::store`], cleared by [`SynthCache::persist`]:
    /// a clean cache makes persist a no-op, so all-cache-hit batches
    /// (the serving layer's warm path) never rewrite the file.
    dirty: AtomicBool,
}

impl SynthCache {
    /// A purely in-memory cache.
    pub fn in_memory() -> SynthCache {
        SynthCache {
            mem: Mutex::new(HashMap::new()),
            path: None,
            stats: Mutex::default(),
            persist_lock: Mutex::new(()),
            dirty: AtomicBool::new(false),
        }
    }

    /// A cache backed by `dir/synthcache.json`, loaded now if present.
    /// A corrupted file warns and starts cold; it never panics.
    pub fn persistent(dir: &Path) -> SynthCache {
        let path = dir.join(CACHE_FILE);
        let mut stats = CacheStats::default();
        let mem = match std::fs::read_to_string(&path) {
            Ok(text) => match load_entries(&text, &mut stats) {
                Ok(map) => map,
                Err(err) => {
                    eprintln!(
                        "warning: synthesis cache {} is corrupted ({err}); starting cold",
                        path.display()
                    );
                    stats.corrupted += 1;
                    HashMap::new()
                }
            },
            Err(err) if err.kind() == std::io::ErrorKind::NotFound => HashMap::new(),
            Err(err) => {
                eprintln!(
                    "warning: synthesis cache {} is unreadable ({err}); starting cold",
                    path.display()
                );
                stats.corrupted += 1;
                HashMap::new()
            }
        };
        SynthCache {
            mem: Mutex::new(mem),
            path: Some(path),
            stats: Mutex::new(stats),
            persist_lock: Mutex::new(()),
            dirty: AtomicBool::new(false),
        }
    }

    /// Look up a key, counting the hit or miss.
    pub fn lookup(&self, key: &str) -> Option<CacheEntry> {
        let found = self.mem.lock().unwrap().get(key).cloned();
        let mut stats = self.stats.lock().unwrap();
        match found {
            Some(_) => stats.hits += 1,
            None => stats.misses += 1,
        }
        found
    }

    /// Whether a key is present, without counting a hit or miss — for
    /// admission decisions that precede the real (counted) lookup.
    pub fn contains(&self, key: &str) -> bool {
        self.mem.lock().unwrap().contains_key(key)
    }

    /// Insert an entry. Deadline failures are rejected (they are not
    /// deterministic verdicts) — the call is a no-op for them.
    pub fn store(&self, key: &str, entry: CacheEntry) {
        if matches!(entry, CacheEntry::Failed(CompileError::DeadlineExceeded)) {
            return;
        }
        self.mem.lock().unwrap().insert(key.to_owned(), entry);
        self.dirty.store(true, Ordering::Release);
    }

    /// Number of entries currently held.
    pub fn len(&self) -> usize {
        self.mem.lock().unwrap().len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current hit/miss/load counters.
    pub fn stats(&self) -> CacheStats {
        *self.stats.lock().unwrap()
    }

    /// Write the persistent layer (if configured) atomically: take the
    /// cross-process advisory lock, merge entries other processes persisted
    /// since we last read the file, serialize to a per-process `<file>.tmp`,
    /// then rename over the target. Concurrent producers therefore union
    /// their entries instead of last-writer-wins dropping each other's work.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures, including a timeout waiting on another live
    /// process's lock (the caller decides whether they are fatal).
    pub fn persist(&self) -> std::io::Result<()> {
        let Some(path) = &self.path else { return Ok(()) };
        let _serialized = self.persist_lock.lock().unwrap();
        // Nothing stored since the last write: the file already holds
        // everything we know (entries only ever accumulate), so skip the
        // read-merge-rewrite cycle. A store racing this check re-marks
        // the cache dirty and the next persist picks it up.
        if !self.dirty.swap(false, Ordering::AcqRel) {
            return Ok(());
        }
        let write = || -> std::io::Result<()> {
            if let Some(dir) = path.parent() {
                std::fs::create_dir_all(dir)?;
            }
            let _cross_process = crate::lockfile::LockFile::acquire(
                &path.with_extension("json.lock"),
                std::time::Duration::from_secs(10),
            )?;
            self.merge_from_disk(path);
            let doc = dump_entries(&self.mem.lock().unwrap());
            let tmp = path.with_extension(format!("json.tmp.{}", std::process::id()));
            {
                let mut f = std::fs::File::create(&tmp)?;
                f.write_all(doc.to_string().as_bytes())?;
                f.sync_all()?;
            }
            std::fs::rename(&tmp, path)
        };
        let result = write();
        if result.is_err() {
            // The entries are still only in memory; make sure a later
            // persist retries instead of skipping as clean.
            self.dirty.store(true, Ordering::Release);
        }
        result
    }

    /// Fold entries currently on disk into memory, keeping our own entry on
    /// key collisions (ours is at least as fresh). Unreadable or corrupted
    /// files are ignored — persist then simply rewrites them.
    fn merge_from_disk(&self, path: &Path) {
        let Ok(text) = std::fs::read_to_string(path) else { return };
        let mut ignored = CacheStats::default();
        let Ok(disk) = load_entries(&text, &mut ignored) else { return };
        let mut mem = self.mem.lock().unwrap();
        for (key, entry) in disk {
            mem.entry(key).or_insert(entry);
        }
    }
}

fn rule_name(rule: LiftRule) -> &'static str {
    match rule {
        LiftRule::Update => "update",
        LiftRule::Replace => "replace",
        LiftRule::Extend => "extend",
    }
}

fn rule_from(name: &str) -> Option<LiftRule> {
    match name {
        "update" => Some(LiftRule::Update),
        "replace" => Some(LiftRule::Replace),
        "extend" => Some(LiftRule::Extend),
        _ => None,
    }
}

pub(crate) fn error_name(err: &CompileError) -> &'static str {
    match err {
        CompileError::NotQualifying => "not_qualifying",
        CompileError::LiftFailed => "lift_failed",
        CompileError::LowerFailed => "lower_failed",
        CompileError::FinalCheckFailed => "final_check_failed",
        CompileError::DeadlineExceeded => "deadline_exceeded",
    }
}

pub(crate) fn error_from(name: &str) -> Option<CompileError> {
    match name {
        "not_qualifying" => Some(CompileError::NotQualifying),
        "lift_failed" => Some(CompileError::LiftFailed),
        "lower_failed" => Some(CompileError::LowerFailed),
        "final_check_failed" => Some(CompileError::FinalCheckFailed),
        _ => None,
    }
}

fn dump_entries(map: &HashMap<String, CacheEntry>) -> Json {
    // Sort keys so the file is deterministic (easy to diff and to test).
    let mut keys: Vec<&String> = map.keys().collect();
    keys.sort();
    let entries = keys
        .into_iter()
        .map(|key| {
            let mut obj = vec![("key".to_owned(), Json::Str(key.clone()))];
            match &map[key] {
                CacheEntry::Compiled(a) => {
                    obj.push(("kind".to_owned(), "compiled".into()));
                    obj.push(("tier".to_owned(), a.tier.name().into()));
                    obj.push(("uber".to_owned(), uber_ir::sexpr::to_sexpr(&a.uber).into()));
                    obj.push(("hvx".to_owned(), hvx::sexpr::to_sexpr(&a.hvx).into()));
                    let steps = a
                        .trace
                        .steps
                        .iter()
                        .map(|s| {
                            Json::obj([
                                ("rule", rule_name(s.rule).into()),
                                ("halide", s.halide.as_str().into()),
                                ("lifted", s.lifted.as_str().into()),
                            ])
                        })
                        .collect();
                    obj.push(("trace".to_owned(), Json::Arr(steps)));
                }
                CacheEntry::Failed(err) => {
                    obj.push(("kind".to_owned(), "failed".into()));
                    obj.push(("error".to_owned(), error_name(err).into()));
                }
            }
            Json::Obj(obj)
        })
        .collect();
    Json::obj([("version", 1u64.into()), ("entries", Json::Arr(entries))])
}

fn load_entries(text: &str, stats: &mut CacheStats) -> Result<HashMap<String, CacheEntry>, String> {
    let doc = json::parse(text).map_err(|e| e.to_string())?;
    if doc.get("version").and_then(Json::as_i64) != Some(1) {
        return Err("unsupported cache version".to_owned());
    }
    let entries = doc
        .get("entries")
        .and_then(Json::as_arr)
        .ok_or_else(|| "missing `entries` array".to_owned())?;
    let mut map = HashMap::new();
    for entry in entries {
        match load_entry(entry) {
            Some((key, value)) => {
                stats.loaded += 1;
                map.insert(key, value);
            }
            None => {
                stats.corrupted += 1;
                eprintln!("warning: skipping malformed synthesis cache entry");
            }
        }
    }
    Ok(map)
}

fn load_entry(entry: &Json) -> Option<(String, CacheEntry)> {
    let key = entry.get("key")?.as_str()?.to_owned();
    let value = match entry.get("kind")?.as_str()? {
        "compiled" => {
            let uber = uber_ir::sexpr::parse(entry.get("uber")?.as_str()?).ok()?;
            let hvx = hvx::sexpr::parse(entry.get("hvx")?.as_str()?).ok()?;
            let mut trace = LiftTrace::default();
            for step in entry.get("trace")?.as_arr()? {
                trace.steps.push(LiftStep {
                    rule: rule_from(step.get("rule")?.as_str()?)?,
                    halide: step.get("halide")?.as_str()?.to_owned(),
                    lifted: step.get("lifted")?.as_str()?.to_owned(),
                });
            }
            // Entries from before tiering default to the full tier.
            let tier = entry
                .get("tier")
                .and_then(Json::as_str)
                .and_then(Tier::from_name)
                .unwrap_or(Tier::Full);
            CacheEntry::Compiled(CachedArtifacts { uber, hvx, trace, tier })
        }
        "failed" => CacheEntry::Failed(error_from(entry.get("error")?.as_str()?)?),
        _ => return None,
    };
    Some((key, value))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lanes::ElemType::{U16, U8};

    fn artifacts() -> CachedArtifacts {
        let hvx = hvx::HvxExpr::op(
            hvx::Op::Vtmpy { elem: U8, w0: 1, w1: 2 },
            vec![hvx::HvxExpr::vmem("b0", U8, -1, 0), hvx::HvxExpr::vmem("b0", U8, 7, 0)],
        );
        let uber = uber_ir::UberExpr::conv("b0", U8, -1, 0, &[1, 2, 1], U16);
        let mut trace = LiftTrace::default();
        trace.steps.push(LiftStep {
            rule: LiftRule::Update,
            halide: "u16(b0(x-1, y))".to_owned(),
            lifted: "(vs-mpy-add ...)".to_owned(),
        });
        CachedArtifacts { uber, hvx, trace, tier: Tier::Reduced }
    }

    #[test]
    fn json_roundtrip_preserves_entries() {
        let dir = std::env::temp_dir().join("rake-driver-cache-roundtrip");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();

        let cache = SynthCache::persistent(&dir);
        cache.store("k1|hvx128", CacheEntry::Compiled(artifacts()));
        cache.store("k2|hvx128", CacheEntry::Failed(CompileError::LiftFailed));
        // Deadline failures must not be persisted.
        cache.store("k3|hvx128", CacheEntry::Failed(CompileError::DeadlineExceeded));
        cache.persist().unwrap();

        let warm = SynthCache::persistent(&dir);
        assert_eq!(warm.len(), 2);
        assert_eq!(warm.stats().loaded, 2);
        let Some(CacheEntry::Compiled(a)) = warm.lookup("k1|hvx128") else {
            panic!("expected compiled entry");
        };
        let orig = artifacts();
        assert_eq!(a.uber, orig.uber);
        assert_eq!(a.hvx, orig.hvx);
        assert_eq!(a.tier, Tier::Reduced, "producing tier must survive the roundtrip");
        assert_eq!(a.trace.steps.len(), 1);
        assert_eq!(a.trace.steps[0].rule, LiftRule::Update);
        let Some(CacheEntry::Failed(err)) = warm.lookup("k2|hvx128") else {
            panic!("expected failed entry");
        };
        assert_eq!(err, CompileError::LiftFailed);
        assert!(warm.lookup("k3|hvx128").is_none());

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupted_file_warns_and_starts_cold() {
        let dir = std::env::temp_dir().join("rake-driver-cache-corrupt");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join(CACHE_FILE), "{not json at all").unwrap();

        let cache = SynthCache::persistent(&dir);
        assert!(cache.is_empty());
        assert_eq!(cache.stats().corrupted, 1);
        // Still fully usable, and persist() repairs the file.
        cache.store("k", CacheEntry::Failed(CompileError::LowerFailed));
        cache.persist().unwrap();
        let warm = SynthCache::persistent(&dir);
        assert_eq!(warm.len(), 1);

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn malformed_entries_are_skipped_not_fatal() {
        let dir = std::env::temp_dir().join("rake-driver-cache-badentry");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let text = r#"{"version":1,"entries":[
            {"key":"good","kind":"failed","error":"lift_failed"},
            {"key":"bad","kind":"compiled","uber":"(not valid","hvx":"(nope","trace":[]},
            {"key":"worse","kind":"unknown"}
        ]}"#;
        std::fs::write(dir.join(CACHE_FILE), text).unwrap();

        let cache = SynthCache::persistent(&dir);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.stats().loaded, 1);
        assert_eq!(cache.stats().corrupted, 2);
        assert!(matches!(cache.lookup("good"), Some(CacheEntry::Failed(CompileError::LiftFailed))));

        let _ = std::fs::remove_dir_all(&dir);
    }
}
