//! A minimal JSON value type with serializer and parser.
//!
//! The driver persists its cache and emits event logs as JSON, but the
//! build must work without any external crates, so this module hand-rolls
//! the small subset needed: objects, arrays, strings, integers, floats,
//! booleans and null. Object key order is preserved (serialization is
//! deterministic).

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number; integers survive a round-trip exactly up to 2^53.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Build an object from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// Look up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload as `i64`, if this is a number.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Num(n) => Some(*n as i64),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_owned())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::Num(n as f64)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::Num(n as f64)
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Num(n)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => write!(f, "null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9.0e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                write!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "]")
            }
            Json::Obj(pairs) => {
                write!(f, "{{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write_escaped(f, k)?;
                    write!(f, ":{v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    write!(f, "\"")?;
    for c in s.chars() {
        match c {
            '"' => write!(f, "\\\"")?,
            '\\' => write!(f, "\\\\")?,
            '\n' => write!(f, "\\n")?,
            '\r' => write!(f, "\\r")?,
            '\t' => write!(f, "\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    write!(f, "\"")
}

/// A parse failure with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parse a JSON document.
///
/// # Errors
///
/// Returns [`JsonError`] on malformed input or trailing garbage.
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = P { input: input.as_bytes(), pos: 0 };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.input.len() {
        return p.err("trailing input after value");
    }
    Ok(v)
}

struct P<'s> {
    input: &'s [u8],
    pos: usize,
}

impl P<'_> {
    fn err<T>(&self, message: impl Into<String>) -> Result<T, JsonError> {
        Err(JsonError { offset: self.pos, message: message.into() })
    }

    fn skip_ws(&mut self) {
        while self.pos < self.input.len() && self.input[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.input.get(self.pos).copied()
    }

    fn eat(&mut self, c: u8) -> Result<(), JsonError> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(format!("expected `{}`", c as char))
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.input[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            self.err(format!("expected `{word}`"))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.lit("null", Json::Null),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => {
                self.eat(b'[')?;
                let mut items = Vec::new();
                if self.peek() != Some(b']') {
                    loop {
                        items.push(self.value()?);
                        match self.peek() {
                            Some(b',') => self.pos += 1,
                            _ => break,
                        }
                    }
                }
                self.eat(b']')?;
                Ok(Json::Arr(items))
            }
            Some(b'{') => {
                self.eat(b'{')?;
                let mut pairs = Vec::new();
                if self.peek() != Some(b'}') {
                    loop {
                        let k = self.string()?;
                        self.eat(b':')?;
                        pairs.push((k, self.value()?));
                        match self.peek() {
                            Some(b',') => self.pos += 1,
                            _ => break,
                        }
                    }
                }
                self.eat(b'}')?;
                Ok(Json::Obj(pairs))
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => self.err("expected a JSON value"),
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let Some(&b) = self.input.get(self.pos) else {
                return self.err("unterminated string");
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&esc) = self.input.get(self.pos) else {
                        return self.err("unterminated escape");
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let code = self.hex4()?;
                            match code {
                                0xd800..=0xdbff => {
                                    // High surrogate: a low surrogate escape
                                    // must follow immediately (RFC 8259).
                                    if self.input.get(self.pos..self.pos + 2) != Some(b"\\u") {
                                        return self.err("unpaired high surrogate in \\u escape");
                                    }
                                    self.pos += 2;
                                    let low = self.hex4()?;
                                    if !(0xdc00..=0xdfff).contains(&low) {
                                        return self.err("unpaired high surrogate in \\u escape");
                                    }
                                    let c = 0x10000 + ((code - 0xd800) << 10) + (low - 0xdc00);
                                    out.push(char::from_u32(c).expect("valid supplementary char"));
                                }
                                0xdc00..=0xdfff => {
                                    return self.err("unpaired low surrogate in \\u escape");
                                }
                                _ => out
                                    .push(char::from_u32(code).expect("non-surrogate BMP scalar")),
                            }
                        }
                        other => return self.err(format!("bad escape `\\{}`", other as char)),
                    }
                }
                _ => {
                    // Collect the full UTF-8 sequence starting at b.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let end = start + len;
                    let Some(chunk) = self.input.get(start..end) else {
                        return self.err("truncated UTF-8");
                    };
                    let Ok(s) = std::str::from_utf8(chunk) else {
                        return self.err("invalid UTF-8");
                    };
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let hex = self
            .input
            .get(self.pos..self.pos + 4)
            .filter(|h| h.iter().all(u8::is_ascii_hexdigit))
            .and_then(|h| std::str::from_utf8(h).ok())
            .and_then(|h| u32::from_str_radix(h, 16).ok());
        let Some(code) = hex else {
            return self.err("bad \\u escape");
        };
        self.pos += 4;
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        while self.pos < self.input.len()
            && matches!(self.input[self.pos], b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.input[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| JsonError { offset: start, message: format!("bad number `{text}`") })
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_nested_document() {
        let v = Json::obj([
            ("name", "gaussian3x3".into()),
            ("hits", 3u64.into()),
            ("ok", true.into()),
            ("t", 0.25.into()),
            ("items", Json::Arr(vec![Json::Null, "a\"b\\c\n".into(), 42u64.into()])),
        ]);
        let text = v.to_string();
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn parses_whitespace_and_unicode() {
        let v = parse(" { \"k\" : [ 1 , -2.5 , \"\\u0041µ\" ] } ").unwrap();
        assert_eq!(
            v.get("k").unwrap().as_arr().unwrap(),
            &[Json::Num(1.0), Json::Num(-2.5), Json::Str("Aµ".into())]
        );
    }

    #[test]
    fn decodes_surrogate_pairs() {
        // \ud83e\udd80 is U+1F980, \ud800\udc00 is U+10000 (lowest astral).
        let v = parse("\"a \\ud83e\\udd80 \\ud800\\udc00 z\"").unwrap();
        assert_eq!(v.as_str().unwrap(), "a \u{1f980} \u{10000} z");
    }

    #[test]
    fn rejects_lone_surrogates() {
        for input in [
            "\"\\ud83e\"",        // high surrogate at end of string
            "\"\\ud83ex\"",       // high surrogate followed by plain char
            "\"\\ud83e\\n\"",     // high surrogate followed by non-\u escape
            "\"\\ud83e\\ud83e\"", // high surrogate followed by high surrogate
            "\"\\udd80\"",        // lone low surrogate
        ] {
            let err = parse(input).unwrap_err();
            assert!(err.message.contains("surrogate"), "{input}: {}", err.message);
        }
        assert!(parse("\"\\u12g4\"").is_err());
        assert!(parse("\"\\u+123\"").is_err());
    }

    #[test]
    fn astral_strings_roundtrip() {
        let v = Json::Str("plane-1: \u{1f980}\u{10000}\u{10ffff} \u{b5}".into());
        let text = v.to_string();
        assert_eq!(parse(&text).unwrap(), v);
        // The writer emits astral chars as raw UTF-8; also accept the fully
        // escaped form a foreign producer would emit for the same string.
        let escaped = "\"plane-1: \\ud83e\\udd80\\ud800\\udc00\\udbff\\udfff \\u00b5\"";
        assert_eq!(parse(escaped).unwrap(), v);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("{\"a\":1} junk").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("nul").is_err());
    }
}
