//! A minimal JSON value type with serializer and parser.
//!
//! The driver persists its cache and emits event logs as JSON, but the
//! build must work without any external crates, so this module hand-rolls
//! the small subset needed: objects, arrays, strings, integers, floats,
//! booleans and null. Object key order is preserved (serialization is
//! deterministic).
//!
//! The parser is also the front door for *untrusted network input* (the
//! `rake-served` compilation server feeds request bodies through it), so
//! it is hardened: document size and nesting depth are bounded
//! ([`ParseLimits`]), raw control bytes in strings are rejected per RFC
//! 8259, and non-finite number literals are errors. Malformed input of
//! any shape returns [`JsonError`] — never a panic, never unbounded
//! recursion.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number; integers survive a round-trip exactly up to 2^53.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Build an object from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// Look up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload as `i64`, if this is a number.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Num(n) => Some(*n as i64),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_owned())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::Num(n as f64)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::Num(n as f64)
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Num(n)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => write!(f, "null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9.0e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                write!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "]")
            }
            Json::Obj(pairs) => {
                write!(f, "{{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write_escaped(f, k)?;
                    write!(f, ":{v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    write!(f, "\"")?;
    for c in s.chars() {
        match c {
            '"' => write!(f, "\\\"")?,
            '\\' => write!(f, "\\\\")?,
            '\n' => write!(f, "\\n")?,
            '\r' => write!(f, "\\r")?,
            '\t' => write!(f, "\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    write!(f, "\"")
}

/// A parse failure with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Resource bounds enforced while parsing. The defaults are generous for
/// trusted files (cache, journal); network-facing callers tighten
/// `max_bytes` to their request-size limit.
#[derive(Debug, Clone, Copy)]
pub struct ParseLimits {
    /// Maximum nesting depth of arrays/objects. Parsing is recursive, so
    /// this bounds stack use; exceeding it is an error, not an overflow.
    pub max_depth: usize,
    /// Maximum document size in bytes.
    pub max_bytes: usize,
}

impl Default for ParseLimits {
    fn default() -> ParseLimits {
        ParseLimits { max_depth: 128, max_bytes: 64 << 20 }
    }
}

/// Parse a JSON document under [`ParseLimits::default`].
///
/// # Errors
///
/// Returns [`JsonError`] on malformed input, trailing garbage, or a
/// document exceeding the default limits.
pub fn parse(input: &str) -> Result<Json, JsonError> {
    parse_with_limits(input, ParseLimits::default())
}

/// [`parse`] with explicit resource bounds.
///
/// # Errors
///
/// Returns [`JsonError`] on malformed input, trailing garbage, or a
/// document exceeding `limits`.
pub fn parse_with_limits(input: &str, limits: ParseLimits) -> Result<Json, JsonError> {
    if input.len() > limits.max_bytes {
        return Err(JsonError {
            offset: limits.max_bytes,
            message: format!("document exceeds {} bytes", limits.max_bytes),
        });
    }
    let mut p = P { input: input.as_bytes(), pos: 0, depth: 0, limits };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.input.len() {
        return p.err("trailing input after value");
    }
    Ok(v)
}

struct P<'s> {
    input: &'s [u8],
    pos: usize,
    depth: usize,
    limits: ParseLimits,
}

impl P<'_> {
    fn err<T>(&self, message: impl Into<String>) -> Result<T, JsonError> {
        Err(JsonError { offset: self.pos, message: message.into() })
    }

    fn skip_ws(&mut self) {
        while self.pos < self.input.len() && self.input[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.input.get(self.pos).copied()
    }

    fn eat(&mut self, c: u8) -> Result<(), JsonError> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(format!("expected `{}`", c as char))
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.input[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            self.err(format!("expected `{word}`"))
        }
    }

    /// Descend into a nested array/object; errors past the depth limit.
    fn enter(&mut self) -> Result<(), JsonError> {
        self.depth += 1;
        if self.depth > self.limits.max_depth {
            return self.err(format!("nesting exceeds {} levels", self.limits.max_depth));
        }
        Ok(())
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.lit("null", Json::Null),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => {
                self.enter()?;
                self.eat(b'[')?;
                let mut items = Vec::new();
                if self.peek() != Some(b']') {
                    loop {
                        items.push(self.value()?);
                        match self.peek() {
                            Some(b',') => self.pos += 1,
                            _ => break,
                        }
                    }
                }
                self.eat(b']')?;
                self.depth -= 1;
                Ok(Json::Arr(items))
            }
            Some(b'{') => {
                self.enter()?;
                self.eat(b'{')?;
                let mut pairs = Vec::new();
                if self.peek() != Some(b'}') {
                    loop {
                        let k = self.string()?;
                        self.eat(b':')?;
                        pairs.push((k, self.value()?));
                        match self.peek() {
                            Some(b',') => self.pos += 1,
                            _ => break,
                        }
                    }
                }
                self.eat(b'}')?;
                self.depth -= 1;
                Ok(Json::Obj(pairs))
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => self.err("expected a JSON value"),
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let Some(&b) = self.input.get(self.pos) else {
                return self.err("unterminated string");
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&esc) = self.input.get(self.pos) else {
                        return self.err("unterminated escape");
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let code = self.hex4()?;
                            match code {
                                0xd800..=0xdbff => {
                                    // High surrogate: a low surrogate escape
                                    // must follow immediately (RFC 8259).
                                    if self.input.get(self.pos..self.pos + 2) != Some(b"\\u") {
                                        return self.err("unpaired high surrogate in \\u escape");
                                    }
                                    self.pos += 2;
                                    let low = self.hex4()?;
                                    if !(0xdc00..=0xdfff).contains(&low) {
                                        return self.err("unpaired high surrogate in \\u escape");
                                    }
                                    let c = 0x10000 + ((code - 0xd800) << 10) + (low - 0xdc00);
                                    out.push(char::from_u32(c).expect("valid supplementary char"));
                                }
                                0xdc00..=0xdfff => {
                                    return self.err("unpaired low surrogate in \\u escape");
                                }
                                _ => out
                                    .push(char::from_u32(code).expect("non-surrogate BMP scalar")),
                            }
                        }
                        other => return self.err(format!("bad escape `\\{}`", other as char)),
                    }
                }
                // RFC 8259: control characters must be escaped. This also
                // rejects raw NUL bytes smuggled into strings.
                0x00..=0x1f => {
                    self.pos -= 1;
                    return self.err(format!("unescaped control character 0x{b:02x} in string"));
                }
                _ => {
                    // Collect the full UTF-8 sequence starting at b.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let end = start + len;
                    let Some(chunk) = self.input.get(start..end) else {
                        return self.err("truncated UTF-8");
                    };
                    let Ok(s) = std::str::from_utf8(chunk) else {
                        return self.err("invalid UTF-8");
                    };
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let hex = self
            .input
            .get(self.pos..self.pos + 4)
            .filter(|h| h.iter().all(u8::is_ascii_hexdigit))
            .and_then(|h| std::str::from_utf8(h).ok())
            .and_then(|h| u32::from_str_radix(h, 16).ok());
        let Some(code) = hex else {
            return self.err("bad \\u escape");
        };
        self.pos += 4;
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        while self.pos < self.input.len()
            && matches!(self.input[self.pos], b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.input[start..self.pos]).unwrap();
        match text.parse::<f64>() {
            // `1e999` parses to infinity; JSON has no representation for
            // non-finite values, so refuse rather than round-trip a lie.
            Ok(n) if n.is_finite() => Ok(Json::Num(n)),
            Ok(_) => Err(JsonError {
                offset: start,
                message: format!("number `{text}` is out of range"),
            }),
            Err(_) => Err(JsonError { offset: start, message: format!("bad number `{text}`") }),
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_nested_document() {
        let v = Json::obj([
            ("name", "gaussian3x3".into()),
            ("hits", 3u64.into()),
            ("ok", true.into()),
            ("t", 0.25.into()),
            ("items", Json::Arr(vec![Json::Null, "a\"b\\c\n".into(), 42u64.into()])),
        ]);
        let text = v.to_string();
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn parses_whitespace_and_unicode() {
        let v = parse(" { \"k\" : [ 1 , -2.5 , \"\\u0041µ\" ] } ").unwrap();
        assert_eq!(
            v.get("k").unwrap().as_arr().unwrap(),
            &[Json::Num(1.0), Json::Num(-2.5), Json::Str("Aµ".into())]
        );
    }

    #[test]
    fn decodes_surrogate_pairs() {
        // \ud83e\udd80 is U+1F980, \ud800\udc00 is U+10000 (lowest astral).
        let v = parse("\"a \\ud83e\\udd80 \\ud800\\udc00 z\"").unwrap();
        assert_eq!(v.as_str().unwrap(), "a \u{1f980} \u{10000} z");
    }

    #[test]
    fn rejects_lone_surrogates() {
        for input in [
            "\"\\ud83e\"",        // high surrogate at end of string
            "\"\\ud83ex\"",       // high surrogate followed by plain char
            "\"\\ud83e\\n\"",     // high surrogate followed by non-\u escape
            "\"\\ud83e\\ud83e\"", // high surrogate followed by high surrogate
            "\"\\udd80\"",        // lone low surrogate
        ] {
            let err = parse(input).unwrap_err();
            assert!(err.message.contains("surrogate"), "{input}: {}", err.message);
        }
        assert!(parse("\"\\u12g4\"").is_err());
        assert!(parse("\"\\u+123\"").is_err());
    }

    #[test]
    fn astral_strings_roundtrip() {
        let v = Json::Str("plane-1: \u{1f980}\u{10000}\u{10ffff} \u{b5}".into());
        let text = v.to_string();
        assert_eq!(parse(&text).unwrap(), v);
        // The writer emits astral chars as raw UTF-8; also accept the fully
        // escaped form a foreign producer would emit for the same string.
        let escaped = "\"plane-1: \\ud83e\\udd80\\ud800\\udc00\\udbff\\udfff \\u00b5\"";
        assert_eq!(parse(escaped).unwrap(), v);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("{\"a\":1} junk").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn enforces_depth_limit() {
        // A document just under the limit parses; one past it errors.
        let deep = |n: usize| format!("{}1{}", "[".repeat(n), "]".repeat(n));
        let limits = ParseLimits { max_depth: 16, ..ParseLimits::default() };
        assert!(parse_with_limits(&deep(16), limits).is_ok());
        let err = parse_with_limits(&deep(17), limits).unwrap_err();
        assert!(err.message.contains("nesting"), "{}", err.message);
        // Alternating object/array nesting counts every level.
        let mixed = format!("{}1{}", "{\"k\":[".repeat(9), "]}".repeat(9));
        assert!(parse_with_limits(&mixed, limits).is_err());
        // Pathologically deep input errors instead of blowing the stack,
        // even under the (larger) default limit.
        assert!(parse(&deep(100_000)).is_err());
        assert!(parse(&"[".repeat(100_000)).is_err());
    }

    #[test]
    fn enforces_size_limit() {
        let limits = ParseLimits { max_bytes: 8, ..ParseLimits::default() };
        assert!(parse_with_limits("[1,2]", limits).is_ok());
        let err = parse_with_limits("[1,2,3,4]", limits).unwrap_err();
        assert!(err.message.contains("bytes"), "{}", err.message);
    }

    #[test]
    fn rejects_raw_control_bytes_in_strings() {
        assert!(parse("\"a\u{0}b\"").is_err());
        assert!(parse("\"a\nb\"").is_err());
        assert!(parse("\"a\tb\"").is_err());
        // The escaped forms are fine.
        assert_eq!(parse("\"a\\u0000b\\nc\"").unwrap().as_str().unwrap(), "a\u{0}b\nc");
    }

    #[test]
    fn rejects_non_finite_numbers() {
        assert!(parse("1e999").is_err());
        assert!(parse("-1e999").is_err());
        assert!(parse("NaN").is_err());
        assert!(parse("1e308").is_ok());
    }

    #[test]
    fn malformed_inputs_error_without_panicking() {
        // Fuzz-style sweep: every prefix of a representative document, the
        // same with NUL bytes spliced at each position, and a grab bag of
        // adversarial fragments. All must return Err or Ok — never panic.
        let doc = r#"{"expr":"(add a b)","opts":{"lanes":128,"t":[1,-2.5e3,"\u0041\ud83e\udd80"]},"ok":true,"n":null}"#;
        for end in 0..doc.len() {
            if !doc.is_char_boundary(end) {
                continue;
            }
            assert!(parse(&doc[..end]).is_err(), "prefix of len {end} accepted");
        }
        for at in 0..doc.len() {
            if !doc.is_char_boundary(at) {
                continue;
            }
            let mut s = String::with_capacity(doc.len() + 1);
            s.push_str(&doc[..at]);
            s.push('\u{0}');
            s.push_str(&doc[at..]);
            assert!(parse(&s).is_err(), "NUL at {at} accepted");
        }
        for bad in [
            "\u{0}",
            "[,]",
            "{,}",
            "{\"a\"}",
            "{\"a\":}",
            "[1 2]",
            "01x",
            "--1",
            "+1",
            ".5",
            "1.",
            "\"\\\"",
            "\"\\u12\"",
            "truefalse",
            "[\"\\udead\"]",
            "{\"\u{0}\":1}",
            "[[[[\"\\ud800\"]]]]",
            "\t\r\n ",
            "}",
            "]",
            "\\",
            "\"a\" \"b\"",
        ] {
            let _ = parse(bad);
        }
    }
}
