//! Structured driver events, the write-ahead [`Journal`], and the batch
//! summary table.
//!
//! Every batch produces a stream of [`DriverEvent`]s: one `batch_started`,
//! one `job_completed` per *unique* job in completion order (appended and
//! flushed as each worker finishes — the write-ahead journal records that
//! [`crate::Driver::resume`] replays), one `job_finished` per input
//! expression in input order (with stage timings, cache outcome and queue
//! wait), and one `batch_finished`. The stream serializes to JSON Lines —
//! one self-describing object per line, keyed by an `"event"`
//! discriminator — so logs can be tailed, grepped, and post-processed
//! without this crate.
//!
//! The [`Journal`] is the on-disk form of that stream and doubles as the
//! write-ahead log. To keep restart cost bounded it *rotates* at a
//! configurable size: the file is folded into one compact `job_completed`
//! snapshot record per key (exactly the information replay consumes,
//! marked `"snapshot":true` and preceded by a `journal_rotated` marker)
//! written via tmp + rename, and subsequent events append as the tail.
//! Replay of snapshot + tail is byte-identical to replaying the unrotated
//! stream, because rotation preserves the latest record per key and
//! replay is last-record-wins. Rotation assumes a single writing process
//! per journal path (the serving layer shares one [`Journal`] across its
//! per-request drivers for exactly this reason).

use std::collections::{BTreeMap, HashMap};
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use synth::SynthStats;

use crate::json::{self, Json};
use crate::tier::Tier;

/// How one job concluded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutcomeKind {
    /// A verified HVX program was produced (fresh or from cache).
    Compiled,
    /// Synthesis returned a deterministic failure.
    Failed,
    /// The per-job wall-clock budget expired.
    TimedOut,
    /// The selector panicked; the job was isolated and the batch continued.
    Panicked,
    /// The batch's cancellation flag was raised before the job finished;
    /// not a verdict — resume recompiles these.
    Cancelled,
    /// The key is a known poison pill (it crashed isolated workers past
    /// the configured threshold) and was answered from its cached crash
    /// verdict without running synthesis.
    Quarantined,
}

impl OutcomeKind {
    /// Stable string used in JSONL and the summary table.
    pub fn name(self) -> &'static str {
        match self {
            OutcomeKind::Compiled => "compiled",
            OutcomeKind::Failed => "failed",
            OutcomeKind::TimedOut => "timed_out",
            OutcomeKind::Panicked => "panicked",
            OutcomeKind::Cancelled => "cancelled",
            OutcomeKind::Quarantined => "quarantined",
        }
    }

    /// Inverse of [`OutcomeKind::name`] (journal replay).
    pub fn from_name(name: &str) -> Option<OutcomeKind> {
        match name {
            "compiled" => Some(OutcomeKind::Compiled),
            "failed" => Some(OutcomeKind::Failed),
            "timed_out" => Some(OutcomeKind::TimedOut),
            "panicked" => Some(OutcomeKind::Panicked),
            "cancelled" => Some(OutcomeKind::Cancelled),
            "quarantined" => Some(OutcomeKind::Quarantined),
            _ => None,
        }
    }
}

/// Per-job record carried by [`DriverEvent::JobFinished`].
#[derive(Debug, Clone)]
pub struct JobRecord {
    /// Position of the expression in the input batch.
    pub index: usize,
    /// Caller-supplied label (workload name), if any.
    pub name: Option<String>,
    /// The content-addressed cache key.
    pub key: String,
    /// Whether the result came from the cache (memory or disk layer).
    pub cache_hit: bool,
    /// Time between batch submission and a worker picking the job up.
    pub queue_wait: Duration,
    /// Time the worker spent on the job (synthesis or cache rebuild).
    pub run_time: Duration,
    /// How the job concluded.
    pub outcome: OutcomeKind,
    /// Error or panic description for non-compiled outcomes.
    pub detail: Option<String>,
    /// Instruction count of the selected program, when compiled.
    pub instructions: Option<usize>,
    /// Synthesis statistics for the job (zero-query on cache hits).
    pub stats: SynthStats,
    /// The degradation-ladder tier that produced the program
    /// ([`Tier::Baseline`] for every non-compiled outcome).
    pub tier: Tier,
    /// Transient-deadline retries spent across the job's ladder tiers.
    pub retries: u32,
    /// Whether the chaos plane injected a fault into this job.
    pub fault_injected: bool,
    /// Whether the outcome was replayed from a prior run's journal.
    pub replayed: bool,
}

/// One entry of the driver's event stream.
#[derive(Debug, Clone)]
pub enum DriverEvent {
    /// A batch was submitted.
    BatchStarted {
        /// Number of input expressions.
        jobs: usize,
        /// Number of unique canonical keys (the deduplicated job count).
        unique: usize,
        /// Worker threads serving the batch.
        workers: usize,
        /// Cache entries available at submission time.
        cache_entries: usize,
    },
    /// One *unique* (deduplicated) job concluded — the write-ahead journal
    /// record, appended and flushed the moment a worker finishes, in
    /// completion (not input) order. [`crate::Driver::resume`] replays a
    /// batch from these.
    JobCompleted {
        /// The content-addressed cache key of the unique job.
        key: String,
        /// How the job concluded.
        outcome: OutcomeKind,
        /// Stable error name (`lift_failed`, ...) for failures, the panic
        /// description for panics.
        detail: Option<String>,
        /// The tier that produced the program ([`Tier::Baseline`] for
        /// non-compiled outcomes).
        tier: Tier,
        /// Transient-deadline retries spent across the ladder.
        retries: u32,
        /// Whether the chaos plane injected a fault.
        fault_injected: bool,
        /// Whether this outcome was itself replayed from an earlier
        /// journal.
        replayed: bool,
        /// Worker time spent on the job.
        run_time: Duration,
    },
    /// One job concluded.
    JobFinished(JobRecord),
    /// A compiled job was differentially validated against the Halide IR
    /// interpreter (emitted only when the driver runs with validation on).
    JobValidated {
        /// Position of the expression in the input batch.
        job: usize,
        /// Caller-supplied label, if any.
        name: Option<String>,
        /// The content-addressed cache key.
        key: String,
        /// Number of (environment, origin) points compared.
        checks: usize,
        /// Points where the program disagreed — non-zero is a miscompile.
        mismatches: usize,
    },
    /// The whole batch concluded.
    BatchFinished {
        /// Jobs per [`OutcomeKind`]: compiled, failed, timed out, panicked.
        compiled: usize,
        /// Jobs that failed deterministically.
        failed: usize,
        /// Jobs cut off by their deadline.
        timed_out: usize,
        /// Jobs whose worker panicked.
        panicked: usize,
        /// Jobs cancelled before they finished.
        cancelled: usize,
        /// Jobs answered from a cached poison-pill verdict.
        quarantined: usize,
        /// Jobs served from the cache.
        cache_hits: usize,
        /// End-to-end batch wall-clock time.
        wall: Duration,
    },
    /// Crash forensics from the supervision layer: an isolated worker
    /// subprocess died while (or shortly after) running a job. Emitted by
    /// the serving layer's supervisor, not by the in-process driver;
    /// journal replay ignores it (it is not a `job_completed` verdict).
    WorkerCrashed {
        /// The cache key of the job the worker was running, if any.
        key: Option<String>,
        /// The degradation tier the job was attempted at, if known.
        tier: Option<Tier>,
        /// What killed the worker: `signal`, `exit`, `wallclock`, `rss`,
        /// or `spawn` (the respawn itself failed).
        cause: String,
        /// The fatal signal number, when the worker died to one.
        signal: Option<i32>,
        /// Crashes this key has now caused (drives quarantine decisions).
        crashes_for_key: u32,
        /// The tail of the dead worker's stderr, for post-mortems.
        stderr_tail: String,
    },
}

fn ms(d: Duration) -> Json {
    // Round to microsecond granularity so logs stay compact.
    Json::Num((d.as_secs_f64() * 1e3 * 1e3).round() / 1e3)
}

impl DriverEvent {
    /// The JSON object form used for JSONL logging. Every record carries a
    /// `t_rel_us` field: microseconds on the process-wide monotonic trace
    /// clock at serialization time, so interleaved streams can be ordered
    /// without trusting the wall clock. Replay ignores it.
    pub fn to_json(&self) -> Json {
        let mut v = self.to_json_inner();
        if let Json::Obj(obj) = &mut v {
            // When the serializing thread sits inside a trace (the
            // serving layer's per-request tracing), stamp the trace ID so
            // journal lines join up with the exported span tree.
            if let Some(ctx) = trace::current() {
                obj.push(("trace".to_owned(), Json::Str(trace::fmt_id(ctx.trace_id))));
            }
            obj.push(("t_rel_us".to_owned(), trace::now_us().into()));
        }
        v
    }

    fn to_json_inner(&self) -> Json {
        match self {
            DriverEvent::BatchStarted { jobs, unique, workers, cache_entries } => Json::obj([
                ("event", "batch_started".into()),
                ("jobs", (*jobs).into()),
                ("unique", (*unique).into()),
                ("workers", (*workers).into()),
                ("cache_entries", (*cache_entries).into()),
            ]),
            DriverEvent::JobCompleted {
                key,
                outcome,
                detail,
                tier,
                retries,
                fault_injected,
                replayed,
                run_time,
            } => {
                let mut obj = vec![
                    ("event".to_owned(), "job_completed".into()),
                    ("key".to_owned(), key.as_str().into()),
                    ("outcome".to_owned(), outcome.name().into()),
                ];
                if let Some(detail) = detail {
                    obj.push(("detail".to_owned(), detail.as_str().into()));
                }
                obj.push(("tier".to_owned(), tier.name().into()));
                obj.push(("retries".to_owned(), (*retries as u64).into()));
                obj.push(("fault_injected".to_owned(), (*fault_injected).into()));
                if *replayed {
                    obj.push(("replayed".to_owned(), true.into()));
                }
                obj.push(("run_ms".to_owned(), ms(*run_time)));
                Json::Obj(obj)
            }
            DriverEvent::JobFinished(r) => {
                let mut obj = vec![
                    ("event".to_owned(), "job_finished".into()),
                    ("job".to_owned(), r.index.into()),
                ];
                if let Some(name) = &r.name {
                    obj.push(("name".to_owned(), name.as_str().into()));
                }
                obj.push(("key".to_owned(), r.key.as_str().into()));
                obj.push(("outcome".to_owned(), r.outcome.name().into()));
                if let Some(detail) = &r.detail {
                    obj.push(("detail".to_owned(), detail.as_str().into()));
                }
                obj.push(("tier".to_owned(), r.tier.name().into()));
                obj.push(("retries".to_owned(), (r.retries as u64).into()));
                obj.push(("fault_injected".to_owned(), r.fault_injected.into()));
                if r.replayed {
                    obj.push(("replayed".to_owned(), true.into()));
                }
                obj.push(("cache_hit".to_owned(), r.cache_hit.into()));
                obj.push(("queue_wait_ms".to_owned(), ms(r.queue_wait)));
                obj.push(("run_ms".to_owned(), ms(r.run_time)));
                if let Some(n) = r.instructions {
                    obj.push(("instructions".to_owned(), n.into()));
                }
                obj.push(("lifting_queries".to_owned(), r.stats.lifting_queries.into()));
                obj.push(("sketching_queries".to_owned(), r.stats.sketching_queries.into()));
                obj.push(("swizzling_queries".to_owned(), r.stats.swizzling_queries.into()));
                obj.push(("lifting_ms".to_owned(), ms(r.stats.lifting_time)));
                obj.push(("sketching_ms".to_owned(), ms(r.stats.sketching_time)));
                obj.push(("swizzling_ms".to_owned(), ms(r.stats.swizzling_time)));
                Json::Obj(obj)
            }
            DriverEvent::JobValidated { job, name, key, checks, mismatches } => {
                let mut obj = vec![
                    ("event".to_owned(), "job_validated".into()),
                    ("job".to_owned(), (*job).into()),
                ];
                if let Some(name) = name {
                    obj.push(("name".to_owned(), name.as_str().into()));
                }
                obj.push(("key".to_owned(), key.as_str().into()));
                obj.push(("checks".to_owned(), (*checks).into()));
                obj.push(("mismatches".to_owned(), (*mismatches).into()));
                Json::Obj(obj)
            }
            DriverEvent::BatchFinished {
                compiled,
                failed,
                timed_out,
                panicked,
                cancelled,
                quarantined,
                cache_hits,
                wall,
            } => Json::obj([
                ("event", "batch_finished".into()),
                ("compiled", (*compiled).into()),
                ("failed", (*failed).into()),
                ("timed_out", (*timed_out).into()),
                ("panicked", (*panicked).into()),
                ("cancelled", (*cancelled).into()),
                ("quarantined", (*quarantined).into()),
                ("cache_hits", (*cache_hits).into()),
                ("wall_ms", ms(*wall)),
            ]),
            DriverEvent::WorkerCrashed {
                key,
                tier,
                cause,
                signal,
                crashes_for_key,
                stderr_tail,
            } => {
                let mut obj = vec![("event".to_owned(), "worker_crashed".into())];
                if let Some(key) = key {
                    obj.push(("key".to_owned(), key.as_str().into()));
                }
                if let Some(tier) = tier {
                    obj.push(("tier".to_owned(), tier.name().into()));
                }
                obj.push(("cause".to_owned(), cause.as_str().into()));
                if let Some(signal) = signal {
                    obj.push(("signal".to_owned(), f64::from(*signal).into()));
                }
                obj.push(("crashes_for_key".to_owned(), u64::from(*crashes_for_key).into()));
                if !stderr_tail.is_empty() {
                    obj.push(("stderr_tail".to_owned(), stderr_tail.as_str().into()));
                }
                Json::Obj(obj)
            }
        }
    }

    /// One JSONL line (no trailing newline).
    pub fn to_jsonl(&self) -> String {
        self.to_json().to_string()
    }
}

/// A journal record replayed by [`crate::Driver::resume`].
#[derive(Debug, Clone)]
pub(crate) struct ReplayRecord {
    pub(crate) outcome: OutcomeKind,
    pub(crate) detail: Option<String>,
    pub(crate) retries: u32,
}

/// Parse the write-ahead journal at `path` into the latest
/// `job_completed` record per key. Torn or malformed lines — the final
/// append of a crashed run, a corrupted span — are skipped, never fatal.
/// Returns `None` when the file does not exist.
pub(crate) fn parse_journal(path: &Path) -> Option<HashMap<String, ReplayRecord>> {
    let bytes = std::fs::read(path).ok()?;
    Some(replay_records(&String::from_utf8_lossy(&bytes)))
}

/// The replay map of a journal text: last `job_completed` record per key,
/// unknown events (including rotation markers) and torn lines skipped.
fn replay_records(text: &str) -> HashMap<String, ReplayRecord> {
    let mut map = HashMap::new();
    for line in text.lines() {
        let Ok(v) = json::parse(line) else { continue };
        if v.get("event").and_then(Json::as_str) != Some("job_completed") {
            continue;
        }
        let Some(key) = v.get("key").and_then(Json::as_str) else { continue };
        let Some(outcome) =
            v.get("outcome").and_then(Json::as_str).and_then(OutcomeKind::from_name)
        else {
            continue;
        };
        let detail = v.get("detail").and_then(Json::as_str).map(str::to_owned);
        let retries = v.get("retries").and_then(Json::as_i64).and_then(|n| u32::try_from(n).ok());
        map.insert(key.to_owned(), ReplayRecord { outcome, detail, retries: retries.unwrap_or(0) });
    }
    map
}

/// The streaming JSONL journal: one line per event, with write-ahead
/// durability for the records that gate recovery and size-triggered
/// rotation keeping replay cost bounded (see the module docs).
#[derive(Debug)]
pub struct Journal {
    inner: Mutex<JournalInner>,
    path: PathBuf,
    /// Rotate once the file exceeds this many bytes; `None` never rotates.
    rotate_bytes: Option<u64>,
    rotations: AtomicU64,
}

#[derive(Debug)]
struct JournalInner {
    file: std::fs::File,
    bytes: u64,
}

impl Journal {
    /// Open (appending) or create the journal at `path`, rotating at
    /// `rotate_bytes` if given.
    ///
    /// # Errors
    ///
    /// Propagates failures creating the parent directory or opening the
    /// file.
    pub fn open(path: &Path, rotate_bytes: Option<u64>) -> io::Result<Journal> {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        let file = std::fs::OpenOptions::new().create(true).append(true).open(path)?;
        let bytes = file.metadata()?.len();
        Ok(Journal {
            inner: Mutex::new(JournalInner { file, bytes }),
            path: path.to_owned(),
            rotate_bytes,
            rotations: AtomicU64::new(0),
        })
    }

    /// The journal file's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Current size of the journal file in bytes.
    pub fn bytes(&self) -> u64 {
        self.inner.lock().unwrap().bytes
    }

    /// Rotations performed since this handle was opened.
    pub fn rotations(&self) -> u64 {
        self.rotations.load(Ordering::Relaxed)
    }

    /// Append one record and fsync it (write-ahead semantics: a record
    /// is only promised once it survives a crash). Reserve this for
    /// records that gate recovery — `job_completed` for fresh work.
    pub fn append(&self, event: &DriverEvent) {
        self.write(event, true);
    }

    /// Append one record without forcing it to disk. For informational
    /// records (batch markers, per-input stats, cache-hit completions):
    /// losing them to a crash costs nothing on resume, and skipping the
    /// fsync keeps all-cache-hit batches off the disk's commit path.
    pub fn append_relaxed(&self, event: &DriverEvent) {
        self.write(event, false);
    }

    fn write(&self, event: &DriverEvent, durable: bool) {
        let mut line = event.to_jsonl();
        line.push('\n');
        let mut inner = self.inner.lock().unwrap();
        let result = inner.file.write_all(line.as_bytes()).and_then(|()| {
            if durable {
                inner.file.sync_data()
            } else {
                Ok(())
            }
        });
        match result {
            Ok(()) => inner.bytes += line.len() as u64,
            Err(err) => {
                eprintln!("warning: failed to append event journal {}: {err}", self.path.display());
                return;
            }
        }
        if self.rotate_bytes.is_some_and(|limit| inner.bytes > limit) {
            if let Err(err) = self.rotate(&mut inner) {
                eprintln!("warning: failed to rotate event journal {}: {err}", self.path.display());
            }
        }
    }

    /// Fold the journal into its replay snapshot: one `job_completed`
    /// record per key (sorted, marked `"snapshot":true`) behind a
    /// `journal_rotated` marker, written tmp + fsync + rename. Replaying
    /// the rotated file yields exactly the same map as the original —
    /// informational events are dropped, which is the point (bounded
    /// restart cost). Called with the writer lock held.
    fn rotate(&self, inner: &mut JournalInner) -> io::Result<()> {
        let text = std::fs::read_to_string(&self.path)?;
        let records: BTreeMap<String, ReplayRecord> = replay_records(&text).into_iter().collect();
        let mut doc =
            Json::obj([("event", "journal_rotated".into()), ("records", records.len().into())])
                .to_string();
        doc.push('\n');
        for (key, rec) in records {
            let mut obj = vec![
                ("event".to_owned(), "job_completed".into()),
                ("key".to_owned(), Json::Str(key)),
                ("outcome".to_owned(), rec.outcome.name().into()),
            ];
            if let Some(detail) = rec.detail {
                obj.push(("detail".to_owned(), Json::Str(detail)));
            }
            obj.push(("retries".to_owned(), u64::from(rec.retries).into()));
            obj.push(("snapshot".to_owned(), true.into()));
            doc.push_str(&Json::Obj(obj).to_string());
            doc.push('\n');
        }
        let tmp = self.path.with_extension(format!("rotate.tmp.{}", std::process::id()));
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(doc.as_bytes())?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, &self.path)?;
        inner.file = std::fs::OpenOptions::new().create(true).append(true).open(&self.path)?;
        inner.bytes = inner.file.metadata()?.len();
        self.rotations.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }
}

/// Render the event stream as a human-readable summary table: one row per
/// job plus a totals line. Intended for end-of-batch console output.
pub fn summary_table(events: &[DriverEvent]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<4} {:<18} {:<9} {:<8} {:>5} {:>5} {:>8} {:>9} {:>7} {:>6}\n",
        "job", "name", "outcome", "tier", "retry", "cache", "wait_ms", "run_ms", "queries", "insns"
    ));
    let mut total_queries = 0u64;
    let mut degraded = 0usize;
    for event in events {
        let DriverEvent::JobFinished(r) = event else { continue };
        let queries =
            r.stats.lifting_queries + r.stats.sketching_queries + r.stats.swizzling_queries;
        total_queries += queries;
        degraded += usize::from(r.outcome == OutcomeKind::Compiled && r.tier != Tier::Full);
        out.push_str(&format!(
            "{:<4} {:<18} {:<9} {:<8} {:>5} {:>5} {:>8.1} {:>9.1} {:>7} {:>6}\n",
            r.index,
            r.name.as_deref().unwrap_or("-"),
            r.outcome.name(),
            r.tier.name(),
            r.retries,
            if r.cache_hit { "hit" } else { "miss" },
            r.queue_wait.as_secs_f64() * 1e3,
            r.run_time.as_secs_f64() * 1e3,
            queries,
            r.instructions.map_or_else(|| "-".to_owned(), |n| n.to_string()),
        ));
    }
    for event in events {
        let DriverEvent::BatchFinished {
            compiled,
            failed,
            timed_out,
            panicked,
            cancelled,
            quarantined,
            cache_hits,
            wall,
        } = event
        else {
            continue;
        };
        out.push_str(&format!(
            "total: {compiled} compiled ({degraded} on degraded tiers), {failed} failed, \
             {timed_out} timed out, {panicked} panicked, {cancelled} cancelled, \
             {quarantined} quarantined; {cache_hits} cache hits, {total_queries} queries, \
             {:.1} ms wall\n",
            wall.as_secs_f64() * 1e3
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn record() -> JobRecord {
        JobRecord {
            index: 3,
            name: Some("sobel".to_owned()),
            key: "(vadd ...)|hvx:64x64|bt:1".to_owned(),
            cache_hit: true,
            queue_wait: Duration::from_micros(1500),
            run_time: Duration::from_millis(12),
            outcome: OutcomeKind::Compiled,
            detail: None,
            instructions: Some(7),
            stats: SynthStats::default(),
            tier: Tier::Reduced,
            retries: 1,
            fault_injected: false,
            replayed: false,
        }
    }

    #[test]
    fn jsonl_lines_parse_back() {
        let events = vec![
            DriverEvent::BatchStarted { jobs: 4, unique: 3, workers: 2, cache_entries: 0 },
            DriverEvent::JobFinished(record()),
            DriverEvent::BatchFinished {
                compiled: 3,
                failed: 1,
                timed_out: 0,
                panicked: 0,
                cancelled: 0,
                quarantined: 0,
                cache_hits: 1,
                wall: Duration::from_millis(40),
            },
        ];
        for event in &events {
            let line = event.to_jsonl();
            assert!(!line.contains('\n'));
            let v = json::parse(&line).unwrap();
            assert!(v.get("event").is_some());
        }
        let job = json::parse(&events[1].to_jsonl()).unwrap();
        assert_eq!(job.get("outcome").unwrap().as_str(), Some("compiled"));
        assert_eq!(job.get("cache_hit").unwrap().as_bool(), Some(true));
        assert_eq!(job.get("queue_wait_ms").unwrap(), &Json::Num(1.5));
        assert_eq!(job.get("instructions").unwrap().as_i64(), Some(7));
        assert_eq!(job.get("tier").unwrap().as_str(), Some("reduced"));
        assert_eq!(job.get("retries").unwrap().as_i64(), Some(1));
        assert_eq!(job.get("fault_injected").unwrap().as_bool(), Some(false));
    }

    #[test]
    fn job_completed_journal_record_round_trips() {
        let ev = DriverEvent::JobCompleted {
            key: "(vadd ...)|l8v8".to_owned(),
            outcome: OutcomeKind::TimedOut,
            detail: None,
            tier: Tier::Baseline,
            retries: 2,
            fault_injected: true,
            replayed: false,
            run_time: Duration::from_millis(5),
        };
        let v = json::parse(&ev.to_jsonl()).unwrap();
        assert_eq!(v.get("event").unwrap().as_str(), Some("job_completed"));
        assert_eq!(v.get("key").unwrap().as_str(), Some("(vadd ...)|l8v8"));
        assert_eq!(v.get("outcome").unwrap().as_str(), Some("timed_out"));
        assert_eq!(v.get("tier").unwrap().as_str(), Some("baseline"));
        assert_eq!(v.get("retries").unwrap().as_i64(), Some(2));
        assert_eq!(v.get("fault_injected").unwrap().as_bool(), Some(true));
        assert!(v.get("replayed").is_none(), "replayed is emitted only when true");
    }

    #[test]
    fn records_carry_monotonic_t_rel_us_and_replay_ignores_it() {
        let ev = DriverEvent::JobCompleted {
            key: "k".to_owned(),
            outcome: OutcomeKind::Compiled,
            detail: None,
            tier: Tier::Full,
            retries: 0,
            fault_injected: false,
            replayed: false,
            run_time: Duration::from_millis(1),
        };
        let a = json::parse(&ev.to_jsonl()).unwrap().get("t_rel_us").unwrap().as_i64().unwrap();
        let b = json::parse(&ev.to_jsonl()).unwrap().get("t_rel_us").unwrap().as_i64().unwrap();
        assert!(a >= 0 && b >= a, "t_rel_us is monotone non-decreasing: {a} then {b}");
        let replay = replay_records(&ev.to_jsonl());
        assert_eq!(replay.get("k").unwrap().outcome, OutcomeKind::Compiled);
    }

    #[test]
    fn worker_crash_forensics_serialize_and_are_replay_invisible() {
        let ev = DriverEvent::WorkerCrashed {
            key: Some("(vadd ...)|l8v8".to_owned()),
            tier: Some(Tier::Full),
            cause: "signal".to_owned(),
            signal: Some(9),
            crashes_for_key: 2,
            stderr_tail: "thread panicked".to_owned(),
        };
        let v = json::parse(&ev.to_jsonl()).unwrap();
        assert_eq!(v.get("event").unwrap().as_str(), Some("worker_crashed"));
        assert_eq!(v.get("signal").unwrap().as_i64(), Some(9));
        assert_eq!(v.get("crashes_for_key").unwrap().as_i64(), Some(2));
        assert_eq!(v.get("stderr_tail").unwrap().as_str(), Some("thread panicked"));
        // Forensics never pollute the replay map: only `job_completed`
        // records carry verdicts.
        let replay = replay_records(&ev.to_jsonl());
        assert!(replay.is_empty());
    }

    #[test]
    fn rotation_folds_the_journal_and_preserves_replay() {
        let dir = std::env::temp_dir().join("rake-driver-journal-rotate");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("events.jsonl");

        let completed = |key: &str, outcome: OutcomeKind, retries: u32| DriverEvent::JobCompleted {
            key: key.to_owned(),
            outcome,
            detail: (outcome == OutcomeKind::Failed).then(|| "lower_failed".to_owned()),
            tier: Tier::Baseline,
            retries,
            fault_injected: false,
            replayed: false,
            run_time: Duration::from_millis(1),
        };
        let journal = Journal::open(&path, Some(512)).unwrap();
        for i in 0..12 {
            // Informational noise interleaved with recovery records: the
            // noise must be dropped by rotation, the records kept.
            journal.append_relaxed(&DriverEvent::BatchStarted {
                jobs: i,
                unique: i,
                workers: 1,
                cache_entries: 0,
            });
            let outcome = if i % 3 == 0 { OutcomeKind::Failed } else { OutcomeKind::Compiled };
            journal.append(&completed(&format!("key-{i:02}"), outcome, i as u32));
        }
        // Re-complete one key: last record wins through rotation too.
        journal.append(&completed("key-00", OutcomeKind::Compiled, 9));
        assert!(journal.rotations() >= 1, "512-byte threshold must have rotated");
        assert!(journal.bytes() < 4096, "rotated journal stays bounded");

        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"event\":\"journal_rotated\""));
        assert!(text.contains("\"snapshot\":true"));
        assert!(!text.contains("batch_started"), "informational events are folded away");

        let replay = parse_journal(&path).unwrap();
        assert_eq!(replay.len(), 12);
        for i in 0..12 {
            let rec = replay.get(&format!("key-{i:02}")).unwrap();
            let expect =
                if i == 0 || i % 3 != 0 { OutcomeKind::Compiled } else { OutcomeKind::Failed };
            assert_eq!(rec.outcome, expect, "key-{i:02}");
            if rec.outcome == OutcomeKind::Failed {
                assert_eq!(rec.detail.as_deref(), Some("lower_failed"));
            }
        }
        assert_eq!(replay.get("key-00").unwrap().retries, 9, "last record wins");

        // Appends continue cleanly on the reopened handle.
        journal.append(&completed("key-99", OutcomeKind::Compiled, 0));
        assert!(parse_journal(&path).unwrap().contains_key("key-99"));

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn summary_table_has_job_rows_and_totals() {
        let events = vec![
            DriverEvent::JobFinished(record()),
            DriverEvent::BatchFinished {
                compiled: 1,
                failed: 0,
                timed_out: 0,
                panicked: 0,
                cancelled: 0,
                quarantined: 0,
                cache_hits: 1,
                wall: Duration::from_millis(12),
            },
        ];
        let table = summary_table(&events);
        assert!(table.contains("sobel"));
        assert!(table.contains("hit"));
        assert!(table.starts_with("job"));
        assert!(table.contains("total: 1 compiled"));
    }
}
