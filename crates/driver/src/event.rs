//! Structured driver events, the write-ahead journal records, and the
//! batch summary table.
//!
//! Every batch produces a stream of [`DriverEvent`]s: one `batch_started`,
//! one `job_completed` per *unique* job in completion order (appended and
//! flushed as each worker finishes — the write-ahead journal records that
//! [`crate::Driver::resume`] replays), one `job_finished` per input
//! expression in input order (with stage timings, cache outcome and queue
//! wait), and one `batch_finished`. The stream serializes to JSON Lines —
//! one self-describing object per line, keyed by an `"event"`
//! discriminator — so logs can be tailed, grepped, and post-processed
//! without this crate.

use std::time::Duration;

use synth::SynthStats;

use crate::json::Json;
use crate::tier::Tier;

/// How one job concluded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutcomeKind {
    /// A verified HVX program was produced (fresh or from cache).
    Compiled,
    /// Synthesis returned a deterministic failure.
    Failed,
    /// The per-job wall-clock budget expired.
    TimedOut,
    /// The selector panicked; the job was isolated and the batch continued.
    Panicked,
    /// The batch's cancellation flag was raised before the job finished;
    /// not a verdict — resume recompiles these.
    Cancelled,
}

impl OutcomeKind {
    /// Stable string used in JSONL and the summary table.
    pub fn name(self) -> &'static str {
        match self {
            OutcomeKind::Compiled => "compiled",
            OutcomeKind::Failed => "failed",
            OutcomeKind::TimedOut => "timed_out",
            OutcomeKind::Panicked => "panicked",
            OutcomeKind::Cancelled => "cancelled",
        }
    }

    /// Inverse of [`OutcomeKind::name`] (journal replay).
    pub fn from_name(name: &str) -> Option<OutcomeKind> {
        match name {
            "compiled" => Some(OutcomeKind::Compiled),
            "failed" => Some(OutcomeKind::Failed),
            "timed_out" => Some(OutcomeKind::TimedOut),
            "panicked" => Some(OutcomeKind::Panicked),
            "cancelled" => Some(OutcomeKind::Cancelled),
            _ => None,
        }
    }
}

/// Per-job record carried by [`DriverEvent::JobFinished`].
#[derive(Debug, Clone)]
pub struct JobRecord {
    /// Position of the expression in the input batch.
    pub index: usize,
    /// Caller-supplied label (workload name), if any.
    pub name: Option<String>,
    /// The content-addressed cache key.
    pub key: String,
    /// Whether the result came from the cache (memory or disk layer).
    pub cache_hit: bool,
    /// Time between batch submission and a worker picking the job up.
    pub queue_wait: Duration,
    /// Time the worker spent on the job (synthesis or cache rebuild).
    pub run_time: Duration,
    /// How the job concluded.
    pub outcome: OutcomeKind,
    /// Error or panic description for non-compiled outcomes.
    pub detail: Option<String>,
    /// Instruction count of the selected program, when compiled.
    pub instructions: Option<usize>,
    /// Synthesis statistics for the job (zero-query on cache hits).
    pub stats: SynthStats,
    /// The degradation-ladder tier that produced the program
    /// ([`Tier::Baseline`] for every non-compiled outcome).
    pub tier: Tier,
    /// Transient-deadline retries spent across the job's ladder tiers.
    pub retries: u32,
    /// Whether the chaos plane injected a fault into this job.
    pub fault_injected: bool,
    /// Whether the outcome was replayed from a prior run's journal.
    pub replayed: bool,
}

/// One entry of the driver's event stream.
#[derive(Debug, Clone)]
pub enum DriverEvent {
    /// A batch was submitted.
    BatchStarted {
        /// Number of input expressions.
        jobs: usize,
        /// Number of unique canonical keys (the deduplicated job count).
        unique: usize,
        /// Worker threads serving the batch.
        workers: usize,
        /// Cache entries available at submission time.
        cache_entries: usize,
    },
    /// One *unique* (deduplicated) job concluded — the write-ahead journal
    /// record, appended and flushed the moment a worker finishes, in
    /// completion (not input) order. [`crate::Driver::resume`] replays a
    /// batch from these.
    JobCompleted {
        /// The content-addressed cache key of the unique job.
        key: String,
        /// How the job concluded.
        outcome: OutcomeKind,
        /// Stable error name (`lift_failed`, ...) for failures, the panic
        /// description for panics.
        detail: Option<String>,
        /// The tier that produced the program ([`Tier::Baseline`] for
        /// non-compiled outcomes).
        tier: Tier,
        /// Transient-deadline retries spent across the ladder.
        retries: u32,
        /// Whether the chaos plane injected a fault.
        fault_injected: bool,
        /// Whether this outcome was itself replayed from an earlier
        /// journal.
        replayed: bool,
        /// Worker time spent on the job.
        run_time: Duration,
    },
    /// One job concluded.
    JobFinished(JobRecord),
    /// A compiled job was differentially validated against the Halide IR
    /// interpreter (emitted only when the driver runs with validation on).
    JobValidated {
        /// Position of the expression in the input batch.
        job: usize,
        /// Caller-supplied label, if any.
        name: Option<String>,
        /// The content-addressed cache key.
        key: String,
        /// Number of (environment, origin) points compared.
        checks: usize,
        /// Points where the program disagreed — non-zero is a miscompile.
        mismatches: usize,
    },
    /// The whole batch concluded.
    BatchFinished {
        /// Jobs per [`OutcomeKind`]: compiled, failed, timed out, panicked.
        compiled: usize,
        /// Jobs that failed deterministically.
        failed: usize,
        /// Jobs cut off by their deadline.
        timed_out: usize,
        /// Jobs whose worker panicked.
        panicked: usize,
        /// Jobs cancelled before they finished.
        cancelled: usize,
        /// Jobs served from the cache.
        cache_hits: usize,
        /// End-to-end batch wall-clock time.
        wall: Duration,
    },
}

fn ms(d: Duration) -> Json {
    // Round to microsecond granularity so logs stay compact.
    Json::Num((d.as_secs_f64() * 1e3 * 1e3).round() / 1e3)
}

impl DriverEvent {
    /// The JSON object form used for JSONL logging.
    pub fn to_json(&self) -> Json {
        match self {
            DriverEvent::BatchStarted { jobs, unique, workers, cache_entries } => Json::obj([
                ("event", "batch_started".into()),
                ("jobs", (*jobs).into()),
                ("unique", (*unique).into()),
                ("workers", (*workers).into()),
                ("cache_entries", (*cache_entries).into()),
            ]),
            DriverEvent::JobCompleted {
                key,
                outcome,
                detail,
                tier,
                retries,
                fault_injected,
                replayed,
                run_time,
            } => {
                let mut obj = vec![
                    ("event".to_owned(), "job_completed".into()),
                    ("key".to_owned(), key.as_str().into()),
                    ("outcome".to_owned(), outcome.name().into()),
                ];
                if let Some(detail) = detail {
                    obj.push(("detail".to_owned(), detail.as_str().into()));
                }
                obj.push(("tier".to_owned(), tier.name().into()));
                obj.push(("retries".to_owned(), (*retries as u64).into()));
                obj.push(("fault_injected".to_owned(), (*fault_injected).into()));
                if *replayed {
                    obj.push(("replayed".to_owned(), true.into()));
                }
                obj.push(("run_ms".to_owned(), ms(*run_time)));
                Json::Obj(obj)
            }
            DriverEvent::JobFinished(r) => {
                let mut obj = vec![
                    ("event".to_owned(), "job_finished".into()),
                    ("job".to_owned(), r.index.into()),
                ];
                if let Some(name) = &r.name {
                    obj.push(("name".to_owned(), name.as_str().into()));
                }
                obj.push(("key".to_owned(), r.key.as_str().into()));
                obj.push(("outcome".to_owned(), r.outcome.name().into()));
                if let Some(detail) = &r.detail {
                    obj.push(("detail".to_owned(), detail.as_str().into()));
                }
                obj.push(("tier".to_owned(), r.tier.name().into()));
                obj.push(("retries".to_owned(), (r.retries as u64).into()));
                obj.push(("fault_injected".to_owned(), r.fault_injected.into()));
                if r.replayed {
                    obj.push(("replayed".to_owned(), true.into()));
                }
                obj.push(("cache_hit".to_owned(), r.cache_hit.into()));
                obj.push(("queue_wait_ms".to_owned(), ms(r.queue_wait)));
                obj.push(("run_ms".to_owned(), ms(r.run_time)));
                if let Some(n) = r.instructions {
                    obj.push(("instructions".to_owned(), n.into()));
                }
                obj.push(("lifting_queries".to_owned(), r.stats.lifting_queries.into()));
                obj.push(("sketching_queries".to_owned(), r.stats.sketching_queries.into()));
                obj.push(("swizzling_queries".to_owned(), r.stats.swizzling_queries.into()));
                obj.push(("lifting_ms".to_owned(), ms(r.stats.lifting_time)));
                obj.push(("sketching_ms".to_owned(), ms(r.stats.sketching_time)));
                obj.push(("swizzling_ms".to_owned(), ms(r.stats.swizzling_time)));
                Json::Obj(obj)
            }
            DriverEvent::JobValidated { job, name, key, checks, mismatches } => {
                let mut obj = vec![
                    ("event".to_owned(), "job_validated".into()),
                    ("job".to_owned(), (*job).into()),
                ];
                if let Some(name) = name {
                    obj.push(("name".to_owned(), name.as_str().into()));
                }
                obj.push(("key".to_owned(), key.as_str().into()));
                obj.push(("checks".to_owned(), (*checks).into()));
                obj.push(("mismatches".to_owned(), (*mismatches).into()));
                Json::Obj(obj)
            }
            DriverEvent::BatchFinished {
                compiled,
                failed,
                timed_out,
                panicked,
                cancelled,
                cache_hits,
                wall,
            } => Json::obj([
                ("event", "batch_finished".into()),
                ("compiled", (*compiled).into()),
                ("failed", (*failed).into()),
                ("timed_out", (*timed_out).into()),
                ("panicked", (*panicked).into()),
                ("cancelled", (*cancelled).into()),
                ("cache_hits", (*cache_hits).into()),
                ("wall_ms", ms(*wall)),
            ]),
        }
    }

    /// One JSONL line (no trailing newline).
    pub fn to_jsonl(&self) -> String {
        self.to_json().to_string()
    }
}

/// Render the event stream as a human-readable summary table: one row per
/// job plus a totals line. Intended for end-of-batch console output.
pub fn summary_table(events: &[DriverEvent]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<4} {:<18} {:<9} {:<8} {:>5} {:>5} {:>8} {:>9} {:>7} {:>6}\n",
        "job", "name", "outcome", "tier", "retry", "cache", "wait_ms", "run_ms", "queries", "insns"
    ));
    let mut total_queries = 0u64;
    let mut degraded = 0usize;
    for event in events {
        let DriverEvent::JobFinished(r) = event else { continue };
        let queries =
            r.stats.lifting_queries + r.stats.sketching_queries + r.stats.swizzling_queries;
        total_queries += queries;
        degraded += usize::from(r.outcome == OutcomeKind::Compiled && r.tier != Tier::Full);
        out.push_str(&format!(
            "{:<4} {:<18} {:<9} {:<8} {:>5} {:>5} {:>8.1} {:>9.1} {:>7} {:>6}\n",
            r.index,
            r.name.as_deref().unwrap_or("-"),
            r.outcome.name(),
            r.tier.name(),
            r.retries,
            if r.cache_hit { "hit" } else { "miss" },
            r.queue_wait.as_secs_f64() * 1e3,
            r.run_time.as_secs_f64() * 1e3,
            queries,
            r.instructions.map_or_else(|| "-".to_owned(), |n| n.to_string()),
        ));
    }
    for event in events {
        let DriverEvent::BatchFinished {
            compiled,
            failed,
            timed_out,
            panicked,
            cancelled,
            cache_hits,
            wall,
        } = event
        else {
            continue;
        };
        out.push_str(&format!(
            "total: {compiled} compiled ({degraded} on degraded tiers), {failed} failed, \
             {timed_out} timed out, {panicked} panicked, {cancelled} cancelled; \
             {cache_hits} cache hits, {total_queries} queries, {:.1} ms wall\n",
            wall.as_secs_f64() * 1e3
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn record() -> JobRecord {
        JobRecord {
            index: 3,
            name: Some("sobel".to_owned()),
            key: "(vadd ...)|hvx:64x64|bt:1".to_owned(),
            cache_hit: true,
            queue_wait: Duration::from_micros(1500),
            run_time: Duration::from_millis(12),
            outcome: OutcomeKind::Compiled,
            detail: None,
            instructions: Some(7),
            stats: SynthStats::default(),
            tier: Tier::Reduced,
            retries: 1,
            fault_injected: false,
            replayed: false,
        }
    }

    #[test]
    fn jsonl_lines_parse_back() {
        let events = vec![
            DriverEvent::BatchStarted { jobs: 4, unique: 3, workers: 2, cache_entries: 0 },
            DriverEvent::JobFinished(record()),
            DriverEvent::BatchFinished {
                compiled: 3,
                failed: 1,
                timed_out: 0,
                panicked: 0,
                cancelled: 0,
                cache_hits: 1,
                wall: Duration::from_millis(40),
            },
        ];
        for event in &events {
            let line = event.to_jsonl();
            assert!(!line.contains('\n'));
            let v = json::parse(&line).unwrap();
            assert!(v.get("event").is_some());
        }
        let job = json::parse(&events[1].to_jsonl()).unwrap();
        assert_eq!(job.get("outcome").unwrap().as_str(), Some("compiled"));
        assert_eq!(job.get("cache_hit").unwrap().as_bool(), Some(true));
        assert_eq!(job.get("queue_wait_ms").unwrap(), &Json::Num(1.5));
        assert_eq!(job.get("instructions").unwrap().as_i64(), Some(7));
        assert_eq!(job.get("tier").unwrap().as_str(), Some("reduced"));
        assert_eq!(job.get("retries").unwrap().as_i64(), Some(1));
        assert_eq!(job.get("fault_injected").unwrap().as_bool(), Some(false));
    }

    #[test]
    fn job_completed_journal_record_round_trips() {
        let ev = DriverEvent::JobCompleted {
            key: "(vadd ...)|l8v8".to_owned(),
            outcome: OutcomeKind::TimedOut,
            detail: None,
            tier: Tier::Baseline,
            retries: 2,
            fault_injected: true,
            replayed: false,
            run_time: Duration::from_millis(5),
        };
        let v = json::parse(&ev.to_jsonl()).unwrap();
        assert_eq!(v.get("event").unwrap().as_str(), Some("job_completed"));
        assert_eq!(v.get("key").unwrap().as_str(), Some("(vadd ...)|l8v8"));
        assert_eq!(v.get("outcome").unwrap().as_str(), Some("timed_out"));
        assert_eq!(v.get("tier").unwrap().as_str(), Some("baseline"));
        assert_eq!(v.get("retries").unwrap().as_i64(), Some(2));
        assert_eq!(v.get("fault_injected").unwrap().as_bool(), Some(true));
        assert!(v.get("replayed").is_none(), "replayed is emitted only when true");
    }

    #[test]
    fn summary_table_has_job_rows_and_totals() {
        let events = vec![
            DriverEvent::JobFinished(record()),
            DriverEvent::BatchFinished {
                compiled: 1,
                failed: 0,
                timed_out: 0,
                panicked: 0,
                cancelled: 0,
                cache_hits: 1,
                wall: Duration::from_millis(12),
            },
        ];
        let table = summary_table(&events);
        assert!(table.contains("sobel"));
        assert!(table.contains("hit"));
        assert!(table.starts_with("job"));
        assert!(table.contains("total: 1 compiled"));
    }
}
