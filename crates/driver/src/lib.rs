//! # rake-driver — a batch compilation service over the Rake selector
//!
//! Synthesis-based instruction selection is expensive (seconds per
//! expression) but highly redundant across a compilation session: image
//! pipelines reuse the same handful of tile shapes under different buffer
//! names, and repeated builds re-synthesize identical tiles from scratch.
//! This crate wraps [`rake::Rake`] in a service layer that exploits that
//! redundancy:
//!
//! * **Content-addressed caching** ([`cache`]): expressions are
//!   canonicalized ([`canon`]) — commutative operands sorted, buffers
//!   alpha-renamed — so structurally equivalent tiles share one cache
//!   entry regardless of buffer naming. Keys also fingerprint the target
//!   geometry and search options. An optional JSON file layer gives warm
//!   starts across processes.
//! * **Parallel execution**: a fixed pool of worker threads drains a
//!   deduplicated job list; results are reported in input order.
//! * **Fault isolation**: each job runs under `catch_unwind` with an
//!   optional wall-clock budget (threaded cooperatively into the search
//!   loops). A panicking or timed-out job degrades to the baseline
//!   selector instead of aborting the batch.
//! * **Observability** ([`event`]): a structured JSONL event stream with
//!   per-job timings, cache outcomes and query counts, plus a summary
//!   table printer.
//!
//! ```
//! use rake_driver::{Driver, DriverConfig};
//! use rake::{Rake, Target};
//! use halide_ir::sexpr::parse;
//!
//! let rake = Rake::new(Target::hvx_small(4));
//! let driver =
//!     Driver::new(rake).with_config(DriverConfig { workers: 2, ..DriverConfig::default() });
//! let a = parse("(add (cast u16 (load in u8 0 0)) (cast u16 (load in u8 1 0)))").unwrap();
//! let b = parse("(add (cast u16 (load img u8 0 0)) (cast u16 (load img u8 1 0)))").unwrap();
//! let report = driver.compile_batch(&[a, b]);
//! // `b` is alpha-equivalent to `a`: one synthesis, one cache hit.
//! assert_eq!(report.stats.cache_hits, 1);
//! ```

pub mod cache;
pub mod canon;
pub mod event;
pub mod json;

use std::collections::HashMap;
use std::io::Write as _;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use halide_ir::Expr;
use hvx::Program;
use rake::{CompileError, Compiled, Rake};
use synth::{LoweringOptions, SynthStats};

use cache::{CacheEntry, CacheStats, CachedArtifacts, SynthCache};
use event::{DriverEvent, JobRecord, OutcomeKind};

/// Service-layer configuration.
#[derive(Debug, Clone)]
pub struct DriverConfig {
    /// Worker threads in the pool. Clamped to at least 1.
    pub workers: usize,
    /// Per-job wall-clock budget. `None` disables deadlines.
    pub job_timeout: Option<Duration>,
    /// Directory for the persistent cache layer (`synthcache.json`).
    /// `None` keeps the cache in memory only.
    pub cache_dir: Option<PathBuf>,
    /// File to append the JSONL event stream to. `None` disables logging
    /// to disk (events are still collected on the [`BatchReport`]).
    pub log_path: Option<PathBuf>,
    /// Run every compiled program through the differential oracle after
    /// synthesis: execute it on adversarial inputs and compare against the
    /// Halide IR interpreter. Mismatch counts land on
    /// [`JobResult::validation`] and a `job_validated` event per job.
    pub validate: bool,
}

impl Default for DriverConfig {
    fn default() -> DriverConfig {
        let workers = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).min(8);
        DriverConfig {
            workers,
            job_timeout: None,
            cache_dir: None,
            log_path: None,
            validate: false,
        }
    }
}

/// The compile function a worker runs per cache miss. Receives the
/// *original* (non-canonical) expression and the job deadline.
pub type CompileFn =
    Arc<dyn Fn(&Expr, Option<Instant>) -> Result<Compiled, CompileError> + Send + Sync>;

/// How one input expression concluded.
#[derive(Debug, Clone)]
pub enum JobOutcome {
    /// A verified HVX program (fresh, from cache, or deduplicated within
    /// the batch).
    Compiled(Box<Compiled>),
    /// Synthesis failed deterministically.
    Failed(CompileError),
    /// The per-job wall-clock budget expired before a result was found.
    TimedOut,
    /// The selector panicked on this job; the batch continued.
    Panicked(String),
}

impl JobOutcome {
    fn kind(&self) -> OutcomeKind {
        match self {
            JobOutcome::Compiled(_) => OutcomeKind::Compiled,
            JobOutcome::Failed(_) => OutcomeKind::Failed,
            JobOutcome::TimedOut => OutcomeKind::TimedOut,
            JobOutcome::Panicked(_) => OutcomeKind::Panicked,
        }
    }
}

/// Outcome of one input expression, in input order.
#[derive(Debug, Clone)]
pub struct JobResult {
    /// Position in the input batch.
    pub index: usize,
    /// Caller-supplied label, if any.
    pub name: Option<String>,
    /// The content-addressed cache key of this expression.
    pub key: String,
    /// Whether the result was served without a fresh synthesis (persistent
    /// cache, in-memory cache, or an earlier duplicate in this batch).
    pub cache_hit: bool,
    /// How the job concluded.
    pub outcome: JobOutcome,
    /// Baseline-selector program for non-compiled outcomes, so callers
    /// always have *something* to emit. `None` when the job compiled (use
    /// the synthesized program) or when the baseline also has no rule.
    pub fallback: Option<Program>,
    /// Time the underlying unique job waited in the queue.
    pub queue_wait: Duration,
    /// Time a worker spent on the underlying unique job.
    pub run_time: Duration,
    /// Differential-oracle result, when [`DriverConfig::validate`] is on
    /// and the job produced a program to validate.
    pub validation: Option<ValidationOutcome>,
}

/// Outcome of differentially validating one compiled program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ValidationOutcome {
    /// Number of (environment, origin) points executed and compared.
    pub checks: usize,
    /// Points where the program disagreed with the interpreter. Anything
    /// non-zero is a miscompile.
    pub mismatches: usize,
}

impl JobResult {
    /// The program to emit: the synthesized one, or the baseline fallback.
    pub fn program(&self) -> Option<&Program> {
        match &self.outcome {
            JobOutcome::Compiled(c) => Some(&c.program),
            _ => self.fallback.as_ref(),
        }
    }
}

/// Everything a batch produced.
#[derive(Debug, Clone)]
pub struct BatchReport {
    /// Per-input outcomes, in input order.
    pub results: Vec<JobResult>,
    /// The full event stream (also written to `log_path` if configured).
    pub events: Vec<DriverEvent>,
    /// Merged synthesis statistics (fresh queries + cache hits).
    pub stats: SynthStats,
    /// Cache-layer counters at the end of the batch.
    pub cache_stats: CacheStats,
    /// End-to-end wall-clock time.
    pub wall: Duration,
}

impl BatchReport {
    /// Number of inputs that produced a verified program.
    pub fn compiled(&self) -> usize {
        self.results.iter().filter(|r| matches!(r.outcome, JobOutcome::Compiled(_))).count()
    }

    /// Render the human-readable per-job summary table.
    pub fn summary_table(&self) -> String {
        event::summary_table(&self.events)
    }

    /// Total differential-validation mismatches across the batch. Zero
    /// when validation was off or every program matched the interpreter.
    pub fn validation_mismatches(&self) -> usize {
        self.results.iter().filter_map(|r| r.validation).map(|v| v.mismatches).sum()
    }
}

/// The batch compilation service. Construct with [`Driver::new`], then
/// submit work with [`Driver::compile_batch`] /
/// [`Driver::compile_batch_named`].
pub struct Driver {
    rake: Rake,
    cache: Arc<SynthCache>,
    config: DriverConfig,
    compile_fn: CompileFn,
}

impl Driver {
    /// A driver over the given selector, with a default config (in-memory
    /// cache, no deadlines, auto-sized pool).
    pub fn new(rake: Rake) -> Driver {
        let compile_fn = default_compile_fn(&rake);
        Driver {
            rake,
            cache: Arc::new(SynthCache::in_memory()),
            config: DriverConfig::default(),
            compile_fn,
        }
    }

    /// Replace the configuration. Setting `cache_dir` switches to (and
    /// loads) the persistent cache layer.
    pub fn with_config(mut self, config: DriverConfig) -> Driver {
        self.cache = Arc::new(match &config.cache_dir {
            Some(dir) => SynthCache::persistent(dir),
            None => SynthCache::in_memory(),
        });
        self.config = config;
        self
    }

    /// Replace the per-job compile function. Intended for tests (fault
    /// injection, synthesis counting); production callers should rely on
    /// the default, which runs [`Rake::compile`] with the job deadline.
    pub fn with_compile_fn(
        mut self,
        f: impl Fn(&Expr, Option<Instant>) -> Result<Compiled, CompileError> + Send + Sync + 'static,
    ) -> Driver {
        self.compile_fn = Arc::new(f);
        self
    }

    /// The synthesis cache (shared across batches of this driver).
    pub fn cache(&self) -> &SynthCache {
        &self.cache
    }

    /// The cache key of an expression under this driver's target and
    /// options: canonical S-expression plus a geometry/options fingerprint.
    pub fn cache_key(&self, e: &Expr) -> String {
        let canonical = canon::canonicalize(e);
        self.key_of(&canonical)
    }

    fn key_of(&self, canonical: &canon::Canonical) -> String {
        format!(
            "{}|{}",
            halide_ir::sexpr::to_sexpr(&canonical.expr),
            fingerprint(self.rake.target(), &self.rake.options())
        )
    }

    /// Compile a batch of expressions. Results come back in input order.
    pub fn compile_batch(&self, exprs: &[Expr]) -> BatchReport {
        self.run(exprs.iter().map(|e| (None, e.clone())).collect())
    }

    /// Compile a batch of labeled expressions (labels show up in events
    /// and the summary table). Results come back in input order.
    pub fn compile_batch_named(&self, jobs: Vec<(String, Expr)>) -> BatchReport {
        self.run(jobs.into_iter().map(|(name, e)| (Some(name), e)).collect())
    }

    fn run(&self, inputs: Vec<(Option<String>, Expr)>) -> BatchReport {
        let batch_start = Instant::now();

        // Canonicalize every input and deduplicate by cache key. The first
        // occurrence of each key becomes the unique job that actually runs.
        let mut unique: Vec<UniqueJob> = Vec::new();
        let mut by_key: HashMap<String, usize> = HashMap::new();
        let mut plan: Vec<InputPlan> = Vec::new();
        for (name, expr) in inputs {
            let canonical = canon::canonicalize(&expr);
            let key = self.key_of(&canonical);
            let (unique_index, primary) = match by_key.get(&key) {
                Some(&u) => (u, false),
                None => {
                    let u = unique.len();
                    by_key.insert(key.clone(), u);
                    unique.push(UniqueJob {
                        key: key.clone(),
                        expr: expr.clone(),
                        to_canonical: canonical.to_canonical.clone(),
                    });
                    (u, true)
                }
            };
            plan.push(InputPlan { name, expr, canonical, key, unique_index, primary });
        }

        let mut events = vec![DriverEvent::BatchStarted {
            jobs: plan.len(),
            unique: unique.len(),
            workers: self.config.workers.max(1),
            cache_entries: self.cache.len(),
        }];

        let unique_results = self.drain_queue(&unique, batch_start);

        // Assemble per-input results in input order, renaming the
        // canonical artifacts back to each input's own buffer names.
        let mut results = Vec::with_capacity(plan.len());
        let mut stats = SynthStats::default();
        let target = self.rake.target();
        for (index, input) in plan.into_iter().enumerate() {
            let ur = &unique_results[input.unique_index];
            let cache_hit = ur.cache_hit || !input.primary;
            let (outcome, job_stats) = match &ur.outcome {
                UniqueOutcome::Compiled { artifacts, stats: fresh } => {
                    let hvx = canon::rename_hvx(&artifacts.hvx, &input.canonical.to_original);
                    let program = hvx.to_program();
                    let job_stats = if cache_hit {
                        SynthStats { cache_hits: 1, ..SynthStats::default() }
                    } else {
                        *fresh
                    };
                    let compiled = Compiled {
                        uber: canon::rename_uber(&artifacts.uber, &input.canonical.to_original),
                        hvx,
                        program,
                        trace: artifacts.trace.clone(),
                        stats: job_stats,
                    };
                    (JobOutcome::Compiled(Box::new(compiled)), job_stats)
                }
                UniqueOutcome::Failed(err) => {
                    let job_stats = if cache_hit {
                        SynthStats { cache_hits: 1, ..SynthStats::default() }
                    } else {
                        SynthStats::default()
                    };
                    (JobOutcome::Failed(err.clone()), job_stats)
                }
                UniqueOutcome::TimedOut => (JobOutcome::TimedOut, SynthStats::default()),
                UniqueOutcome::Panicked(msg) => {
                    (JobOutcome::Panicked(msg.clone()), SynthStats::default())
                }
            };
            stats.merge(&job_stats);
            let fallback = match &outcome {
                JobOutcome::Compiled(_) => None,
                _ => baseline_fallback(&input.expr, target),
            };
            let validation = if self.config.validate {
                self.validate_outcome(&input.expr, &outcome)
            } else {
                None
            };
            if let Some(v) = &validation {
                events.push(DriverEvent::JobValidated {
                    job: index,
                    name: input.name.clone(),
                    key: input.key.clone(),
                    checks: v.checks,
                    mismatches: v.mismatches,
                });
            }
            let (instructions, detail) = match &outcome {
                JobOutcome::Compiled(c) => (Some(c.program.len()), None),
                JobOutcome::Failed(err) => (None, Some(err.to_string())),
                JobOutcome::TimedOut => (None, None),
                JobOutcome::Panicked(msg) => (None, Some(msg.clone())),
            };
            events.push(DriverEvent::JobFinished(JobRecord {
                index,
                name: input.name.clone(),
                key: input.key.clone(),
                cache_hit,
                queue_wait: ur.queue_wait,
                run_time: ur.run_time,
                outcome: outcome.kind(),
                detail,
                instructions,
                stats: job_stats,
            }));
            results.push(JobResult {
                index,
                name: input.name,
                key: input.key,
                cache_hit,
                outcome,
                fallback,
                queue_wait: ur.queue_wait,
                run_time: ur.run_time,
                validation,
            });
        }

        let wall = batch_start.elapsed();
        let count = |k: OutcomeKind| results.iter().filter(|r| r.outcome.kind() == k).count();
        events.push(DriverEvent::BatchFinished {
            compiled: count(OutcomeKind::Compiled),
            failed: count(OutcomeKind::Failed),
            timed_out: count(OutcomeKind::TimedOut),
            panicked: count(OutcomeKind::Panicked),
            cache_hits: results.iter().filter(|r| r.cache_hit).count(),
            wall,
        });

        if let Err(err) = self.cache.persist() {
            eprintln!("warning: failed to persist synthesis cache: {err}");
        }
        if let Some(path) = &self.config.log_path {
            if let Err(err) = append_jsonl(path, &events) {
                eprintln!("warning: failed to write event log {}: {err}", path.display());
            }
        }

        BatchReport { results, events, stats, cache_stats: self.cache.stats(), wall }
    }

    /// Differentially validate a compiled job: execute its program on
    /// adversarial inputs and compare with the interpreter, lane by lane.
    fn validate_outcome(&self, e: &Expr, outcome: &JobOutcome) -> Option<ValidationOutcome> {
        let JobOutcome::Compiled(c) = outcome else {
            return None;
        };
        let target = self.rake.target();
        let checker = oracle::Oracle {
            lanes: target.lanes,
            width: target.lanes + 24,
            ..oracle::Oracle::default()
        };
        let ty = e.ty();
        let program = &c.program;
        let report = checker.check(e, &|env, x0, y0, lanes| {
            program.run(env, x0, y0, lanes).ok().map(|v| v.typed_lanes(ty))
        });
        Some(ValidationOutcome { checks: report.checks, mismatches: report.failures.len() })
    }

    /// Run the unique jobs on the worker pool; results indexed like `jobs`.
    fn drain_queue(&self, jobs: &[UniqueJob], batch_start: Instant) -> Vec<UniqueResult> {
        let queue: Mutex<std::collections::VecDeque<usize>> = Mutex::new((0..jobs.len()).collect());
        let slots: Mutex<Vec<Option<UniqueResult>>> = Mutex::new(vec![None; jobs.len()]);
        let workers = self.config.workers.max(1).min(jobs.len().max(1));
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let Some(job_index) = queue.lock().unwrap().pop_front() else {
                        break;
                    };
                    let result = self.run_unique(&jobs[job_index], batch_start);
                    slots.lock().unwrap()[job_index] = Some(result);
                });
            }
        });
        slots
            .into_inner()
            .unwrap()
            .into_iter()
            .map(|r| r.expect("worker pool drained the whole queue"))
            .collect()
    }

    /// Execute one unique job: cache lookup, else compile under a deadline
    /// with panic isolation, then store the (canonicalized) result.
    fn run_unique(&self, job: &UniqueJob, batch_start: Instant) -> UniqueResult {
        let picked = Instant::now();
        let queue_wait = picked.duration_since(batch_start);
        let done = |outcome, cache_hit| UniqueResult {
            queue_wait,
            run_time: picked.elapsed(),
            cache_hit,
            outcome,
        };

        match self.cache.lookup(&job.key) {
            Some(CacheEntry::Compiled(artifacts)) => {
                let outcome = UniqueOutcome::Compiled {
                    artifacts: Box::new(artifacts),
                    stats: SynthStats::default(),
                };
                return done(outcome, true);
            }
            Some(CacheEntry::Failed(err)) => return done(UniqueOutcome::Failed(err), true),
            None => {}
        }

        let deadline = self.config.job_timeout.map(|budget| picked + budget);
        let compiled = catch_unwind(AssertUnwindSafe(|| (self.compile_fn)(&job.expr, deadline)));
        let outcome = match compiled {
            Ok(Ok(c)) => {
                let artifacts = CachedArtifacts {
                    uber: canon::rename_uber(&c.uber, &job.to_canonical),
                    hvx: canon::rename_hvx(&c.hvx, &job.to_canonical),
                    trace: c.trace,
                };
                self.cache.store(&job.key, CacheEntry::Compiled(artifacts.clone()));
                UniqueOutcome::Compiled { artifacts: Box::new(artifacts), stats: c.stats }
            }
            Ok(Err(CompileError::DeadlineExceeded)) => UniqueOutcome::TimedOut,
            Ok(Err(err)) => {
                // Deterministic verdict: negative-cache it.
                self.cache.store(&job.key, CacheEntry::Failed(err.clone()));
                UniqueOutcome::Failed(err)
            }
            Err(payload) => UniqueOutcome::Panicked(panic_message(payload.as_ref())),
        };
        done(outcome, false)
    }
}

/// One deduplicated job: the first-seen original expression for a key and
/// the renaming that takes its buffers to canonical form.
struct UniqueJob {
    key: String,
    expr: Expr,
    to_canonical: HashMap<String, String>,
}

struct InputPlan {
    name: Option<String>,
    expr: Expr,
    canonical: canon::Canonical,
    key: String,
    unique_index: usize,
    primary: bool,
}

#[derive(Clone)]
enum UniqueOutcome {
    Compiled { artifacts: Box<CachedArtifacts>, stats: SynthStats },
    Failed(CompileError),
    TimedOut,
    Panicked(String),
}

#[derive(Clone)]
struct UniqueResult {
    queue_wait: Duration,
    run_time: Duration,
    cache_hit: bool,
    outcome: UniqueOutcome,
}

fn default_compile_fn(rake: &Rake) -> CompileFn {
    let base = rake.clone();
    Arc::new(move |e: &Expr, deadline: Option<Instant>| {
        let opts = LoweringOptions { deadline, ..base.options() };
        base.clone().with_options(opts).compile(e)
    })
}

/// Geometry + search-option fingerprint mixed into every cache key. The
/// deadline is deliberately excluded: it changes how long we search, not
/// what a verified answer means.
fn fingerprint(target: rake::Target, opts: &LoweringOptions) -> String {
    format!(
        "l{}v{}|bt{}ly{}al{}",
        target.lanes,
        target.vec_bytes,
        u8::from(opts.backtrack),
        u8::from(opts.layouts),
        u8::from(opts.aligned_loads),
    )
}

fn baseline_fallback(e: &Expr, target: rake::Target) -> Option<Program> {
    let opts = halide_opt::BaselineOptions { lanes: target.lanes, vec_bytes: target.vec_bytes };
    halide_opt::select(e, opts).ok().map(|hvx| hvx.to_program())
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_owned()
    }
}

fn append_jsonl(path: &std::path::Path, events: &[DriverEvent]) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    let mut f = std::fs::OpenOptions::new().create(true).append(true).open(path)?;
    let mut text = String::new();
    for event in events {
        text.push_str(&event.to_jsonl());
        text.push('\n');
    }
    f.write_all(text.as_bytes())
}
