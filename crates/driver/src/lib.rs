//! # rake-driver — a batch compilation service over the Rake selector
//!
//! Synthesis-based instruction selection is expensive (seconds per
//! expression) but highly redundant across a compilation session: image
//! pipelines reuse the same handful of tile shapes under different buffer
//! names, and repeated builds re-synthesize identical tiles from scratch.
//! This crate wraps [`rake::Rake`] in a service layer that exploits that
//! redundancy and treats partial failure as the normal case:
//!
//! * **Content-addressed caching** ([`cache`]): expressions are
//!   canonicalized ([`canon`]) — commutative operands sorted, buffers
//!   alpha-renamed — so structurally equivalent tiles share one cache
//!   entry regardless of buffer naming. Keys also fingerprint the target
//!   geometry and search options. An optional JSON file layer gives warm
//!   starts across processes.
//! * **Parallel execution**: a fixed pool of worker threads drains a
//!   deduplicated job list; results are reported in input order.
//! * **Graceful degradation** ([`tier`]): a job that times out or panics
//!   under full synthesis is retried down a ladder of cheaper
//!   configurations — reduced budgets, then direct per-op lowering —
//!   before surrendering to the baseline selector. Each tier gets a
//!   weighted slice of the job's wall-clock budget; transient deadline
//!   overruns are retried with backoff; the producing tier is recorded on
//!   every result.
//! * **Crash-safe resume**: the JSONL event stream doubles as a
//!   write-ahead journal — one flushed `job_completed` record per unique
//!   job — and [`Driver::resume`] replays completed jobs from journal +
//!   cache, recompiling only the remainder (tolerating a torn final
//!   record).
//! * **Fault injection** (feature `chaos`, [`chaos`]): a seeded,
//!   deterministic fault plan for panics, forced deadline exhaustion,
//!   latency, and cache corruption — the harness that proves the
//!   guarantees above hold under fire.
//! * **Observability** ([`event`]): a structured JSONL event stream with
//!   per-job timings, cache outcomes, tiers and query counts, plus a
//!   summary table printer.
//!
//! ```
//! use rake_driver::{Driver, DriverConfig};
//! use rake::{Rake, Target};
//! use halide_ir::sexpr::parse;
//!
//! let rake = Rake::new(Target::hvx_small(4));
//! let driver =
//!     Driver::new(rake).with_config(DriverConfig { workers: 2, ..DriverConfig::default() });
//! let a = parse("(add (cast u16 (load in u8 0 0)) (cast u16 (load in u8 1 0)))").unwrap();
//! let b = parse("(add (cast u16 (load img u8 0 0)) (cast u16 (load img u8 1 0)))").unwrap();
//! let report = driver.compile_batch(&[a, b]);
//! // `b` is alpha-equivalent to `a`: one synthesis, one cache hit.
//! assert_eq!(report.stats.cache_hits, 1);
//! ```

pub mod cache;
pub mod canon;
#[cfg(feature = "chaos")]
pub mod chaos;
pub mod event;
pub mod json;
pub mod lockfile;
pub mod tier;

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use halide_ir::Expr;
use hvx::Program;
use rake::{CompileError, Compiled, Rake};
use synth::{LoweringOptions, SynthStats};

pub use cache::CacheLimits;
use cache::{CacheEntry, CacheStats, CachedArtifacts, SynthCache};
pub use event::Journal;
use event::{DriverEvent, JobRecord, OutcomeKind, ReplayRecord};
pub use tier::Tier;

/// Service-layer configuration.
#[derive(Debug, Clone)]
pub struct DriverConfig {
    /// Worker threads in the pool. Clamped to at least 1.
    pub workers: usize,
    /// Per-job wall-clock budget, shared across the degradation ladder
    /// (each tier receives a weighted slice of what remains). `None`
    /// disables deadlines.
    pub job_timeout: Option<Duration>,
    /// The degradation ladder: tiers tried in order until one compiles.
    /// The first tier's deterministic failures are negative-cached and
    /// final; later tiers only run after a timeout or panic. Empty is
    /// treated as `[Tier::Full]`.
    pub tiers: Vec<Tier>,
    /// Retries (per tier) of *transient* `DeadlineExceeded` outcomes —
    /// ones that returned while tier budget still remained, as an
    /// interrupted solver does. Real budget exhaustion is never retried.
    pub max_retries: u32,
    /// Backoff before the first retry; doubles per subsequent retry.
    pub retry_backoff: Duration,
    /// Directory for the persistent cache layer (`synthcache.json` plus
    /// the `synthcache.log` segment log). `None` keeps the cache in
    /// memory only.
    pub cache_dir: Option<PathBuf>,
    /// Lifecycle bounds for the synthesis cache built by
    /// [`Driver::with_config`]: in-memory entry/byte caps (cost-aware LRU
    /// eviction) and the segment-log compaction threshold. The default is
    /// unbounded, the historical behavior.
    pub cache_limits: CacheLimits,
    /// File to append the JSONL event stream to. Doubles as the
    /// write-ahead journal: `job_completed` records are appended and
    /// flushed as workers finish, and [`Driver::resume`] replays them.
    /// `None` disables logging to disk (events are still collected on the
    /// [`BatchReport`]).
    pub log_path: Option<PathBuf>,
    /// Rotate the journal once it exceeds this many bytes: fold it into
    /// one snapshot record per key so restart replay stays bounded (see
    /// [`Journal`]). `None` (the default) never rotates. Rotation assumes
    /// this process is the journal's only writer; a server sharing one
    /// journal across drivers should install it via
    /// [`Driver::with_shared_journal`].
    pub journal_rotate_bytes: Option<u64>,
    /// Run every compiled program through the differential oracle after
    /// synthesis: execute it on adversarial inputs and compare against the
    /// Halide IR interpreter. Mismatch counts land on
    /// [`JobResult::validation`] and a `job_validated` event per job.
    pub validate: bool,
    /// Cooperative cancellation flag for the whole batch (see
    /// [`synth::cancel`]). When raised mid-batch, queued jobs conclude
    /// [`JobOutcome::Cancelled`] without running, and in-flight synthesis
    /// stops at its next deadline-check point. The serving layer raises it
    /// when a client disconnects. The flag must stay readable until the
    /// batch returns; release it to the pool only afterwards.
    pub cancel: Option<synth::CancelFlag>,
    /// Whether the batch sets the process-wide [`synth::pool`] thread
    /// budget to [`DriverConfig::workers`] before running (the historical
    /// single-driver behavior). A server hosting many concurrent drivers
    /// sets this to `false` and configures the budget once at startup, so
    /// one request's worker count does not clobber the shared cap.
    pub manage_thread_budget: bool,
}

impl Default for DriverConfig {
    fn default() -> DriverConfig {
        let workers = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).min(8);
        DriverConfig {
            workers,
            job_timeout: None,
            tiers: Tier::ladder().to_vec(),
            max_retries: 1,
            retry_backoff: Duration::from_millis(25),
            cache_dir: None,
            cache_limits: CacheLimits::default(),
            log_path: None,
            journal_rotate_bytes: None,
            validate: false,
            cancel: None,
            manage_thread_budget: true,
        }
    }
}

/// The compile function a worker runs per cache miss. Receives the
/// *original* (non-canonical) expression, the attempt deadline, the
/// degradation-ladder tier being tried, and the batch's cancellation flag
/// (if any) to forward into the cooperative deadline plumbing.
pub type CompileFn = Arc<
    dyn Fn(
            &Expr,
            Option<Instant>,
            Tier,
            Option<synth::CancelFlag>,
        ) -> Result<Compiled, CompileError>
        + Send
        + Sync,
>;

/// How one input expression concluded.
#[derive(Debug, Clone)]
pub enum JobOutcome {
    /// A verified HVX program (fresh, from cache, or deduplicated within
    /// the batch).
    Compiled(Box<Compiled>),
    /// Synthesis failed deterministically.
    Failed(CompileError),
    /// The per-job wall-clock budget expired on every ladder tier.
    TimedOut,
    /// The selector panicked on this job (on the full tier; degraded
    /// retries did not recover it); the batch continued.
    Panicked(String),
    /// The batch's cancellation flag was raised before the job finished
    /// (e.g. the requesting client disconnected). Proves nothing about the
    /// tile: never cached, recompiled on resume.
    Cancelled,
    /// The key is a known poison pill: its jobs crashed isolated workers
    /// past the serving layer's threshold and a cached crash verdict
    /// answered instead of running synthesis. Carries the crash summary.
    Quarantined(String),
}

impl JobOutcome {
    fn kind(&self) -> OutcomeKind {
        match self {
            JobOutcome::Compiled(_) => OutcomeKind::Compiled,
            JobOutcome::Failed(_) => OutcomeKind::Failed,
            JobOutcome::TimedOut => OutcomeKind::TimedOut,
            JobOutcome::Panicked(_) => OutcomeKind::Panicked,
            JobOutcome::Cancelled => OutcomeKind::Cancelled,
            JobOutcome::Quarantined(_) => OutcomeKind::Quarantined,
        }
    }
}

/// Outcome of one input expression, in input order.
#[derive(Debug, Clone)]
pub struct JobResult {
    /// Position in the input batch.
    pub index: usize,
    /// Caller-supplied label, if any.
    pub name: Option<String>,
    /// The content-addressed cache key of this expression.
    pub key: String,
    /// Whether the result was served without a fresh synthesis (persistent
    /// cache, in-memory cache, or an earlier duplicate in this batch).
    pub cache_hit: bool,
    /// How the job concluded.
    pub outcome: JobOutcome,
    /// The degradation-ladder tier that produced the program:
    /// [`Tier::Full`]/[`Tier::Reduced`]/[`Tier::Direct`] for compiled
    /// outcomes, [`Tier::Baseline`] otherwise (the fallback, when any,
    /// came from the baseline selector).
    pub tier: Tier,
    /// Transient-deadline retries spent across the job's ladder tiers.
    pub retries: u32,
    /// Whether the chaos plane injected a fault into this job (always
    /// `false` without the `chaos` feature).
    pub fault_injected: bool,
    /// Whether the outcome was replayed from a prior run's journal by
    /// [`Driver::resume`] instead of recompiled.
    pub replayed: bool,
    /// Baseline-selector program for non-compiled outcomes, so callers
    /// always have *something* to emit. `None` when the job compiled (use
    /// the synthesized program) or when the baseline also has no rule.
    pub fallback: Option<Program>,
    /// Time the underlying unique job waited in the queue.
    pub queue_wait: Duration,
    /// Time a worker spent on the underlying unique job.
    pub run_time: Duration,
    /// Differential-oracle result, when [`DriverConfig::validate`] is on
    /// and the job produced a program to validate.
    pub validation: Option<ValidationOutcome>,
}

/// Outcome of differentially validating one compiled program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ValidationOutcome {
    /// Number of (environment, origin) points executed and compared.
    pub checks: usize,
    /// Points where the program disagreed with the interpreter. Anything
    /// non-zero is a miscompile.
    pub mismatches: usize,
}

impl JobResult {
    /// The program to emit: the synthesized one, or the baseline fallback.
    pub fn program(&self) -> Option<&Program> {
        match &self.outcome {
            JobOutcome::Compiled(c) => Some(&c.program),
            _ => self.fallback.as_ref(),
        }
    }
}

/// Everything a batch produced.
#[derive(Debug, Clone)]
pub struct BatchReport {
    /// Per-input outcomes, in input order.
    pub results: Vec<JobResult>,
    /// The full event stream (also written to `log_path` if configured).
    pub events: Vec<DriverEvent>,
    /// Merged synthesis statistics (fresh queries + cache hits).
    pub stats: SynthStats,
    /// Cache-layer counters at the end of the batch.
    pub cache_stats: CacheStats,
    /// End-to-end wall-clock time.
    pub wall: Duration,
}

impl BatchReport {
    /// Number of inputs that produced a verified program.
    pub fn compiled(&self) -> usize {
        self.results.iter().filter(|r| matches!(r.outcome, JobOutcome::Compiled(_))).count()
    }

    /// Number of inputs whose program came from a degraded (non-full)
    /// synthesis tier.
    pub fn degraded(&self) -> usize {
        self.results
            .iter()
            .filter(|r| matches!(r.outcome, JobOutcome::Compiled(_)) && r.tier != Tier::Full)
            .count()
    }

    /// Render the human-readable per-job summary table.
    pub fn summary_table(&self) -> String {
        event::summary_table(&self.events)
    }

    /// Total differential-validation mismatches across the batch. Zero
    /// when validation was off or every program matched the interpreter.
    pub fn validation_mismatches(&self) -> usize {
        self.results.iter().filter_map(|r| r.validation).map(|v| v.mismatches).sum()
    }
}

/// Observer invoked on every [`DriverEvent`] as it is produced (streamed
/// events the moment a worker finishes, tail events at batch end). The
/// serving layer uses this to feed its metrics registry without parsing
/// the JSONL journal back.
pub type EventSink = Arc<dyn Fn(&DriverEvent) + Send + Sync>;

/// The batch compilation service. Construct with [`Driver::new`], then
/// submit work with [`Driver::compile_batch`] /
/// [`Driver::compile_batch_named`], or resume an interrupted batch with
/// [`Driver::resume`].
pub struct Driver {
    rake: Rake,
    cache: Arc<SynthCache>,
    config: DriverConfig,
    compile_fn: CompileFn,
    sink: Option<EventSink>,
    /// A pre-opened journal shared across drivers (the serving layer's
    /// single writer); `None` opens one per batch from `log_path`.
    journal: Option<Arc<Journal>>,
    #[cfg(feature = "chaos")]
    chaos: Option<chaos::FaultPlan>,
}

impl Driver {
    /// A driver over the given selector, with a default config (in-memory
    /// cache, no deadlines, auto-sized pool, full degradation ladder).
    pub fn new(rake: Rake) -> Driver {
        let compile_fn = default_compile_fn(&rake);
        Driver {
            rake,
            cache: Arc::new(SynthCache::in_memory()),
            config: DriverConfig::default(),
            compile_fn,
            sink: None,
            journal: None,
            #[cfg(feature = "chaos")]
            chaos: None,
        }
    }

    /// Replace the configuration. Setting `cache_dir` switches to (and
    /// loads) the persistent cache layer, bounded by
    /// [`DriverConfig::cache_limits`].
    pub fn with_config(mut self, config: DriverConfig) -> Driver {
        self.cache = Arc::new(match &config.cache_dir {
            Some(dir) => SynthCache::bounded(dir, config.cache_limits),
            None => SynthCache::in_memory_bounded(config.cache_limits),
        });
        self.config = config;
        self
    }

    /// Share a pre-built cache across drivers: the serving layer builds
    /// one [`SynthCache`] at startup and hands the same handle to every
    /// per-request driver, so all connections warm one content-addressed
    /// store. Call *after* [`Driver::with_config`] (which installs its own
    /// cache from `cache_dir`).
    pub fn with_shared_cache(mut self, cache: Arc<SynthCache>) -> Driver {
        self.cache = cache;
        self
    }

    /// Share a pre-opened [`Journal`] across drivers. Journal rotation
    /// renames the file out from under any other open handle, so a server
    /// running many per-request drivers against one log path must open the
    /// journal once at startup and hand the same handle to every driver —
    /// this installs it. Takes precedence over [`DriverConfig::log_path`]
    /// for both appending and [`Driver::resume`] replay.
    pub fn with_shared_journal(mut self, journal: Arc<Journal>) -> Driver {
        self.journal = Some(journal);
        self
    }

    /// Install an event observer called on every [`DriverEvent`] the
    /// moment it is produced, alongside (and independent of) the JSONL
    /// journal.
    pub fn with_event_sink(mut self, sink: EventSink) -> Driver {
        self.sink = Some(sink);
        self
    }

    /// Arm (or disarm) cooperative cancellation on an already-configured
    /// driver. Unlike [`Driver::with_config`], this touches nothing else —
    /// the serving layer decides per request whether a compile is worth a
    /// cancel slot only after it knows the cache can't answer outright.
    pub fn set_cancel(&mut self, cancel: Option<synth::CancelFlag>) {
        self.config.cancel = cancel;
    }

    /// Replace the per-job compile function. Intended for tests (fault
    /// injection, synthesis counting); production callers should rely on
    /// the default, which runs [`Rake::compile`] under the tier's budget
    /// reductions with the attempt deadline and cancellation flag.
    pub fn with_compile_fn(
        mut self,
        f: impl Fn(
                &Expr,
                Option<Instant>,
                Tier,
                Option<synth::CancelFlag>,
            ) -> Result<Compiled, CompileError>
            + Send
            + Sync
            + 'static,
    ) -> Driver {
        self.compile_fn = Arc::new(f);
        self
    }

    /// Arm the deterministic fault-injection plane: every subsequent batch
    /// runs under the plan's seeded fault schedule. Test/benchmark
    /// machinery — compiled in only with the `chaos` feature.
    #[cfg(feature = "chaos")]
    pub fn with_chaos(mut self, plan: chaos::FaultPlan) -> Driver {
        self.chaos = Some(plan);
        self
    }

    /// The synthesis cache (shared across batches of this driver).
    pub fn cache(&self) -> &SynthCache {
        &self.cache
    }

    /// The cache key of an expression under this driver's target and
    /// options: canonical S-expression plus a geometry/options fingerprint.
    pub fn cache_key(&self, e: &Expr) -> String {
        cache_key(&self.rake, e)
    }

    fn key_of(&self, canonical: &canon::Canonical) -> String {
        format!(
            "{}|{}",
            halide_ir::sexpr::to_sexpr(&canonical.expr),
            fingerprint(self.rake.target(), &self.rake.options())
        )
    }

    /// Compile a batch of expressions. Results come back in input order.
    pub fn compile_batch(&self, exprs: &[Expr]) -> BatchReport {
        self.run(exprs.iter().map(|e| (None, e.clone())).collect(), None)
    }

    /// Compile a batch of labeled expressions (labels show up in events
    /// and the summary table). Results come back in input order.
    pub fn compile_batch_named(&self, jobs: Vec<(String, Expr)>) -> BatchReport {
        self.run(jobs.into_iter().map(|(name, e)| (Some(name), e)).collect(), None)
    }

    /// Resume an interrupted batch: replay every job whose `job_completed`
    /// record survives in the journal at [`DriverConfig::log_path`]
    /// (compiled jobs are served from the synthesis cache; failed,
    /// timed-out and panicked jobs are replayed verbatim) and recompile
    /// only the remainder. A torn final record — the crash happened
    /// mid-append — is skipped, and a journal-says-compiled job whose
    /// cache entry was lost is transparently recompiled. With no journal
    /// on disk this is an ordinary [`Driver::compile_batch`].
    pub fn resume(&self, exprs: &[Expr]) -> BatchReport {
        let replay = self.load_journal();
        self.run(exprs.iter().map(|e| (None, e.clone())).collect(), replay)
    }

    /// [`Driver::resume`] over labeled expressions.
    pub fn resume_named(&self, jobs: Vec<(String, Expr)>) -> BatchReport {
        let replay = self.load_journal();
        self.run(jobs.into_iter().map(|(name, e)| (Some(name), e)).collect(), replay)
    }

    fn load_journal(&self) -> Option<HashMap<String, ReplayRecord>> {
        let path = match (&self.journal, &self.config.log_path) {
            (Some(journal), _) => journal.path().to_owned(),
            (None, Some(path)) => path.clone(),
            (None, None) => return None,
        };
        event::parse_journal(&path)
    }

    fn run(
        &self,
        inputs: Vec<(Option<String>, Expr)>,
        replay: Option<HashMap<String, ReplayRecord>>,
    ) -> BatchReport {
        let batch_start = Instant::now();

        // Canonicalize every input and deduplicate by cache key. The first
        // occurrence of each key becomes the unique job that actually runs.
        let mut unique: Vec<UniqueJob> = Vec::new();
        let mut by_key: HashMap<String, usize> = HashMap::new();
        let mut plan: Vec<InputPlan> = Vec::new();
        for (name, expr) in inputs {
            let canonical = canon::canonicalize(&expr);
            let key = self.key_of(&canonical);
            let (unique_index, primary) = match by_key.get(&key) {
                Some(&u) => (u, false),
                None => {
                    let u = unique.len();
                    by_key.insert(key.clone(), u);
                    unique.push(UniqueJob {
                        key: key.clone(),
                        expr: expr.clone(),
                        to_canonical: canonical.to_canonical.clone(),
                    });
                    (u, true)
                }
            };
            plan.push(InputPlan { name, expr, canonical, key, unique_index, primary });
        }

        // The journal streams from here on: the batch header immediately,
        // one flushed job_completed record per unique job as workers
        // finish, the per-input records at the end.
        let journal: Option<Arc<Journal>> = match &self.journal {
            Some(journal) => Some(Arc::clone(journal)),
            None => self.config.log_path.as_ref().and_then(|path| {
                match Journal::open(path, self.config.journal_rotate_bytes) {
                    Ok(j) => Some(Arc::new(j)),
                    Err(err) => {
                        eprintln!("warning: cannot open event journal {}: {err}", path.display());
                        None
                    }
                }
            }),
        };
        let journal = journal.as_deref();
        let mut batch_span = trace::span("driver.batch", "driver");
        if batch_span.is_active() {
            batch_span.arg("jobs", plan.len());
            batch_span.arg("unique", unique.len());
            batch_span.arg("workers", self.config.workers.max(1));
        }
        let started = DriverEvent::BatchStarted {
            jobs: plan.len(),
            unique: unique.len(),
            workers: self.config.workers.max(1),
            cache_entries: self.cache.len(),
        };
        if let Some(journal) = &journal {
            journal.append_relaxed(&started);
        }
        if let Some(sink) = &self.sink {
            sink(&started);
        }
        let mut events = vec![started];

        let completed: Mutex<Vec<DriverEvent>> = Mutex::new(Vec::new());
        let unique_results =
            self.drain_queue(&unique, batch_start, replay.as_ref(), journal, &completed);
        events.extend(completed.into_inner().unwrap());
        let tail_start = events.len();

        // Assemble per-input results in input order, renaming the
        // canonical artifacts back to each input's own buffer names.
        let mut results = Vec::with_capacity(plan.len());
        let mut stats = SynthStats::default();
        let target = self.rake.target();
        for (index, input) in plan.into_iter().enumerate() {
            let ur = &unique_results[input.unique_index];
            let cache_hit = ur.cache_hit || !input.primary;
            let (outcome, job_stats) = match &ur.outcome {
                UniqueOutcome::Compiled { artifacts, stats: fresh } => {
                    let hvx = canon::rename_hvx(&artifacts.hvx, &input.canonical.to_original);
                    let program = hvx.to_program();
                    let job_stats = if cache_hit {
                        SynthStats { cache_hits: 1, ..SynthStats::default() }
                    } else {
                        *fresh
                    };
                    let compiled = Compiled {
                        uber: canon::rename_uber(&artifacts.uber, &input.canonical.to_original),
                        hvx,
                        program,
                        trace: artifacts.trace.clone(),
                        stats: job_stats,
                    };
                    (JobOutcome::Compiled(Box::new(compiled)), job_stats)
                }
                UniqueOutcome::Failed(err) => {
                    let job_stats = if cache_hit {
                        SynthStats { cache_hits: 1, ..SynthStats::default() }
                    } else {
                        SynthStats::default()
                    };
                    (JobOutcome::Failed(err.clone()), job_stats)
                }
                UniqueOutcome::TimedOut => (JobOutcome::TimedOut, SynthStats::default()),
                UniqueOutcome::Panicked(msg) => {
                    (JobOutcome::Panicked(msg.clone()), SynthStats::default())
                }
                UniqueOutcome::Cancelled => (JobOutcome::Cancelled, SynthStats::default()),
                UniqueOutcome::Quarantined(reason) => {
                    // Quarantine verdicts come straight from the cache;
                    // count them as cache-served like any negative entry.
                    let job_stats = SynthStats { cache_hits: 1, ..SynthStats::default() };
                    (JobOutcome::Quarantined(reason.clone()), job_stats)
                }
            };
            stats.merge(&job_stats);
            let fallback = match &outcome {
                // Cancelled jobs get no baseline fallback either: the
                // requester is gone, so the work would be wasted.
                JobOutcome::Compiled(_) | JobOutcome::Cancelled => None,
                _ => baseline_fallback(&input.expr, target),
            };
            let validation = if self.config.validate {
                self.validate_outcome(&input.expr, &outcome)
            } else {
                None
            };
            if let Some(v) = &validation {
                events.push(DriverEvent::JobValidated {
                    job: index,
                    name: input.name.clone(),
                    key: input.key.clone(),
                    checks: v.checks,
                    mismatches: v.mismatches,
                });
            }
            let (instructions, detail) = match &outcome {
                JobOutcome::Compiled(c) => (Some(c.program.len()), None),
                JobOutcome::Failed(err) => (None, Some(err.to_string())),
                JobOutcome::TimedOut | JobOutcome::Cancelled => (None, None),
                JobOutcome::Panicked(msg) => (None, Some(msg.clone())),
                JobOutcome::Quarantined(reason) => (None, Some(reason.clone())),
            };
            events.push(DriverEvent::JobFinished(JobRecord {
                index,
                name: input.name.clone(),
                key: input.key.clone(),
                cache_hit,
                queue_wait: ur.queue_wait,
                run_time: ur.run_time,
                outcome: outcome.kind(),
                detail,
                instructions,
                stats: job_stats,
                tier: ur.tier(),
                retries: ur.retries,
                fault_injected: ur.fault_injected,
                replayed: ur.replayed,
            }));
            results.push(JobResult {
                index,
                name: input.name,
                key: input.key,
                cache_hit,
                outcome,
                tier: ur.tier(),
                retries: ur.retries,
                fault_injected: ur.fault_injected,
                replayed: ur.replayed,
                fallback,
                queue_wait: ur.queue_wait,
                run_time: ur.run_time,
                validation,
            });
        }

        let wall = batch_start.elapsed();
        let count = |k: OutcomeKind| results.iter().filter(|r| r.outcome.kind() == k).count();
        events.push(DriverEvent::BatchFinished {
            compiled: count(OutcomeKind::Compiled),
            failed: count(OutcomeKind::Failed),
            timed_out: count(OutcomeKind::TimedOut),
            panicked: count(OutcomeKind::Panicked),
            cancelled: count(OutcomeKind::Cancelled),
            quarantined: count(OutcomeKind::Quarantined),
            cache_hits: results.iter().filter(|r| r.cache_hit).count(),
            wall,
        });

        if let Err(err) = self.cache.persist() {
            eprintln!("warning: failed to persist synthesis cache: {err}");
        }
        for event in &events[tail_start..] {
            if let Some(journal) = &journal {
                journal.append_relaxed(event);
            }
            if let Some(sink) = &self.sink {
                sink(event);
            }
        }

        BatchReport { results, events, stats, cache_stats: self.cache.stats(), wall }
    }

    /// Differentially validate a compiled job: execute its program on
    /// adversarial inputs and compare with the interpreter, lane by lane.
    fn validate_outcome(&self, e: &Expr, outcome: &JobOutcome) -> Option<ValidationOutcome> {
        let JobOutcome::Compiled(c) = outcome else {
            return None;
        };
        let target = self.rake.target();
        let checker = oracle::Oracle {
            lanes: target.lanes,
            width: target.lanes + 24,
            ..oracle::Oracle::default()
        };
        let ty = e.ty();
        let program = &c.program;
        let report = checker.check(e, &|env, x0, y0, lanes| {
            program.run(env, x0, y0, lanes).ok().map(|v| v.typed_lanes(ty))
        });
        Some(ValidationOutcome { checks: report.checks, mismatches: report.failures.len() })
    }

    /// Run the unique jobs on the worker pool; results indexed like
    /// `jobs`. Each completed job is journaled (append + flush) and its
    /// fresh cache entries persisted before the next job is picked up, so
    /// a crash loses at most the in-flight jobs.
    fn drain_queue(
        &self,
        jobs: &[UniqueJob],
        batch_start: Instant,
        replay: Option<&HashMap<String, ReplayRecord>>,
        journal: Option<&Journal>,
        completed: &Mutex<Vec<DriverEvent>>,
    ) -> Vec<UniqueResult> {
        let queue: Mutex<std::collections::VecDeque<usize>> = Mutex::new((0..jobs.len()).collect());
        let slots: Mutex<Vec<Option<UniqueResult>>> = Mutex::new(vec![None; jobs.len()]);
        let workers = self.config.workers.max(1).min(jobs.len().max(1));
        // The batch shares one process-wide thread budget of
        // `config.workers`: each spawned worker holds a permit for its
        // lifetime, and intra-job parallel lifting claims only what is
        // left (e.g. the idle worker slots of a one-job batch). A server
        // hosting many concurrent drivers opts out and sets the budget
        // once at startup instead.
        if self.config.manage_thread_budget {
            synth::pool::set_thread_budget(self.config.workers.max(1));
        }
        let permits = synth::pool::global().reserve_up_to(workers);
        // Worker threads inherit the batch's span context explicitly:
        // thread-local span stacks do not cross thread::scope.
        let span_ctx = trace::current();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    let _adopted = span_ctx.map(trace::adopt);
                    loop {
                        let Some(job_index) = queue.lock().unwrap().pop_front() else {
                            break;
                        };
                        let job = &jobs[job_index];
                        let result = self.run_unique(job, batch_start, replay);
                        // WAL ordering: make the artifacts durable first, then
                        // the journal record that promises them. (A record
                        // without its cache entry is self-healing on resume; a
                        // cache entry without its record is just a warm hit.)
                        if !result.cache_hit
                            && matches!(
                                result.outcome,
                                UniqueOutcome::Compiled { .. } | UniqueOutcome::Failed(_)
                            )
                        {
                            if let Err(err) = self.cache.persist() {
                                eprintln!("warning: failed to persist synthesis cache: {err}");
                            }
                        }
                        let event = DriverEvent::JobCompleted {
                            key: job.key.clone(),
                            outcome: result.kind(),
                            detail: match &result.outcome {
                                UniqueOutcome::Failed(err) => {
                                    Some(cache::error_name(err).to_owned())
                                }
                                UniqueOutcome::Panicked(msg) => Some(msg.clone()),
                                UniqueOutcome::Quarantined(reason) => Some(reason.clone()),
                                _ => None,
                            },
                            tier: result.tier(),
                            retries: result.retries,
                            fault_injected: result.fault_injected,
                            replayed: result.replayed,
                            run_time: result.run_time,
                        };
                        if let Some(journal) = journal {
                            // WAL durability is only worth an fsync when the
                            // record prevents redoing real work on resume; a
                            // cache-hit completion is re-derivable instantly.
                            if result.cache_hit {
                                journal.append_relaxed(&event);
                            } else {
                                journal.append(&event);
                            }
                        }
                        if let Some(sink) = &self.sink {
                            sink(&event);
                        }
                        completed.lock().unwrap().push(event);
                        slots.lock().unwrap()[job_index] = Some(result);
                    }
                });
            }
        });
        drop(permits);
        slots
            .into_inner()
            .unwrap()
            .into_iter()
            .map(|r| r.expect("worker pool drained the whole queue"))
            .collect()
    }

    /// Execute one unique job: journal replay, cache lookup, then the
    /// degradation ladder — each tier compiled under a weighted slice of
    /// the remaining budget with panic isolation and bounded retries —
    /// storing the (canonicalized) result.
    fn run_unique(
        &self,
        job: &UniqueJob,
        batch_start: Instant,
        replay: Option<&HashMap<String, ReplayRecord>>,
    ) -> UniqueResult {
        let mut sp = trace::span("driver.job", "driver");
        let result = self.run_unique_inner(job, batch_start, replay);
        if sp.is_active() {
            sp.arg("key", job.key.clone());
            sp.arg("outcome", result.kind().name());
            sp.arg("tier", result.tier().name());
            sp.arg("retries", result.retries);
            sp.arg("cache_hit", result.cache_hit);
            sp.arg("replayed", result.replayed);
        }
        result
    }

    fn run_unique_inner(
        &self,
        job: &UniqueJob,
        batch_start: Instant,
        replay: Option<&HashMap<String, ReplayRecord>>,
    ) -> UniqueResult {
        let picked = Instant::now();
        let queue_wait = picked.duration_since(batch_start);
        let finish = |outcome, cache_hit, replayed, retries, fault_injected| UniqueResult {
            queue_wait,
            run_time: picked.elapsed(),
            cache_hit,
            replayed,
            retries,
            fault_injected,
            outcome,
        };

        // A raised cancellation flag concludes queued jobs outright:
        // nothing about the tile is learned, nothing is cached, and resume
        // recompiles them.
        if synth::cancel::cancelled(self.config.cancel) {
            return finish(UniqueOutcome::Cancelled, false, false, 0, false);
        }

        // Journal replay: terminal non-compiled outcomes are replayed
        // verbatim; compiled ones fall through to the cache lookup below
        // (and to a fresh compile — self-healing — if the entry is gone).
        let replay_rec = replay.and_then(|m| m.get(&job.key));
        if let Some(rec) = replay_rec {
            match rec.outcome {
                OutcomeKind::Compiled => {}
                OutcomeKind::Failed => {
                    if let Some(err) = rec.detail.as_deref().and_then(cache::error_from) {
                        self.cache.store(&job.key, CacheEntry::Failed(err.clone()));
                        return finish(UniqueOutcome::Failed(err), false, true, rec.retries, false);
                    }
                    // Unrecognized error name: recompile rather than guess.
                }
                OutcomeKind::TimedOut => {
                    return finish(UniqueOutcome::TimedOut, false, true, rec.retries, false);
                }
                OutcomeKind::Panicked => {
                    let msg = rec
                        .detail
                        .clone()
                        .unwrap_or_else(|| "replayed panic (detail lost)".to_owned());
                    return finish(UniqueOutcome::Panicked(msg), false, true, rec.retries, false);
                }
                // A cancelled record is not a verdict: recompile.
                OutcomeKind::Cancelled => {}
                // A quarantined record's authoritative verdict lives in the
                // cache (with its TTL); fall through to the lookup below.
                // If the entry expired or was lost, the key has earned a
                // fresh attempt — exactly what recompiling does.
                OutcomeKind::Quarantined => {}
            }
        }

        // The weakest configured tier is the request's quality floor: a
        // cached artifact produced below it (by a previous, more degraded
        // run) is not good enough — recompile and overwrite it.
        let tiers: &[Tier] =
            if self.config.tiers.is_empty() { &[Tier::Full] } else { &self.config.tiers };
        let floor = tiers.iter().copied().max_by_key(|t| t.rank()).unwrap_or(Tier::Full);

        match self.cache.lookup_meeting(&job.key, floor) {
            Some(CacheEntry::Compiled(artifacts)) => {
                let outcome = UniqueOutcome::Compiled {
                    artifacts: Box::new(artifacts),
                    stats: SynthStats::default(),
                };
                return finish(outcome, true, replay_rec.is_some(), 0, false);
            }
            Some(CacheEntry::Failed(err)) => {
                return finish(UniqueOutcome::Failed(err), true, replay_rec.is_some(), 0, false);
            }
            Some(CacheEntry::Quarantined(q)) => {
                // A poison pill answers from its cached crash verdict:
                // re-running it would only kill another worker.
                return finish(
                    UniqueOutcome::Quarantined(q.reason),
                    true,
                    replay_rec.is_some(),
                    0,
                    false,
                );
            }
            None => {}
        }

        // The degradation ladder. Tier i gets weight_i / remaining_weight
        // of whatever wall-clock budget is left when it starts.
        let hard_end = self.config.job_timeout.map(|budget| picked + budget);
        let mut remaining_weight: u32 = tiers.iter().map(|t| t.weight()).sum();
        let mut first_terminal: Option<UniqueOutcome> = None;
        let mut retries = 0u32;
        let mut fault_injected = false;

        for (rung, &tier) in tiers.iter().enumerate() {
            let tier_end = hard_end.map(|end| {
                let now = Instant::now();
                let left = end.saturating_duration_since(now);
                now + left.mul_f64(f64::from(tier.weight()) / f64::from(remaining_weight))
            });
            remaining_weight -= tier.weight();

            let mut attempt = 0u32;
            let tier_terminal = loop {
                if synth::cancel::cancelled(self.config.cancel) {
                    break UniqueOutcome::Cancelled;
                }
                let result = {
                    let mut asp = trace::span("driver.attempt", "driver");
                    if asp.is_active() {
                        asp.arg("tier", tier.name());
                        asp.arg("attempt", attempt);
                    }
                    self.compile_attempt(job, tier, tier_end, &mut fault_injected)
                };
                match result {
                    Ok(Ok(c)) => {
                        let artifacts = CachedArtifacts {
                            uber: canon::rename_uber(&c.uber, &job.to_canonical),
                            hvx: canon::rename_hvx(&c.hvx, &job.to_canonical),
                            trace: c.trace,
                            tier,
                        };
                        self.cache.store(&job.key, CacheEntry::Compiled(artifacts.clone()));
                        let outcome = UniqueOutcome::Compiled {
                            artifacts: Box::new(artifacts),
                            stats: c.stats,
                        };
                        return finish(outcome, false, false, retries, fault_injected);
                    }
                    Ok(Err(CompileError::DeadlineExceeded)) => {
                        // Cancellation surfaces through the deadline
                        // plumbing: a raised flag means the "timeout" was
                        // a cancelled search, never retried or degraded.
                        if synth::cancel::cancelled(self.config.cancel) {
                            break UniqueOutcome::Cancelled;
                        }
                        // Transient if the tier's budget was NOT actually
                        // exhausted (a starved solver gave up early);
                        // retry with backoff. Real exhaustion degrades.
                        let transient = tier_end
                            .is_none_or(|end| Instant::now() + self.config.retry_backoff < end);
                        if transient && attempt < self.config.max_retries {
                            std::thread::sleep(self.config.retry_backoff * (1 << attempt.min(4)));
                            attempt += 1;
                            retries += 1;
                            continue;
                        }
                        break UniqueOutcome::TimedOut;
                    }
                    Ok(Err(err)) => {
                        if rung == 0 {
                            // A deterministic verdict from the primary
                            // tier is final: negative-cache it, skip the
                            // ladder (weaker tiers cannot do better).
                            self.cache.store(&job.key, CacheEntry::Failed(err.clone()));
                            return finish(
                                UniqueOutcome::Failed(err),
                                false,
                                false,
                                retries,
                                fault_injected,
                            );
                        }
                        break UniqueOutcome::Failed(err);
                    }
                    Err(msg) => break UniqueOutcome::Panicked(msg),
                }
            };
            // A cancelled job skips the rest of the ladder: weaker tiers
            // would only burn budget nobody is waiting for.
            if matches!(tier_terminal, UniqueOutcome::Cancelled) {
                return finish(UniqueOutcome::Cancelled, false, false, retries, fault_injected);
            }
            // No tier compiled so far: the reported outcome mirrors the
            // primary tier's terminal state (that is the honest verdict on
            // the configured search; degraded rungs were bonus attempts).
            if first_terminal.is_none() {
                first_terminal = Some(tier_terminal);
            }
        }

        let outcome = first_terminal.expect("ladder has at least one tier");
        finish(outcome, false, false, retries, fault_injected)
    }

    /// One compile attempt under panic isolation, with the chaos plane's
    /// scheduled fault (if armed) injected first. `Err(msg)` is a captured
    /// panic.
    fn compile_attempt(
        &self,
        job: &UniqueJob,
        tier: Tier,
        deadline: Option<Instant>,
        fault_injected: &mut bool,
    ) -> Result<Result<Compiled, CompileError>, String> {
        #[cfg(feature = "chaos")]
        if let Some(plan) = &self.chaos {
            if let Some(fault) = plan.fault_for(&job.key, tier) {
                *fault_injected = true;
                match fault {
                    chaos::Fault::ForcedDeadline => return Ok(Err(CompileError::DeadlineExceeded)),
                    chaos::Fault::PanicStr => {
                        let payload = catch_unwind(|| panic!("chaos: injected worker panic"))
                            .expect_err("the injected panic panics");
                        return Err(panic_message(payload.as_ref()));
                    }
                    chaos::Fault::PanicNonStr => {
                        let payload = catch_unwind(|| std::panic::panic_any(42i32))
                            .expect_err("the injected panic panics");
                        return Err(panic_message(payload.as_ref()));
                    }
                    chaos::Fault::Latency(delay) => std::thread::sleep(delay),
                    // Lethal faults take down the whole process: only ever
                    // scheduled inside an isolated worker, where the
                    // supervisor contains the blast radius.
                    lethal @ (chaos::Fault::Abort | chaos::Fault::Oom) => {
                        chaos::execute_lethal(lethal)
                    }
                }
            }
        }
        let _ = fault_injected;
        let cancel = self.config.cancel;
        match catch_unwind(AssertUnwindSafe(|| {
            (self.compile_fn)(&job.expr, deadline, tier, cancel)
        })) {
            Ok(result) => Ok(result),
            Err(payload) => Err(panic_message(payload.as_ref())),
        }
    }
}

/// One deduplicated job: the first-seen original expression for a key and
/// the renaming that takes its buffers to canonical form.
struct UniqueJob {
    key: String,
    expr: Expr,
    to_canonical: HashMap<String, String>,
}

struct InputPlan {
    name: Option<String>,
    expr: Expr,
    canonical: canon::Canonical,
    key: String,
    unique_index: usize,
    primary: bool,
}

#[derive(Clone)]
enum UniqueOutcome {
    Compiled { artifacts: Box<CachedArtifacts>, stats: SynthStats },
    Failed(CompileError),
    TimedOut,
    Panicked(String),
    Cancelled,
    Quarantined(String),
}

#[derive(Clone)]
struct UniqueResult {
    queue_wait: Duration,
    run_time: Duration,
    cache_hit: bool,
    replayed: bool,
    retries: u32,
    fault_injected: bool,
    outcome: UniqueOutcome,
}

impl UniqueResult {
    fn kind(&self) -> OutcomeKind {
        match &self.outcome {
            UniqueOutcome::Compiled { .. } => OutcomeKind::Compiled,
            UniqueOutcome::Failed(_) => OutcomeKind::Failed,
            UniqueOutcome::TimedOut => OutcomeKind::TimedOut,
            UniqueOutcome::Panicked(_) => OutcomeKind::Panicked,
            UniqueOutcome::Cancelled => OutcomeKind::Cancelled,
            UniqueOutcome::Quarantined(_) => OutcomeKind::Quarantined,
        }
    }

    fn tier(&self) -> Tier {
        match &self.outcome {
            UniqueOutcome::Compiled { artifacts, .. } => artifacts.tier,
            _ => Tier::Baseline,
        }
    }
}

fn default_compile_fn(rake: &Rake) -> CompileFn {
    let full = rake.clone();
    let reduced = Tier::Reduced.apply(rake);
    let direct = Tier::Direct.apply(rake);
    Arc::new(
        move |e: &Expr,
              deadline: Option<Instant>,
              tier: Tier,
              cancel: Option<synth::CancelFlag>| {
            let base = match tier {
                Tier::Full | Tier::Baseline => &full,
                Tier::Reduced => &reduced,
                Tier::Direct => &direct,
            };
            let opts = LoweringOptions { deadline, cancel, ..base.options() };
            base.clone().with_options(opts).compile(e)
        },
    )
}

/// Geometry + search-option fingerprint mixed into every cache key. The
/// deadline is deliberately excluded: it changes how long we search, not
/// what a verified answer means.
fn fingerprint(target: rake::Target, opts: &LoweringOptions) -> String {
    format!(
        "l{}v{}|bt{}ly{}al{}ns{}ld{}",
        target.lanes,
        target.vec_bytes,
        u8::from(opts.backtrack),
        u8::from(opts.layouts),
        u8::from(opts.aligned_loads),
        u8::from(opts.naive_swizzles),
        opts.max_lift_depth.map_or_else(|| "-".to_owned(), |d| d.to_string()),
    )
}

/// The cache key of an expression under a selector's target and options —
/// identical to [`Driver::cache_key`] but usable without a `Driver` (the
/// serving layer's worker-pool dispatch computes keys inside a closure
/// that outlives its per-request driver).
pub fn cache_key(rake: &Rake, e: &Expr) -> String {
    let canonical = canon::canonicalize(e);
    format!(
        "{}|{}",
        halide_ir::sexpr::to_sexpr(&canonical.expr),
        fingerprint(rake.target(), &rake.options())
    )
}

fn baseline_fallback(e: &Expr, target: rake::Target) -> Option<Program> {
    let opts = halide_opt::BaselineOptions { lanes: target.lanes, vec_bytes: target.vec_bytes };
    halide_opt::select(e, opts).ok().map(|hvx| hvx.to_program())
}

/// Render a panic payload. String payloads are passed through; common
/// non-string payloads (`panic_any(42)` and friends) get a typed
/// placeholder instead of being silently dropped. Public so the serving
/// layer can render payloads it re-raises through `resume_unwind`.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        return (*s).to_owned();
    }
    if let Some(s) = payload.downcast_ref::<String>() {
        return s.clone();
    }
    macro_rules! typed {
        ($($ty:ty),*) => {
            $(if let Some(v) = payload.downcast_ref::<$ty>() {
                return format!(
                    "panic with non-string payload: {}({v})",
                    stringify!($ty)
                );
            })*
        };
    }
    typed!(i32, i64, u32, u64, usize, isize, f64, bool, char);
    "panic with non-string payload (unknown type)".to_owned()
}

#[cfg(test)]
mod unit_tests {
    use super::*;

    #[test]
    fn panic_payloads_render_with_type_information() {
        let capture = |f: Box<dyn Fn() + std::panic::UnwindSafe>| {
            let payload = catch_unwind(f).expect_err("must panic");
            panic_message(payload.as_ref())
        };
        assert_eq!(capture(Box::new(|| panic!("plain str"))), "plain str");
        assert_eq!(capture(Box::new(|| panic!("formatted {}", 7))), "formatted 7");
        assert_eq!(
            capture(Box::new(|| std::panic::panic_any(42i32))),
            "panic with non-string payload: i32(42)"
        );
        assert_eq!(
            capture(Box::new(|| std::panic::panic_any(7usize))),
            "panic with non-string payload: usize(7)"
        );
        let unknown = capture(Box::new(|| std::panic::panic_any(vec![1u8])));
        assert_eq!(unknown, "panic with non-string payload (unknown type)");
    }
}
