//! The degradation ladder (tiered graceful degradation).
//!
//! A job is not an all-or-nothing bet on full synthesis. When the full
//! Rake search times out or panics, the driver retries the job on
//! progressively cheaper configurations before surrendering to the
//! baseline pattern-matching selector:
//!
//! 1. [`Tier::Full`] — the driver's configured selector, untouched.
//! 2. [`Tier::Reduced`] — the same three-stage synthesis under reduced
//!    budgets: a 10× smaller SMT conflict budget, a lifting recursion cap,
//!    no Algorithm-2 backtracking or layout exploration, and closed-form
//!    (naive) swizzles instead of the enumerative search.
//! 3. [`Tier::Direct`] — direct per-op lowering of the uber-IR: no SMT
//!    proofs (candidates are screened differentially only), minimal
//!    random environments, first verified template per uber-instruction.
//!    Rake's final end-to-end `equiv_halide_hvx` check still guards every
//!    accepted program, so a Direct-tier result is no less trusted.
//! 4. [`Tier::Baseline`] — the `halide_opt` pattern-matching selector;
//!    never runs the synthesis pipeline. This tier labels fallback
//!    programs on non-compiled outcomes; it is not part of the compile
//!    ladder itself.
//!
//! Each ladder tier gets a weighted slice of the job's remaining
//! wall-clock budget (see [`Tier::weight`]); within a tier, transient
//! `DeadlineExceeded` outcomes are retried with exponential backoff.

use rake::Rake;
use synth::{LoweringOptions, Verifier};

/// One rung of the degradation ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Tier {
    /// Full Rake synthesis with the driver's configured budgets.
    Full,
    /// Synthesis under reduced budgets (smaller SMT budget, shallow lift,
    /// naive swizzles, no backtracking/layout search).
    Reduced,
    /// Direct uber-IR per-op lowering: differential screening only, first
    /// verified template, closed-form swizzles.
    Direct,
    /// The pattern-matching baseline selector (fallback label only).
    Baseline,
}

impl Tier {
    /// The synthesis ladder, in degradation order. [`Tier::Baseline`] is
    /// deliberately absent: it is the fallback after the ladder, not a
    /// rung that runs the synthesis pipeline.
    pub fn ladder() -> [Tier; 3] {
        [Tier::Full, Tier::Reduced, Tier::Direct]
    }

    /// Stable string used in JSONL events, the summary table, and the
    /// persistent cache.
    pub fn name(self) -> &'static str {
        match self {
            Tier::Full => "full",
            Tier::Reduced => "reduced",
            Tier::Direct => "direct",
            Tier::Baseline => "baseline",
        }
    }

    /// Inverse of [`Tier::name`].
    pub fn from_name(name: &str) -> Option<Tier> {
        match name {
            "full" => Some(Tier::Full),
            "reduced" => Some(Tier::Reduced),
            "direct" => Some(Tier::Direct),
            "baseline" => Some(Tier::Baseline),
            _ => None,
        }
    }

    /// Quality rank on the degradation ladder: lower is better. The full
    /// search outranks every reduced configuration; the baseline selector
    /// ranks last. Used to compare a cached artifact's producing tier
    /// against a request's tier floor.
    pub fn rank(self) -> u8 {
        match self {
            Tier::Full => 0,
            Tier::Reduced => 1,
            Tier::Direct => 2,
            Tier::Baseline => 3,
        }
    }

    /// Whether an artifact produced at `self` satisfies a request whose
    /// weakest acceptable tier (the floor) is `floor`.
    pub fn meets(self, floor: Tier) -> bool {
        self.rank() <= floor.rank()
    }

    /// Relative share of the job's wall-clock budget this tier receives:
    /// the full search gets most of the time, each degraded retry
    /// progressively less.
    pub fn weight(self) -> u32 {
        match self {
            Tier::Full => 4,
            Tier::Reduced => 2,
            Tier::Direct | Tier::Baseline => 1,
        }
    }

    /// Build the selector this tier runs: the driver's configured `rake`
    /// with this tier's budget reductions applied on top.
    pub fn apply(self, rake: &Rake) -> Rake {
        match self {
            Tier::Full | Tier::Baseline => rake.clone(),
            Tier::Reduced => {
                let verifier = Verifier {
                    smt_conflict_budget: (rake.verifier().smt_conflict_budget / 10).max(500),
                    ..rake.verifier().clone()
                };
                let options = LoweringOptions {
                    backtrack: false,
                    layouts: false,
                    naive_swizzles: true,
                    max_lift_depth: Some(6),
                    ..rake.options()
                };
                rake.clone().with_options(options).with_verifier(verifier)
            }
            Tier::Direct => {
                let verifier =
                    Verifier { use_smt: false, random_envs: 2, ..rake.verifier().clone() };
                let options = LoweringOptions {
                    backtrack: false,
                    layouts: false,
                    naive_swizzles: true,
                    max_lift_depth: Some(4),
                    ..rake.options()
                };
                rake.clone().with_options(options).with_verifier(verifier)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rake::Target;

    #[test]
    fn names_round_trip() {
        for tier in [Tier::Full, Tier::Reduced, Tier::Direct, Tier::Baseline] {
            assert_eq!(Tier::from_name(tier.name()), Some(tier));
        }
        assert_eq!(Tier::from_name("bogus"), None);
    }

    #[test]
    fn ladder_excludes_baseline_and_descends_in_weight() {
        let ladder = Tier::ladder();
        assert!(!ladder.contains(&Tier::Baseline));
        assert!(ladder.windows(2).all(|w| w[0].weight() > w[1].weight()));
    }

    #[test]
    fn rank_orders_ladder_and_meets_compares_floors() {
        let ladder = Tier::ladder();
        assert!(ladder.windows(2).all(|w| w[0].rank() < w[1].rank()));
        // A tier always meets itself and anything weaker.
        for tier in [Tier::Full, Tier::Reduced, Tier::Direct, Tier::Baseline] {
            assert!(tier.meets(tier));
            assert!(Tier::Full.meets(tier));
        }
        // A degraded artifact never satisfies a stricter floor.
        assert!(!Tier::Direct.meets(Tier::Full));
        assert!(!Tier::Direct.meets(Tier::Reduced));
        assert!(!Tier::Reduced.meets(Tier::Full));
        assert!(Tier::Reduced.meets(Tier::Direct));
    }

    #[test]
    fn reduced_and_direct_tiers_cut_budgets() {
        let rake = Rake::new(Target::hvx_small(8));
        let reduced = Tier::Reduced.apply(&rake);
        assert!(reduced.verifier().smt_conflict_budget < rake.verifier().smt_conflict_budget);
        assert!(reduced.options().naive_swizzles);
        assert!(!reduced.options().backtrack);
        assert!(reduced.options().max_lift_depth.is_some());

        let direct = Tier::Direct.apply(&rake);
        assert!(!direct.verifier().use_smt);
        assert!(direct.options().naive_swizzles);

        // The geometry is preserved by every tier.
        for tier in Tier::ladder() {
            assert_eq!(tier.apply(&rake).target(), rake.target());
        }
    }
}
