//! Content-addressed canonicalization of Halide IR expressions.
//!
//! Two tiles produced by different pipeline stages frequently have
//! identical structure and differ only in buffer names (`input` vs `blur_y`)
//! or in the order of commutative operands. Synthesis is name-blind — the
//! search and the oracle treat buffers as opaque symbol tables — so such
//! tiles have interchangeable compilations. This module computes the
//! canonical representative the cache is keyed on:
//!
//! 1. operands of commutative binary operators are sorted by a name-blind
//!    structural key, and
//! 2. buffers are renamed `b0, b1, …` in first-occurrence order over the
//!    canonicalized tree.
//!
//! The mapping back is a bijection, so a cached compilation is replayed
//! for a new tile by renaming canonical buffers to the tile's buffers in
//! every artifact (HVX expression, Uber-IR expression, trace strings).
//!
//! Offsets (`dx`/`dy`) are deliberately **not** normalized: alignment of a
//! load window is semantically visible when `aligned_loads` is on, and
//! swizzle synthesis depends on absolute offsets.

use std::collections::HashMap;

use halide_ir::{Binary, BroadcastLoad, Cast, Expr, Load, Shift};
use hvx::{HvxExpr, Op, ScalarOperand};
use uber_ir::{ScalarSource, UberExpr, VsMpyAdd, VvMpyAdd};

/// A canonicalized expression plus the bijection back to original names.
#[derive(Debug, Clone)]
pub struct Canonical {
    /// The canonical representative (commutative operands sorted, buffers
    /// renamed `b0, b1, …`).
    pub expr: Expr,
    /// Map canonical name → original name.
    pub to_original: HashMap<String, String>,
    /// Map original name → canonical name.
    pub to_canonical: HashMap<String, String>,
}

/// Canonicalize `e` for cache addressing.
pub fn canonicalize(e: &Expr) -> Canonical {
    let sorted = sort_commutative(e);
    let mut order: Vec<String> = Vec::new();
    buffer_order(&sorted, &mut order);
    let mut to_canonical = HashMap::new();
    let mut to_original = HashMap::new();
    for (i, name) in order.iter().enumerate() {
        let canon = format!("b{i}");
        to_canonical.insert(name.clone(), canon.clone());
        to_original.insert(canon, name.clone());
    }
    let expr = rename_expr(&sorted, &to_canonical);
    Canonical { expr, to_original, to_canonical }
}

/// Recursively sort commutative operands by their name-blind key. Stable:
/// equal keys keep source order, which the canonical renaming then makes
/// irrelevant (alpha-equivalent inputs collide either way).
fn sort_commutative(e: &Expr) -> Expr {
    match e {
        Expr::Load(_) | Expr::Broadcast(_) | Expr::BroadcastLoad(_) => e.clone(),
        Expr::Cast(c) => Expr::Cast(Cast {
            to: c.to,
            saturating: c.saturating,
            arg: Box::new(sort_commutative(&c.arg)),
        }),
        Expr::Shift(s) => Expr::Shift(Shift {
            dir: s.dir,
            amount: s.amount,
            arg: Box::new(sort_commutative(&s.arg)),
        }),
        Expr::Binary(b) => {
            let lhs = sort_commutative(&b.lhs);
            let rhs = sort_commutative(&b.rhs);
            let (lhs, rhs) = if b.op.is_commutative() && blind_key(&rhs) < blind_key(&lhs) {
                (rhs, lhs)
            } else {
                (lhs, rhs)
            };
            Expr::Binary(Binary { op: b.op, lhs: Box::new(lhs), rhs: Box::new(rhs) })
        }
    }
}

/// A structural key that ignores buffer names: the canonical S-expression
/// with every buffer replaced by `_`.
fn blind_key(e: &Expr) -> String {
    halide_ir::sexpr::to_sexpr(&rename_expr_with(e, &|_| "_".to_owned()))
}

fn buffer_order(e: &Expr, order: &mut Vec<String>) {
    let mut push = |name: &str| {
        if !order.iter().any(|n| n == name) {
            order.push(name.to_owned());
        }
    };
    match e {
        Expr::Load(l) => push(&l.buffer),
        Expr::BroadcastLoad(b) => push(&b.buffer),
        Expr::Broadcast(_) => {}
        Expr::Cast(c) => buffer_order(&c.arg, order),
        Expr::Shift(s) => buffer_order(&s.arg, order),
        Expr::Binary(b) => {
            buffer_order(&b.lhs, order);
            buffer_order(&b.rhs, order);
        }
    }
}

fn map_name(name: &str, map: &HashMap<String, String>) -> String {
    map.get(name).cloned().unwrap_or_else(|| name.to_owned())
}

/// Rename every buffer reference in a Halide expression through `map`
/// (names missing from the map are kept).
pub fn rename_expr(e: &Expr, map: &HashMap<String, String>) -> Expr {
    rename_expr_with(e, &|n| map_name(n, map))
}

fn rename_expr_with(e: &Expr, f: &dyn Fn(&str) -> String) -> Expr {
    match e {
        Expr::Load(l) => Expr::Load(Load { buffer: f(&l.buffer), dx: l.dx, dy: l.dy, ty: l.ty }),
        Expr::Broadcast(b) => Expr::Broadcast(b.clone()),
        Expr::BroadcastLoad(b) => {
            Expr::BroadcastLoad(BroadcastLoad { buffer: f(&b.buffer), x: b.x, dy: b.dy, ty: b.ty })
        }
        Expr::Cast(c) => Expr::Cast(Cast {
            to: c.to,
            saturating: c.saturating,
            arg: Box::new(rename_expr_with(&c.arg, f)),
        }),
        Expr::Shift(s) => Expr::Shift(Shift {
            dir: s.dir,
            amount: s.amount,
            arg: Box::new(rename_expr_with(&s.arg, f)),
        }),
        Expr::Binary(b) => Expr::Binary(Binary {
            op: b.op,
            lhs: Box::new(rename_expr_with(&b.lhs, f)),
            rhs: Box::new(rename_expr_with(&b.rhs, f)),
        }),
    }
}

/// Rename every buffer reference in an Uber-IR expression through `map`.
pub fn rename_uber(u: &UberExpr, map: &HashMap<String, String>) -> UberExpr {
    let r = |x: &UberExpr| Box::new(rename_uber(x, map));
    match u {
        UberExpr::Data(l) => {
            UberExpr::Data(Load { buffer: map_name(&l.buffer, map), dx: l.dx, dy: l.dy, ty: l.ty })
        }
        UberExpr::Bcast { value, ty } => UberExpr::Bcast {
            value: match value {
                ScalarSource::Imm(v) => ScalarSource::Imm(*v),
                ScalarSource::Scalar { buffer, x, dy } => {
                    ScalarSource::Scalar { buffer: map_name(buffer, map), x: *x, dy: *dy }
                }
            },
            ty: *ty,
        },
        UberExpr::VsMpyAdd(v) => UberExpr::VsMpyAdd(VsMpyAdd {
            inputs: v.inputs.iter().map(|i| rename_uber(i, map)).collect(),
            kernel: v.kernel.clone(),
            saturating: v.saturating,
            out: v.out,
        }),
        UberExpr::VvMpyAdd(v) => UberExpr::VvMpyAdd(VvMpyAdd {
            pairs: v
                .pairs
                .iter()
                .map(|(a, b)| (rename_uber(a, map), rename_uber(b, map)))
                .collect(),
            saturating: v.saturating,
            out: v.out,
        }),
        UberExpr::AbsDiff(a, b) => UberExpr::AbsDiff(r(a), r(b)),
        UberExpr::Min(a, b) => UberExpr::Min(r(a), r(b)),
        UberExpr::Max(a, b) => UberExpr::Max(r(a), r(b)),
        UberExpr::Average { a, b, round } => UberExpr::Average { a: r(a), b: r(b), round: *round },
        UberExpr::Narrow { arg, shift, round, saturating, out } => UberExpr::Narrow {
            arg: r(arg),
            shift: *shift,
            round: *round,
            saturating: *saturating,
            out: *out,
        },
        UberExpr::Widen { arg, out } => UberExpr::Widen { arg: r(arg), out: *out },
        UberExpr::Shl { arg, amount } => UberExpr::Shl { arg: r(arg), amount: *amount },
    }
}

/// Rename every buffer reference in an HVX expression through `map`.
pub fn rename_hvx(h: &HvxExpr, map: &HashMap<String, String>) -> HvxExpr {
    let op = match h.root() {
        Op::Vmem { buffer, dx, dy, elem } => {
            Op::Vmem { buffer: map_name(buffer, map), dx: *dx, dy: *dy, elem: *elem }
        }
        Op::Vsplat { value, elem } => Op::Vsplat { value: rename_scalar(value, map), elem: *elem },
        Op::VmpyScalar { elem, scalar } => {
            Op::VmpyScalar { elem: *elem, scalar: rename_scalar(scalar, map) }
        }
        Op::VmpyAcc { elem, scalar } => {
            Op::VmpyAcc { elem: *elem, scalar: rename_scalar(scalar, map) }
        }
        Op::Vmpyi { elem, scalar } => Op::Vmpyi { elem: *elem, scalar: rename_scalar(scalar, map) },
        Op::VmpyiAcc { elem, scalar } => {
            Op::VmpyiAcc { elem: *elem, scalar: rename_scalar(scalar, map) }
        }
        other => other.clone(),
    };
    HvxExpr::op(op, h.args().iter().map(|a| rename_hvx(a, map)).collect())
}

fn rename_scalar(s: &ScalarOperand, map: &HashMap<String, String>) -> ScalarOperand {
    match s {
        ScalarOperand::Imm(v) => ScalarOperand::Imm(*v),
        ScalarOperand::Load { buffer, x, dy } => {
            ScalarOperand::Load { buffer: map_name(buffer, map), x: *x, dy: *dy }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use halide_ir::builder::*;
    use lanes::ElemType::{U16, U8};

    #[test]
    fn alpha_equivalent_tiles_share_a_key() {
        let t = |buf: &str, dx| widen(load(buf, U8, dx, 0));
        let e1 = add(add(t("input", -1), mul(t("input", 0), bcast(2, U16))), t("input", 1));
        let e2 = add(add(t("blur_y", -1), mul(t("blur_y", 0), bcast(2, U16))), t("blur_y", 1));
        assert_eq!(canonicalize(&e1).expr, canonicalize(&e2).expr);
    }

    #[test]
    fn commutative_operand_order_is_normalized() {
        let a = widen(load("a", U8, 0, 0));
        let b = mul(widen(load("a", U8, 1, 0)), bcast(3, U16));
        assert_eq!(canonicalize(&add(a.clone(), b.clone())).expr, canonicalize(&add(b, a)).expr);
    }

    #[test]
    fn non_commutative_order_is_preserved() {
        let a = load("a", U8, 0, 0);
        let b = load("a", U8, 1, 0);
        assert_ne!(canonicalize(&sub(a.clone(), b.clone())).expr, canonicalize(&sub(b, a)).expr);
    }

    #[test]
    fn distinct_offsets_do_not_collide() {
        let e1 = add(load("in", U8, 0, 0), load("in", U8, 1, 0));
        let e2 = add(load("in", U8, 1, 0), load("in", U8, 2, 0));
        assert_ne!(canonicalize(&e1).expr, canonicalize(&e2).expr);
    }

    #[test]
    fn repeated_buffer_roles_are_distinguished() {
        // a+a and a+b are structurally equal name-blind but must canonicalize
        // to different keys (b0+b0 vs b0+b1).
        let aa = add(load("a", U8, 0, 0), load("a", U8, 0, 0));
        let ab = add(load("a", U8, 0, 0), load("b", U8, 0, 0));
        assert_ne!(canonicalize(&aa).expr, canonicalize(&ab).expr);
    }

    #[test]
    fn rename_is_a_bijection_back_to_the_original() {
        let e = add(mul(widen(load("x", U8, 0, 0)), bcast(2, U16)), widen(load("w", U8, -1, 0)));
        let c = canonicalize(&e);
        // Renaming canonical → original recovers an expression using only
        // original buffers (possibly with commutative operands re-ordered).
        let back = rename_expr(&c.expr, &c.to_original);
        assert_eq!(halide_ir::analysis::buffers_used(&back), halide_ir::analysis::buffers_used(&e));
        assert_eq!(canonicalize(&back).expr, c.expr);
    }

    #[test]
    fn broadcast_load_buffers_participate() {
        let e1 = mul(bcast_load("w", 3, 0, U8), load("in", U8, 0, 0));
        let e2 = mul(bcast_load("k", 3, 0, U8), load("data", U8, 0, 0));
        let e3 = mul(bcast_load("k", 4, 0, U8), load("data", U8, 0, 0));
        assert_eq!(canonicalize(&e1).expr, canonicalize(&e2).expr);
        assert_ne!(canonicalize(&e2).expr, canonicalize(&e3).expr);
    }

    /// Recursively swap commutative operands at random: a semantics- and
    /// key-preserving scramble for the property tests below.
    fn swap_commutative(e: &Expr, rng: &mut lanes::rng::Rng) -> Expr {
        match e {
            Expr::Load(_) | Expr::Broadcast(_) | Expr::BroadcastLoad(_) => e.clone(),
            Expr::Cast(c) => Expr::Cast(Cast {
                to: c.to,
                saturating: c.saturating,
                arg: Box::new(swap_commutative(&c.arg, rng)),
            }),
            Expr::Shift(s) => Expr::Shift(Shift {
                dir: s.dir,
                amount: s.amount,
                arg: Box::new(swap_commutative(&s.arg, rng)),
            }),
            Expr::Binary(b) => {
                let lhs = swap_commutative(&b.lhs, rng);
                let rhs = swap_commutative(&b.rhs, rng);
                let (lhs, rhs) = if b.op.is_commutative() && rng.gen_bool(0.5) {
                    (rhs, lhs)
                } else {
                    (lhs, rhs)
                };
                Expr::Binary(Binary { op: b.op, lhs: Box::new(lhs), rhs: Box::new(rhs) })
            }
        }
    }

    #[test]
    fn canonicalization_is_idempotent_on_generated_exprs() {
        let cfg = oracle::GenConfig::default();
        let mut rng = lanes::rng::Rng::seed_from_u64(0xD0C5);
        for _ in 0..200 {
            let e = oracle::gen_expr(&mut rng, &cfg);
            let once = canonicalize(&e);
            let twice = canonicalize(&once.expr);
            assert_eq!(twice.expr, once.expr, "{}", halide_ir::sexpr::to_sexpr(&e));
            // The fixpoint's rename maps are the identity.
            assert!(twice.to_canonical.iter().all(|(k, v)| k == v));
        }
    }

    #[test]
    fn equal_canonical_keys_imply_interpreter_equivalence() {
        // Alpha-rename the buffers and scramble commutative operands: the
        // canonical key must survive, and key equality must be
        // semantically real — both expressions evaluate identically on
        // every adversarial environment (modulo the buffer renaming).
        let cfg = oracle::GenConfig::default();
        let mut rng = lanes::rng::Rng::seed_from_u64(0x5EED);
        for _ in 0..100 {
            let e = oracle::gen_expr(&mut rng, &cfg);
            let map: HashMap<String, String> = halide_ir::analysis::buffers_used(&e)
                .into_iter()
                .map(|n| (n.clone(), format!("renamed_{n}")))
                .collect();
            let variant = swap_commutative(&rename_expr(&e, &map), &mut rng);
            assert_eq!(
                canonicalize(&e).expr,
                canonicalize(&variant).expr,
                "{}",
                halide_ir::sexpr::to_sexpr(&e)
            );

            let checker = oracle::Oracle { envs: 2, ..oracle::Oracle::default() };
            for env in checker.envs_for(&e) {
                let renamed: halide_ir::Env = env
                    .iter()
                    .map(|b| {
                        halide_ir::Buffer2D::from_fn(
                            &map[b.name()],
                            b.elem(),
                            b.width(),
                            b.height(),
                            |x, y| b.get(x as i64, y as i64),
                        )
                    })
                    .collect();
                for (x0, y0) in [(0i64, 0i64), (7, 1)] {
                    let lanes = 8;
                    let a = halide_ir::eval(&e, &halide_ir::EvalCtx { env: &env, x0, y0, lanes });
                    let b = halide_ir::eval(
                        &variant,
                        &halide_ir::EvalCtx { env: &renamed, x0, y0, lanes },
                    );
                    assert_eq!(a.ok(), b.ok(), "{}", halide_ir::sexpr::to_sexpr(&e));
                }
            }
        }
    }
}
