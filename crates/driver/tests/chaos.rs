//! Fault-injection tests of the driver (feature `chaos`): the seeded
//! chaos plane drives the degradation ladder, panic capture, and cache
//! self-healing end to end.
#![cfg(feature = "chaos")]

use std::sync::Once;
use std::time::Duration;

use halide_ir::builder::*;
use halide_ir::Expr;
use lanes::ElemType::{U16, U8};
use rake::{Rake, Target};
use rake_driver::chaos::{corrupt_cache_file, CacheCorruption, Fault, FaultPlan};
use rake_driver::{Driver, DriverConfig, JobOutcome, Tier};
use synth::Verifier;

fn rake8() -> Rake {
    Rake::new(Target::hvx_small(8)).with_verifier(Verifier::fast())
}

fn tile(buffer: &str, dx: i32) -> Expr {
    widen(load(buffer, U8, dx, 0))
}

/// Injected panics are expected here; keep the test output readable.
fn quiet_panics() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        std::panic::set_hook(Box::new(|_| {}));
    });
}

fn batch() -> Vec<(String, Expr)> {
    vec![
        ("pair".to_owned(), add(tile("in", 0), tile("in", 1))),
        ("absd".to_owned(), absd(load("a", U8, 0, 0), load("b", U8, 0, 0))),
        ("madd".to_owned(), add(tile("in", 0), mul(tile("in", 1), bcast(3, U16)))),
        ("wide".to_owned(), mul(tile("x", 0), tile("y", 0))),
        ("shift".to_owned(), add(load("s", U8, 0, 0), load("s", U8, 2, 0))),
    ]
}

/// Scan for a seed whose schedule satisfies `want` — the plan is a pure
/// function of (seed, key, tier), so this costs microseconds and keeps
/// the test deterministic without hand-picked magic constants.
fn find_seed(want: impl Fn(&FaultPlan) -> bool) -> FaultPlan {
    (0..10_000)
        .map(FaultPlan::seeded)
        .find(want)
        .expect("a satisfying seed exists in the first 10k")
}

#[test]
fn chaos_batches_terminate_in_order_with_honest_results() {
    quiet_panics();
    for seed in [1, 7, 42] {
        let driver = Driver::new(rake8())
            .with_config(DriverConfig {
                workers: 4,
                job_timeout: Some(Duration::from_secs(30)),
                validate: true,
                retry_backoff: Duration::from_millis(1),
                ..DriverConfig::default()
            })
            .with_chaos(FaultPlan::seeded(seed));
        let report = driver.compile_batch_named(batch());
        // The batch terminates with every input answered, in input order.
        assert_eq!(report.results.len(), batch().len());
        for (i, r) in report.results.iter().enumerate() {
            assert_eq!(r.index, i);
        }
        // Whatever the faults did, no compiled program may be dishonest.
        assert_eq!(report.validation_mismatches(), 0, "seed {seed} leaked a miscompile");
    }
}

#[test]
fn forced_deadline_at_full_tier_lands_on_reduced() {
    quiet_panics();
    let probe = Driver::new(rake8());
    let jobs = batch();
    let keys: Vec<String> = jobs.iter().map(|(_, e)| probe.cache_key(e)).collect();
    // A seed where some job is starved at the full tier but runs clean on
    // the reduced tier: the ladder must recover it, not baseline it.
    let plan = find_seed(|p| {
        keys.iter().any(|k| {
            p.fault_for(k, Tier::Full) == Some(Fault::ForcedDeadline)
                && p.fault_for(k, Tier::Reduced).is_none()
        })
    });
    let driver = Driver::new(rake8())
        .with_config(DriverConfig {
            workers: 2,
            job_timeout: Some(Duration::from_secs(60)),
            retry_backoff: Duration::from_millis(1),
            ..DriverConfig::default()
        })
        .with_chaos(plan.clone());
    let report = driver.compile_batch_named(jobs);
    let recovered = report.results.iter().find(|r| {
        plan.fault_for(&r.key, Tier::Full) == Some(Fault::ForcedDeadline)
            && plan.fault_for(&r.key, Tier::Reduced).is_none()
    });
    let r = recovered.expect("the probed job is in the batch");
    assert!(r.fault_injected, "the injected fault must be flagged on the result");
    assert!(matches!(r.outcome, JobOutcome::Compiled(_)), "got {:?}", r.outcome);
    assert_eq!(r.tier, Tier::Reduced, "recovery must land one rung down, not at baseline");
    assert!(r.retries > 0, "the sticky forced deadline must first exhaust the retry budget");
}

#[test]
fn non_string_panic_payload_is_captured_with_type_info() {
    quiet_panics();
    let probe = Driver::new(rake8());
    let jobs = batch();
    let keys: Vec<String> = jobs.iter().map(|(_, e)| probe.cache_key(e)).collect();
    // A seed where some job panics with a non-string payload at the full
    // tier and no lower tier can compile it (every rung faults), so the
    // captured payload is what surfaces on the final outcome.
    let blocks = |f: Option<Fault>| {
        matches!(f, Some(Fault::PanicStr | Fault::PanicNonStr | Fault::ForcedDeadline))
    };
    let plan = find_seed(|p| {
        keys.iter().any(|k| {
            p.fault_for(k, Tier::Full) == Some(Fault::PanicNonStr)
                && blocks(p.fault_for(k, Tier::Reduced))
                && blocks(p.fault_for(k, Tier::Direct))
        })
    });
    let driver = Driver::new(rake8())
        .with_config(DriverConfig {
            workers: 2,
            retry_backoff: Duration::from_millis(1),
            ..DriverConfig::default()
        })
        .with_chaos(plan.clone());
    let report = driver.compile_batch_named(jobs);
    let poisoned = report
        .results
        .iter()
        .find(|r| plan.fault_for(&r.key, Tier::Full) == Some(Fault::PanicNonStr))
        .expect("the probed job is in the batch");
    assert!(poisoned.fault_injected);
    let JobOutcome::Panicked(msg) = &poisoned.outcome else {
        panic!("expected a panic outcome, got {:?}", poisoned.outcome);
    };
    assert!(
        msg.contains("i32(42)"),
        "non-string payloads must be captured with type info, got: {msg}"
    );
    // A panic is not a verdict: nothing negative-cached.
    assert!(driver.cache().lookup(&poisoned.key).is_none());
}

#[test]
fn cache_self_heals_under_every_corruption() {
    quiet_panics();
    let dir = std::env::temp_dir().join(format!("rake-chaos-heal-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let config =
        || DriverConfig { workers: 2, cache_dir: Some(dir.clone()), ..DriverConfig::default() };
    let path = dir.join(rake_driver::cache::CACHE_FILE);

    let seeded = Driver::new(rake8()).with_config(config());
    let reference = seeded.compile_batch_named(batch());
    assert_eq!(reference.compiled(), batch().len());

    for (round, corruption) in [
        CacheCorruption::TruncatedTail,
        CacheCorruption::GarbageBytes,
        CacheCorruption::VersionMismatch,
    ]
    .into_iter()
    .enumerate()
    {
        corrupt_cache_file(&path, corruption, round as u64).unwrap();
        let driver = Driver::new(rake8()).with_config(config());
        let report = driver.compile_batch_named(batch());
        // The damaged file never panics the driver and never serves stale
        // bits; the batch recompiles what was lost and repersists.
        assert_eq!(report.compiled(), batch().len(), "{corruption:?} broke the batch");
        let healed = rake_driver::cache::SynthCache::persistent(&dir);
        assert_eq!(healed.stats().corrupted, 0, "{corruption:?} was not healed");
        assert!(healed.len() >= batch().len());
    }

    let _ = std::fs::remove_dir_all(&dir);
}
