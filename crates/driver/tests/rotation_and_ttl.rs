//! Lifecycle edges that only show under concurrency or at exact instants:
//! journal rotation racing a stampede of relaxed appenders, and
//! quarantine-TTL expiry precisely at the deadline (clock injected — no
//! test here ever sleeps).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use rake_driver::cache::{CacheEntry, SynthCache};
use rake_driver::event::{DriverEvent, Journal, OutcomeKind};
use rake_driver::json::{self, Json};
use rake_driver::Tier;

fn completed(key: String) -> DriverEvent {
    DriverEvent::JobCompleted {
        key,
        outcome: OutcomeKind::Compiled,
        detail: None,
        tier: Tier::Full,
        retries: 0,
        fault_injected: false,
        replayed: false,
        run_time: Duration::from_millis(1),
    }
}

/// Many threads hammering `append_relaxed` while the size trigger forces
/// repeated inline rotations: the folded snapshot plus the post-rotation
/// tail must still contain a `job_completed` record for every key, and
/// every line of the final file must be well-formed JSON (no torn or
/// interleaved writes).
#[test]
fn rotation_races_concurrent_relaxed_appenders_without_losing_records() {
    let dir = std::env::temp_dir().join(format!("rake-journal-race-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("events.jsonl");

    const THREADS: usize = 8;
    const PER_THREAD: usize = 50;
    // Small enough that rotation fires dozens of times mid-stampede.
    let journal = Arc::new(Journal::open(&path, Some(2 * 1024)).unwrap());
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let journal = Arc::clone(&journal);
            std::thread::spawn(move || {
                for i in 0..PER_THREAD {
                    let key = format!("key_{t}_{i}");
                    if i % 10 == 0 {
                        // A sprinkling of durable appends keeps the fsync
                        // path in the race too.
                        journal.append(&completed(key));
                    } else {
                        journal.append_relaxed(&completed(key));
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    assert!(journal.rotations() >= 1, "rotation never fired: {} bytes", journal.bytes());

    let text = std::fs::read_to_string(&path).unwrap();
    let mut seen = std::collections::HashSet::new();
    for line in text.lines().filter(|l| !l.trim().is_empty()) {
        let doc = json::parse(line).unwrap_or_else(|e| panic!("torn journal line {line:?}: {e}"));
        if doc.get("event").and_then(Json::as_str) == Some("job_completed") {
            if let Some(key) = doc.get("key").and_then(Json::as_str) {
                seen.insert(key.to_owned());
            }
        }
    }
    for t in 0..THREADS {
        for i in 0..PER_THREAD {
            let key = format!("key_{t}_{i}");
            assert!(seen.contains(&key), "rotation lost the record for {key}");
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// The injected quarantine clock, advanced by hand.
static NOW: AtomicU64 = AtomicU64::new(0);
fn test_clock() -> u64 {
    NOW.load(Ordering::SeqCst)
}

/// A quarantine verdict must hold strictly *before* its deadline and
/// lapse exactly *at* it — `now == expires` already reads as expired, on
/// every read path (lookup, reason peek, floor check, census).
#[test]
fn quarantine_ttl_expires_exactly_at_the_boundary() {
    let cache = SynthCache::in_memory().with_clock(test_clock);
    NOW.store(1_000, Ordering::SeqCst);
    cache.quarantine("pill", "worker killed by signal 9", Some(Duration::from_secs(30)));

    // One second before the deadline: quarantined on every read path.
    NOW.store(1_029, Ordering::SeqCst);
    assert!(matches!(cache.lookup("pill"), Some(CacheEntry::Quarantined(_))));
    assert_eq!(cache.quarantine_reason("pill").as_deref(), Some("worker killed by signal 9"));
    assert!(cache.contains_meeting("pill", Tier::Full));
    assert_eq!(cache.quarantined_count(), 1);

    // Exactly at the deadline: expired, dropped, and the key is free.
    NOW.store(1_030, Ordering::SeqCst);
    assert_eq!(cache.quarantined_count(), 0, "now == deadline must already read expired");
    assert!(!cache.contains_meeting("pill", Tier::Full));
    assert!(cache.quarantine_reason("pill").is_none(), "expired verdict must not be served");
    assert!(cache.lookup("pill").is_none(), "expired verdict must read as a miss");
    assert_eq!(cache.len(), 0, "expiry drops the resident entry");

    // A zero TTL is clamped to one second, not instant expiry.
    NOW.store(2_000, Ordering::SeqCst);
    cache.quarantine("pill2", "boom", Some(Duration::ZERO));
    assert!(matches!(cache.lookup("pill2"), Some(CacheEntry::Quarantined(_))));
    NOW.store(2_001, Ordering::SeqCst);
    assert!(cache.lookup("pill2").is_none());

    // `None` quarantines forever, whatever the clock says.
    cache.quarantine("pill3", "forever", None);
    NOW.store(u64::MAX, Ordering::SeqCst);
    assert!(matches!(cache.lookup("pill3"), Some(CacheEntry::Quarantined(_))));
}
