//! Concurrency tests for the bounded cache lifecycle: stores racing
//! `persist()`, and eviction/compaction racing persist, must never lose
//! an acknowledged entry or write a torn snapshot.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use rake::CompileError;
use rake_driver::cache::{CacheEntry, SynthCache};
use rake_driver::CacheLimits;

fn tmp_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("rake-cache-life-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A persist loop runs concurrently with a storing thread. The pending
/// queue is drained with a swap under the mutex; no interleaving may drop
/// a store that happened before the final persist.
#[test]
fn stores_racing_persist_are_never_lost() {
    let dir = tmp_dir("race-store");
    let cache = Arc::new(SynthCache::persistent(&dir));
    let stop = Arc::new(AtomicBool::new(false));

    let persister = {
        let cache = Arc::clone(&cache);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            while !stop.load(Ordering::SeqCst) {
                cache.persist().unwrap();
            }
        })
    };

    const KEYS: usize = 400;
    for i in 0..KEYS {
        cache.store(&format!("key-{i:03}"), CacheEntry::Failed(CompileError::LiftFailed));
    }
    stop.store(true, Ordering::SeqCst);
    persister.join().unwrap();
    cache.persist().unwrap();

    let warm = SynthCache::persistent(&dir);
    assert_eq!(warm.stats().corrupted, 0);
    assert_eq!(warm.len(), KEYS, "a store raced persist() into oblivion");
    for i in 0..KEYS {
        assert!(warm.contains(&format!("key-{i:03}")), "missing key-{i:03}");
    }

    let _ = std::fs::remove_dir_all(&dir);
}

/// Tight entry caps plus a tiny compaction threshold force eviction and
/// log-into-snapshot compaction while stores and persists race. Whatever
/// interleaving happens, the files on disk must stay parseable and within
/// bounds.
#[test]
fn eviction_and_compaction_racing_persist_never_tear_the_snapshot() {
    let dir = tmp_dir("race-evict");
    let limits = CacheLimits { max_entries: Some(8), max_bytes: None, log_compact_bytes: 256 };
    let cache = Arc::new(SynthCache::bounded(&dir, limits));
    let stop = Arc::new(AtomicBool::new(false));

    let persister = {
        let cache = Arc::clone(&cache);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            while !stop.load(Ordering::SeqCst) {
                cache.persist().unwrap();
            }
        })
    };

    let writers: Vec<_> = (0..3)
        .map(|w| {
            let cache = Arc::clone(&cache);
            std::thread::spawn(move || {
                for i in 0..120 {
                    cache.store(
                        &format!("w{w}-key-{i:03}"),
                        CacheEntry::Failed(CompileError::LiftFailed),
                    );
                    if i % 7 == 0 {
                        let _ = cache.lookup(&format!("w{w}-key-{:03}", i / 2));
                    }
                }
            })
        })
        .collect();
    for w in writers {
        w.join().unwrap();
    }
    stop.store(true, Ordering::SeqCst);
    persister.join().unwrap();
    cache.persist().unwrap();

    assert!(cache.len() <= 8, "entry cap violated: {}", cache.len());
    assert!(cache.stats().evicted > 0, "360 stores into 8 slots must evict");
    assert!(cache.stats().compactions > 0, "a 256-byte log threshold must compact");

    // Whatever survived, a warm load sees clean files and the same bound.
    let warm = SynthCache::bounded(&dir, limits);
    assert_eq!(warm.stats().corrupted, 0, "torn snapshot or log on disk");
    assert!(warm.len() <= 8, "disk exceeded the entry cap: {}", warm.len());

    let _ = std::fs::remove_dir_all(&dir);
}
