//! End-to-end tests of the driver service layer: cache keying, warm
//! starts, the worker pool's dedup guarantee, and fault isolation.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use halide_ir::builder::*;
use halide_ir::Expr;
use lanes::ElemType::{U16, U8};
use rake::{Rake, Target};
use rake_driver::cache::{CacheEntry, SynthCache, CACHE_FILE, LOG_FILE};
use rake_driver::event::DriverEvent;
use rake_driver::{canon, json, Driver, DriverConfig, JobOutcome, Tier};
use synth::Verifier;

fn rake8() -> Rake {
    Rake::new(Target::hvx_small(8)).with_verifier(Verifier::fast())
}

fn tile(buffer: &str, dx: i32) -> Expr {
    widen(load(buffer, U8, dx, 0))
}

/// `u16(b(x)) + u16(b(x+1))` — small enough to synthesize in milliseconds.
fn pair_sum(buffer: &str) -> Expr {
    add(tile(buffer, 0), tile(buffer, 1))
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rake-driver-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn alpha_equivalent_exprs_share_a_key() {
    let driver = Driver::new(rake8());
    // Renamed buffers and commuted operands map to the same key.
    let a = add(tile("in", 0), tile("other", 1));
    let b = add(tile("img", 0), tile("aux", 1));
    let c = add(tile("other", 1), tile("in", 0));
    assert_eq!(driver.cache_key(&a), driver.cache_key(&b));
    assert_eq!(driver.cache_key(&a), driver.cache_key(&c));
    // Different offsets are different computations.
    let shifted = add(tile("in", 0), tile("other", 2));
    assert_ne!(driver.cache_key(&a), driver.cache_key(&shifted));
}

#[test]
fn target_and_options_are_part_of_the_key() {
    let e = pair_sum("in");
    let base = Driver::new(rake8());
    let wider = Driver::new(Rake::new(Target::hvx_small(16)).with_verifier(Verifier::fast()));
    assert_ne!(base.cache_key(&e), wider.cache_key(&e));

    let opts = synth::LoweringOptions { aligned_loads: true, ..rake8().options() };
    let ablated = Driver::new(rake8().with_options(opts));
    assert_ne!(base.cache_key(&e), ablated.cache_key(&e));

    // The deadline is excluded: it bounds the search, not the answer.
    let opts = synth::LoweringOptions {
        deadline: Some(std::time::Instant::now() + Duration::from_secs(3600)),
        ..rake8().options()
    };
    let deadlined = Driver::new(rake8().with_options(opts));
    assert_eq!(base.cache_key(&e), deadlined.cache_key(&e));
}

#[test]
fn warm_persistent_cache_runs_zero_queries() {
    let dir = tmp_dir("warm");
    let config =
        || DriverConfig { workers: 2, cache_dir: Some(dir.clone()), ..DriverConfig::default() };
    let jobs = || {
        vec![
            ("pair".to_owned(), pair_sum("in")),
            ("absd".to_owned(), absd(load("a", U8, 0, 0), load("b", U8, 0, 0))),
        ]
    };

    let cold = Driver::new(rake8()).with_config(config());
    let cold_report = cold.compile_batch_named(jobs());
    assert_eq!(cold_report.compiled(), 2);
    assert!(cold_report.stats.lifting_queries > 0);
    assert!(cold_report.stats.sketching_queries > 0);
    assert_eq!(cold_report.stats.cache_hits, 0);

    // A brand-new driver process against the same cache directory must
    // answer entirely from the persistent layer: zero synthesis queries.
    let warm = Driver::new(rake8()).with_config(config());
    let warm_report = warm.compile_batch_named(jobs());
    assert_eq!(warm_report.compiled(), 2);
    assert_eq!(warm_report.stats.lifting_queries, 0);
    assert_eq!(warm_report.stats.sketching_queries, 0);
    assert_eq!(warm_report.stats.swizzling_queries, 0);
    assert_eq!(warm_report.stats.cache_hits, 2);
    for event in &warm_report.events {
        if let DriverEvent::JobFinished(r) = event {
            assert!(r.cache_hit, "job {} missed the warm cache", r.index);
        }
    }
    // Warm results match the cold ones exactly (renaming round-trips).
    for (c, w) in cold_report.results.iter().zip(&warm_report.results) {
        let (JobOutcome::Compiled(c), JobOutcome::Compiled(w)) = (&c.outcome, &w.outcome) else {
            panic!("both runs must compile");
        };
        assert_eq!(c.hvx, w.hvx);
        assert_eq!(c.program.len(), w.program.len());
    }

    // An alpha-renamed variant also hits the warm cache, renamed back to
    // its own buffer names.
    let variant = Driver::new(rake8()).with_config(config());
    let report = variant.compile_batch(&[pair_sum("renamed")]);
    assert_eq!(report.stats.lifting_queries, 0);
    let JobOutcome::Compiled(compiled) = &report.results[0].outcome else {
        panic!("variant must compile from cache");
    };
    assert!(compiled.hvx.to_string().contains("renamed"));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn stress_one_synthesis_per_unique_key_and_stable_order() {
    let uniques: Vec<Expr> = vec![
        pair_sum("in"),
        absd(load("a", U8, 0, 0), load("b", U8, 0, 0)),
        add(tile("in", 0), mul(tile("in", 1), bcast(3, U16))),
        add(load("x", U8, 0, 0), load("x", U8, 1, 0)),
    ];
    // 8 duplicates of each unique expression, alpha-renamed half the time,
    // interleaved so every worker sees a mix.
    let mut batch = Vec::new();
    for round in 0..8 {
        for e in &uniques {
            let e = if round % 2 == 0 {
                e.clone()
            } else {
                // Alpha-rename every buffer: `in` -> `alias_in`, etc.
                let map: HashMap<String, String> = canon::canonicalize(e)
                    .to_original
                    .values()
                    .map(|orig| (orig.clone(), format!("alias_{orig}")))
                    .collect();
                canon::rename_expr(e, &map)
            };
            batch.push(e);
        }
    }
    assert_eq!(batch.len(), 32);

    let run = || {
        let syntheses: Arc<Mutex<HashMap<String, usize>>> = Arc::new(Mutex::new(HashMap::new()));
        let total = Arc::new(AtomicUsize::new(0));
        let rake = rake8();
        let counted = {
            let syntheses = Arc::clone(&syntheses);
            let total = Arc::clone(&total);
            let rake = rake.clone();
            move |e: &Expr,
                  _deadline: Option<std::time::Instant>,
                  _tier: rake_driver::Tier,
                  _cancel: Option<synth::CancelFlag>| {
                let key = halide_ir::sexpr::to_sexpr(&canon::canonicalize(e).expr);
                *syntheses.lock().unwrap().entry(key).or_insert(0) += 1;
                total.fetch_add(1, Ordering::SeqCst);
                rake.compile(e)
            }
        };
        let driver = Driver::new(rake)
            .with_config(DriverConfig { workers: 8, ..DriverConfig::default() })
            .with_compile_fn(counted);
        let report = driver.compile_batch(&batch);
        (report, syntheses, total)
    };

    let (report, syntheses, total) = run();
    // Exactly one synthesis per unique canonical key, despite 8 workers
    // racing over 32 jobs.
    assert_eq!(total.load(Ordering::SeqCst), uniques.len());
    assert!(syntheses.lock().unwrap().values().all(|&n| n == 1));
    assert_eq!(report.results.len(), batch.len());
    assert_eq!(report.compiled(), batch.len());
    assert_eq!(report.stats.cache_hits as usize, batch.len() - uniques.len());
    // Results are in input order with per-input keys.
    for (i, r) in report.results.iter().enumerate() {
        assert_eq!(r.index, i);
    }
    // Duplicates of a key all selected the same instruction sequence.
    let mut programs: HashMap<&str, String> = HashMap::new();
    for r in &report.results {
        let JobOutcome::Compiled(c) = &r.outcome else { panic!("all must compile") };
        let text = canon::rename_hvx(&c.hvx, &canon::canonicalize(&batch[r.index]).to_canonical)
            .to_string();
        assert_eq!(programs.entry(r.key.as_str()).or_insert_with(|| text.clone()), &text);
    }

    // A second identical run is deterministic: same key sequence, same
    // outcome kinds, in the same order.
    let (again, _, _) = run();
    let keys = |rep: &rake_driver::BatchReport| {
        rep.results.iter().map(|r| r.key.clone()).collect::<Vec<_>>()
    };
    assert_eq!(keys(&report), keys(&again));
}

#[test]
fn panicking_job_is_isolated_with_baseline_fallback() {
    let rake = rake8();
    let inner = rake.clone();
    let driver = Driver::new(rake)
        .with_config(DriverConfig { workers: 2, ..DriverConfig::default() })
        .with_compile_fn(move |e: &Expr, _, _, _| {
            if halide_ir::sexpr::to_sexpr(e).contains("boom") {
                panic!("injected selector bug");
            }
            inner.compile(e)
        });
    // The middle job must be structurally distinct from the others, or
    // dedup would serve it from their result before the pool runs it.
    let batch = vec![
        pair_sum("in"),
        mul(tile("boom", 0), tile("boom", 1)),
        absd(load("a", U8, 0, 0), load("b", U8, 0, 0)),
    ];
    let report = driver.compile_batch(&batch);
    assert_eq!(report.results.len(), 3);
    assert!(matches!(report.results[0].outcome, JobOutcome::Compiled(_)));
    assert!(matches!(report.results[2].outcome, JobOutcome::Compiled(_)));
    let JobOutcome::Panicked(msg) = &report.results[1].outcome else {
        panic!("injected panic must surface as Panicked");
    };
    assert!(msg.contains("injected selector bug"));
    // The batch degrades, it does not abort: the baseline selector still
    // provides a program for the poisoned job.
    assert!(report.results[1].fallback.is_some());
    assert!(report.results[1].program().is_some());
    // Panics are not negative-cached: a retry synthesizes fresh.
    assert!(driver.cache().lookup(&report.results[1].key).is_none());
}

#[test]
fn expired_deadline_times_out_job_without_aborting_batch() {
    let driver = Driver::new(rake8()).with_config(DriverConfig {
        workers: 2,
        job_timeout: Some(Duration::ZERO),
        ..DriverConfig::default()
    });
    let batch = vec![pair_sum("in"), absd(load("a", U8, 0, 0), load("b", U8, 0, 0))];
    let report = driver.compile_batch(&batch);
    assert_eq!(report.results.len(), 2);
    for r in &report.results {
        assert!(matches!(r.outcome, JobOutcome::TimedOut), "got {:?}", r.outcome);
        assert!(r.fallback.is_some(), "timed-out job must fall back to baseline");
        // Timeouts are not verdicts; nothing may be negative-cached.
        assert!(driver.cache().lookup(&r.key).is_none());
    }

    // The same driver with the budget lifted compiles everything — the
    // earlier timeouts left no poison behind.
    let retry =
        Driver::new(rake8()).with_config(DriverConfig { workers: 2, ..DriverConfig::default() });
    assert_eq!(retry.compile_batch(&batch).compiled(), 2);
}

#[test]
fn corrupted_persistent_cache_recovers_and_self_heals() {
    let dir = tmp_dir("corrupt-recover");
    std::fs::write(dir.join(CACHE_FILE), "{\"version\":1,\"entries\":[{{{garbage").unwrap();

    let config =
        || DriverConfig { workers: 1, cache_dir: Some(dir.clone()), ..DriverConfig::default() };
    let driver = Driver::new(rake8()).with_config(config());
    assert_eq!(driver.cache().stats().corrupted, 1);
    let report = driver.compile_batch(&[pair_sum("in")]);
    assert_eq!(report.compiled(), 1);

    // The batch rewrote a valid cache file: a fresh load sees the entry.
    let healed = SynthCache::persistent(&dir);
    assert_eq!(healed.len(), 1);
    assert_eq!(healed.stats().corrupted, 0);
    assert!(matches!(healed.lookup(&report.results[0].key), Some(CacheEntry::Compiled(_))));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn jsonl_event_log_is_written_and_parseable() {
    let dir = tmp_dir("jsonl");
    let log = dir.join("events.jsonl");
    let driver = Driver::new(rake8()).with_config(DriverConfig {
        workers: 2,
        log_path: Some(log.clone()),
        ..DriverConfig::default()
    });
    let report = driver.compile_batch_named(vec![("pair".to_owned(), pair_sum("in"))]);
    assert_eq!(report.compiled(), 1);

    let text = std::fs::read_to_string(&log).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    // batch_started, the WAL job_completed record, job_finished,
    // batch_finished.
    assert_eq!(lines.len(), 4);
    let kinds: Vec<String> = lines
        .iter()
        .map(|l| json::parse(l).unwrap().get("event").unwrap().as_str().unwrap().to_owned())
        .collect();
    assert_eq!(kinds, ["batch_started", "job_completed", "job_finished", "batch_finished"]);
    let wal = json::parse(lines[1]).unwrap();
    assert_eq!(wal.get("outcome").unwrap().as_str(), Some("compiled"));
    assert_eq!(wal.get("tier").unwrap().as_str(), Some("full"));
    let job = json::parse(lines[2]).unwrap();
    assert_eq!(job.get("name").unwrap().as_str(), Some("pair"));
    assert_eq!(job.get("outcome").unwrap().as_str(), Some("compiled"));
    assert_eq!(job.get("cache_hit").unwrap().as_bool(), Some(false));
    assert_eq!(job.get("tier").unwrap().as_str(), Some("full"));
    assert_eq!(job.get("retries").unwrap().as_i64(), Some(0));
    assert_eq!(job.get("fault_injected").unwrap().as_bool(), Some(false));
    assert!(job.get("lifting_queries").unwrap().as_i64().unwrap() > 0);

    // The summary table covers the same jobs.
    let table = report.summary_table();
    assert!(table.contains("pair"));
    assert!(table.contains("total: 1 compiled"));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn deadline_at_full_tier_degrades_to_reduced() {
    let rake = rake8();
    let inner = rake.clone();
    let attempts: Arc<Mutex<Vec<Tier>>> = Arc::new(Mutex::new(Vec::new()));
    let seen = Arc::clone(&attempts);
    let driver = Driver::new(rake)
        .with_config(DriverConfig {
            workers: 1,
            job_timeout: Some(Duration::from_secs(60)),
            max_retries: 1,
            retry_backoff: Duration::from_millis(1),
            ..DriverConfig::default()
        })
        .with_compile_fn(move |e: &Expr, _, tier, _| {
            seen.lock().unwrap().push(tier);
            if tier == Tier::Full {
                // A starved solver: gives up long before the tier budget.
                return Err(rake::CompileError::DeadlineExceeded);
            }
            inner.compile(e)
        });
    let report = driver.compile_batch(&[pair_sum("in")]);
    let r = &report.results[0];
    assert!(matches!(r.outcome, JobOutcome::Compiled(_)), "got {:?}", r.outcome);
    assert_eq!(r.tier, Tier::Reduced, "the ladder must land one rung down");
    assert_eq!(r.retries, 1, "a transient deadline is retried once before degrading");
    assert_eq!(report.degraded(), 1);
    // Full was tried twice (attempt + retry), then Reduced succeeded.
    assert_eq!(*attempts.lock().unwrap(), vec![Tier::Full, Tier::Full, Tier::Reduced]);
    // The producing tier lands in the summary table and the cache entry.
    assert!(report.summary_table().contains("reduced"));
    let again = driver.compile_batch(&[pair_sum("in")]);
    assert!(again.results[0].cache_hit);
    assert_eq!(again.results[0].tier, Tier::Reduced);
}

#[test]
fn panic_at_full_tier_recovers_on_degraded_tier() {
    let rake = rake8();
    let inner = rake.clone();
    let driver = Driver::new(rake)
        .with_config(DriverConfig { workers: 1, ..DriverConfig::default() })
        .with_compile_fn(move |e: &Expr, _, tier, _| {
            if tier == Tier::Full {
                panic!("full-tier-only selector bug");
            }
            inner.compile(e)
        });
    let report = driver.compile_batch(&[pair_sum("in")]);
    let r = &report.results[0];
    assert!(matches!(r.outcome, JobOutcome::Compiled(_)), "got {:?}", r.outcome);
    assert_eq!(r.tier, Tier::Reduced);
}

#[test]
fn resume_replays_journal_and_recompiles_only_the_remainder() {
    let dir = tmp_dir("resume");
    let log = dir.join("events.jsonl");
    let config = || DriverConfig {
        workers: 1,
        cache_dir: Some(dir.clone()),
        log_path: Some(log.clone()),
        ..DriverConfig::default()
    };
    let jobs = |n: usize| {
        vec![
            ("pair".to_owned(), pair_sum("in")),
            ("absd".to_owned(), absd(load("a", U8, 0, 0), load("b", U8, 0, 0))),
            ("madd".to_owned(), add(tile("in", 0), mul(tile("in", 1), bcast(3, U16)))),
        ][..n]
            .to_vec()
    };
    let counting_driver = |count: &Arc<AtomicUsize>| {
        let rake = rake8();
        let inner = rake.clone();
        let count = Arc::clone(count);
        Driver::new(rake).with_config(config()).with_compile_fn(move |e: &Expr, _, _, _| {
            count.fetch_add(1, Ordering::SeqCst);
            inner.compile(e)
        })
    };

    // The "crashed" run: two of three jobs completed and journaled, then
    // the process died mid-append, leaving a torn final record.
    let partial = Arc::new(AtomicUsize::new(0));
    let report = counting_driver(&partial).compile_batch_named(jobs(2));
    assert_eq!(report.compiled(), 2);
    assert_eq!(partial.load(Ordering::SeqCst), 2);
    let mut journal = std::fs::read_to_string(&log).unwrap();
    journal.push_str("{\"event\":\"job_completed\",\"key\":\"(add (cast u16"); // torn
    std::fs::write(&log, &journal).unwrap();

    // Resume with the full batch: the two journaled jobs replay (no new
    // synthesis), only the remainder compiles.
    let resumed_count = Arc::new(AtomicUsize::new(0));
    let resumed = counting_driver(&resumed_count).resume_named(jobs(3));
    assert_eq!(resumed.compiled(), 3);
    assert_eq!(resumed_count.load(Ordering::SeqCst), 1, "only the third job recompiles");
    assert!(resumed.results[0].replayed && resumed.results[1].replayed);
    assert!(resumed.results[0].cache_hit && resumed.results[1].cache_hit);
    assert!(!resumed.results[2].replayed && !resumed.results[2].cache_hit);

    // The resumed report is byte-identical, in order, to a clean run of
    // the full batch in a fresh directory.
    let clean_dir = tmp_dir("resume-clean");
    let clean = Driver::new(rake8())
        .with_config(DriverConfig {
            workers: 1,
            cache_dir: Some(clean_dir.clone()),
            ..DriverConfig::default()
        })
        .compile_batch_named(jobs(3));
    let fingerprint = |rep: &rake_driver::BatchReport| {
        rep.results
            .iter()
            .map(|r| {
                let program = match &r.outcome {
                    JobOutcome::Compiled(c) => c.hvx.to_string(),
                    other => format!("{other:?}"),
                };
                format!("{}|{}|{}|{program}\n", r.index, r.name.as_deref().unwrap_or(""), r.key)
            })
            .collect::<String>()
    };
    assert_eq!(fingerprint(&resumed), fingerprint(&clean));

    // Self-heal: if the cache files are lost, a journal-says-compiled job
    // is transparently recompiled rather than trusted blindly.
    std::fs::remove_file(dir.join(CACHE_FILE)).unwrap();
    if let Err(e) = std::fs::remove_file(dir.join(LOG_FILE)) {
        assert_eq!(e.kind(), std::io::ErrorKind::NotFound);
    }
    let healed_count = Arc::new(AtomicUsize::new(0));
    let healed = counting_driver(&healed_count).resume_named(jobs(3));
    assert_eq!(healed.compiled(), 3);
    assert_eq!(healed_count.load(Ordering::SeqCst), 3, "lost cache entries recompile");
    assert_eq!(fingerprint(&healed), fingerprint(&clean));

    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&clean_dir);
}

#[test]
fn resume_over_a_rotated_journal_is_byte_identical() {
    let dir = tmp_dir("resume-rotated");
    let log = dir.join("events.jsonl");
    // A journal limit far below one batch's event volume: the journal
    // rotates (possibly several times) during the run.
    let config = || DriverConfig {
        workers: 1,
        cache_dir: Some(dir.clone()),
        log_path: Some(log.clone()),
        journal_rotate_bytes: Some(256),
        ..DriverConfig::default()
    };
    let jobs = || {
        vec![
            ("pair".to_owned(), pair_sum("in")),
            ("absd".to_owned(), absd(load("a", U8, 0, 0), load("b", U8, 0, 0))),
            ("madd".to_owned(), add(tile("in", 0), mul(tile("in", 1), bcast(3, U16)))),
        ]
    };
    let first = Driver::new(rake8()).with_config(config()).compile_batch_named(jobs());
    assert_eq!(first.compiled(), 3);
    let text = std::fs::read_to_string(&log).unwrap();
    assert!(text.contains("\"event\":\"journal_rotated\""), "no rotation in:\n{text}");

    // Resume over the rotated journal: every job replays, zero recompiles.
    let resumed_count = Arc::new(AtomicUsize::new(0));
    let resumed = {
        let rake = rake8();
        let inner = rake.clone();
        let count = Arc::clone(&resumed_count);
        Driver::new(rake)
            .with_config(config())
            .with_compile_fn(move |e: &Expr, _, _, _| {
                count.fetch_add(1, Ordering::SeqCst);
                inner.compile(e)
            })
            .resume_named(jobs())
    };
    assert_eq!(resumed.compiled(), 3);
    assert_eq!(resumed_count.load(Ordering::SeqCst), 0, "rotation must not lose replay records");
    assert!(resumed.results.iter().all(|r| r.replayed));

    // And the resumed report is byte-identical to an uninterrupted run in
    // a fresh directory with rotation disabled.
    let clean_dir = tmp_dir("resume-rotated-clean");
    let clean = Driver::new(rake8())
        .with_config(DriverConfig {
            workers: 1,
            cache_dir: Some(clean_dir.clone()),
            ..DriverConfig::default()
        })
        .compile_batch_named(jobs());
    let fingerprint = |rep: &rake_driver::BatchReport| {
        rep.results
            .iter()
            .map(|r| {
                let program = match &r.outcome {
                    JobOutcome::Compiled(c) => c.hvx.to_string(),
                    other => format!("{other:?}"),
                };
                format!("{}|{}|{}|{program}\n", r.index, r.name.as_deref().unwrap_or(""), r.key)
            })
            .collect::<String>()
    };
    assert_eq!(fingerprint(&resumed), fingerprint(&clean));

    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&clean_dir);
}

#[test]
fn below_floor_cache_hits_recompile_and_upgrade() {
    let dir = tmp_dir("tier-floor");
    let config = |tiers: Vec<Tier>| DriverConfig {
        workers: 1,
        cache_dir: Some(dir.clone()),
        tiers,
        ..DriverConfig::default()
    };
    let counting = |tiers: Vec<Tier>, count: &Arc<AtomicUsize>| {
        let rake = rake8();
        let inner = rake.clone();
        let count = Arc::clone(count);
        Driver::new(rake).with_config(config(tiers)).with_compile_fn(
            move |e: &Expr, _, tier: Tier, _| {
                count.fetch_add(1, Ordering::SeqCst);
                tier.apply(&inner).compile(e)
            },
        )
    };

    // Seed the cache from a fully degraded run: the entry records Direct.
    let seeded = Driver::new(rake8()).with_config(config(vec![Tier::Direct]));
    let report = seeded.compile_batch(&[pair_sum("in")]);
    assert_eq!(report.compiled(), 1);
    assert_eq!(report.results[0].tier, Tier::Direct);

    // The default ladder's floor is Direct: the degraded entry satisfies
    // it and serves as a plain hit.
    let lax_count = Arc::new(AtomicUsize::new(0));
    let lax = counting(Tier::ladder().to_vec(), &lax_count);
    let report = lax.compile_batch(&[pair_sum("in")]);
    assert_eq!(report.stats.cache_hits, 1);
    assert_eq!(lax_count.load(Ordering::SeqCst), 0);
    assert_eq!(report.results[0].tier, Tier::Direct);

    // A Full-only request outranks the cached entry: miss, fresh Full
    // synthesis, and the better artifact overwrites the degraded one.
    let strict_count = Arc::new(AtomicUsize::new(0));
    let strict = counting(vec![Tier::Full], &strict_count);
    let report = strict.compile_batch(&[pair_sum("in")]);
    assert_eq!(report.compiled(), 1);
    assert_eq!(report.stats.cache_hits, 0, "a below-floor entry must not serve the hit");
    assert_eq!(strict_count.load(Ordering::SeqCst), 1);
    assert_eq!(report.results[0].tier, Tier::Full);
    assert_eq!(strict.cache().stats().floor_misses, 1);

    // The upgraded entry now satisfies the strict floor from cache.
    let warm_count = Arc::new(AtomicUsize::new(0));
    let warm = counting(vec![Tier::Full], &warm_count);
    let report = warm.compile_batch(&[pair_sum("in")]);
    assert_eq!(report.stats.cache_hits, 1);
    assert_eq!(warm_count.load(Ordering::SeqCst), 0);
    assert_eq!(report.results[0].tier, Tier::Full);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resume_replays_failures_and_timeouts_verbatim() {
    let dir = tmp_dir("resume-verbatim");
    let log = dir.join("events.jsonl");
    // A hand-written journal: one deterministic failure, one timeout, one
    // panic — none backed by cache entries.
    let driver = Driver::new(rake8()).with_config(DriverConfig {
        workers: 1,
        cache_dir: Some(dir.clone()),
        log_path: Some(log.clone()),
        ..DriverConfig::default()
    });
    let batch = vec![
        ("f".to_owned(), pair_sum("in")),
        ("t".to_owned(), absd(load("a", U8, 0, 0), load("b", U8, 0, 0))),
        ("p".to_owned(), add(tile("in", 0), mul(tile("in", 1), bcast(3, U16)))),
    ];
    let keys: Vec<String> = batch.iter().map(|(_, e)| driver.cache_key(e)).collect();
    let journal = format!(
        concat!(
            "{{\"event\":\"batch_started\",\"jobs\":3,\"unique\":3,\"workers\":1,\"cache_entries\":0}}\n",
            "{{\"event\":\"job_completed\",\"key\":\"{}\",\"outcome\":\"failed\",\"detail\":\"lower_failed\",\"tier\":\"baseline\",\"retries\":0,\"fault_injected\":false,\"run_ms\":1.0}}\n",
            "{{\"event\":\"job_completed\",\"key\":\"{}\",\"outcome\":\"timed_out\",\"tier\":\"baseline\",\"retries\":2,\"fault_injected\":false,\"run_ms\":1.0}}\n",
            "{{\"event\":\"job_completed\",\"key\":\"{}\",\"outcome\":\"panicked\",\"detail\":\"injected selector bug\",\"tier\":\"baseline\",\"retries\":0,\"fault_injected\":true,\"run_ms\":1.0}}\n",
        ),
        keys[0], keys[1], keys[2]
    );
    std::fs::write(&log, journal).unwrap();

    let report = driver.resume_named(batch);
    assert!(matches!(report.results[0].outcome, JobOutcome::Failed(_)));
    assert!(matches!(report.results[1].outcome, JobOutcome::TimedOut));
    assert_eq!(report.results[1].retries, 2, "retry count replays with the record");
    let JobOutcome::Panicked(msg) = &report.results[2].outcome else {
        panic!("panic outcome must replay");
    };
    assert!(msg.contains("injected selector bug"));
    for r in &report.results {
        assert!(r.replayed, "job {} must come from the journal", r.index);
    }
    // Replayed non-compiles still get the baseline fallback.
    assert!(report.results[0].fallback.is_some());
    assert!(report.results[1].fallback.is_some());

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_tail_cache_file_rebuilds_and_repersists() {
    let dir = tmp_dir("torn-tail");
    let config =
        || DriverConfig { workers: 1, cache_dir: Some(dir.clone()), ..DriverConfig::default() };
    let seeded = Driver::new(rake8()).with_config(config());
    assert_eq!(seeded.compile_batch(&[pair_sum("in")]).compiled(), 1);

    // Tear the tail off the cache file, as a crash mid-write would.
    let path = dir.join(CACHE_FILE);
    let bytes = std::fs::read(&path).unwrap();
    std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();

    let driver = Driver::new(rake8()).with_config(config());
    assert_eq!(driver.cache().stats().corrupted, 1, "torn file must not be silently reused");
    assert_eq!(driver.cache().len(), 0);
    let report = driver.compile_batch(&[pair_sum("in")]);
    assert_eq!(report.compiled(), 1);
    assert_eq!(report.stats.cache_hits, 0, "a torn cache cannot serve stale hits");

    let healed = SynthCache::persistent(&dir);
    assert_eq!(healed.stats().corrupted, 0);
    assert_eq!(healed.len(), 1);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn version_mismatch_cache_file_cold_starts_and_repersists() {
    let dir = tmp_dir("version-mismatch");
    let config =
        || DriverConfig { workers: 1, cache_dir: Some(dir.clone()), ..DriverConfig::default() };
    let seeded = Driver::new(rake8()).with_config(config());
    assert_eq!(seeded.compile_batch(&[pair_sum("in")]).compiled(), 1);

    // A future (or mangled) schema version must cold-start, never be
    // misread as current-format entries.
    let path = dir.join(CACHE_FILE);
    let text = std::fs::read_to_string(&path).unwrap().replace("\"version\":1", "\"version\":999");
    std::fs::write(&path, text).unwrap();

    let driver = Driver::new(rake8()).with_config(config());
    assert_eq!(driver.cache().stats().corrupted, 1);
    assert_eq!(driver.cache().len(), 0);
    let report = driver.compile_batch(&[pair_sum("in")]);
    assert_eq!(report.compiled(), 1);
    assert_eq!(report.stats.cache_hits, 0);

    let healed = SynthCache::persistent(&dir);
    assert_eq!(healed.stats().corrupted, 0);
    assert_eq!(healed.len(), 1);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn validation_passes_honest_programs() {
    let driver = Driver::new(rake8()).with_config(DriverConfig {
        workers: 2,
        validate: true,
        ..DriverConfig::default()
    });
    let batch = vec![pair_sum("in"), absd(load("a", U8, 0, 0), load("b", U8, 0, 0))];
    let report = driver.compile_batch(&batch);
    assert_eq!(report.compiled(), 2);
    assert_eq!(report.validation_mismatches(), 0);
    for r in &report.results {
        let v = r.validation.expect("validate:true must attach an outcome to compiled jobs");
        assert!(v.checks > 0);
        assert_eq!(v.mismatches, 0);
    }
    let validated = report
        .events
        .iter()
        .filter(|e| matches!(e, DriverEvent::JobValidated { mismatches: 0, .. }))
        .count();
    assert_eq!(validated, 2);
}

#[test]
fn validation_flags_a_miscompiled_program() {
    // Inject a selector bug: answer `add` jobs with the program compiled
    // for the corresponding `sub` — structurally plausible, semantically
    // wrong. The differential oracle must flag it.
    let rake = rake8();
    let inner = rake.clone();
    let driver = Driver::new(rake)
        .with_config(DriverConfig { workers: 1, validate: true, ..DriverConfig::default() })
        .with_compile_fn(move |e: &Expr, _, _, _| {
            let wrong = match e {
                Expr::Binary(b) if b.op == halide_ir::BinOp::Add => {
                    Expr::Binary(halide_ir::Binary {
                        op: halide_ir::BinOp::Sub,
                        lhs: b.lhs.clone(),
                        rhs: b.rhs.clone(),
                    })
                }
                other => other.clone(),
            };
            inner.compile(&wrong)
        });
    let report = driver.compile_batch(&[pair_sum("in")]);
    assert_eq!(report.compiled(), 1);
    let v = report.results[0].validation.expect("compiled job must be validated");
    assert!(v.mismatches > 0, "miscompile must be caught: {v:?}");
    assert_eq!(report.validation_mismatches(), v.mismatches);
    assert!(report
        .events
        .iter()
        .any(|e| matches!(e, DriverEvent::JobValidated { mismatches, .. } if *mismatches > 0)));
}
