//! Cross-process cache persistence stress test.
//!
//! Two real OS processes hammer `SynthCache::persist` against the same
//! directory. With the advisory file lock and read-merge-write cycle, the
//! final file must hold the union of everything both processes stored —
//! without the lock, last-writer-wins would silently drop entries.
//!
//! The child processes are this same test binary re-executed with an
//! environment-variable gate (the `cargo test` harness makes spawning a
//! helper binary awkward, re-exec does not).

use std::path::Path;
use std::process::Command;
use std::time::Duration;

use rake::CompileError;
use rake_driver::cache::{CacheEntry, SynthCache};
use rake_driver::lockfile::LockFile;

const DIR_VAR: &str = "RAKE_LOCK_STRESS_DIR";
const TAG_VAR: &str = "RAKE_LOCK_STRESS_TAG";
const KEYS_PER_CHILD: usize = 32;

/// Hidden child body: when the env gate is set, store `KEYS_PER_CHILD`
/// distinct keys into the shared cache dir, persisting after every store so
/// the two children interleave read-merge-write cycles as much as possible.
/// Without the gate (a normal `cargo test` run) this is a no-op.
#[test]
fn lock_stress_child() {
    let Ok(dir) = std::env::var(DIR_VAR) else { return };
    let tag = std::env::var(TAG_VAR).expect("child needs a tag");
    let cache = SynthCache::persistent(Path::new(&dir));
    for i in 0..KEYS_PER_CHILD {
        cache.store(&format!("{tag}-{i}"), CacheEntry::Failed(CompileError::LiftFailed));
        cache.persist().unwrap_or_else(|e| panic!("child {tag} persist {i}: {e}"));
    }
}

#[test]
fn two_process_persist_stress_unions_entries() {
    let dir = std::env::temp_dir().join(format!("rake-driver-lock-stress-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    // Plant a stale lock from a "crashed" process (a pid above the kernel's
    // pid ceiling is never alive). The first child to persist must break
    // it instead of timing out; mutual exclusion must survive the break.
    let lock_path = dir.join("synthcache.json.lock");
    std::fs::write(&lock_path, "4194999999\ntstale-crashed-holder").unwrap();

    let exe = std::env::current_exe().unwrap();
    let children: Vec<_> = ["alpha", "beta"]
        .iter()
        .map(|tag| {
            let child = Command::new(&exe)
                .args(["lock_stress_child", "--exact", "--test-threads", "1"])
                .env(DIR_VAR, &dir)
                .env(TAG_VAR, tag)
                .spawn()
                .expect("spawn child test process");
            (*tag, child)
        })
        .collect();
    for (tag, mut child) in children {
        let status = child.wait().expect("wait for child");
        assert!(status.success(), "child {tag} failed: {status}");
    }

    let warm = SynthCache::persistent(&dir);
    assert_eq!(warm.len(), 2 * KEYS_PER_CHILD, "persisted file must union both processes' entries");
    for tag in ["alpha", "beta"] {
        for i in 0..KEYS_PER_CHILD {
            assert!(
                matches!(
                    warm.lookup(&format!("{tag}-{i}")),
                    Some(CacheEntry::Failed(CompileError::LiftFailed))
                ),
                "missing entry {tag}-{i}"
            );
        }
    }
    // Both children exited: the planted stale lock was broken (not timed
    // out on), their own locks are gone, no break-temp files leaked, and
    // the lock path is immediately acquirable.
    assert!(!lock_path.exists(), "lock file leaked past child exit");
    let leaked: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(Result::ok)
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|name| name.contains(".break-"))
        .collect();
    assert!(leaked.is_empty(), "stale-break temp files leaked: {leaked:?}");
    drop(LockFile::acquire(&lock_path, Duration::from_millis(100)).unwrap());

    let _ = std::fs::remove_dir_all(&dir);
}
