//! Compile every workload of the evaluation suite through the driver
//! service layer: one deduplicated, cached, fault-isolated batch per
//! workload (each workload has its own vectorization width, hence its own
//! target and driver).
//!
//! ```sh
//! cargo run --release -p rake-driver --example driver_batch -- .rake-cache
//! ```
//!
//! Run it twice with the same cache directory: the second run answers
//! every expression from the persistent cache with zero synthesis queries.

use std::time::Instant;

use rake::{Rake, Target};
use rake_driver::{Driver, DriverConfig};
use synth::Verifier;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cache_dir: std::path::PathBuf =
        args.first().map_or_else(|| ".rake-cache".into(), Into::into);
    // Scale the suite's targets down (like the harness's --quick mode) so
    // the example finishes in seconds while exercising the full driver
    // stack: canonical cache keys, the worker pool, JSONL events.
    let scale = |lanes: usize| (16 * lanes / 128).max(4);

    let suite = workloads::all();
    println!("{} workloads -> pool, cache at {}", suite.len(), cache_dir.display());
    let t0 = Instant::now();
    let mut total_exprs = 0;
    let mut total_hits = 0;
    let mut total_queries = 0;
    for w in &suite {
        let lanes = scale(w.lanes);
        let rake = Rake::new(Target::hvx_small(lanes)).with_verifier(Verifier {
            lanes,
            vec_bytes: lanes,
            ..Verifier::fast()
        });
        let driver = Driver::new(rake).with_config(DriverConfig {
            workers: 4,
            job_timeout: Some(std::time::Duration::from_secs(30)),
            cache_dir: Some(cache_dir.clone()),
            log_path: Some(cache_dir.join("events.jsonl")),
            ..DriverConfig::default()
        });
        let report = driver.compile_batch_named(
            w.exprs
                .iter()
                .enumerate()
                .map(|(i, e)| (format!("{}[{i}]", w.name), e.clone()))
                .collect(),
        );
        let queries = report.stats.lifting_queries
            + report.stats.sketching_queries
            + report.stats.swizzling_queries;
        total_exprs += report.results.len();
        total_hits += report.stats.cache_hits;
        total_queries += queries;
        println!(
            "{:<16} {:>2}/{:<2} compiled  {:>4} hits  {:>6} queries  {:>8.1?}",
            w.name,
            report.compiled(),
            report.results.len(),
            report.stats.cache_hits,
            queries,
            report.wall
        );
    }
    println!(
        "\n{total_exprs} expressions, {total_hits} cache hits, {total_queries} queries \
         in {:.1?}",
        t0.elapsed()
    );
    println!("events appended to {}", cache_dir.join("events.jsonl").display());
    if total_queries == 0 {
        println!("warm start: the whole suite was served from the synthesis cache.");
    } else {
        println!("run again with the same cache directory for a warm start.");
    }
}
