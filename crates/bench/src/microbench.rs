//! A minimal self-contained micro-benchmark harness: wall-clock timing
//! with warmup and median-of-samples reporting. Replaces an external
//! benchmarking dependency so `cargo bench` works in offline builds.

use std::time::{Duration, Instant};

/// Run `f` repeatedly and print `name: median per-iter time` over a set of
/// samples. Each sample times a batch sized so one batch takes ~10ms,
/// bounded to keep total runtime per benchmark under a second or so.
pub fn bench(name: &str, mut f: impl FnMut()) {
    // Warmup + batch sizing.
    let start = Instant::now();
    let mut warmup_iters = 0u32;
    while start.elapsed() < Duration::from_millis(50) && warmup_iters < 1_000_000 {
        f();
        warmup_iters += 1;
    }
    let per_iter = start.elapsed() / warmup_iters.max(1);
    let batch = (Duration::from_millis(10).as_nanos() / per_iter.as_nanos().max(1))
        .clamp(1, 1_000_000) as u32;

    const SAMPLES: usize = 11;
    let mut samples: Vec<Duration> = (0..SAMPLES)
        .map(|_| {
            let t = Instant::now();
            for _ in 0..batch {
                f();
            }
            t.elapsed() / batch
        })
        .collect();
    samples.sort();
    println!("{name:<40} {:>12}  ({batch} iters/sample)", fmt_duration(samples[SAMPLES / 2]));
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}
