//! The full evaluation driver: runs every benchmark once at full width and
//! writes both the Figure 11 speedup table and the Table 1 compilation
//! statistics (the data EXPERIMENTS.md records). Prints progress per
//! benchmark; pass `--quick` for the scaled-down configuration.
//!
//! Compilations go through the `rake-driver` service layer:
//!
//!   --cache DIR    persistent synthesis cache (second runs start warm)
//!   --log FILE     append the JSONL driver event stream to FILE
//!   --jobs N       worker threads per workload batch (default: auto)
//!   --timeout SEC  per-expression synthesis budget
//!
//! ```sh
//! cargo run --release -p rake-bench --bin full_eval -- --cache .rake-cache
//! ```

use std::fmt::Write as _;
use std::time::{Duration, Instant};

use rake_bench::{run_workload_with, RunConfig, ServiceOptions};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let mut svc = ServiceOptions::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--cache" => svc.cache_dir = it.next().map(Into::into),
            "--log" => svc.log_path = it.next().map(Into::into),
            "--jobs" => svc.workers = it.next().and_then(|v| v.parse().ok()),
            "--timeout" => {
                svc.job_timeout =
                    it.next().and_then(|v| v.parse().ok()).map(Duration::from_secs_f64);
            }
            _ => {}
        }
    }
    let mut fig11 = String::new();
    let mut table1 = String::new();
    let _ = writeln!(
        fig11,
        "{:<16} {:>6} {:>6} {:>10} {:>10} {:>8}",
        "benchmark", "exprs", "opt", "baseline", "rake", "speedup"
    );
    let _ = writeln!(
        table1,
        "{:<16} {:>5} {:>8} {:>8} {:>8} {:>9} {:>9} {:>9} {:>9}",
        "benchmark", "opt", "lift-q", "sketch-q", "swizl-q", "lift-s", "sketch-s", "swizl-s",
        "total-s"
    );
    let mut speedups = Vec::new();
    for w in workloads::all() {
        let cfg = if quick { RunConfig::quick(&w) } else { RunConfig::full(&w) };
        let t0 = Instant::now();
        let run = run_workload_with(&w, cfg, &svc);
        let ok = run.all_verified();
        eprintln!(
            "{:<16} speedup {:>5.2}x  {}  ({:.1?}, {} cache hits)",
            run.name,
            run.speedup(),
            if ok { "verified" } else { "MISMATCH" },
            t0.elapsed(),
            run.stats.cache_hits
        );
        assert!(ok, "{}: output mismatch against the reference interpreter", run.name);
        speedups.push(run.speedup());
        let _ = writeln!(
            fig11,
            "{:<16} {:>6} {:>6} {:>10} {:>10} {:>7.2}x",
            run.name,
            run.exprs.len(),
            run.optimized(),
            run.baseline_cycles,
            run.rake_cycles,
            run.speedup()
        );
        let s = &run.stats;
        let _ = writeln!(
            table1,
            "{:<16} {:>5} {:>8} {:>8} {:>8} {:>9.2} {:>9.2} {:>9.2} {:>9.2}",
            run.name,
            run.optimized(),
            s.lifting_queries,
            s.sketching_queries,
            s.swizzling_queries,
            s.lifting_time.as_secs_f64(),
            s.sketching_time.as_secs_f64(),
            s.swizzling_time.as_secs_f64(),
            s.total_time().as_secs_f64()
        );
    }
    let geomean = (speedups.iter().map(|s| s.ln()).sum::<f64>() / speedups.len() as f64).exp();
    let _ = writeln!(
        fig11,
        "\ngeomean {:.3}x  max {:.2}x  min {:.2}x",
        geomean,
        speedups.iter().cloned().fold(f64::MIN, f64::max),
        speedups.iter().cloned().fold(f64::MAX, f64::min)
    );
    std::fs::create_dir_all("results").expect("create results dir");
    std::fs::write("results/fig11.txt", &fig11).expect("write fig11");
    std::fs::write("results/table1.txt", &table1).expect("write table1");
    println!("== Figure 11 ==\n{fig11}");
    println!("== Table 1 ==\n{table1}");
    println!("written to results/fig11.txt and results/table1.txt");
}
