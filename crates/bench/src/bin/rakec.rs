//! `rakec` — compile a Halide IR S-expression to HVX with Rake.
//!
//! Input is the canonical S-expression form of `halide_ir::sexpr` (what
//! the paper's Halide plugin emits for the synthesizer), read from a file
//! argument or stdin.
//!
//! ```sh
//! echo '(add (cast u16 (load in u8 -1 0))
//!            (add (mul (cast u16 (load in u8 0 0)) (bcast 2 u16))
//!                 (cast u16 (load in u8 1 0))))' \
//!   | cargo run --release -p rake-bench --bin rakec -- --trace
//! ```
//!
//! Options:
//!   --lanes N      vectorization width (default 128)
//!   --baseline     also print the pattern-matching baseline's code
//!   --trace        print the lifting trace (Figure 9 style)
//!   --uber         print the lifted Uber-Instruction IR
//!   --cache DIR    persistent synthesis cache (via the rake-driver layer)
//!   --log FILE     append the JSONL event stream / write-ahead journal
//!   --resume       replay completed jobs from the --log journal and
//!                  recompile only the remainder (needs --log)
//!   --timeout SEC  wall-clock synthesis budget (shared across the
//!                  degradation ladder: full -> reduced -> direct)
//!   --validate     differentially validate the compiled program against
//!                  the Halide IR interpreter on adversarial inputs
//!   --trace-out FILE  record structured spans for the whole compile and
//!                  write a Chrome trace-event JSON (chrome://tracing)
//!   --trace-slow-ms N  log spans slower than N ms to stderr
//!
//! Exit codes distinguish how the compile concluded:
//!   0  compiled (any synthesis tier)
//!   1  usage or input error
//!   2  synthesis failed deterministically
//!   3  synthesis budget exhausted on every ladder tier
//!   4  compiled but the differential oracle found a mismatch (miscompile)
//!   5  the selector panicked
//!   7  the expression is quarantined as a poison pill (it repeatedly
//!      crashed isolated synthesis workers; see rake-served --isolate)

use std::io::Read as _;
use std::process::ExitCode;
use std::time::Duration;

use driver::{Driver, DriverConfig, JobOutcome, Tier};
use hvx::SlotBudget;
use rake::{Rake, Target};

const EXIT_FAILED: u8 = 2;
const EXIT_TIMED_OUT: u8 = 3;
const EXIT_MISCOMPILE: u8 = 4;
const EXIT_PANICKED: u8 = 5;
const EXIT_QUARANTINED: u8 = 7;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut lanes = 128usize;
    let mut baseline = false;
    let mut trace = false;
    let mut uber = false;
    let mut validate = false;
    let mut resume = false;
    let mut cache_dir: Option<std::path::PathBuf> = None;
    let mut log_path: Option<std::path::PathBuf> = None;
    let mut timeout: Option<Duration> = None;
    let mut trace_out: Option<std::path::PathBuf> = None;
    let mut trace_slow_ms: Option<u64> = None;
    let mut path: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--lanes" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => lanes = v,
                None => return usage("--lanes needs an integer"),
            },
            "--baseline" => baseline = true,
            "--trace" => trace = true,
            "--uber" => uber = true,
            "--validate" => validate = true,
            "--resume" => resume = true,
            "--cache" => match it.next() {
                Some(dir) => cache_dir = Some(dir.into()),
                None => return usage("--cache needs a directory"),
            },
            "--log" => match it.next() {
                Some(file) => log_path = Some(file.into()),
                None => return usage("--log needs a file"),
            },
            "--timeout" => match it.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(secs) => timeout = Some(Duration::from_secs_f64(secs)),
                None => return usage("--timeout needs seconds"),
            },
            "--trace-out" => match it.next() {
                Some(file) => trace_out = Some(file.into()),
                None => return usage("--trace-out needs a file"),
            },
            "--trace-slow-ms" => match it.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(v) => trace_slow_ms = Some(v),
                None => return usage("--trace-slow-ms needs an integer"),
            },
            "--help" | "-h" => return usage(""),
            other if !other.starts_with('-') => path = Some(other.to_owned()),
            other => return usage(&format!("unknown option `{other}`")),
        }
    }
    if resume && log_path.is_none() {
        return usage("--resume needs --log FILE (the journal to replay)");
    }

    let input = match path {
        Some(p) => match std::fs::read_to_string(&p) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("rakec: cannot read {p}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => {
            let mut s = String::new();
            if std::io::stdin().read_to_string(&mut s).is_err() {
                eprintln!("rakec: cannot read stdin");
                return ExitCode::FAILURE;
            }
            s
        }
    };

    let expr = match halide_ir::sexpr::parse(input.trim()) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("rakec: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("; input: {expr}");

    let vec_bytes = 128.min(lanes.max(8));
    let target = Target { lanes, vec_bytes };
    let driver = Driver::new(Rake::new(target)).with_config(DriverConfig {
        workers: 1,
        job_timeout: timeout,
        cache_dir,
        log_path,
        validate,
        ..DriverConfig::default()
    });
    if trace_out.is_some() || trace_slow_ms.is_some() {
        trace::enable();
        if let Some(ms) = trace_slow_ms {
            trace::set_slow_threshold_us(ms.saturating_mul(1000));
        }
    }
    let batch = [expr.clone()];
    let report = {
        let mut root = trace::span_root("rakec.compile", "cli", trace::new_trace_id());
        if root.is_active() {
            root.arg("lanes", lanes);
        }
        if resume { driver.resume(&batch) } else { driver.compile_batch(&batch) }
    };
    if let Some(out) = &trace_out {
        let records = trace::drain();
        if let Err(e) = std::fs::write(out, trace::chrome_trace_json(&records)) {
            eprintln!("rakec: cannot write trace {}: {e}", out.display());
        }
    }
    if trace_slow_ms.is_some() {
        eprint!("{}", trace::slow_log_lines(&trace::drain_slow()));
    }
    let result = &report.results[0];
    if result.cache_hit {
        println!("; served from synthesis cache ({})", result.key);
    }
    if result.replayed {
        println!("; replayed from the journal");
    }
    match &result.outcome {
        JobOutcome::Compiled(c) => {
            if result.tier != Tier::Full {
                println!(
                    "; degraded: synthesized on the `{}` tier after {} retr{}",
                    result.tier.name(),
                    result.retries,
                    if result.retries == 1 { "y" } else { "ies" }
                );
            }
            if trace {
                println!("\n; lifting trace");
                for (i, s) in c.trace.steps.iter().enumerate() {
                    println!(";  step {:>2} [{:?}] {}", i + 1, s.rule, s.halide);
                }
            }
            if uber {
                println!("\n; uber-instruction IR\n{}", c.uber);
                println!("; canonical: {}", uber_ir::sexpr::to_sexpr(&c.uber));
            }
            println!("\n; rake codegen (cost: latency {}, loads {})",
                c.program.latency_sum(lanes, vec_bytes),
                c.program.load_units(lanes, vec_bytes));
            print!("{}", c.program);
            println!(
                "; cycles/tile: {}",
                c.program.schedule(lanes, vec_bytes, SlotBudget::hvx()).cycles
            );
            if let Some(v) = &result.validation {
                println!(
                    "; differential validation: {} points, {} mismatches",
                    v.checks, v.mismatches
                );
                if v.mismatches > 0 {
                    eprintln!("rakec: MISCOMPILE — program disagrees with the interpreter");
                    return ExitCode::from(EXIT_MISCOMPILE);
                }
            }
            if baseline {
                match halide_opt::select(
                    &expr,
                    halide_opt::BaselineOptions { lanes, vec_bytes },
                ) {
                    Ok(b) => {
                        let p = b.to_program();
                        println!("\n; baseline codegen");
                        print!("{p}");
                        println!(
                            "; cycles/tile: {}",
                            p.schedule(lanes, vec_bytes, SlotBudget::hvx()).cycles
                        );
                    }
                    Err(e) => println!("\n; baseline: {e}"),
                }
            }
            ExitCode::SUCCESS
        }
        JobOutcome::Failed(e) => {
            eprintln!("rakec: {e}");
            ExitCode::from(EXIT_FAILED)
        }
        JobOutcome::TimedOut => {
            eprintln!(
                "rakec: synthesis budget exhausted on every tier; rerun with a larger --timeout"
            );
            print_fallback(result, lanes, vec_bytes);
            ExitCode::from(EXIT_TIMED_OUT)
        }
        JobOutcome::Panicked(msg) => {
            eprintln!("rakec: selector panicked ({msg}); falling back to baseline");
            print_fallback(result, lanes, vec_bytes);
            ExitCode::from(EXIT_PANICKED)
        }
        // rakec never arms a cancellation flag; report it like a timeout
        // if a future caller does.
        JobOutcome::Cancelled => {
            eprintln!("rakec: compilation cancelled");
            ExitCode::from(EXIT_TIMED_OUT)
        }
        JobOutcome::Quarantined(reason) => {
            eprintln!("rakec: expression is quarantined ({reason}); falling back to baseline");
            print_fallback(result, lanes, vec_bytes);
            ExitCode::from(EXIT_QUARANTINED)
        }
    }
}

/// For degraded outcomes, print the baseline program the driver fell back
/// to (when the baseline covers the expression).
fn print_fallback(result: &driver::JobResult, lanes: usize, vec_bytes: usize) {
    if let Some(p) = &result.fallback {
        println!("\n; baseline fallback codegen");
        print!("{p}");
        println!(
            "; cycles/tile: {}",
            p.schedule(lanes, vec_bytes, SlotBudget::hvx()).cycles
        );
    }
}

fn usage(err: &str) -> ExitCode {
    if !err.is_empty() {
        eprintln!("rakec: {err}");
    }
    eprintln!(
        "usage: rakec [--lanes N] [--baseline] [--trace] [--uber] [--validate] \
         [--cache DIR] [--log FILE] [--resume] [--timeout SEC] \
         [--trace-out FILE] [--trace-slow-ms N] [file.sexp]\n\
         exit codes: 0 compiled, 1 usage/input error, 2 synthesis failed, \
         3 timed out on every tier, 4 validation mismatch, 5 selector panicked, \
         7 quarantined poison pill"
    );
    if err.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
