//! `chaos` — the driver resilience harness (requires `--features chaos`).
//!
//! Runs the full 21-workload benchmark suite through the driver service
//! layer under seeded, deterministic fault schedules — injected worker
//! panics (string and non-string payloads), forced solver deadline
//! exhaustion, artificial latency — plus cache-file corruption between
//! runs, and asserts the resilience invariants:
//!
//! 1. every batch terminates, with one result per input, in input order;
//! 2. every compiled program passes the differential oracle — injected
//!    faults may cost performance, never correctness;
//! 3. jobs starved at the full tier land on a degraded synthesis tier
//!    (reduced/direct), not straight at the baseline;
//! 4. a corrupted persistent cache is detected, never trusted, and is
//!    healed by the next batch.
//!
//! ```sh
//! cargo run --release -p rake-bench --features chaos --bin chaos
//! cargo run --release -p rake-bench --features chaos --bin chaos -- \
//!     --seeds 1 --limit 6   # the quick CI smoke
//! ```
//!
//! Options:
//!   --seeds N   number of seeded fault schedules to run (default 5)
//!   --base B    base seed; schedule i uses seed B+i (default 3212869637)
//!   --limit N   only the first N workloads (default: all 21)
//!
//! Exits non-zero (with a diagnostic) on the first violated invariant.

use std::process::ExitCode;
use std::time::{Duration, Instant};

use driver::chaos::{corrupt_cache_file, CacheCorruption, FaultPlan};
use driver::{JobOutcome, Tier};
use rake::{Rake, Target};
use rake_bench::{bench_verifier, RunConfig, ServiceOptions};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut seeds = 5u64;
    let mut base = 0xBF84_C405u64;
    let mut limit = usize::MAX;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seeds" => seeds = it.next().and_then(|v| v.parse().ok()).unwrap_or(seeds),
            "--base" => base = it.next().and_then(|v| v.parse().ok()).unwrap_or(base),
            "--limit" => limit = it.next().and_then(|v| v.parse().ok()).unwrap_or(limit),
            other => {
                eprintln!("chaos: unknown option `{other}`");
                eprintln!("usage: chaos [--seeds N] [--base B] [--limit N]");
                return ExitCode::FAILURE;
            }
        }
    }

    // Injected panics are part of the experiment; keep stderr readable.
    std::panic::set_hook(Box::new(|_| {}));

    let workloads: Vec<_> = workloads::all().into_iter().take(limit).collect();
    let started = Instant::now();
    let mut violations = 0usize;
    let mut total_jobs = 0usize;
    let mut total_faulted = 0usize;
    let mut total_degraded_recoveries = 0usize;
    let mut shown_degraded_table = false;

    for i in 0..seeds {
        let seed = base + i;
        let plan = FaultPlan::seeded(seed);
        let dir = std::env::temp_dir()
            .join(format!("rake-chaos-{}-{seed}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        println!("== schedule seed {seed} ({} workloads) ==", workloads.len());

        for (wi, w) in workloads.iter().enumerate() {
            let cfg = RunConfig::quick(w);
            let rake = Rake::new(Target { lanes: cfg.lanes, vec_bytes: cfg.vec_bytes })
                .with_verifier(bench_verifier(cfg));
            let driver = ServiceOptions {
                cache_dir: Some(dir.clone()),
                workers: Some(4),
                job_timeout: Some(Duration::from_secs(20)),
                validate: true,
                ..ServiceOptions::default()
            }
            .driver(rake)
            .with_chaos(plan.clone());

            // Invariant 4 setup: periodically corrupt the persistent cache
            // between batches; the next batch must detect and heal it.
            if wi > 0 && wi % 7 == 0 {
                let path = dir.join(driver::cache::CACHE_FILE);
                if path.exists() {
                    let corruption = match wi / 7 % 3 {
                        0 => CacheCorruption::TruncatedTail,
                        1 => CacheCorruption::GarbageBytes,
                        _ => CacheCorruption::VersionMismatch,
                    };
                    corrupt_cache_file(&path, corruption, seed).ok();
                }
            }

            let jobs: Vec<_> = w
                .exprs
                .iter()
                .enumerate()
                .map(|(j, e)| (format!("{}[{j}]", w.name), e.clone()))
                .collect();
            let n = jobs.len();
            let report = driver.compile_batch_named(jobs);

            // Invariant 1: the batch terminated, complete and in order.
            if report.results.len() != n
                || report.results.iter().enumerate().any(|(j, r)| r.index != j)
            {
                eprintln!("VIOLATION [{}, seed {seed}]: results incomplete or out of order", w.name);
                violations += 1;
            }
            // Invariant 2: no injected fault may corrupt a compiled program.
            if report.validation_mismatches() > 0 {
                eprintln!(
                    "VIOLATION [{}, seed {seed}]: {} oracle mismatches under fault injection",
                    w.name,
                    report.validation_mismatches()
                );
                violations += 1;
            }
            total_jobs += n;
            total_faulted += report.results.iter().filter(|r| r.fault_injected).count();
            // Invariant 3 evidence: a job starved by an injected deadline
            // that still compiled on a degraded synthesis tier.
            let recovered = report
                .results
                .iter()
                .filter(|r| {
                    r.fault_injected
                        && matches!(r.outcome, JobOutcome::Compiled(_))
                        && r.tier != Tier::Full
                })
                .count();
            total_degraded_recoveries += recovered;
            if recovered > 0 && !shown_degraded_table {
                shown_degraded_table = true;
                println!(
                    "-- first degraded-tier recovery ({}, seed {seed}) --\n{}",
                    w.name,
                    report.summary_table()
                );
            }
        }

        // Invariant 4 check: after a full schedule (which corrupted the
        // cache several times), a fresh load must be clean and warm.
        let healed = driver::cache::SynthCache::persistent(&dir);
        if healed.stats().corrupted != 0 {
            eprintln!("VIOLATION [seed {seed}]: cache did not self-heal");
            violations += 1;
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    println!(
        "\nchaos: {seeds} schedules x {} workloads, {total_jobs} jobs, \
         {total_faulted} fault-injected, {total_degraded_recoveries} degraded-tier recoveries, \
         {:.1}s wall",
        workloads.len(),
        started.elapsed().as_secs_f64()
    );
    if total_degraded_recoveries == 0 {
        eprintln!(
            "VIOLATION: no injected-deadline job landed on a degraded synthesis tier — \
             the ladder never demonstrably degraded"
        );
        violations += 1;
    }
    if violations > 0 {
        eprintln!("chaos: {violations} invariant violations");
        return ExitCode::FAILURE;
    }
    println!("chaos: all invariants held");
    ExitCode::SUCCESS
}
