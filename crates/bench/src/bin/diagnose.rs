//! Development aid: explain why a benchmark expression fails to compile,
//! stage by stage.
//!
//! ```sh
//! cargo run --release -p rake-bench --bin diagnose -- camera_pipe
//! ```

use rake_bench::{bench_verifier, RunConfig};
use synth::{lift_expr, lower_expr, LoweringOptions, SynthStats};

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "camera_pipe".into());
    let w = workloads::by_name(&name).unwrap_or_else(|| panic!("unknown benchmark {name}"));
    let cfg = RunConfig::quick(&w);
    let verifier = bench_verifier(cfg);
    for (i, e) in w.exprs.iter().enumerate() {
        println!("== {name}[{i}] ==\n{e}\n");
        let mut stats = SynthStats::default();
        match lift_expr(e, &verifier, &mut stats) {
            None => {
                println!("LIFT FAILED after {} queries", stats.lifting_queries);
                continue;
            }
            Some((u, _)) => {
                println!("lifted ({} queries, {:?}):\n{u}", stats.lifting_queries, stats.lifting_time);
                let opts = LoweringOptions {
                    lanes: cfg.lanes,
                    vec_bytes: cfg.vec_bytes,
                    ..LoweringOptions::default()
                };
                match lower_expr(&u, &verifier, opts, &mut stats) {
                    None => println!(
                        "LOWER FAILED after {} sketch + {} swizzle queries",
                        stats.sketching_queries, stats.swizzling_queries
                    ),
                    Some(h) => println!("lowered:\n{h}"),
                }
            }
        }
    }
}
