//! Table 1: compilation statistics per benchmark — expressions optimized,
//! query counts and wall-clock time per synthesis stage.
//!
//! Compilations go through the `rake-driver` service layer; pass
//! `--cache DIR` to reuse (and grow) a persistent synthesis cache — a warm
//! second run reports zero queries and all cache hits.
//!
//! ```sh
//! cargo run --release -p rake-bench --bin table1_compile_stats [--quick] [--cache DIR]
//! ```

use rake_bench::{run_workload_with, RunConfig, ServiceOptions};
use synth::SynthStats;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let mut svc = ServiceOptions::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--cache" {
            svc.cache_dir = it.next().map(Into::into);
        }
    }
    println!("Table 1 — compilation statistics (this reproduction's scale)\n");
    println!(
        "{:<16} {:>5} {:>8} {:>8} {:>8} {:>5} {:>9} {:>9} {:>9} {:>9}",
        "benchmark",
        "exprs",
        "lift-q",
        "sketch-q",
        "swizl-q",
        "hits",
        "lift-s",
        "sketch-s",
        "swizl-s",
        "total-s"
    );
    let mut suite = SynthStats::default();
    let mut total_exprs = 0;
    for w in workloads::all() {
        let cfg = if quick { RunConfig::quick(&w) } else { RunConfig::full(&w) };
        let run = run_workload_with(&w, cfg, &svc);
        let s = &run.stats;
        suite.merge(s);
        total_exprs += run.optimized();
        println!(
            "{:<16} {:>5} {:>8} {:>8} {:>8} {:>5} {:>9.2} {:>9.2} {:>9.2} {:>9.2}",
            run.name,
            run.optimized(),
            s.lifting_queries,
            s.sketching_queries,
            s.swizzling_queries,
            s.cache_hits,
            s.lifting_time.as_secs_f64(),
            s.sketching_time.as_secs_f64(),
            s.swizzling_time.as_secs_f64(),
            s.total_time().as_secs_f64(),
        );
    }
    println!(
        "\nsuite: {total_exprs} expressions optimized; {} lifting, {} sketching, {} swizzling queries; {} cache hits; {:.2}s total synthesis",
        suite.lifting_queries,
        suite.sketching_queries,
        suite.swizzling_queries,
        suite.cache_hits,
        suite.total_time().as_secs_f64()
    );
    println!("paper scale: 450 expressions, ~62 min mean compile time per benchmark (Rosette/Z3).");
}
