//! Figure 9: the bottom-up lifting trace for a Sobel row — each accepted
//! step with the rule (update / replace / extend) that produced it.
//!
//! ```sh
//! cargo run --release -p rake-bench --bin fig9_lifting_trace
//! ```

use halide_ir::builder::*;
use lanes::ElemType::{U16, U8};
use rake::{Rake, Target};

fn main() {
    let tap = |dx| widen(load("input", U8, dx, -1));
    let expr = add(add(tap(-1), mul(tap(0), bcast(2, U16))), tap(1));

    let compiled = Rake::new(Target::hvx()).compile(&expr).expect("sobel row compiles");
    println!("Figure 9 — lifting `{expr}` to the Uber-Instruction IR\n");
    println!("{:<5} {:<8} halide -> lifted", "step", "rule");
    for (i, s) in compiled.trace.steps.iter().enumerate() {
        println!("{:<5} {:<8} {}", i + 1, format!("{:?}", s.rule), s.halide);
        for line in s.lifted.lines() {
            println!("      {line}");
        }
    }
    println!("\nfinal lifted expression:\n{}", compiled.uber);
    println!("lifting queries: {}", compiled.stats.lifting_queries);
}
