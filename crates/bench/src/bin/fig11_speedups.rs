//! Figure 11: speedup of Rake over the baseline Halide-style backend for
//! every benchmark, plus the suite average.
//!
//! ```sh
//! cargo run --release -p rake-bench --bin fig11_speedups [--quick]
//! ```

use rake_bench::{run_workload, RunConfig};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    println!("Figure 11 — Rake speedup over the baseline HVX backend");
    println!("(cycles from the bundled VLIW simulator; shape, not absolute numbers)\n");
    println!(
        "{:<16} {:>6} {:>6} {:>10} {:>10} {:>8}  bar",
        "benchmark", "exprs", "opt", "baseline", "rake", "speedup"
    );
    let mut speedups = Vec::new();
    for w in workloads::all() {
        let cfg = if quick { RunConfig::quick(&w) } else { RunConfig::full(&w) };
        let run = run_workload(&w, cfg);
        assert!(run.all_verified(), "{}: output mismatch", run.name);
        let s = run.speedup();
        speedups.push(s);
        let bar = "#".repeat((s * 20.0).round() as usize);
        println!(
            "{:<16} {:>6} {:>6} {:>10} {:>10} {:>7.2}x  {bar}",
            run.name,
            run.exprs.len(),
            run.optimized(),
            run.baseline_cycles,
            run.rake_cycles,
            s
        );
    }
    let geomean = (speedups.iter().map(|s| s.ln()).sum::<f64>() / speedups.len() as f64).exp();
    let max = speedups.iter().cloned().fold(f64::MIN, f64::max);
    let min = speedups.iter().cloned().fold(f64::MAX, f64::min);
    println!("\ngeomean speedup: {geomean:.3}x   max: {max:.2}x   min: {min:.2}x");
    println!("paper reports:   avg +18%, max 2.1x (gaussian3x3), min 0.93x (depthwise_conv)");
}
