//! Figure 4: the three Sobel-filter code-generation deltas between the
//! baseline pattern matcher and Rake — the 3-point `vtmpy` fusion (a), the
//! `vmpa.acc` accumulator fusion (b), and the saturate fusion (c) — with
//! latency and load counts from the bundled cost model.
//!
//! ```sh
//! cargo run --release -p rake-bench --bin fig4_sobel_codegen
//! ```

use halide_ir::builder::*;
use halide_ir::Expr;
use hvx::Program;
use lanes::ElemType::{U16, U8};
use rake::{Rake, Target};

const LANES: usize = 128;

fn show(label: &str, e: &Expr) {
    println!("== Figure 4 ({label}) ==");
    println!("Halide IR:  {e}\n");
    let baseline = halide_opt::select(e, halide_opt::BaselineOptions::hvx())
        .expect("baseline covers sobel")
        .to_program();
    let rake = Rake::new(Target::hvx())
        .compile(e)
        .expect("rake compiles sobel")
        .program;
    let stat = |p: &Program| {
        format!("Latency: {}, Loads: {}", p.latency_sum(LANES, 128), p.load_units(LANES, 128))
    };
    println!("-- Halide-style codegen  /* {} */", stat(&baseline));
    print!("{baseline}");
    println!("-- Rake codegen          /* {} */", stat(&rake));
    print!("{rake}");
    println!();
}

fn main() {
    // (a) The 3-point horizontal convolution: vtmpy vs vmpa + vadd + vzxt.
    let t = |dx| widen(load("input", U8, dx, 1));
    let row = add(add(t(-1), mul(t(0), bcast(2, U16))), t(1));
    show("a: sliding-window reduction", &row);

    // (b) The vertical column sum: vmpa.acc vs vmpa + vadd.
    let c = |dy| widen(load("input", U8, -1, dy));
    let col = add(add(c(-1), mul(c(0), bcast(2, U16))), c(1));
    show("b: accumulator fusion", &col);

    // (c) The saturating narrow on the gradient magnitude.
    let sobel = workloads::by_name("sobel").expect("registered");
    show("c: saturate fusion (full Sobel output)", &sobel.exprs[0]);
}
