//! Quick smoke run: every benchmark through both code generators at scaled
//! width, reporting compile/verify status. Development aid; the paper
//! figures come from the `fig*`/`table*` binaries.

use rake_bench::{run_workload, RunConfig};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    println!("{:<16} {:>5} {:>5} {:>9} {:>9} {:>8}  ok?", "benchmark", "exprs", "opt", "base", "rake", "speedup");
    for w in workloads::all() {
        let cfg = if quick { RunConfig::quick(&w) } else { RunConfig::full(&w) };
        let start = std::time::Instant::now();
        let run = run_workload(&w, cfg);
        println!(
            "{:<16} {:>5} {:>5} {:>9} {:>9} {:>7.2}x  {} ({:.1?})",
            run.name,
            run.exprs.len(),
            run.optimized(),
            run.baseline_cycles,
            run.rake_cycles,
            run.speedup(),
            if run.all_verified() { "verified" } else { "MISMATCH" },
            start.elapsed(),
        );
    }
}
