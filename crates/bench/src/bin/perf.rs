//! The synthesis performance harness: runs the benchmark workloads with
//! fixed seeds, records per-stage timings (lift / lower / swizzle / SMT),
//! cache hit rates and wall-clock, and writes a `BENCH_4.json` snapshot
//! (schema `rake-perf-v1`, documented in README.md).
//!
//!   --workloads N   run only the first N workloads (CI smoke uses 3)
//!   --full          full-width configuration (default: quick widths)
//!   --no-memo       disable verdict/env/SMT-term memoization
//!   --no-parallel   disable intra-job parallel lifting
//!   --jobs N        worker threads (also the shared lifting thread budget)
//!   --out PATH      output path (default: BENCH_4.json)
//!   --check PATH    validate an existing snapshot's structure and exit
//!   --trace-out PATH  record structured spans and write a Chrome
//!                   trace-event JSON for the whole run
//!   --trace-slow-ms N  log spans slower than N ms to stderr
//!
//! ```sh
//! cargo run --release -p rake-bench --bin perf -- --out BENCH_4.json
//! cargo run --release -p rake-bench --bin perf -- --check BENCH_4.json
//! ```
//!
//! Comparing a default run against `--no-memo --no-parallel` (same machine,
//! same flags otherwise) isolates the hot-path speedup; the programs
//! synthesized are identical either way.

use std::process::ExitCode;
use std::time::{Duration, Instant};

use driver::json::{self, Json};
use rake_bench::{run_workload_with, RunConfig, ServiceOptions};

struct Args {
    workloads: Option<usize>,
    full: bool,
    memo: bool,
    parallel: bool,
    jobs: Option<usize>,
    out: String,
    check: Option<String>,
    trace_out: Option<String>,
    trace_slow_ms: Option<u64>,
}

fn parse_args() -> Args {
    let mut args = Args {
        workloads: None,
        full: false,
        memo: true,
        parallel: true,
        jobs: None,
        out: "BENCH_4.json".to_owned(),
        check: None,
        trace_out: None,
        trace_slow_ms: None,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--workloads" => args.workloads = it.next().and_then(|v| v.parse().ok()),
            "--full" => args.full = true,
            "--no-memo" => args.memo = false,
            "--no-parallel" => args.parallel = false,
            "--jobs" => args.jobs = it.next().and_then(|v| v.parse().ok()),
            "--out" => {
                if let Some(v) = it.next() {
                    args.out = v.clone();
                }
            }
            "--check" => args.check = it.next().cloned(),
            "--trace-out" => args.trace_out = it.next().cloned(),
            "--trace-slow-ms" => args.trace_slow_ms = it.next().and_then(|v| v.parse().ok()),
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    args
}

fn secs(d: Duration) -> Json {
    // Round to microseconds so snapshots stay readable.
    Json::Num((d.as_secs_f64() * 1e6).round() / 1e6)
}

fn main() -> ExitCode {
    let args = parse_args();
    if let Some(path) = &args.check {
        return check_snapshot(path);
    }

    // The toggles flow to `bench_verifier` through the environment so the
    // harness and the golden/property tests share one switch.
    std::env::set_var("RAKE_MEMO", if args.memo { "1" } else { "0" });
    std::env::set_var("RAKE_PARALLEL_LIFT", if args.parallel { "1" } else { "0" });

    if args.trace_out.is_some() || args.trace_slow_ms.is_some() {
        trace::enable();
        if let Some(ms) = args.trace_slow_ms {
            trace::set_slow_threshold_us(ms.saturating_mul(1000));
        }
    }

    let svc = ServiceOptions { workers: args.jobs, ..ServiceOptions::default() };
    let all = workloads::all();
    let count = args.workloads.unwrap_or(all.len()).min(all.len());
    let mut run_span = trace::span_root("perf.run", "cli", trace::new_trace_id());
    if run_span.is_active() {
        run_span.arg("workloads", count);
        run_span.arg("quick", !args.full);
    }

    let mut per_workload = Vec::new();
    let mut totals = synth::SynthStats::default();
    let mut total_wall = Duration::ZERO;
    let mut all_verified = true;
    let run_start = Instant::now();
    for w in all.into_iter().take(count) {
        let cfg = if args.full { RunConfig::full(&w) } else { RunConfig::quick(&w) };
        let t0 = Instant::now();
        let run = {
            let mut sp = trace::span("perf.workload", "cli");
            if sp.is_active() {
                sp.arg("name", w.name);
            }
            run_workload_with(&w, cfg, &svc)
        };
        let wall = t0.elapsed();
        let ok = run.all_verified();
        all_verified &= ok;
        eprintln!(
            "{:<16} {:>7.2?}  lift {:>6.2}s  smt {:>5}q/{:>6.2}s  memo {:>4} hits  {}",
            run.name,
            wall,
            run.stats.lifting_time.as_secs_f64(),
            run.stats.smt_queries,
            run.stats.smt_time.as_secs_f64(),
            run.stats.verdict_cache_hits,
            if ok { "verified" } else { "MISMATCH" },
        );
        let s = &run.stats;
        per_workload.push(Json::obj([
            ("name", run.name.into()),
            ("wall_s", secs(wall)),
            ("lift_s", secs(s.lifting_time)),
            ("sketch_s", secs(s.sketching_time)),
            ("swizzle_s", secs(s.swizzling_time)),
            ("smt_s", secs(s.smt_time)),
            ("lifting_queries", s.lifting_queries.into()),
            ("sketching_queries", s.sketching_queries.into()),
            ("swizzling_queries", s.swizzling_queries.into()),
            ("smt_queries", s.smt_queries.into()),
            ("verdict_cache_hits", s.verdict_cache_hits.into()),
            ("env_cache_hits", s.env_cache_hits.into()),
            ("cache_hits", s.cache_hits.into()),
            ("exprs", run.exprs.len().into()),
            ("optimized", run.optimized().into()),
            ("speedup", Json::Num((run.speedup() * 1000.0).round() / 1000.0)),
            ("verified", ok.into()),
        ]));
        totals.merge(&run.stats);
        total_wall += wall;
    }
    drop(run_span);
    if let Some(out) = &args.trace_out {
        let records = trace::drain();
        if let Err(e) = std::fs::write(out, trace::chrome_trace_json(&records)) {
            eprintln!("perf: cannot write trace {out}: {e}");
        }
    }
    if args.trace_slow_ms.is_some() {
        eprint!("{}", trace::slow_log_lines(&trace::drain_slow()));
    }

    let screen_queries =
        totals.lifting_queries + totals.sketching_queries + totals.swizzling_queries;
    let verdict_rate = if screen_queries + totals.verdict_cache_hits > 0 {
        totals.verdict_cache_hits as f64 / (screen_queries + totals.verdict_cache_hits) as f64
    } else {
        0.0
    };
    let doc = Json::obj([
        ("schema", "rake-perf-v1".into()),
        (
            "config",
            Json::obj([
                ("quick", (!args.full).into()),
                ("memoize", args.memo.into()),
                ("parallel_lifting", args.parallel.into()),
                ("jobs", args.jobs.map_or(Json::Null, Json::from)),
                ("workloads", count.into()),
            ]),
        ),
        (
            "totals",
            Json::obj([
                ("wall_s", secs(total_wall)),
                ("harness_wall_s", secs(run_start.elapsed())),
                ("lift_s", secs(totals.lifting_time)),
                ("sketch_s", secs(totals.sketching_time)),
                ("swizzle_s", secs(totals.swizzling_time)),
                ("smt_s", secs(totals.smt_time)),
                ("lifting_queries", totals.lifting_queries.into()),
                ("sketching_queries", totals.sketching_queries.into()),
                ("swizzling_queries", totals.swizzling_queries.into()),
                ("smt_queries", totals.smt_queries.into()),
                ("verdict_cache_hits", totals.verdict_cache_hits.into()),
                ("env_cache_hits", totals.env_cache_hits.into()),
                ("cache_hits", totals.cache_hits.into()),
                ("verdict_hit_rate", Json::Num((verdict_rate * 1e4).round() / 1e4)),
                ("verified", all_verified.into()),
            ]),
        ),
        ("workloads", Json::Arr(per_workload)),
    ]);
    std::fs::write(&args.out, format!("{doc}\n")).expect("write snapshot");
    eprintln!(
        "total {:.2}s (lift {:.2}s, smt {:.2}s, {} verdict hits, {:.1}% hit rate) -> {}",
        total_wall.as_secs_f64(),
        totals.lifting_time.as_secs_f64(),
        totals.smt_time.as_secs_f64(),
        totals.verdict_cache_hits,
        verdict_rate * 100.0,
        args.out,
    );
    if all_verified {
        ExitCode::SUCCESS
    } else {
        eprintln!("error: at least one workload output mismatched the interpreter");
        ExitCode::FAILURE
    }
}

/// Structural validation of a snapshot (the CI perf-smoke gate): the
/// schema tag, the totals keys, and a consistent workloads array. No
/// timing thresholds — machine speed must not fail CI.
fn check_snapshot(path: &str) -> ExitCode {
    let fail = |msg: &str| -> ExitCode {
        eprintln!("{path}: {msg}");
        ExitCode::FAILURE
    };
    let Ok(text) = std::fs::read_to_string(path) else {
        return fail("cannot read snapshot");
    };
    let doc = match json::parse(&text) {
        Ok(doc) => doc,
        Err(err) => return fail(&format!("invalid JSON: {err:?}")),
    };
    if doc.get("schema").and_then(Json::as_str) != Some("rake-perf-v1") {
        return fail("missing or unknown schema tag (want rake-perf-v1)");
    }
    let Some(totals) = doc.get("totals") else {
        return fail("missing totals object");
    };
    for key in [
        "wall_s",
        "lift_s",
        "sketch_s",
        "swizzle_s",
        "smt_s",
        "lifting_queries",
        "smt_queries",
        "verdict_cache_hits",
        "env_cache_hits",
    ] {
        if !matches!(totals.get(key), Some(Json::Num(_))) {
            return fail(&format!("totals.{key} missing or not a number"));
        }
    }
    if totals.get("verified").and_then(Json::as_bool) != Some(true) {
        return fail("totals.verified is not true");
    }
    let Some(runs) = doc.get("workloads").and_then(Json::as_arr) else {
        return fail("missing workloads array");
    };
    if runs.is_empty() {
        return fail("workloads array is empty");
    }
    let declared = doc.get("config").and_then(|c| c.get("workloads")).and_then(Json::as_i64);
    if declared != Some(runs.len() as i64) {
        return fail("config.workloads disagrees with the workloads array length");
    }
    for (i, run) in runs.iter().enumerate() {
        if run.get("name").and_then(Json::as_str).is_none() {
            return fail(&format!("workloads[{i}].name missing"));
        }
        if !matches!(run.get("wall_s"), Some(Json::Num(_))) {
            return fail(&format!("workloads[{i}].wall_s missing"));
        }
        if run.get("verified").and_then(Json::as_bool) != Some(true) {
            return fail(&format!("workloads[{i}] is not verified"));
        }
    }
    println!("{path}: ok ({} workloads)", runs.len());
    ExitCode::SUCCESS
}
