//! `conform` — metamorphic + differential conformance sweep.
//!
//! Applies the `rake-conform` relation catalog (operand commutation,
//! buffer alpha-renames, offset shifts, strength-reduction round-trips,
//! widen/narrow identities, distribute/factor, constant unfolding, ...)
//! to the 21 paper workloads plus oracle-generated and coverage-seeded
//! expressions. Both sides of every pair compile through the driver
//! service layer (or a running `rake-served`, with `--via-server`) and
//! must produce lane-for-lane identical HVX output on adversarial
//! environments, with the variant's cost inside the relation's declared
//! envelope. Violations are delta-debugged into self-contained repros
//! under `results/repros/conform/`.
//!
//! A coverage layer (the `coverage` feature of `rake-synth`, always on
//! for this binary) counts lifting-rule firings and emitted HVX opcodes;
//! `--coverage-out` writes the `rake-conform-coverage-v1` JSON report.
//!
//! ```sh
//! cargo run --release -p rake-bench --bin conform -- --seed 0xRAKE --check
//! cargo run --release -p rake-bench --bin conform -- --via-server 127.0.0.1:8077
//! ```
//!
//! Options:
//!   --seed S           RNG seed: hex with 0x prefix, else decimal, else
//!                      the FNV-1a hash of the literal string
//!   --relations A,B    run only these relations (default: whole catalog)
//!   --budget SEC       wall-clock cap; exceeding it truncates (and fails
//!                      --check)
//!   --via-server ADDR  compile over HTTP via a running rake-served
//!   --coverage-out F   write the coverage JSON report to this file
//!   --out DIR          repro directory (default results/repros/conform)
//!   --generated N      oracle-generated expressions to sweep (default 12)
//!   --lanes N          width for the generated/seeded sweep (default 8)
//!   --workloads N      sweep only the first N workloads (smokes; default all)
//!   --check            enforce the conformance gate: zero violations,
//!                      zero unsound relations, >= 8 relations applied,
//!                      untruncated sweep
//!   --trace-out FILE   record structured spans for the sweep and write a
//!                      Chrome trace-event JSON
//!   --trace-slow-ms N  log spans slower than N ms to stderr

use std::process::ExitCode;
use std::time::Duration;

use conform::{coverage_report, HarnessConfig};

fn parse_seed(s: &str) -> u64 {
    if let Some(h) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        if let Ok(v) = u64::from_str_radix(h, 16) {
            return v;
        }
    }
    if let Ok(v) = s.parse::<u64>() {
        return v;
    }
    oracle::fnv1a(s.as_bytes())
}

fn usage(err: &str) -> ExitCode {
    if !err.is_empty() {
        eprintln!("conform: {err}");
    }
    eprintln!(
        "usage: conform [--seed S] [--relations A,B] [--budget SEC] [--via-server ADDR]\n\
         \x20              [--coverage-out FILE] [--out DIR] [--generated N] [--lanes N]\n\
         \x20              [--workloads N] [--check] [--trace-out FILE] [--trace-slow-ms N]"
    );
    if err.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(2)
    }
}

fn main() -> ExitCode {
    let mut cfg = HarnessConfig { seed: parse_seed("0xRAKE"), ..HarnessConfig::default() };
    let mut coverage_out: Option<std::path::PathBuf> = None;
    let mut check = false;
    let mut trace_out: Option<std::path::PathBuf> = None;
    let mut trace_slow_ms: Option<u64> = None;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" => match it.next() {
                Some(v) => cfg.seed = parse_seed(v),
                None => return usage("--seed needs a value"),
            },
            "--relations" => match it.next() {
                Some(v) => {
                    cfg.relations =
                        Some(v.split(',').map(|s| s.trim().to_owned()).collect());
                }
                None => return usage("--relations needs a comma-separated list"),
            },
            "--budget" => match it.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(secs) => cfg.budget = Some(Duration::from_secs_f64(secs)),
                None => return usage("--budget needs seconds"),
            },
            "--via-server" => match it.next() {
                Some(addr) => cfg.server = Some(addr.clone()),
                None => return usage("--via-server needs host:port"),
            },
            "--coverage-out" => match it.next() {
                Some(f) => coverage_out = Some(f.into()),
                None => return usage("--coverage-out needs a file"),
            },
            "--out" => match it.next() {
                Some(dir) => cfg.out = dir.into(),
                None => return usage("--out needs a directory"),
            },
            "--generated" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => cfg.generated = v,
                None => return usage("--generated needs an integer"),
            },
            "--lanes" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => cfg.gen_lanes = v,
                None => return usage("--lanes needs an integer"),
            },
            "--workloads" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => cfg.workloads = Some(v),
                None => return usage("--workloads needs an integer"),
            },
            "--check" => check = true,
            "--trace-out" => match it.next() {
                Some(f) => trace_out = Some(f.into()),
                None => return usage("--trace-out needs a file"),
            },
            "--trace-slow-ms" => match it.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(v) => trace_slow_ms = Some(v),
                None => return usage("--trace-slow-ms needs an integer"),
            },
            "--help" | "-h" => return usage(""),
            other => return usage(&format!("unknown option `{other}`")),
        }
    }

    if trace_out.is_some() || trace_slow_ms.is_some() {
        trace::enable();
        if let Some(ms) = trace_slow_ms {
            trace::set_slow_threshold_us(ms.saturating_mul(1000));
        }
    }

    let t0 = std::time::Instant::now();
    let summary = {
        let mut root = trace::span_root("conform.run", "cli", trace::new_trace_id());
        if root.is_active() {
            root.arg("seed", cfg.seed);
        }
        match conform::run(&cfg) {
            Ok(s) => s,
            Err(err) => {
                eprintln!("conform: harness failed: {err}");
                return ExitCode::FAILURE;
            }
        }
    };
    if let Some(out) = &trace_out {
        let records = trace::drain();
        if let Err(e) = std::fs::write(out, trace::chrome_trace_json(&records)) {
            eprintln!("conform: cannot write trace {}: {e}", out.display());
        }
    }
    if trace_slow_ms.is_some() {
        eprint!("{}", trace::slow_log_lines(&trace::drain_slow()));
    }

    println!(
        "conform: {} exprs, {} pairs, {} points in {:.1?} (seed {:#x})",
        summary.exprs,
        summary.pairs,
        summary.points,
        t0.elapsed(),
        cfg.seed
    );
    for (name, s) in &summary.per_relation {
        println!(
            "  {name:<16} applied {:>4}  skipped {:>4}  violations {}  cost {}",
            s.applied, s.skipped, s.violations, s.cost_violations
        );
    }
    if summary.truncated {
        println!("  (truncated by --budget; counts above are partial)");
    }

    let report = coverage_report(cfg.seed, &summary);
    let uncovered_rules: Vec<String> = report
        .get("uncovered_rules")
        .and_then(|u| u.as_arr())
        .map(|arr| arr.iter().filter_map(|j| j.as_str().map(str::to_owned)).collect())
        .unwrap_or_default();
    let waived = report.get("waived").and_then(|w| w.as_arr()).map_or(0, |w| w.len());
    println!(
        "coverage: {} rules hit / {} catalogued, {} uncovered ({} waived gaps)",
        synth::coverage::rule_counts().iter().filter(|(_, n)| *n > 0).count(),
        synth::coverage::RULES.len(),
        uncovered_rules.len(),
        waived,
    );
    if !uncovered_rules.is_empty() {
        println!("  uncovered rules: {}", uncovered_rules.join(", "));
    }
    if let Some(path) = &coverage_out {
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            if let Err(err) = std::fs::create_dir_all(dir) {
                eprintln!("conform: cannot create {}: {err}", dir.display());
                return ExitCode::FAILURE;
            }
        }
        if let Err(err) = std::fs::write(path, format!("{report}\n")) {
            eprintln!("conform: cannot write {}: {err}", path.display());
            return ExitCode::FAILURE;
        }
        println!("coverage report: {}", path.display());
    }

    if !summary.clean() {
        eprintln!(
            "conform: {} violation(s), {} cost violation(s), {} unsound relation(s); \
             repros under {}",
            summary.violations,
            summary.cost_violations,
            summary.unsound,
            cfg.out.display()
        );
        return ExitCode::FAILURE;
    }
    if check {
        let applied_relations =
            summary.per_relation.values().filter(|s| s.applied > 0).count();
        if applied_relations < 8 {
            eprintln!(
                "conform --check: only {applied_relations} relations applied (need >= 8)"
            );
            return ExitCode::FAILURE;
        }
        if summary.truncated {
            eprintln!("conform --check: sweep truncated by budget; gate not satisfied");
            return ExitCode::FAILURE;
        }
    }
    println!("conform: clean");
    ExitCode::SUCCESS
}
