//! `loadgen` — closed-loop load generator for `rake-served`.
//!
//! Drives N persistent connections against a running server with a
//! deterministic, seeded mix of the 21 seed workloads, then reports
//! latency percentiles, outcome tallies, and a `/metrics` cross-check
//! (the server's counters must agree with what the client measured),
//! and writes the whole report to `BENCH_5.json`.
//!
//! ```sh
//! rake-served --addr 127.0.0.1:8347 --cache /tmp/rake-cache &
//! loadgen --addr 127.0.0.1:8347 --connections 8 --requests 200 --check
//! ```
//!
//! Options:
//!   --addr HOST:PORT   server to drive (required unless --spawn)
//!   --spawn            start an in-process server instead (self-contained)
//!   --connections N    concurrent closed-loop connections (default 8)
//!   --requests M       measured requests total (default 200)
//!   --seed S           workload-mix seed (default 42)
//!   --no-warm          skip the warm-up pass (measure cold latencies)
//!   --soak N           cache-lifecycle soak: replace the workload mix with
//!                      N unique single-expression requests (distinct load
//!                      offsets, so every request is a fresh cache key) sent
//!                      once each, no warm-up. Drives eviction/compaction on
//!                      a bounded server; pair with small --cache-max-entries
//!                      server flags and inspect the report's `cache` block.
//!   --crash-storm N    crash-containment storm: N requests mixing good
//!                      keys with poison keys sent under `chaos: abort`
//!                      (every worker dispatch of a poison key dies).
//!                      The target must run `--isolate --chaos`; with
//!                      --spawn, loadgen configures that itself. Asserts
//!                      zero transport errors, every poison key ends
//!                      quarantined, and the worker/crash/quarantine
//!                      counters moved accordingly.
//!   --out FILE         report path (default BENCH_5.json)
//!   --check            exit non-zero unless: zero errors, warm p50 under
//!                      50 ms (skipped under --soak and --crash-storm),
//!                      /metrics agrees with client tallies, and the
//!                      latency histogram is internally consistent
//!                      (cumulative buckets monotone, `+Inf` == `_count`,
//!                      `_sum` within the client-observed latency total)
//!
//! Exit codes: 0 ok, 1 usage/connection error, 2 --check failed.

use std::collections::BTreeMap;
use std::io::Write as _;
use std::net::TcpStream;
use std::process::ExitCode;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use driver::json::{self, Json};
use served::http::roundtrip;

const WARM_P50_BUDGET_MS: f64 = 50.0;

/// Distinct poison keys a `--crash-storm` run hammers; every dispatch of
/// one aborts its worker until the key crosses the crash threshold and
/// is quarantined.
const STORM_CRASH_KEYS: usize = 3;
/// Distinct healthy keys interleaved with the poison ones, proving the
/// server keeps serving through the storm.
const STORM_GOOD_KEYS: usize = 8;

/// One workload-derived request template.
struct Template {
    name: String,
    body: Vec<u8>,
    exprs: usize,
}

/// One measured exchange.
struct Sample {
    latency: Duration,
    status: u16,
    outcome: String,
    template: usize,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut addr: Option<String> = None;
    let mut spawn = false;
    let mut connections = 8usize;
    let mut requests = 200usize;
    let mut seed = 42u64;
    let mut warm = true;
    let mut soak = 0usize;
    let mut storm = 0usize;
    let mut out_path = std::path::PathBuf::from("BENCH_5.json");
    let mut check = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => match it.next() {
                Some(v) => addr = Some(v.clone()),
                None => return usage("--addr needs HOST:PORT"),
            },
            "--spawn" => spawn = true,
            "--connections" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => connections = v,
                None => return usage("--connections needs an integer"),
            },
            "--requests" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => requests = v,
                None => return usage("--requests needs an integer"),
            },
            "--seed" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => seed = v,
                None => return usage("--seed needs an integer"),
            },
            "--no-warm" => warm = false,
            "--soak" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => soak = v,
                None => return usage("--soak needs an integer"),
            },
            "--crash-storm" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => storm = v,
                None => return usage("--crash-storm needs an integer"),
            },
            "--out" => match it.next() {
                Some(v) => out_path = v.into(),
                None => return usage("--out needs a path"),
            },
            "--check" => check = true,
            "--help" | "-h" => return usage(""),
            other => return usage(&format!("unknown option `{other}`")),
        }
    }
    if connections == 0 || requests == 0 {
        return usage("--connections and --requests must be positive");
    }
    if soak > 0 && storm > 0 {
        return usage("--soak and --crash-storm are mutually exclusive");
    }

    // --spawn: a self-contained run against an in-process server. A
    // crash storm needs the isolate + chaos planes, and workers must be
    // the real `rake-served` binary (current_exe here is loadgen): the
    // bench setup builds both into the same directory.
    let spawned = if spawn {
        let mut config = served::ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            ..served::ServerConfig::default()
        };
        if storm > 0 {
            let sibling = std::env::current_exe()
                .ok()
                .and_then(|p| p.parent().map(|d| d.join("rake-served")))
                .filter(|p| p.exists());
            let Some(server_bin) = sibling else {
                eprintln!(
                    "loadgen: --crash-storm --spawn needs the rake-served binary \
                     built next to loadgen (or pass --addr of an --isolate --chaos \
                     server)"
                );
                return ExitCode::FAILURE;
            };
            config.isolate = true;
            config.chaos = true;
            config.worker_cmd =
                Some(vec![server_bin.to_string_lossy().into_owned(), "worker".to_owned()]);
        }
        let handle = match served::serve(config) {
            Ok(h) => h,
            Err(e) => {
                eprintln!("loadgen: cannot spawn server: {e}");
                return ExitCode::FAILURE;
            }
        };
        addr = Some(handle.addr().to_string());
        Some(handle)
    } else {
        None
    };
    let Some(addr) = addr else {
        return usage("--addr is required (or pass --spawn)");
    };

    // Chaos-free bodies for the poison keys: after the storm, these
    // probe that each key is answered `quarantined` from the cache.
    let mut storm_probes: Vec<(String, Vec<u8>)> = Vec::new();
    let templates: Vec<Template> = if storm > 0 {
        // Poison keys first (indices 0..STORM_CRASH_KEYS), then healthy
        // keys — the mix below indexes by that layout. Load offsets make
        // the keys distinct; `y` separates poison from healthy.
        warm = false;
        requests = storm;
        let mut v = Vec::new();
        for i in 0..STORM_CRASH_KEYS {
            let expr = format!("(add (load a u8 {i} 1) (load b u8 {i} 1))");
            storm_probes.push((
                format!("storm-poison-{i}"),
                Json::obj([("expr", expr.clone().into())]).to_string().into_bytes(),
            ));
            v.push(Template {
                name: format!("storm-poison-{i}"),
                body: Json::obj([("expr", expr.into()), ("chaos", "abort".into())])
                    .to_string()
                    .into_bytes(),
                exprs: 1,
            });
        }
        for i in 0..STORM_GOOD_KEYS {
            let expr = format!("(add (load a u8 {i} 0) (load b u8 {i} 0))");
            v.push(Template {
                name: format!("storm-good-{i}"),
                body: Json::obj([("expr", expr.into())]).to_string().into_bytes(),
                exprs: 1,
            });
        }
        v
    } else if soak > 0 {
        // Unique-key stream: load offsets survive canonicalization (buffer
        // names do not), so each template is a distinct cache entry and a
        // bounded server must evict/compact to absorb the run.
        warm = false;
        requests = soak;
        (0..soak)
            .map(|i| {
                let (dx, dy) = (i, i + soak + 1);
                let expr = format!(
                    "(add (cast u16 (load a u8 {dx} 0)) (cast u16 (load a u8 {dy} 0)))"
                );
                Template {
                    name: format!("soak-{i}"),
                    body: Json::obj([("expr", expr.into()), ("lanes", 64u64.into())])
                        .to_string()
                        .into_bytes(),
                    exprs: 1,
                }
            })
            .collect()
    } else {
        workloads::all()
            .into_iter()
            .map(|w| {
                let exprs: Vec<Json> = w
                    .exprs
                    .iter()
                    .map(|e| Json::Str(halide_ir::sexpr::to_sexpr(e)))
                    .collect();
                let n = exprs.len();
                let body = Json::obj([
                    ("exprs", Json::Arr(exprs)),
                    ("lanes", w.lanes.into()),
                ])
                .to_string()
                .into_bytes();
                Template { name: w.name.to_owned(), body, exprs: n }
            })
            .collect()
    };
    eprintln!(
        "loadgen: {} {} templates against {addr} ({connections} connections, \
         {requests} requests, seed {seed})",
        templates.len(),
        if storm > 0 {
            "crash-storm"
        } else if soak > 0 {
            "unique soak"
        } else {
            "workload"
        },
    );

    let before = match scrape_metrics(&addr) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("loadgen: cannot scrape /metrics: {e}");
            return ExitCode::FAILURE;
        }
    };

    // Warm-up: every template once, serially, so the measured phase hits
    // a warm cache (the steady-state serving regime).
    let mut warm_errors = 0usize;
    let mut warm_latency = Duration::ZERO;
    if warm {
        let t0 = Instant::now();
        match TcpStream::connect(&addr) {
            Ok(mut stream) => {
                let _ = stream.set_read_timeout(Some(Duration::from_secs(900)));
                for t in &templates {
                    let start = Instant::now();
                    match roundtrip(&mut stream, "POST", "/compile", Some(&t.body)) {
                        Ok((200, reply)) => {
                            warm_latency += start.elapsed();
                            eprintln!(
                                "loadgen: warm-up `{}` {} in {:.0} ms",
                                t.name,
                                first_outcome(&reply),
                                start.elapsed().as_secs_f64() * 1e3,
                            );
                        }
                        Ok((status, _)) => {
                            warm_latency += start.elapsed();
                            eprintln!("loadgen: warm-up `{}` answered {status}", t.name);
                            warm_errors += 1;
                        }
                        Err(e) => {
                            eprintln!("loadgen: warm-up `{}` failed: {e}", t.name);
                            warm_errors += 1;
                        }
                    }
                }
            }
            Err(e) => {
                eprintln!("loadgen: cannot connect for warm-up: {e}");
                return ExitCode::FAILURE;
            }
        }
        eprintln!("loadgen: warm-up done in {:.1}s", t0.elapsed().as_secs_f64());
    }

    // Measured closed loop: a shared ticket counter hands out request
    // numbers; request i deterministically maps to a template via an LCG
    // stream, so the mix is reproducible regardless of thread timing.
    let tickets = Arc::new(AtomicUsize::new(0));
    let samples: Arc<Mutex<Vec<Sample>>> = Arc::new(Mutex::new(Vec::with_capacity(requests)));
    let hard_errors = Arc::new(AtomicUsize::new(0));
    let t0 = Instant::now();
    let threads: Vec<_> = (0..connections)
        .map(|_| {
            let addr = addr.clone();
            let tickets = Arc::clone(&tickets);
            let samples = Arc::clone(&samples);
            let hard_errors = Arc::clone(&hard_errors);
            let bodies: Vec<Vec<u8>> = templates.iter().map(|t| t.body.clone()).collect();
            std::thread::spawn(move || {
                let Ok(mut stream) = TcpStream::connect(&addr) else {
                    hard_errors.fetch_add(1, Ordering::SeqCst);
                    return;
                };
                let _ = stream.set_read_timeout(Some(Duration::from_secs(900)));
                loop {
                    let i = tickets.fetch_add(1, Ordering::SeqCst);
                    if i >= requests {
                        return;
                    }
                    // The storm round-robins poison keys on every third
                    // request and healthy keys otherwise; soak sends each
                    // unique template exactly once; the bench mix picks
                    // pseudo-randomly with repetition.
                    let template = if storm > 0 {
                        if i % 3 == 0 {
                            (i / 3) % STORM_CRASH_KEYS
                        } else {
                            STORM_CRASH_KEYS
                                + pick(seed, i as u64, bodies.len() - STORM_CRASH_KEYS)
                        }
                    } else if soak > 0 {
                        i % bodies.len()
                    } else {
                        pick(seed, i as u64, bodies.len())
                    };
                    let start = Instant::now();
                    match roundtrip(&mut stream, "POST", "/compile", Some(&bodies[template])) {
                        Ok((status, reply)) => {
                            let outcome = first_outcome(&reply);
                            samples.lock().unwrap().push(Sample {
                                latency: start.elapsed(),
                                status,
                                outcome,
                                template,
                            });
                        }
                        Err(e) => {
                            eprintln!("loadgen: request {i} failed: {e}");
                            hard_errors.fetch_add(1, Ordering::SeqCst);
                            // The connection state is unknown; reconnect.
                            match TcpStream::connect(&addr) {
                                Ok(s) => {
                                    stream = s;
                                    let _ = stream
                                        .set_read_timeout(Some(Duration::from_secs(900)));
                                }
                                Err(_) => return,
                            }
                        }
                    }
                }
            })
        })
        .collect();
    for t in threads {
        let _ = t.join();
    }
    let wall = t0.elapsed();

    let after = match scrape_metrics(&addr) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("loadgen: cannot scrape /metrics after the run: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut samples = match Arc::try_unwrap(samples) {
        Ok(m) => m.into_inner().unwrap(),
        Err(_) => {
            eprintln!("loadgen: internal: samples still shared");
            return ExitCode::FAILURE;
        }
    };
    let hard_errors = hard_errors.load(Ordering::SeqCst);

    // Tallies.
    let mut by_status: BTreeMap<u16, usize> = BTreeMap::new();
    let mut by_outcome: BTreeMap<String, usize> = BTreeMap::new();
    let mut exprs_sent = 0usize;
    for s in &samples {
        *by_status.entry(s.status).or_insert(0) += 1;
        *by_outcome.entry(s.outcome.clone()).or_insert(0) += 1;
        if s.status == 200 {
            exprs_sent += templates[s.template].exprs;
        }
    }
    // A storm deliberately provokes non-200s (e.g. a 503 while the
    // restart breaker is open); its contract is zero *transport* errors.
    let errors = if storm > 0 {
        hard_errors
    } else {
        hard_errors + samples.iter().filter(|s| s.status != 200).count()
    };

    samples.sort_by_key(|s| s.latency);
    let lat_ms = |p: f64| -> f64 {
        if samples.is_empty() {
            return f64::NAN;
        }
        let idx = ((p / 100.0) * (samples.len() - 1) as f64).round() as usize;
        samples[idx].latency.as_secs_f64() * 1e3
    };
    let p50 = lat_ms(50.0);
    let p95 = lat_ms(95.0);
    let p99 = lat_ms(99.0);
    let max = samples.last().map(|s| s.latency.as_secs_f64() * 1e3).unwrap_or(f64::NAN);
    let mean = if samples.is_empty() {
        f64::NAN
    } else {
        samples.iter().map(|s| s.latency.as_secs_f64()).sum::<f64>() / samples.len() as f64 * 1e3
    };

    // /metrics cross-check: the server's counters must have advanced by
    // exactly what this client did (loadgen is the only traffic source in
    // the bench setup; --check asserts this).
    let measured_plus_warm =
        samples.len() as f64 + if warm { templates.len() as f64 } else { 0.0 };
    let requests_delta = after.compile_requests - before.compile_requests;
    let jobs_delta = after.jobs_total - before.jobs_total;
    let metrics_ok = requests_delta == measured_plus_warm && jobs_delta >= exprs_sent as f64;

    // Latency-histogram cross-validation: the exposed histogram must be
    // internally consistent (cumulative bucket counts monotone
    // non-decreasing, the `+Inf` bucket equal to `_count`), and the
    // `_sum` the server accumulated during this run can never exceed
    // what the client observed end-to-end (server-side latency nests
    // strictly inside the client's round trip).
    let client_latency_s = samples.iter().map(|s| s.latency.as_secs_f64()).sum::<f64>()
        + warm_latency.as_secs_f64();
    let hist_violations = check_histogram(&before.latency, &after.latency, client_latency_s);
    let hist_ok = hist_violations.is_empty();

    // Post-storm probes (after the `after` scrape, so the cross-check
    // deltas stay exact): every poison key must now answer `quarantined`
    // straight from the cache, and the supervisor counters must have
    // recorded the carnage.
    let mut storm_unquarantined: Vec<String> = Vec::new();
    if storm > 0 {
        match TcpStream::connect(&addr) {
            Ok(mut stream) => {
                let _ = stream.set_read_timeout(Some(Duration::from_secs(120)));
                for (name, body) in &storm_probes {
                    let outcome = match roundtrip(&mut stream, "POST", "/compile", Some(body)) {
                        Ok((200, reply)) => first_outcome(&reply),
                        Ok((status, _)) => format!("http {status}"),
                        Err(e) => format!("transport: {e}"),
                    };
                    eprintln!("loadgen: storm probe `{name}` => {outcome}");
                    if outcome != "quarantined" {
                        storm_unquarantined.push(format!("{name} ({outcome})"));
                    }
                }
            }
            Err(e) => {
                eprintln!("loadgen: cannot connect for storm probes: {e}");
                storm_unquarantined.push(format!("probe connection failed: {e}"));
            }
        }
    }
    let storm_crashes = after.worker_crashes - before.worker_crashes;
    let storm_restarts = after.worker_restarts - before.worker_restarts;
    let storm_ok = storm == 0
        || (storm_unquarantined.is_empty()
            && storm_crashes >= 1.0
            && storm_restarts >= 1.0
            && after.quarantined_keys >= STORM_CRASH_KEYS as f64);

    let ok_errors = errors == 0 && warm_errors == 0;
    // Soak traffic is all cold unique keys and a storm is dominated by
    // worker respawns; the warm-latency budget applies to neither.
    let ok_p50 = soak > 0 || storm > 0 || !warm || p50 < WARM_P50_BUDGET_MS;
    let passed = ok_errors && ok_p50 && metrics_ok && storm_ok && hist_ok;

    eprintln!(
        "loadgen: {} requests in {:.1}s ({:.1} req/s), {} errors",
        samples.len(),
        wall.as_secs_f64(),
        samples.len() as f64 / wall.as_secs_f64().max(1e-9),
        errors,
    );
    eprintln!(
        "loadgen: latency ms: p50 {p50:.2}  p95 {p95:.2}  p99 {p99:.2}  mean {mean:.2}  \
         max {max:.2}"
    );
    eprintln!(
        "loadgen: metrics cross-check: compile requests +{requests_delta} \
         (client sent {measured_plus_warm}), jobs +{jobs_delta} \
         (client submitted >= {exprs_sent} exprs) => {}",
        if metrics_ok { "consistent" } else { "MISMATCH" }
    );
    eprintln!(
        "loadgen: latency histogram: {} buckets, count +{:.0}, sum +{:.3}s \
         (client observed {client_latency_s:.3}s) => {}",
        after.latency.buckets.len(),
        after.latency.count - before.latency.count,
        after.latency.sum - before.latency.sum,
        if hist_ok { "consistent" } else { "MISMATCH" }
    );
    for v in &hist_violations {
        eprintln!("loadgen: latency histogram: {v}");
    }
    if storm > 0 {
        eprintln!(
            "loadgen: storm: +{storm_crashes} worker crashes, +{storm_restarts} respawns, \
             {} keys quarantined ({} poison keys sent), breaker-open rejects show as 503 \
             above => {}",
            after.quarantined_keys,
            STORM_CRASH_KEYS,
            if storm_ok { "contained" } else { "NOT CONTAINED" },
        );
        for miss in &storm_unquarantined {
            eprintln!("loadgen: storm: poison key NOT quarantined: {miss}");
        }
    }
    if soak > 0 {
        eprintln!(
            "loadgen: soak cache state: {} entries, +{} evicted, +{} compactions, \
             snapshot {} B, log {} B, journal {} B",
            after.cache_entries,
            after.cache_evicted - before.cache_evicted,
            after.cache_compactions - before.cache_compactions,
            after.cache_snapshot_bytes,
            after.cache_log_bytes,
            after.journal_bytes,
        );
    }

    let report = Json::obj([
        ("schema", "rake-served-loadgen-v1".into()),
        (
            "config",
            Json::obj([
                ("connections", connections.into()),
                ("requests", requests.into()),
                ("seed", seed.into()),
                ("warm", warm.into()),
                ("templates", templates.len().into()),
            ]),
        ),
        (
            "latency_ms",
            Json::obj([
                ("p50", p50.into()),
                ("p95", p95.into()),
                ("p99", p99.into()),
                ("mean", mean.into()),
                ("max", max.into()),
            ]),
        ),
        (
            "requests",
            Json::obj([
                ("measured", samples.len().into()),
                ("errors", errors.into()),
                ("warm_errors", warm_errors.into()),
                ("wall_s", wall.as_secs_f64().into()),
                (
                    "by_status",
                    Json::Obj(
                        by_status
                            .iter()
                            .map(|(code, n)| (code.to_string(), (*n).into()))
                            .collect(),
                    ),
                ),
                (
                    "by_outcome",
                    Json::Obj(
                        by_outcome
                            .iter()
                            .map(|(o, n)| (o.clone(), (*n).into()))
                            .collect(),
                    ),
                ),
            ]),
        ),
        (
            "metrics_delta",
            Json::obj([
                ("compile_requests", requests_delta.into()),
                ("jobs_total", jobs_delta.into()),
                ("consistent", metrics_ok.into()),
            ]),
        ),
        (
            "latency_histogram",
            Json::obj([
                ("buckets", after.latency.buckets.len().into()),
                ("count_delta", (after.latency.count - before.latency.count).into()),
                ("sum_delta_s", (after.latency.sum - before.latency.sum).into()),
                ("client_latency_s", client_latency_s.into()),
                (
                    "violations",
                    Json::Arr(hist_violations.iter().map(|v| Json::Str(v.clone())).collect()),
                ),
                ("consistent", hist_ok.into()),
            ]),
        ),
        (
            "cache",
            Json::obj([
                ("entries", after.cache_entries.into()),
                ("evicted", (after.cache_evicted - before.cache_evicted).into()),
                (
                    "compactions",
                    (after.cache_compactions - before.cache_compactions).into(),
                ),
                ("snapshot_bytes", after.cache_snapshot_bytes.into()),
                ("log_bytes", after.cache_log_bytes.into()),
                ("journal_bytes", after.journal_bytes.into()),
            ]),
        ),
        ("soak", soak.into()),
        (
            "crash_storm",
            Json::obj([
                ("requests", storm.into()),
                ("poison_keys", if storm > 0 { STORM_CRASH_KEYS } else { 0 }.into()),
                ("worker_crashes", storm_crashes.into()),
                ("worker_restarts", storm_restarts.into()),
                ("quarantined_keys", after.quarantined_keys.into()),
                (
                    "unquarantined",
                    Json::Arr(
                        storm_unquarantined.iter().map(|s| Json::Str(s.clone())).collect(),
                    ),
                ),
                ("contained", storm_ok.into()),
            ]),
        ),
        ("passed", passed.into()),
    ]);
    if let Err(e) = std::fs::File::create(&out_path)
        .and_then(|mut f| f.write_all(report.to_string().as_bytes()))
    {
        eprintln!("loadgen: cannot write {}: {e}", out_path.display());
        return ExitCode::FAILURE;
    }
    eprintln!("loadgen: report written to {}", out_path.display());

    if let Some(handle) = spawned {
        handle.shutdown();
    }
    if check && !passed {
        eprintln!(
            "loadgen: CHECK FAILED (errors ok: {ok_errors}, warm p50 < \
             {WARM_P50_BUDGET_MS} ms: {ok_p50}, metrics consistent: {metrics_ok}, \
             storm contained: {storm_ok}, histogram consistent: {hist_ok})"
        );
        return ExitCode::from(2);
    }
    ExitCode::SUCCESS
}

fn usage(err: &str) -> ExitCode {
    if !err.is_empty() {
        eprintln!("loadgen: {err}");
    }
    eprintln!(
        "usage: loadgen (--addr HOST:PORT | --spawn) [--connections N] [--requests M] \
         [--seed S] [--no-warm] [--soak N] [--crash-storm N] [--out FILE] [--check]"
    );
    if err.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Deterministic template pick for request `i`: one LCG step over
/// `seed ^ i`, so the mix is stable under any thread interleaving.
fn pick(seed: u64, i: u64, n: usize) -> usize {
    let mut state = seed ^ (i.wrapping_mul(0x9e3779b97f4a7c15));
    state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    ((state >> 33) as usize) % n.max(1)
}

/// Outcome of the first result in a `/compile` reply (the tallied one).
fn first_outcome(reply: &[u8]) -> String {
    let text = String::from_utf8_lossy(reply);
    let Ok(doc) = json::parse(&text) else { return "unparseable".to_owned() };
    doc.get("results")
        .and_then(Json::as_arr)
        .and_then(|r| r.first())
        .and_then(|r| r.get("outcome"))
        .and_then(Json::as_str)
        .unwrap_or("missing")
        .to_owned()
}

/// The server-side counters the cross-check and soak report need.
struct MetricsSnapshot {
    compile_requests: f64,
    jobs_total: f64,
    cache_entries: f64,
    cache_evicted: f64,
    cache_compactions: f64,
    cache_snapshot_bytes: f64,
    cache_log_bytes: f64,
    journal_bytes: f64,
    worker_crashes: f64,
    worker_restarts: f64,
    quarantined_keys: f64,
    latency: HistogramScrape,
}

/// The compile-latency histogram as exposed: `(le, cumulative count)`
/// pairs in exposition order plus the `_sum`/`_count` samples.
#[derive(Default)]
struct HistogramScrape {
    buckets: Vec<(f64, f64)>,
    sum: f64,
    count: f64,
}

fn scrape_histogram(text: &str, name: &str) -> HistogramScrape {
    let mut h = HistogramScrape {
        sum: metric_value(text, &format!("{name}_sum")),
        count: metric_value(text, &format!("{name}_count")),
        ..HistogramScrape::default()
    };
    let prefix = format!("{name}_bucket{{le=\"");
    for line in text.lines() {
        let Some(rest) = line.strip_prefix(&prefix) else { continue };
        let Some((le, value)) = rest.split_once("\"}") else { continue };
        let le = if le == "+Inf" { f64::INFINITY } else { le.parse().unwrap_or(f64::NAN) };
        if let Ok(v) = value.trim().parse::<f64>() {
            h.buckets.push((le, v));
        }
    }
    h
}

/// Internal-consistency checks on the exposed latency histogram, plus a
/// client-side bound on what the server accumulated during this run.
/// Returns human-readable violations (empty = consistent).
fn check_histogram(
    before: &HistogramScrape,
    after: &HistogramScrape,
    client_latency_s: f64,
) -> Vec<String> {
    let mut v = Vec::new();
    if after.buckets.is_empty() {
        v.push("no bucket samples exposed".to_owned());
        return v;
    }
    for pair in after.buckets.windows(2) {
        if pair[1].0 <= pair[0].0 {
            v.push(format!("bucket bounds not increasing: le={} after le={}", pair[1].0, pair[0].0));
        }
        if pair[1].1 < pair[0].1 {
            v.push(format!(
                "cumulative counts decreased: le={} has {} < {} at le={}",
                pair[1].0, pair[1].1, pair[0].1, pair[0].0
            ));
        }
    }
    let last = after.buckets[after.buckets.len() - 1];
    if !last.0.is_infinite() {
        v.push(format!("last bucket is le={}, not +Inf", last.0));
    } else if last.1 != after.count {
        v.push(format!("+Inf bucket {} != _count {}", last.1, after.count));
    }
    let count_delta = after.count - before.count;
    let sum_delta = after.sum - before.sum;
    if count_delta < 0.0 {
        v.push(format!("_count went backwards (delta {count_delta})"));
    }
    if sum_delta < -1e-9 {
        v.push(format!("_sum went backwards (delta {sum_delta})"));
    }
    // Server-side latency nests inside the client round trip; allow a
    // millisecond per observation for exposition rounding.
    let slack = 1e-3 * count_delta.max(1.0);
    if sum_delta > client_latency_s + slack {
        v.push(format!(
            "_sum advanced by {sum_delta:.3}s but the client only observed \
             {client_latency_s:.3}s end-to-end"
        ));
    }
    v
}

fn scrape_metrics(addr: &str) -> std::io::Result<MetricsSnapshot> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    let (status, body) = roundtrip(&mut stream, "GET", "/metrics", None)?;
    if status != 200 {
        return Err(std::io::Error::other(format!("/metrics answered {status}")));
    }
    let text = String::from_utf8_lossy(&body).into_owned();
    Ok(MetricsSnapshot {
        compile_requests: metric_value(
            &text,
            "rake_served_requests_total{endpoint=\"compile\"}",
        ),
        jobs_total: metric_sum(&text, "rake_served_jobs_total{"),
        cache_entries: metric_value(&text, "rake_served_cache_entries"),
        cache_evicted: metric_value(&text, "rake_served_cache_evicted_total"),
        cache_compactions: metric_value(&text, "rake_served_cache_compactions_total"),
        cache_snapshot_bytes: metric_value(&text, "rake_served_cache_snapshot_bytes"),
        cache_log_bytes: metric_value(&text, "rake_served_cache_log_bytes"),
        journal_bytes: metric_value(&text, "rake_served_journal_bytes"),
        // Absent (zero) on a server running without --isolate.
        worker_crashes: metric_sum(&text, "rake_served_worker_crashes_total{"),
        worker_restarts: metric_value(&text, "rake_served_worker_restarts_total"),
        quarantined_keys: metric_value(&text, "rake_served_quarantined_keys"),
        latency: scrape_histogram(&text, "rake_served_compile_latency_seconds"),
    })
}

/// Value of an exactly-named sample in Prometheus text format.
fn metric_value(text: &str, name: &str) -> f64 {
    text.lines()
        .find_map(|line| line.strip_prefix(name))
        .and_then(|rest| rest.trim().parse().ok())
        .unwrap_or(0.0)
}

/// Sum across every sample of a labeled family.
fn metric_sum(text: &str, prefix: &str) -> f64 {
    text.lines()
        .filter(|line| line.starts_with(prefix))
        .filter_map(|line| line.rsplit(' ').next())
        .filter_map(|v| v.parse::<f64>().ok())
        .sum()
}
