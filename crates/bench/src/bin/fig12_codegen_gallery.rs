//! Figure 12: five representative optimizations Rake discovers that the
//! baseline rule set misses — missing patterns (average_pool, camera_pipe,
//! add) and semantic reasoning (l2norm, gaussian3x3).
//!
//! ```sh
//! cargo run --release -p rake-bench --bin fig12_codegen_gallery
//! ```

use halide_ir::Expr;
use hvx::Program;
use rake::{Rake, Target};

fn show(group: &str, bench: &str, e: &Expr, lanes: usize) {
    println!("== Figure 12 [{group}] {bench} ==");
    println!("Halide IR:  {e}\n");
    let bo = halide_opt::BaselineOptions { lanes, vec_bytes: 128 };
    let baseline = halide_opt::select(e, bo).expect("baseline covers").to_program();
    let rake = Rake::new(Target { lanes, vec_bytes: 128 })
        .compile(e)
        .expect("rake compiles")
        .program;
    let lat = |p: &Program| p.latency_sum(lanes, 128);
    println!("-- Halide-style codegen  /* Latency: {} */", lat(&baseline));
    print!("{baseline}");
    println!("-- Rake codegen          /* Latency: {} */", lat(&rake));
    print!("{rake}");
    println!();
}

fn main() {
    let pick = |name: &str, idx: usize| {
        let w = workloads::by_name(name).unwrap_or_else(|| panic!("{name} registered"));
        (w.exprs[idx].clone(), w.lanes)
    };

    let (e, lanes) = pick("average_pool", 0);
    show("missing pattern", "average_pool: u16 + widen(u8) -> vmpy-acc", &e, lanes);

    let (e, lanes) = pick("camera_pipe", 0);
    show("missing pattern", "camera_pipe: saturating pack subsumes the max", &e, lanes);

    let (e, lanes) = pick("add", 0);
    show("missing pattern", "add: shift folded into widening multiply-add", &e, lanes);

    let (e, lanes) = pick("l2norm", 0);
    show("semantic reasoning", "l2norm: vmpyie licensed by a non-negativity proof", &e, lanes);

    let (e, lanes) = pick("gaussian3x3", 0);
    show("semantic reasoning", "gaussian3x3: fused vasr-rnd-sat licensed by range", &e, lanes);
}
