//! `trace_report` — analyze `rake-trace-v1` Chrome trace-event JSON.
//!
//! Consumes the traces written by `rakec --trace-out`, `perf --trace-out`,
//! `conform --trace-out`, or a `rake-served --trace-out` directory, and
//! renders aggregate views a timeline viewer cannot:
//!
//!   * per-stage breakdown — self-time (duration minus direct children)
//!     summed by span category (lift / smt / swizzle / driver / served ...)
//!   * per-operation breakdown — self-time summed by span name
//!   * per-rule breakdown — time and firing count per lifting rule
//!   * top-N slowest SMT queries, with their proof-cache keys and outcomes
//!
//! ```sh
//! trace_report trace.json                  # breakdown tables
//! trace_report --top 20 traces/           # every *.json in the directory
//! trace_report --folded trace.json        # flamegraph folded stacks
//! trace_report --check trace.json         # schema validation (CI smoke)
//! ```
//!
//! Options:
//!   --top N     slowest SMT queries to list (default 10)
//!   --folded    emit flamegraph folded stacks to stdout instead of tables
//!   --check     validate the `rake-trace-v1` schema and event
//!               well-formedness; exit non-zero on any malformed file

use std::collections::HashMap;
use std::path::Path;
use std::process::ExitCode;

use driver::json::{self, Json};
use trace::{ArgValue, SpanRecord};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut top = 10usize;
    let mut folded = false;
    let mut check = false;
    let mut paths: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--top" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => top = v,
                None => return usage("--top needs an integer"),
            },
            "--folded" => folded = true,
            "--check" => check = true,
            "--help" | "-h" => return usage(""),
            other if !other.starts_with('-') => paths.push(other.to_owned()),
            other => return usage(&format!("unknown option `{other}`")),
        }
    }
    if paths.is_empty() {
        return usage("need at least one trace file or directory");
    }

    let mut records: Vec<SpanRecord> = Vec::new();
    let mut files = 0usize;
    for p in &paths {
        if let Err(e) = load_path(Path::new(p), &mut records, &mut files) {
            eprintln!("trace_report: {e}");
            return ExitCode::FAILURE;
        }
    }
    if files == 0 {
        eprintln!("trace_report: no trace files found");
        return ExitCode::FAILURE;
    }

    if check {
        emit(&format!("ok: {} events across {} file(s)\n", records.len(), files));
        return ExitCode::SUCCESS;
    }
    if folded {
        emit(&trace::folded_stacks(&records));
        return ExitCode::SUCCESS;
    }
    emit(&report(&records, files, top));
    ExitCode::SUCCESS
}

/// Write to stdout, swallowing a broken pipe (`trace_report ... | head`
/// must not panic).
fn emit(s: &str) {
    use std::io::Write as _;
    let _ = std::io::stdout().write_all(s.as_bytes());
}

/// Load a trace file, or every `*.json` in a directory, appending parsed
/// span records. Any malformed file or event is an error (this is what
/// `--check` leans on).
fn load_path(path: &Path, out: &mut Vec<SpanRecord>, files: &mut usize) -> Result<(), String> {
    if path.is_dir() {
        let entries = std::fs::read_dir(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let mut names: Vec<_> = entries
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().and_then(|e| e.to_str()) == Some("json"))
            .collect();
        names.sort();
        for p in names {
            load_path(&p, out, files)?;
        }
        return Ok(());
    }
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let doc = json::parse(&text)
        .map_err(|e| format!("{}: invalid JSON: {e:?}", path.display()))?;
    if doc.get("schema").and_then(Json::as_str) != Some("rake-trace-v1") {
        return Err(format!(
            "{}: missing or unknown schema tag (want rake-trace-v1)",
            path.display()
        ));
    }
    let Some(events) = doc.get("traceEvents").and_then(Json::as_arr) else {
        return Err(format!("{}: missing traceEvents array", path.display()));
    };
    for (i, ev) in events.iter().enumerate() {
        out.push(parse_event(ev).map_err(|e| {
            format!("{}: traceEvents[{i}]: {e}", path.display())
        })?);
    }
    *files += 1;
    Ok(())
}

/// Parse one complete event back into a `SpanRecord`. Strict: every field
/// the exporter writes must be present and well-typed.
fn parse_event(ev: &Json) -> Result<SpanRecord, String> {
    if ev.get("ph").and_then(Json::as_str) != Some("X") {
        return Err("ph is not \"X\"".to_owned());
    }
    let name = ev.get("name").and_then(Json::as_str).ok_or("missing name")?;
    let cat = ev.get("cat").and_then(Json::as_str).ok_or("missing cat")?;
    let num = |k: &str| -> Result<u64, String> {
        ev.get(k)
            .and_then(Json::as_i64)
            .filter(|n| *n >= 0)
            .map(|n| n as u64)
            .ok_or_else(|| format!("{k} missing or not a non-negative number"))
    };
    let args = ev.get("args").ok_or("missing args")?;
    let id = |k: &str| -> Result<u64, String> {
        args.get(k)
            .and_then(Json::as_str)
            .and_then(trace::parse_id)
            .ok_or_else(|| format!("args.{k} missing or not a hex id"))
    };
    let trace_id = id("trace")?;
    let span_id = id("span")?;
    if span_id == 0 {
        return Err("args.span is zero".to_owned());
    }
    let mut extra: Vec<(&'static str, ArgValue)> = Vec::new();
    if let Json::Obj(fields) = args {
        for (k, v) in fields {
            if matches!(k.as_str(), "trace" | "span" | "parent") {
                continue;
            }
            let val = match v {
                Json::Str(s) => ArgValue::Str(s.clone()),
                Json::Bool(b) => ArgValue::Bool(*b),
                Json::Num(_) => ArgValue::I64(v.as_i64().unwrap_or(0)),
                _ => continue,
            };
            extra.push((trace::intern(k), val));
        }
    }
    Ok(SpanRecord {
        seq: 0,
        trace_id,
        span_id,
        parent_id: id("parent")?,
        name: trace::intern(name),
        cat: trace::intern(cat),
        start_us: num("ts")?,
        dur_us: num("dur")?,
        pid: num("pid")? as u32,
        args: extra,
    })
}

fn str_arg<'a>(r: &'a SpanRecord, key: &str) -> Option<&'a str> {
    r.args.iter().find_map(|(k, v)| {
        (*k == key).then_some(v).and_then(|v| match v {
            ArgValue::Str(s) => Some(s.as_str()),
            _ => None,
        })
    })
}

fn ms(us: u64) -> f64 {
    us as f64 / 1000.0
}

fn report(records: &[SpanRecord], files: usize, top: usize) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    // Self time = duration minus direct children, so nested same-category
    // spans (verify.smt_equiv over smt.prove_unsat) are not double-counted.
    let mut child_us: HashMap<u64, u64> = HashMap::new();
    for r in records {
        if r.parent_id != 0 {
            *child_us.entry(r.parent_id).or_insert(0) += r.dur_us;
        }
    }
    let self_us =
        |r: &SpanRecord| r.dur_us.saturating_sub(child_us.get(&r.span_id).copied().unwrap_or(0));

    let traces: std::collections::HashSet<u64> = records.iter().map(|r| r.trace_id).collect();
    let _ = writeln!(
        out,
        "{} spans, {} trace(s), {} file(s)\n",
        records.len(),
        traces.len(),
        files
    );

    let table = |out: &mut String, title: &str, rows: HashMap<&str, (u64, u64, usize)>| {
        let mut sorted: Vec<_> = rows.into_iter().collect();
        sorted.sort_by(|a, b| b.1 .0.cmp(&a.1 .0));
        let _ = writeln!(out, "{title}:");
        let _ = writeln!(out, "  {:<24} {:>10} {:>10} {:>7}", "", "self ms", "total ms", "spans");
        for (key, (self_t, total, count)) in sorted {
            let _ =
                writeln!(out, "  {key:<24} {:>10.2} {:>10.2} {count:>7}", ms(self_t), ms(total));
        }
        let _ = writeln!(out);
    };

    let mut by_cat: HashMap<&str, (u64, u64, usize)> = HashMap::new();
    let mut by_name: HashMap<&str, (u64, u64, usize)> = HashMap::new();
    let mut by_rule: HashMap<&str, (u64, u64, usize)> = HashMap::new();
    for r in records {
        let s = self_us(r);
        let cat = by_cat.entry(r.cat).or_insert((0, 0, 0));
        cat.0 += s;
        cat.1 += r.dur_us;
        cat.2 += 1;
        let name = by_name.entry(r.name).or_insert((0, 0, 0));
        name.0 += s;
        name.1 += r.dur_us;
        name.2 += 1;
        if r.name == "lift.rule" || r.name == "lift.screen" {
            if let Some(rule) = str_arg(r, "rule") {
                let e = by_rule.entry(trace::intern(rule)).or_insert((0, 0, 0));
                e.0 += s;
                e.1 += r.dur_us;
                e.2 += 1;
            }
        }
    }
    table(&mut out, "per-stage (span category)", by_cat);
    table(&mut out, "per-operation (span name)", by_name);
    if !by_rule.is_empty() {
        table(&mut out, "per-rule (lift.rule / lift.screen firings)", by_rule);
    }

    let mut smt: Vec<&SpanRecord> =
        records.iter().filter(|r| r.name == "smt.prove_unsat" || r.name == "verify.smt_equiv").collect();
    smt.sort_by(|a, b| b.dur_us.cmp(&a.dur_us));
    if !smt.is_empty() {
        let _ = writeln!(out, "top {} slowest SMT queries:", top.min(smt.len()));
        for r in smt.iter().take(top) {
            let outcome = str_arg(r, "outcome").unwrap_or("-");
            let key = str_arg(r, "proof_key")
                .map_or(String::new(), |k| format!("  key={k}"));
            let path = str_arg(r, "path").map_or(String::new(), |p| format!("  path={p}"));
            let _ = writeln!(
                out,
                "  {:>10.2}ms  {}  trace={} outcome={outcome}{path}{key}",
                ms(r.dur_us),
                r.name,
                trace::fmt_id(r.trace_id),
            );
        }
    }
    out
}

fn usage(err: &str) -> ExitCode {
    if !err.is_empty() {
        eprintln!("trace_report: {err}");
    }
    eprintln!("usage: trace_report [--top N] [--folded] [--check] FILE_OR_DIR...");
    if err.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
