//! `oracle_fuzz` — end-to-end differential fuzzing of the Rake selector.
//!
//! Two sweeps, both judged by the Halide IR interpreter as ground truth:
//!
//! 1. **Workloads**: every expression of all 21 benchmark workloads is
//!    compiled through the driver service layer with differential
//!    validation on, at quick-scaled lane widths.
//! 2. **Generated expressions**: `--cases` seeded random well-typed
//!    expressions from `oracle::gen`, compiled and executed over
//!    boundary-biased adversarial buffers.
//!
//! Any mismatch is shrunk by the delta-debugging minimizer and emitted as
//! a self-contained Rust test + S-expression artifact under
//! `results/repros/`. Exit code is non-zero iff a mismatch was found.
//!
//! ```sh
//! cargo run --release -p rake-bench --bin oracle_fuzz -- --seed 0xRAKE --cases 500
//! # Demo the detect → minimize → repro pipeline against a seeded broken op:
//! cargo run --release -p rake-bench --features broken-op --bin oracle_fuzz -- --broken
//! ```
//!
//! Options:
//!   --seed S       RNG seed: hex with 0x prefix, else decimal, else the
//!                  FNV-1a hash of the literal string (so `0xRAKE` works)
//!   --cases N      generated expressions to fuzz (default 500)
//!   --max-nodes N  AST size cap for generated expressions (default 24)
//!   --lanes N      vector width for the generated sweep (default 8)
//!   --budget SEC   wall-clock cap for the run (workloads get at most half)
//!   --out DIR      repro artifact directory (default results/repros)
//!   --skip-workloads  fuzz generated expressions only
//!   --broken       run the seeded broken-op demo (needs --features broken-op)

use std::cell::RefCell;
use std::collections::HashMap;
use std::process::ExitCode;
use std::time::{Duration, Instant};

use driver::{Driver, DriverConfig};
use halide_ir::{Env, Expr};
use lanes::rng::Rng;
use lanes::Vector;
use oracle::{gen_expr, minimize, GenConfig, Oracle};
use rake::{Rake, Target};
use synth::Verifier;

struct Opts {
    seed: u64,
    cases: usize,
    max_nodes: usize,
    lanes: usize,
    budget: Option<Duration>,
    out: std::path::PathBuf,
    skip_workloads: bool,
    broken: bool,
}

/// `0x`-prefixed hex, else decimal, else FNV-1a of the raw string — the
/// last arm makes mnemonic seeds like `0xRAKE` (not valid hex) usable.
fn parse_seed(s: &str) -> u64 {
    if let Some(h) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        if let Ok(v) = u64::from_str_radix(h, 16) {
            return v;
        }
    }
    if let Ok(v) = s.parse::<u64>() {
        return v;
    }
    oracle::fnv1a(s.as_bytes())
}

fn main() -> ExitCode {
    let mut opts = Opts {
        seed: parse_seed("0xRAKE"),
        cases: 500,
        max_nodes: 24,
        lanes: 8,
        budget: None,
        out: "results/repros".into(),
        skip_workloads: false,
        broken: false,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" => match it.next() {
                Some(v) => opts.seed = parse_seed(v),
                None => return usage("--seed needs a value"),
            },
            "--cases" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => opts.cases = v,
                None => return usage("--cases needs an integer"),
            },
            "--max-nodes" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => opts.max_nodes = v,
                None => return usage("--max-nodes needs an integer"),
            },
            "--lanes" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => opts.lanes = v,
                None => return usage("--lanes needs an integer"),
            },
            "--budget" => match it.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(secs) => opts.budget = Some(Duration::from_secs_f64(secs)),
                None => return usage("--budget needs seconds"),
            },
            "--out" => match it.next() {
                Some(dir) => opts.out = dir.into(),
                None => return usage("--out needs a directory"),
            },
            "--skip-workloads" => opts.skip_workloads = true,
            "--broken" => opts.broken = true,
            "--help" | "-h" => return usage(""),
            other => return usage(&format!("unknown option `{other}`")),
        }
    }

    if opts.broken {
        return broken_demo(&opts);
    }

    let t0 = Instant::now();
    let mut mismatches = 0usize;
    if !opts.skip_workloads {
        mismatches += fuzz_workloads(&opts, t0);
    }
    mismatches += fuzz_generated(&opts, t0);

    if mismatches == 0 {
        println!("oracle_fuzz: zero mismatches in {:.1?} (seed {:#x})", t0.elapsed(), opts.seed);
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "oracle_fuzz: {mismatches} mismatching case(s); repros under {}",
            opts.out.display()
        );
        ExitCode::FAILURE
    }
}

/// A minimizer subject that compiles each candidate expression through the
/// full Rake pipeline, memoized by S-expression (the minimizer re-invokes
/// the subject per shrink candidate).
struct CompilingSubject {
    rake: Rake,
    programs: RefCell<HashMap<String, Option<hvx::Program>>>,
}

impl CompilingSubject {
    fn new(rake: Rake) -> CompilingSubject {
        CompilingSubject { rake, programs: RefCell::new(HashMap::new()) }
    }

    fn run(&self, e: &Expr, env: &Env, x0: i64, y0: i64, lanes: usize) -> Option<Vector> {
        let key = halide_ir::sexpr::to_sexpr(e);
        let mut programs = self.programs.borrow_mut();
        let program = programs
            .entry(key)
            .or_insert_with(|| compile_isolated(&self.rake, e).ok().map(|c| c.program))
            .as_ref()?;
        program.run(env, x0, y0, lanes).ok().map(|v| v.typed_lanes(e.ty()))
    }
}

/// Compile with panic isolation: a selector panic on a fuzzed expression
/// must not kill the fuzzing run.
fn compile_isolated(rake: &Rake, e: &Expr) -> Result<rake::Compiled, String> {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| rake.compile(e))) {
        Ok(Ok(c)) => Ok(c),
        Ok(Err(err)) => Err(err.to_string()),
        Err(_) => Err("PANIC in selector".to_owned()),
    }
}

/// Shrink one failing point and write its artifacts; returns the paths.
fn shrink_and_emit(
    tag: &str,
    e: &Expr,
    f: &oracle::Failure,
    lanes: usize,
    subject: oracle::Subject,
    out: &std::path::Path,
) -> std::io::Result<oracle::ReproPaths> {
    let repro = minimize(e, &f.env, f.x0, f.y0, lanes, subject);
    println!(
        "  minimized to {} nodes in {} steps: {}",
        halide_ir::analysis::node_count(&repro.expr),
        repro.steps,
        halide_ir::sexpr::to_sexpr(&repro.expr)
    );
    oracle::emit(out, tag, &repro)
}

/// Phase 1: compile all 21 workloads through the validating driver at
/// quick-scaled widths. Returns the number of mismatching expressions.
///
/// Under `--budget`, this phase stops once half the budget is spent so the
/// generated sweep always gets wall-clock too; skips are reported, never
/// silent.
fn fuzz_workloads(opts: &Opts, t0: Instant) -> usize {
    let suite = workloads::all();
    println!("phase 1: {} workloads through the validating driver", suite.len());
    let mut mismatched = 0usize;
    for (wi, w) in suite.iter().enumerate() {
        if let Some(budget) = opts.budget {
            if t0.elapsed() > budget / 2 {
                println!(
                    "  budget half-spent; skipping {} of {} workloads",
                    suite.len() - wi,
                    suite.len()
                );
                break;
            }
        }
        let lanes = (16 * w.lanes / 128).max(4);
        let rake = Rake::new(Target::hvx_small(lanes)).with_verifier(Verifier {
            lanes,
            vec_bytes: lanes,
            ..Verifier::fast()
        });
        let driver = Driver::new(rake.clone()).with_config(DriverConfig {
            workers: 4,
            job_timeout: Some(Duration::from_secs(30)),
            validate: true,
            ..DriverConfig::default()
        });
        let report = driver.compile_batch_named(
            w.exprs
                .iter()
                .enumerate()
                .map(|(i, e)| (format!("{}[{i}]", w.name), e.clone()))
                .collect(),
        );
        let bad = report.validation_mismatches();
        println!(
            "  {:<16} {:>2}/{:<2} compiled  {:>4} mismatches",
            w.name,
            report.compiled(),
            report.results.len(),
            bad
        );
        if bad == 0 {
            continue;
        }
        // Re-derive each failing point with the same oracle geometry the
        // driver used, then shrink it.
        for r in &report.results {
            if r.validation.map_or(true, |v| v.mismatches == 0) {
                continue;
            }
            mismatched += 1;
            let e = &w.exprs[r.index];
            // Shrink with the selector pinned at the tier that produced the
            // failing program: a tier-dependent miscompile (e.g. one only
            // the Direct tier's differential screening misses) must not
            // vanish mid-minimization because the subject recompiled at
            // full budget.
            let subject = CompilingSubject::new(r.tier.apply(&rake));
            let run =
                |e: &Expr, env: &Env, x0: i64, y0: i64, l: usize| subject.run(e, env, x0, y0, l);
            let checker = Oracle { lanes, width: lanes + 24, ..Oracle::default() };
            let ty = e.ty();
            let Some(program) = r.program() else { continue };
            let check = checker.check(e, &|env, x0, y0, l| {
                program.run(env, x0, y0, l).ok().map(|v| v.typed_lanes(ty))
            });
            let Some(f) = check.failures.first() else { continue };
            println!("  MISMATCH {}[{}]: lane {} want {} got {}", w.name, r.index, f.lane, f.want, f.got);
            match shrink_and_emit(w.name, e, f, lanes, &run, &opts.out) {
                Ok(paths) => println!("  repro: {}", paths.test.display()),
                Err(err) => eprintln!("  failed to write repro: {err}"),
            }
        }
    }
    mismatched
}

/// Phase 2: seeded random expressions, compiled directly and compared over
/// adversarial buffers. Returns the number of mismatching cases.
fn fuzz_generated(opts: &Opts, t0: Instant) -> usize {
    let cfg = GenConfig { max_nodes: opts.max_nodes, ..GenConfig::default() };
    let lanes = opts.lanes;
    let rake = Rake::new(Target::hvx_small(lanes)).with_verifier(Verifier::fast());
    let checker = Oracle { lanes, width: lanes + 24, seed: opts.seed, ..Oracle::default() };
    let subject = CompilingSubject::new(rake.clone());
    let run = |e: &Expr, env: &Env, x0: i64, y0: i64, l: usize| subject.run(e, env, x0, y0, l);

    println!(
        "phase 2: {} generated expressions (seed {:#x}, max {} nodes, {} lanes)",
        opts.cases, opts.seed, opts.max_nodes, lanes
    );
    let mut rng = Rng::seed_from_u64(opts.seed);
    let mut mismatched = 0usize;
    let mut compiled = 0usize;
    let mut declined = 0usize;
    let mut decline_reasons: HashMap<String, usize> = HashMap::new();
    for case in 0..opts.cases {
        if let Some(budget) = opts.budget {
            if t0.elapsed() > budget {
                println!("  budget exhausted after {case} cases");
                break;
            }
        }
        let e = gen_expr(&mut rng, &cfg);
        let c = match compile_isolated(&rake, &e) {
            Ok(c) => c,
            Err(reason) => {
                if reason.contains("PANIC") {
                    // A panic is a selector bug even when the output would
                    // have been correct; surface the trigger.
                    eprintln!("  PANIC case {case}: {}", halide_ir::sexpr::to_sexpr(&e));
                }
                *decline_reasons.entry(reason).or_insert(0) += 1;
                declined += 1;
                continue;
            }
        };
        compiled += 1;
        let ty = e.ty();
        let check = checker.check(&e, &|env, x0, y0, l| {
            c.program.run(env, x0, y0, l).ok().map(|v| v.typed_lanes(ty))
        });
        if let Some(f) = check.failures.first() {
            mismatched += 1;
            println!(
                "  MISMATCH case {case}: lane {} want {} got {}\n    {}",
                f.lane,
                f.want,
                f.got,
                halide_ir::sexpr::to_sexpr(&e)
            );
            match shrink_and_emit("fuzz", &e, f, lanes, &run, &opts.out) {
                Ok(paths) => println!("  repro: {}", paths.test.display()),
                Err(err) => eprintln!("  failed to write repro: {err}"),
            }
        }
        if (case + 1) % 100 == 0 {
            println!(
                "  {}/{} cases ({compiled} compiled, {declined} declined) in {:.1?}",
                case + 1,
                opts.cases,
                t0.elapsed()
            );
        }
    }
    println!("  done: {compiled} compiled, {declined} declined, {mismatched} mismatching");
    let mut reasons: Vec<(&String, &usize)> = decline_reasons.iter().collect();
    reasons.sort_by_key(|(_, n)| std::cmp::Reverse(**n));
    for (reason, n) in reasons.into_iter().take(5) {
        println!("    {n:>4} declined: {reason}");
    }
    mismatched
}

/// `--broken`: run the seeded broken-op fixture through the oracle to
/// demonstrate the detect → minimize → repro pipeline end to end.
#[cfg(feature = "broken-op")]
fn broken_demo(opts: &Opts) -> ExitCode {
    use oracle::fixtures::{broken_avg_demo, broken_vavg_subject};
    println!("broken-op demo: selector models vavg with a wrapped (carry-dropping) sum");
    let (e, env) = broken_avg_demo();
    let lanes = opts.lanes;
    // Check at the demo env's own origin rather than sampled ones: the
    // fixture environment is constructed so the carry bit matters.
    let ctx = halide_ir::EvalCtx { env: &env, x0: 0, y0: 0, lanes };
    let want = halide_ir::eval(&e, &ctx).expect("demo expression evaluates");
    let got = broken_vavg_subject(&e, &env, 0, 0, lanes).expect("broken subject executes");
    let Some(lane) = oracle::first_mismatch(&want, &got) else {
        eprintln!("oracle_fuzz: broken op was NOT caught — oracle bug");
        return ExitCode::FAILURE;
    };
    println!(
        "MISMATCH: lane {lane} want {} got {} (seed {:#x})",
        want.get(lane),
        got.get(lane),
        opts.seed
    );
    let f = oracle::Failure { env, x0: 0, y0: 0, lane, want: want.get(lane), got: got.get(lane) };
    match shrink_and_emit("broken_avg", &e, &f, lanes, &broken_vavg_subject, &opts.out) {
        Ok(paths) => {
            println!("repro artifacts:\n  {}\n  {}", paths.sexpr.display(), paths.test.display());
            ExitCode::FAILURE
        }
        Err(err) => {
            eprintln!("oracle_fuzz: failed to write repro: {err}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(not(feature = "broken-op"))]
fn broken_demo(_opts: &Opts) -> ExitCode {
    eprintln!(
        "oracle_fuzz: --broken needs the fixture models; rebuild with\n  \
         cargo run -p rake-bench --features broken-op --bin oracle_fuzz -- --broken"
    );
    ExitCode::FAILURE
}

fn usage(err: &str) -> ExitCode {
    if !err.is_empty() {
        eprintln!("oracle_fuzz: {err}");
    }
    eprintln!(
        "usage: oracle_fuzz [--seed S] [--cases N] [--max-nodes N] [--lanes N] \
         [--budget SEC] [--out DIR] [--skip-workloads] [--broken]"
    );
    if err.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
