//! Ablations of the design choices DESIGN.md calls out: backtracking with
//! a tightening cost bound (Algorithm 2), deinterleaved intermediate
//! layouts (§5.1), and aligned-load swizzle synthesis.
//!
//! ```sh
//! cargo run --release -p rake-bench --bin ablations [--quick]
//! ```

use hvx::SlotBudget;
use rake::{Rake, Target};
use rake_bench::{bench_verifier, RunConfig};
use synth::LoweringOptions;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let names = ["sobel", "gaussian3x3", "conv3x3a16", "mul"];
    println!("Ablation study — cycles/tile per configuration\n");
    println!(
        "{:<14} {:>9} {:>12} {:>11} {:>13}",
        "benchmark", "full", "no-backtrk", "no-layouts", "aligned-loads"
    );
    for name in names {
        let w = workloads::by_name(name).expect("registered");
        let cfg = if quick { RunConfig::quick(&w) } else { RunConfig::full(&w) };
        let base = LoweringOptions {
            lanes: cfg.lanes,
            vec_bytes: cfg.vec_bytes,
            ..LoweringOptions::default()
        };
        let variants = [
            ("full", base),
            ("no-backtrack", LoweringOptions { backtrack: false, ..base }),
            ("no-layouts", LoweringOptions { layouts: false, ..base }),
            ("aligned-loads", LoweringOptions { aligned_loads: true, ..base }),
        ];
        let mut cells = Vec::new();
        for (_, opts) in variants {
            let rake = Rake::new(Target { lanes: cfg.lanes, vec_bytes: cfg.vec_bytes })
                .with_verifier(bench_verifier(cfg))
                .with_options(opts);
            let cycles: u64 = w
                .exprs
                .iter()
                .map(|e| match rake.compile(e) {
                    Ok(c) => {
                        c.program.schedule(cfg.lanes, cfg.vec_bytes, SlotBudget::hvx()).cycles
                    }
                    Err(_) => u64::MAX, // lowering failed under this ablation
                })
                .sum();
            cells.push(cycles);
        }
        println!(
            "{:<14} {:>9} {:>12} {:>11} {:>13}",
            name,
            fmt(cells[0]),
            fmt(cells[1]),
            fmt(cells[2]),
            fmt(cells[3])
        );
    }
    println!("\n(no-backtrack = first verified sketch; no-layouts = natural order only;");
    println!(" aligned-loads = unaligned windows synthesized as aligned vmem + valign)");
}

fn fmt(v: u64) -> String {
    if v == u64::MAX {
        "fail".to_owned()
    } else {
        v.to_string()
    }
}
