//! The evaluation harness: runs each benchmark through the baseline
//! pattern-matching selector and through Rake, checks both against the
//! Halide IR interpreter over a tile sweep, and reports simulated cycle
//! counts — regenerating the data behind every table and figure of §7.

use driver::{Driver, DriverConfig, JobOutcome};
use halide_ir::{Env, EvalCtx, Expr};
use hvx::{ExecCtx, Program, SlotBudget};
use rake::{Rake, Target};
use synth::{SynthStats, Verifier};
use workloads::Workload;

pub mod microbench;

/// Service-layer knobs for harness runs, forwarded to [`driver::Driver`].
/// The default is a cold in-memory cache and an auto-sized pool.
#[derive(Debug, Clone, Default)]
pub struct ServiceOptions {
    /// Persistent synthesis-cache directory (warm starts across runs).
    pub cache_dir: Option<std::path::PathBuf>,
    /// JSONL event log to append to.
    pub log_path: Option<std::path::PathBuf>,
    /// Worker threads; `None` auto-sizes.
    pub workers: Option<usize>,
    /// Per-expression wall-clock budget.
    pub job_timeout: Option<std::time::Duration>,
    /// Differentially validate every compiled program against the Halide
    /// IR interpreter (forwarded to `DriverConfig::validate`).
    pub validate: bool,
}

impl ServiceOptions {
    /// Build the driver for one workload run.
    pub fn driver(&self, rake: Rake) -> Driver {
        let defaults = DriverConfig::default();
        Driver::new(rake).with_config(DriverConfig {
            workers: self.workers.unwrap_or(defaults.workers),
            job_timeout: self.job_timeout,
            cache_dir: self.cache_dir.clone(),
            log_path: self.log_path.clone(),
            validate: self.validate,
            ..defaults
        })
    }
}

/// Geometry of one harness run.
#[derive(Debug, Clone, Copy)]
pub struct RunConfig {
    /// Vectorization width (lanes). Full runs use the workload's own
    /// width; quick runs scale it down proportionally.
    pub lanes: usize,
    /// Register width in bytes.
    pub vec_bytes: usize,
    /// Number of output tiles swept horizontally.
    pub tiles_x: usize,
    /// Number of output rows swept.
    pub rows: usize,
}

impl RunConfig {
    /// Full-width configuration for a workload (its scheduled lane count on
    /// 128-byte registers).
    pub fn full(w: &Workload) -> RunConfig {
        RunConfig { lanes: w.lanes, vec_bytes: 128, tiles_x: 4, rows: 4 }
    }

    /// Scaled-down configuration preserving the lanes:register ratio, for
    /// quick integration runs.
    pub fn quick(w: &Workload) -> RunConfig {
        let lanes = (16 * w.lanes / 128).max(4);
        RunConfig { lanes, vec_bytes: 16, tiles_x: 2, rows: 2 }
    }
}

/// Outcome for one expression of a workload.
#[derive(Debug, Clone)]
pub struct ExprOutcome {
    /// Rendered source expression.
    pub halide: String,
    /// Baseline cycles per tile.
    pub baseline_cycles: u64,
    /// Rake cycles per tile (baseline cycles when Rake declined).
    pub rake_cycles: u64,
    /// Whether Rake produced (and verified) an implementation.
    pub rake_optimized: bool,
    /// Whether both implementations matched the interpreter on the sweep.
    pub verified: bool,
    /// The baseline program.
    pub baseline_program: Program,
    /// The Rake program, when compiled.
    pub rake_program: Option<Program>,
}

/// Aggregated outcome for one workload.
#[derive(Debug, Clone)]
pub struct WorkloadRun {
    /// Benchmark name.
    pub name: &'static str,
    /// Per-expression outcomes.
    pub exprs: Vec<ExprOutcome>,
    /// Merged synthesis statistics.
    pub stats: SynthStats,
    /// Total simulated baseline cycles over the sweep.
    pub baseline_cycles: u64,
    /// Total simulated Rake cycles over the sweep (including the §7.3
    /// layout penalty where it applies).
    pub rake_cycles: u64,
}

impl WorkloadRun {
    /// Rake speedup over the baseline.
    pub fn speedup(&self) -> f64 {
        self.baseline_cycles as f64 / self.rake_cycles as f64
    }

    /// Whether every expression's outputs matched the interpreter.
    pub fn all_verified(&self) -> bool {
        self.exprs.iter().all(|e| e.verified)
    }

    /// Number of expressions Rake optimized.
    pub fn optimized(&self) -> usize {
        self.exprs.iter().filter(|e| e.rake_optimized).count()
    }
}

/// Read a boolean toggle from the environment: unset or anything other
/// than `0`/`false`/`off` means on.
fn env_toggle(name: &str) -> bool {
    match std::env::var(name) {
        Ok(v) => !matches!(v.as_str(), "0" | "false" | "off"),
        Err(_) => true,
    }
}

/// Verifier effort for harness runs: differential-heavy, SMT proofs on.
///
/// Two environment toggles select the hot-path configuration so the same
/// harness (and the golden tests) can run both ways: `RAKE_MEMO=0`
/// disables verdict/env/SMT-term memoization, `RAKE_PARALLEL_LIFT=0`
/// disables intra-job parallel candidate screening. Synthesized programs
/// are identical under every combination.
pub fn bench_verifier(cfg: RunConfig) -> Verifier {
    Verifier {
        lanes: cfg.lanes,
        vec_bytes: cfg.vec_bytes,
        alt_lanes: (cfg.lanes / 2).max(4),
        random_envs: 6,
        use_smt: true,
        smt_lanes: 1,
        smt_conflict_budget: 10_000,
        smt_lowering: false,
        memoize: env_toggle("RAKE_MEMO"),
        parallel_lifting: env_toggle("RAKE_PARALLEL_LIFT"),
        ..Verifier::default()
    }
}

/// Run one workload through both code generators and the simulator, with
/// default service options (in-memory cache, auto-sized pool).
///
/// # Panics
///
/// Panics if the baseline selector fails to cover a workload expression —
/// the baseline must be total over the benchmark suite.
pub fn run_workload(w: &Workload, cfg: RunConfig) -> WorkloadRun {
    run_workload_with(w, cfg, &ServiceOptions::default())
}

/// Like [`run_workload`], but Rake compilations go through the
/// [`driver::Driver`] service layer configured by `svc`: batched over a
/// worker pool, deduplicated, cached (persistently when `cache_dir` is
/// set), with per-job deadlines and panic isolation.
///
/// # Panics
///
/// Panics if the baseline selector fails to cover a workload expression —
/// the baseline must be total over the benchmark suite.
pub fn run_workload_with(w: &Workload, cfg: RunConfig, svc: &ServiceOptions) -> WorkloadRun {
    let target = Target { lanes: cfg.lanes, vec_bytes: cfg.vec_bytes };
    let rake = Rake::new(target).with_verifier(bench_verifier(cfg));
    let bopts = halide_opt::BaselineOptions { lanes: cfg.lanes, vec_bytes: cfg.vec_bytes };
    let env = w.env(cfg.lanes * (cfg.tiles_x + 2), cfg.rows + 16, 0xC0FFEE);
    let slots = SlotBudget::hvx();

    let report = svc.driver(rake).compile_batch_named(
        w.exprs
            .iter()
            .enumerate()
            .map(|(i, e)| (format!("{}[{i}]", w.name), e.clone()))
            .collect(),
    );
    let stats = report.stats;

    let mut exprs = Vec::new();
    let mut baseline_total = 0u64;
    let mut rake_total = 0u64;
    for (e, result) in w.exprs.iter().zip(&report.results) {
        let baseline =
            halide_opt::select(e, bopts).unwrap_or_else(|err| {
                panic!("baseline must cover {}: {err}", w.name)
            });
        let baseline_program = baseline.to_program();
        let (rake_program, rake_optimized) = match &result.outcome {
            JobOutcome::Compiled(c) => (Some(c.program.clone()), true),
            _ => (None, false),
        };

        let verified = verify_sweep(e, &baseline_program, rake_program.as_ref(), &env, cfg);

        let bc = baseline_program.schedule(cfg.lanes, cfg.vec_bytes, slots).cycles;
        let rc = match &rake_program {
            Some(p) => {
                p.schedule(cfg.lanes, cfg.vec_bytes, slots).cycles
                    + u64::from(w.rake_layout_penalty)
            }
            None => bc,
        };
        baseline_total += bc;
        rake_total += rc;
        exprs.push(ExprOutcome {
            halide: e.to_string(),
            baseline_cycles: bc,
            rake_cycles: rc,
            rake_optimized,
            verified,
            baseline_program,
            rake_program,
        });
    }
    let tiles = (cfg.tiles_x * cfg.rows) as u64;
    WorkloadRun {
        name: w.name,
        exprs,
        stats,
        baseline_cycles: baseline_total * tiles,
        rake_cycles: rake_total * tiles,
    }
}

/// Execute both programs over the tile sweep and compare each against the
/// IR interpreter.
fn verify_sweep(
    e: &Expr,
    baseline: &Program,
    rake: Option<&Program>,
    env: &Env,
    cfg: RunConfig,
) -> bool {
    let out_ty = e.ty();
    for ty in 0..cfg.rows {
        for tx in 0..cfg.tiles_x {
            // Odd rows sweep from an unaligned origin, so alignment
            // assumptions baked into either code generator would surface.
            let skew = if ty % 2 == 1 { 3 } else { 0 };
            let (x0, y0) = ((cfg.lanes * (tx + 1) + skew) as i64, (8 + ty) as i64);
            let ctx = EvalCtx { env, x0, y0, lanes: cfg.lanes };
            let Ok(want) = halide_ir::eval(e, &ctx) else { return false };
            let hctx = ExecCtx { env, x0, y0, lanes: cfg.lanes, vec_bytes: cfg.vec_bytes };
            let Ok(got_b) = baseline.run_ctx(&hctx) else { return false };
            if got_b.typed_lanes(out_ty) != want {
                return false;
            }
            if let Some(rp) = rake {
                let Ok(got_r) = rp.run_ctx(&hctx) else { return false };
                if got_r.typed_lanes(out_ty) != want {
                    return false;
                }
            }
        }
    }
    true
}

/// Pretty-print a program as an indented listing (for the codegen figures).
pub fn listing(p: &Program) -> String {
    p.to_string()
}
