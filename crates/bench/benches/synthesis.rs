//! Criterion micro-benchmarks of the three synthesis stages (the cost
//! structure behind Table 1's timing split).

use criterion::{criterion_group, criterion_main, Criterion};
use halide_ir::builder::*;
use lanes::ElemType::{U16, U8};
use rake::{Rake, Target};
use synth::{lift_expr, lower_expr, LoweringOptions, SynthStats, Verifier};

fn sobel_row() -> halide_ir::Expr {
    let t = |dx| widen(load("input", U8, dx, -1));
    add(add(t(-1), mul(t(0), bcast(2, U16))), t(1))
}

fn verifier() -> Verifier {
    Verifier {
        lanes: 16,
        vec_bytes: 16,
        alt_lanes: 8,
        random_envs: 4,
        smt_lanes: 1,
        ..Verifier::default()
    }
}

fn bench_lift(c: &mut Criterion) {
    let e = sobel_row();
    let v = verifier();
    c.bench_function("lift/sobel_row", |b| {
        b.iter(|| {
            let mut stats = SynthStats::default();
            lift_expr(&e, &v, &mut stats).expect("lifts")
        })
    });
}

fn bench_lower(c: &mut Criterion) {
    let e = sobel_row();
    let v = verifier();
    let mut stats = SynthStats::default();
    let (u, _) = lift_expr(&e, &v, &mut stats).expect("lifts");
    let opts = LoweringOptions { lanes: 16, vec_bytes: 16, ..LoweringOptions::default() };
    c.bench_function("lower/sobel_row", |b| {
        b.iter(|| {
            let mut stats = SynthStats::default();
            lower_expr(&u, &v, opts, &mut stats).expect("lowers")
        })
    });
}

fn bench_compile(c: &mut Criterion) {
    let e = sobel_row();
    let rake = Rake::new(Target::hvx_small(16)).with_verifier(verifier());
    c.bench_function("compile/sobel_row", |b| b.iter(|| rake.compile(&e).expect("compiles")));

    let g = workloads::by_name("gaussian3x3").expect("registered").exprs[0].clone();
    c.bench_function("compile/gaussian3x3", |b| b.iter(|| rake.compile(&g).expect("compiles")));
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_lift, bench_lower, bench_compile
}
criterion_main!(benches);
