//! Micro-benchmarks of the three synthesis stages (the cost structure
//! behind Table 1's timing split).

use halide_ir::builder::*;
use lanes::ElemType::{U16, U8};
use rake::{Rake, Target};
use rake_bench::microbench::bench;
use synth::{lift_expr, lower_expr, LoweringOptions, SynthStats, Verifier};

fn sobel_row() -> halide_ir::Expr {
    let t = |dx| widen(load("input", U8, dx, -1));
    add(add(t(-1), mul(t(0), bcast(2, U16))), t(1))
}

fn verifier() -> Verifier {
    Verifier {
        lanes: 16,
        vec_bytes: 16,
        alt_lanes: 8,
        random_envs: 4,
        smt_lanes: 1,
        ..Verifier::default()
    }
}

fn main() {
    let e = sobel_row();
    let v = verifier();
    bench("lift/sobel_row", || {
        let mut stats = SynthStats::default();
        lift_expr(&e, &v, &mut stats).expect("lifts");
    });

    let mut stats = SynthStats::default();
    let (u, _) = lift_expr(&e, &v, &mut stats).expect("lifts");
    let opts = LoweringOptions { lanes: 16, vec_bytes: 16, ..LoweringOptions::default() };
    bench("lower/sobel_row", || {
        let mut stats = SynthStats::default();
        lower_expr(&u, &v, opts, &mut stats).expect("lowers");
    });

    let rake = Rake::new(Target::hvx_small(16)).with_verifier(verifier());
    bench("compile/sobel_row", || {
        rake.compile(&e).expect("compiles");
    });
    let g = workloads::by_name("gaussian3x3").expect("registered").exprs[0].clone();
    bench("compile/gaussian3x3", || {
        rake.compile(&g).expect("compiles");
    });
}
