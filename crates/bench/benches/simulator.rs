//! Criterion micro-benchmarks of the HVX model: program execution
//! throughput and VLIW scheduling.

use criterion::{criterion_group, criterion_main, Criterion};
use halide_ir::{Buffer2D, Env};
use hvx::{ExecCtx, HvxExpr, Op, SlotBudget};
use lanes::ElemType;

fn conv_program() -> hvx::Program {
    // vtmpy row + fused narrow: a realistic loop body.
    let vt = HvxExpr::op(
        Op::Vtmpy { elem: ElemType::U8, w0: 1, w1: 2 },
        vec![
            HvxExpr::vmem("in", ElemType::U8, -1, 0),
            HvxExpr::vmem("in", ElemType::U8, 127, 0),
        ],
    );
    let out = HvxExpr::op(
        Op::VasrNarrow { elem: ElemType::U16, shift: 2, round: true, sat: true, out: ElemType::U8 },
        vec![HvxExpr::op(Op::Hi, vec![vt.clone()]), HvxExpr::op(Op::Lo, vec![vt])],
    );
    out.to_program()
}

fn bench_execute(c: &mut Criterion) {
    let p = conv_program();
    let mut env = Env::new();
    env.insert(Buffer2D::from_fn("in", ElemType::U8, 512, 1, |x, _| (x % 256) as i64));
    let ctx = ExecCtx { env: &env, x0: 128, y0: 0, lanes: 128, vec_bytes: 128 };
    c.bench_function("simulator/execute_tile_128", |b| {
        b.iter(|| p.run_ctx(&ctx).expect("runs"))
    });
}

fn bench_schedule(c: &mut Criterion) {
    let p = conv_program();
    c.bench_function("simulator/schedule", |b| {
        b.iter(|| p.schedule(128, 128, SlotBudget::hvx()))
    });
}

fn bench_baseline_select(c: &mut Criterion) {
    let sobel = workloads::by_name("sobel").expect("registered");
    let e = sobel.exprs[0].clone();
    c.bench_function("baseline/select_sobel", |b| {
        b.iter(|| halide_opt::select(&e, halide_opt::BaselineOptions::hvx()).expect("selects"))
    });
}

criterion_group!(benches, bench_execute, bench_schedule, bench_baseline_select);
criterion_main!(benches);
