//! Micro-benchmarks of the HVX model: program execution throughput and
//! VLIW scheduling.

use halide_ir::{Buffer2D, Env};
use hvx::{ExecCtx, HvxExpr, Op, SlotBudget};
use lanes::ElemType;
use rake_bench::microbench::bench;

fn conv_program() -> hvx::Program {
    // vtmpy row + fused narrow: a realistic loop body.
    let vt = HvxExpr::op(
        Op::Vtmpy { elem: ElemType::U8, w0: 1, w1: 2 },
        vec![
            HvxExpr::vmem("in", ElemType::U8, -1, 0),
            HvxExpr::vmem("in", ElemType::U8, 127, 0),
        ],
    );
    let out = HvxExpr::op(
        Op::VasrNarrow { elem: ElemType::U16, shift: 2, round: true, sat: true, out: ElemType::U8 },
        vec![HvxExpr::op(Op::Hi, vec![vt.clone()]), HvxExpr::op(Op::Lo, vec![vt])],
    );
    out.to_program()
}

fn main() {
    let p = conv_program();
    let mut env = Env::new();
    env.insert(Buffer2D::from_fn("in", ElemType::U8, 512, 1, |x, _| (x % 256) as i64));
    let ctx = ExecCtx { env: &env, x0: 128, y0: 0, lanes: 128, vec_bytes: 128 };
    bench("simulator/execute_tile_128", || {
        p.run_ctx(&ctx).expect("runs");
    });

    bench("simulator/schedule", || {
        p.schedule(128, 128, SlotBudget::hvx());
    });

    let sobel = workloads::by_name("sobel").expect("registered");
    let e = sobel.exprs[0].clone();
    bench("baseline/select_sobel", || {
        halide_opt::select(&e, halide_opt::BaselineOptions::hvx()).expect("selects");
    });
}
