//! Micro-benchmarks of the SAT/SMT substrate.

use rake_bench::microbench::bench;
use sat::{Lit, Solver, Var};
use smt::{check_equivalent, Context};

fn pigeonhole(pigeons: usize, holes: usize) -> Solver {
    let mut s = Solver::new();
    let vars: Vec<Var> = (0..pigeons * holes).map(|_| s.new_var()).collect();
    let at = |p: usize, h: usize| Lit::pos(vars[p * holes + h]);
    for p in 0..pigeons {
        s.add_clause((0..holes).map(|h| at(p, h)));
    }
    for h in 0..holes {
        for p1 in 0..pigeons {
            for p2 in p1 + 1..pigeons {
                s.add_clause([!at(p1, h), !at(p2, h)]);
            }
        }
    }
    s
}

fn main() {
    bench("sat/pigeonhole_7_6", || {
        let mut s = pigeonhole(7, 6);
        assert!(!s.solve().is_sat());
    });

    bench("smt/mul_add_equiv_16bit", || {
        let mut ctx = Context::new();
        let x = ctx.var("x", 16);
        let y = ctx.var("y", 16);
        let three = ctx.constant(3, 16);
        let l = {
            let xy = ctx.add(x, y);
            ctx.mul(xy, three)
        };
        let r = {
            let x3 = ctx.mul(x, three);
            let y3 = ctx.mul(y, three);
            ctx.add(x3, y3)
        };
        assert!(check_equivalent(&mut ctx, l, r).is_ok());
    });

    bench("smt/counterexample_16bit", || {
        let mut ctx = Context::new();
        let x = ctx.var("x", 16);
        let one = ctx.constant(1, 16);
        let l = ctx.add(x, one);
        let r = ctx.sub(x, one);
        assert!(check_equivalent(&mut ctx, l, r).is_err());
    });
}
