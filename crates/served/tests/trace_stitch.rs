//! End-to-end trace stitching across the `--isolate` process boundary:
//! one `/compile` request against an isolated server must produce a
//! single Chrome trace whose worker-subprocess spans (including the
//! individual SMT queries) are parented under the server-side job span.
//! A worker crash mid-job must still yield a well-formed (if partial)
//! trace — the server-side spans close normally; the dead worker's spans
//! are simply absent.

use std::collections::{HashMap, HashSet};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::time::Duration;

use driver::json::{self, Json};
use served::http::roundtrip;
use served::{ServerConfig, ServerHandle};

#[allow(dead_code)]
mod common;
use common::start_with_retry;

/// A tile that lifts and lowers in milliseconds but still reaches the
/// solver: absd is non-linear, so its lift verification cannot take the
/// linear fast path and must issue a real `smt.prove_unsat` query.
const SMT_TILE: &str = "(absd (load a u8 0 0) (load b u8 0 0))";
/// A distinct key for the crash half of the test.
const CRASH_TILE: &str = "(add (load a u8 3 0) (load b u8 3 0))";

fn worker_cmd() -> Vec<String> {
    vec![env!("CARGO_BIN_EXE_rake-served").to_owned(), "worker".to_owned()]
}

fn post_compile(handle: &ServerHandle, body: &Json) -> (u16, Json) {
    let mut stream = TcpStream::connect(handle.addr()).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(120))).unwrap();
    let bytes = body.to_string().into_bytes();
    let (status, reply) =
        roundtrip(&mut stream, "POST", "/compile", Some(&bytes)).expect("roundtrip");
    let doc = json::parse(&String::from_utf8_lossy(&reply)).unwrap_or(Json::Null);
    (status, doc)
}

/// One exported span, decoded from the trace-event JSON.
struct Span {
    name: String,
    cat: String,
    span: u64,
    parent: u64,
    pid: u64,
}

/// Load and strictly decode a `rake-trace-v1` file; panics on any
/// malformed event (this is the well-formedness assertion).
fn load_trace(path: &Path) -> Vec<Span> {
    let text = std::fs::read_to_string(path).expect("read trace file");
    let doc = json::parse(&text).expect("trace file parses as JSON");
    assert_eq!(
        doc.get("schema").and_then(Json::as_str),
        Some("rake-trace-v1"),
        "schema tag"
    );
    let events = doc.get("traceEvents").and_then(Json::as_arr).expect("traceEvents array");
    assert!(!events.is_empty(), "trace must not be empty");
    events
        .iter()
        .map(|ev| {
            assert_eq!(ev.get("ph").and_then(Json::as_str), Some("X"), "{ev}");
            let args = ev.get("args").expect("args");
            let id = |k: &str| -> u64 {
                let hex = args.get(k).and_then(Json::as_str).expect("hex id");
                u64::from_str_radix(hex, 16).expect("id parses")
            };
            for k in ["ts", "dur"] {
                assert!(
                    ev.get(k).and_then(Json::as_i64).is_some_and(|n| n >= 0),
                    "{k} must be a non-negative number: {ev}"
                );
            }
            Span {
                name: ev.get("name").and_then(Json::as_str).expect("name").to_owned(),
                cat: ev.get("cat").and_then(Json::as_str).expect("cat").to_owned(),
                span: id("span"),
                parent: id("parent"),
                pid: ev.get("pid").and_then(Json::as_i64).expect("pid") as u64,
            }
        })
        .collect()
}

/// Walk the parent chain of `s` and report whether it passes through
/// `ancestor` before reaching a root.
fn has_ancestor(spans: &HashMap<u64, &Span>, s: &Span, ancestor: u64) -> bool {
    let mut cursor = s.parent;
    for _ in 0..64 {
        if cursor == ancestor {
            return true;
        }
        match spans.get(&cursor) {
            Some(p) => cursor = p.parent,
            None => return false,
        }
    }
    false
}

fn trace_file(dir: &Path, doc: &Json) -> PathBuf {
    let id = doc.get("trace_id").and_then(Json::as_str).expect("response echoes trace_id");
    let path = dir.join(format!("trace-{id}.json"));
    assert!(path.exists(), "trace file {} must exist", path.display());
    path
}

#[test]
fn isolated_compile_stitches_worker_smt_spans_under_the_job() {
    let dir = std::env::temp_dir().join(format!("rake-trace-stitch-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let handle = start_with_retry(|| ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        isolate: true,
        pool_workers: 1,
        worker_cmd: Some(worker_cmd()),
        chaos: true,
        trace_out: Some(dir.clone()),
        ..ServerConfig::default()
    });

    let (status, doc) = post_compile(&handle, &Json::obj([("expr", SMT_TILE.into())]));
    assert_eq!(status, 200, "{doc}");
    let spans = load_trace(&trace_file(&dir, &doc));
    let by_id: HashMap<u64, &Span> = spans.iter().map(|s| (s.span, s)).collect();

    let root = spans
        .iter()
        .find(|s| s.name == "http.request")
        .expect("server-side http.request root span");
    assert_eq!(root.parent, 0, "http.request must be the root");
    let job = spans
        .iter()
        .find(|s| s.name == "driver.job")
        .expect("driver.job span");
    assert!(
        has_ancestor(&by_id, job, root.span),
        "driver.job must sit under http.request"
    );

    // The worker subprocess contributed its spans into the same tree:
    // `worker.compile` is parented (transitively) under the server-side
    // job span, and carries a different pid than the server.
    let server_pid = u64::from(std::process::id());
    let worker = spans
        .iter()
        .find(|s| s.name == "worker.compile")
        .expect("worker-side compile span shipped back over the frame protocol");
    assert_ne!(worker.pid, server_pid, "worker.compile must come from the subprocess");
    assert!(
        has_ancestor(&by_id, worker, job.span),
        "worker.compile must stitch under the server-side driver.job"
    );

    // Individual SMT queries from inside the worker, parented under its
    // compile span.
    let worker_smt: Vec<&Span> = spans
        .iter()
        .filter(|s| s.cat == "smt" && s.pid == worker.pid)
        .collect();
    assert!(
        !worker_smt.is_empty(),
        "worker-side SMT spans must appear in the stitched trace; spans: {:?}",
        spans.iter().map(|s| (&s.name, s.pid)).collect::<Vec<_>>()
    );
    for s in &worker_smt {
        assert!(
            has_ancestor(&by_id, s, worker.span),
            "SMT span {} must sit under worker.compile",
            s.name
        );
    }
    assert!(
        worker_smt.iter().any(|s| s.name == "smt.prove_unsat"),
        "an absd lift must run at least one real solver query in the worker"
    );

    // Crash mid-job: the worker dies before shipping spans, so the trace
    // holds only server-side spans — but stays well-formed, with the job
    // span closed.
    let (status, doc) =
        post_compile(&handle, &Json::obj([("expr", CRASH_TILE.into()), ("chaos", "abort".into())]));
    assert_eq!(status, 200, "{doc}");
    let outcome = doc
        .get("results")
        .and_then(Json::as_arr)
        .and_then(|r| r.first())
        .and_then(|r| r.get("outcome"))
        .and_then(Json::as_str)
        .unwrap_or("?");
    assert_eq!(outcome, "panicked", "{doc}");
    let crash_spans = load_trace(&trace_file(&dir, &doc));
    let crash_ids: HashSet<u64> = crash_spans.iter().map(|s| s.span).collect();
    assert!(
        crash_spans.iter().any(|s| s.name == "http.request"),
        "crash trace keeps its root"
    );
    assert!(
        crash_spans.iter().any(|s| s.name == "driver.job"),
        "crash trace keeps the server-side job span"
    );
    assert!(
        crash_spans.iter().all(|s| s.pid == server_pid),
        "the dead worker cannot have shipped spans"
    );
    // Well-formed partial tree: every parent reference is either present
    // in the file or an explicit root marker (0) — the crashed worker's
    // absence must not leave dangling internal edges on the server side.
    for s in &crash_spans {
        assert!(
            s.parent == 0 || crash_ids.contains(&s.parent),
            "span {} has a dangling parent {:016x}",
            s.name,
            s.parent
        );
    }

    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
