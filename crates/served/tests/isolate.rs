//! Crash-containment proof for `--isolate`: worker deaths (chaos aborts,
//! raw `kill -9`) fail only their own jobs; the server keeps serving,
//! crashing keys are quarantined as poison pills, quarantine survives a
//! restart and expires after its TTL. Also covers the slow-loris 408
//! guard, which shares the connection-handling changes.
//!
//! The worker command is pinned to the real `rake-served` binary:
//! `current_exe` inside a test is the test harness, which would loop
//! forever spawning itself.

use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use driver::json::{self, Json};
use served::http::roundtrip;
use served::{serve, ServerConfig, ServerHandle};

mod common;
use common::{start_with_retry, wait_until};

/// A tile that lifts and lowers in milliseconds.
const TRIVIAL: &str = "(add (load a u8 0 0) (load b u8 0 0))";
/// A second trivial tile with a distinct cache key.
const TRIVIAL2: &str = "(add (load a u8 1 0) (load b u8 1 0))";

fn worker_cmd() -> Vec<String> {
    vec![env!("CARGO_BIN_EXE_rake-served").to_owned(), "worker".to_owned()]
}

fn start_isolated(mut tweak: impl FnMut(&mut ServerConfig)) -> ServerHandle {
    start_with_retry(|| {
        let mut config = ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            isolate: true,
            pool_workers: 2,
            worker_cmd: Some(worker_cmd()),
            chaos: true,
            ..ServerConfig::default()
        };
        tweak(&mut config);
        config
    })
}

fn connect(handle: &ServerHandle) -> TcpStream {
    let stream = TcpStream::connect(handle.addr()).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(120))).unwrap();
    stream
}

fn post_compile(handle: &ServerHandle, body: &Json) -> (u16, Json) {
    let mut stream = connect(handle);
    let bytes = body.to_string().into_bytes();
    let (status, reply) =
        roundtrip(&mut stream, "POST", "/compile", Some(&bytes)).expect("roundtrip");
    let doc = json::parse(&String::from_utf8_lossy(&reply)).unwrap_or(Json::Null);
    (status, doc)
}

fn result0(doc: &Json) -> &Json {
    doc.get("results")
        .and_then(Json::as_arr)
        .and_then(|r| r.first())
        .expect("one result")
}

fn outcome0(doc: &Json) -> &str {
    result0(doc).get("outcome").and_then(Json::as_str).unwrap_or("?")
}

fn body(expr: &str, extra: &[(&'static str, Json)]) -> Json {
    let mut obj = vec![("expr".to_owned(), Json::Str(expr.to_owned()))];
    for (k, v) in extra {
        obj.push(((*k).to_owned(), v.clone()));
    }
    Json::Obj(obj)
}

fn metrics_text(handle: &ServerHandle) -> String {
    let mut stream = connect(handle);
    let (status, reply) = roundtrip(&mut stream, "GET", "/metrics", None).unwrap();
    assert_eq!(status, 200);
    String::from_utf8(reply).unwrap()
}

fn healthz_ok(handle: &ServerHandle) {
    let mut stream = connect(handle);
    let (status, reply) = roundtrip(&mut stream, "GET", "/healthz", None).unwrap();
    assert_eq!((status, reply.as_slice()), (200, b"ok\n".as_slice()));
}

#[test]
fn compiles_run_inside_workers_and_crashes_are_contained() {
    let handle = start_isolated(|c| c.crash_threshold = 1);

    // A normal compile succeeds end-to-end through a worker subprocess.
    let (status, doc) = post_compile(&handle, &body(TRIVIAL, &[]));
    assert_eq!(status, 200);
    assert_eq!(outcome0(&doc), "compiled", "{doc}");
    assert!(result0(&doc).get("program").and_then(Json::as_str).is_some());
    assert!(!handle.worker_pids().is_empty(), "pool must be live");

    // Chaos-abort a different key: the worker dies, the job fails as a
    // structured panic, the server stays healthy.
    let (status, doc) = post_compile(&handle, &body(TRIVIAL2, &[("chaos", "abort".into())]));
    assert_eq!(status, 200, "a worker death must not kill the request: {doc}");
    let outcome = outcome0(&doc);
    assert_eq!(outcome, "panicked", "{doc}");
    let detail = result0(&doc).get("detail").and_then(Json::as_str).unwrap_or("");
    assert!(
        detail.contains("worker") || detail.contains("poison pill"),
        "crash detail should name the worker: {detail}"
    );
    healthz_ok(&handle);

    // Threshold 1: the key is now a poison pill. A plain request for it
    // is answered from the cache as `quarantined` — no worker dispatch,
    // no budget burned.
    let (status, doc) = post_compile(&handle, &body(TRIVIAL2, &[]));
    assert_eq!(status, 200);
    assert_eq!(outcome0(&doc), "quarantined", "{doc}");

    // Other keys still compile (the first one is warm; a third is fresh).
    let (status, doc) = post_compile(&handle, &body(TRIVIAL, &[]));
    assert_eq!(status, 200);
    assert_eq!(outcome0(&doc), "compiled");
    let fresh = "(add (load a u8 2 0) (load b u8 2 0))";
    let (status, doc) = post_compile(&handle, &body(fresh, &[]));
    assert_eq!(status, 200);
    assert_eq!(outcome0(&doc), "compiled", "{doc}");

    // The supervisor replaced the dead worker and the books agree.
    assert!(
        wait_until(Duration::from_secs(10), || handle.worker_pids().len() == 2),
        "dead worker must be replaced: {:?}",
        handle.worker_pids()
    );
    let text = metrics_text(&handle);
    let counter = |name: &str| -> f64 {
        text.lines()
            .find_map(|l| l.strip_prefix(name))
            .and_then(|rest| rest.trim().parse().ok())
            .unwrap_or(-1.0)
    };
    assert!(counter("rake_served_worker_restarts_total ") >= 1.0, "{text}");
    assert!(counter("rake_served_quarantined_keys ") >= 1.0, "{text}");
    assert!(counter("rake_served_quarantine_added_total ") >= 1.0, "{text}");
    assert!(counter("rake_served_workers_alive ") >= 1.0, "{text}");
    assert!(text.contains("rake_served_worker_crashes_total{cause="), "{text}");
    handle.shutdown();
}

#[test]
fn kill_dash_nine_of_a_busy_worker_fails_only_that_job() {
    // Threshold 1: the first SIGKILL quarantines the key, so the
    // driver's retry of the crashed job trips the poison pill instead
    // of re-running the 30 s chaos sleep.
    let handle = start_isolated(|c| c.crash_threshold = 1);

    // Park a job in a worker (chaos sleep), then SIGKILL every worker
    // from outside — the harshest death the supervisor must absorb.
    let addr = handle.addr();
    let sleeper = std::thread::spawn(move || {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.set_read_timeout(Some(Duration::from_secs(120))).unwrap();
        let body = Json::obj([
            ("expr", Json::Str(TRIVIAL.to_owned())),
            ("chaos", "sleep:30000".into()),
            ("timeout_ms", 60_000u64.into()),
        ])
        .to_string()
        .into_bytes();
        let (status, reply) = roundtrip(&mut stream, "POST", "/compile", Some(&body)).unwrap();
        (status, String::from_utf8_lossy(&reply).into_owned())
    });
    let metrics = handle.metrics();
    assert!(
        wait_until(Duration::from_secs(30), || metrics.in_flight() > 0),
        "sleeper request never started"
    );
    // Wait for the dispatch to actually land in a worker subprocess —
    // the previous fixed 300 ms sleep raced the handoff under load.
    assert!(
        wait_until(Duration::from_secs(30), || !handle.busy_workers().is_empty()),
        "dispatch never reached a worker"
    );
    let pids = handle.worker_pids();
    assert!(!pids.is_empty(), "no workers to kill");
    for pid in &pids {
        let _ = std::process::Command::new("kill").args(["-9", &pid.to_string()]).status();
    }

    // The parked request concludes promptly with a structured failure —
    // not a hang, not a dead server.
    let (status, reply) = sleeper.join().unwrap();
    assert_eq!(status, 200, "{reply}");
    let doc = json::parse(&reply).unwrap();
    assert_eq!(outcome0(&doc), "panicked", "{doc}");
    healthz_ok(&handle);

    // And after the supervisor respawns, fresh work compiles. Wait for
    // every slot to hold a NEW pid: a killed-but-unreaped slot still
    // looks idle for a monitor tick, and a job dispatched to it would
    // be charged a crash of its own.
    assert!(
        wait_until(Duration::from_secs(15), || {
            let now = handle.worker_pids();
            now.len() == pids.len() && now.iter().all(|p| !pids.contains(p))
        }),
        "pool never repopulated: {:?}",
        handle.worker_pids()
    );
    let (status, doc) = post_compile(&handle, &body(TRIVIAL2, &[]));
    assert_eq!(status, 200);
    assert_eq!(outcome0(&doc), "compiled", "{doc}");
    let text = metrics_text(&handle);
    assert!(text.contains("rake_served_worker_crashes_total{cause=\"signal_9\"}"), "{text}");
    handle.shutdown();
}

#[test]
fn quarantine_survives_restart_and_expires_after_ttl() {
    let dir = std::env::temp_dir().join(format!("rake-served-quar-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let cache_dir = dir.join("cache");

    // Server 1: crash the key once (threshold 1) → quarantined forever.
    let first = start_isolated(|c| {
        c.crash_threshold = 1;
        c.quarantine_ttl = None;
        c.cache_dir = Some(cache_dir.clone());
    });
    let (status, doc) = post_compile(&first, &body(TRIVIAL, &[("chaos", "abort".into())]));
    assert_eq!(status, 200);
    assert_eq!(outcome0(&doc), "panicked", "{doc}");
    let (status, doc) = post_compile(&first, &body(TRIVIAL, &[]));
    assert_eq!(status, 200);
    assert_eq!(outcome0(&doc), "quarantined", "{doc}");
    first.shutdown();

    // Server 2, same cache dir: the poison pill was persisted with the
    // rest of the cache and still answers `quarantined` — no worker is
    // ever risked on it again.
    let second = start_isolated(|c| {
        c.cache_dir = Some(cache_dir.clone());
    });
    let (status, doc) = post_compile(&second, &body(TRIVIAL, &[]));
    assert_eq!(status, 200);
    assert_eq!(outcome0(&doc), "quarantined", "a restart must not forget poison pills: {doc}");
    assert_eq!(second.metrics().synth_fresh(), 0);
    second.shutdown();
    let _ = std::fs::remove_dir_all(&dir);

    // TTL: a short-lived quarantine lapses and the key may try again.
    // Generous enough that a loaded test machine still observes the
    // `quarantined` answer before the pill expires; expiry itself is
    // polled with a deadline rather than slept for (a fixed sleep both
    // wasted the common case and flaked the slow one).
    let ttl = start_isolated(|c| {
        c.crash_threshold = 1;
        c.quarantine_ttl = Some(Duration::from_secs(3));
    });
    let (status, doc) = post_compile(&ttl, &body(TRIVIAL2, &[("chaos", "abort".into())]));
    assert_eq!(status, 200);
    assert_eq!(outcome0(&doc), "panicked", "{doc}");
    let (status, doc) = post_compile(&ttl, &body(TRIVIAL2, &[]));
    assert_eq!(status, 200);
    assert_eq!(outcome0(&doc), "quarantined", "{doc}");
    assert!(
        wait_until(Duration::from_secs(30), || {
            std::thread::sleep(Duration::from_millis(200));
            let (status, doc) = post_compile(&ttl, &body(TRIVIAL2, &[]));
            status == 200 && outcome0(&doc) == "compiled"
        }),
        "an expired quarantine must retry"
    );
    ttl.shutdown();
}

#[test]
fn chaos_field_is_rejected_without_the_chaos_plane() {
    let mut config = ServerConfig { addr: "127.0.0.1:0".to_owned(), ..ServerConfig::default() };
    config.chaos = false;
    let handle = serve(config).expect("bind");
    let (status, doc) = post_compile(&handle, &body(TRIVIAL, &[("chaos", "abort".into())]));
    assert_eq!(status, 400, "{doc}");
    handle.shutdown();
}

#[test]
fn slow_loris_request_is_answered_408() {
    let mut config = ServerConfig { addr: "127.0.0.1:0".to_owned(), ..ServerConfig::default() };
    config.read_timeout = Some(Duration::from_millis(300));
    let handle = serve(config).expect("bind");

    // Start a request and then drip nothing: the headers never finish.
    let mut stream = connect(&handle);
    stream.write_all(b"POST /compile HTTP/1.1\r\nhost: t\r\n").unwrap();
    let mut reply = String::new();
    let t0 = Instant::now();
    stream.read_to_string(&mut reply).unwrap();
    assert!(
        reply.starts_with("HTTP/1.1 408"),
        "a stalled request must be answered 408, got: {reply:?}"
    );
    assert!(
        t0.elapsed() < Duration::from_secs(5),
        "the 408 must arrive at the read deadline, not the idle timeout"
    );

    // A well-formed request right after still works: the guard only
    // bites stalls, and idle keep-alive connections are untouched.
    let (status, doc) = post_compile(&handle, &body(TRIVIAL, &[]));
    assert_eq!(status, 200);
    assert_eq!(outcome0(&doc), "compiled", "{doc}");
    handle.shutdown();
}
