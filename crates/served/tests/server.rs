//! End-to-end tests of the compilation server over real sockets on an
//! ephemeral port: routing and limits, the warm path, cross-request
//! single-flight, disconnect cancellation, and graceful drain.

use std::net::TcpStream;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use driver::json::{self, Json};
use served::http::roundtrip;
use served::{ServerConfig, ServerHandle};

mod common;
use common::{start_with_retry, wait_until};

/// A tile that lifts and lowers in milliseconds.
const TRIVIAL: &str = "(add (load a u8 0 0) (load b u8 0 0))";

fn start(mut tweak: impl FnMut(&mut ServerConfig)) -> ServerHandle {
    start_with_retry(|| {
        let mut config =
            ServerConfig { addr: "127.0.0.1:0".to_owned(), ..ServerConfig::default() };
        tweak(&mut config);
        config
    })
}

fn connect(handle: &ServerHandle) -> TcpStream {
    let stream = TcpStream::connect(handle.addr()).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(120))).unwrap();
    stream
}

fn compile_body(exprs: &[&str], extra: &[(&'static str, Json)]) -> Vec<u8> {
    let mut obj = if exprs.len() == 1 {
        vec![("expr".to_owned(), Json::Str(exprs[0].to_owned()))]
    } else {
        vec![(
            "exprs".to_owned(),
            Json::Arr(exprs.iter().map(|s| Json::Str((*s).to_owned())).collect()),
        )]
    };
    for (k, v) in extra {
        obj.push(((*k).to_owned(), v.clone()));
    }
    Json::Obj(obj).to_string().into_bytes()
}

fn post_compile(stream: &mut TcpStream, body: &[u8]) -> (u16, Json) {
    let (status, reply) = roundtrip(stream, "POST", "/compile", Some(body)).expect("roundtrip");
    let text = String::from_utf8_lossy(&reply);
    let doc = json::parse(&text).unwrap_or(Json::Null);
    (status, doc)
}

fn outcome_of(doc: &Json, i: usize) -> &str {
    doc.get("results")
        .and_then(Json::as_arr)
        .and_then(|r| r.get(i))
        .and_then(|r| r.get("outcome"))
        .and_then(Json::as_str)
        .unwrap_or("?")
}

/// The heaviest seed workload, as (lanes, S-expression strings) — slow
/// enough cold that a test can act while it is still compiling.
fn heavy_workload() -> (usize, Vec<String>) {
    let w = workloads::all()
        .into_iter()
        .max_by_key(|w| w.exprs.len())
        .expect("seed workloads exist");
    let exprs = w.exprs.iter().take(4).map(halide_ir::sexpr::to_sexpr).collect();
    (w.lanes, exprs)
}

#[test]
fn routing_health_metrics_and_errors() {
    let handle = start(|_| {});
    let mut stream = connect(&handle);

    let (status, body) = roundtrip(&mut stream, "GET", "/healthz", None).unwrap();
    assert_eq!((status, body.as_slice()), (200, b"ok\n".as_slice()));

    let (status, body) = roundtrip(&mut stream, "GET", "/metrics", None).unwrap();
    assert_eq!(status, 200);
    let text = String::from_utf8(body).unwrap();
    assert!(text.contains("rake_served_requests_total{endpoint=\"healthz\"} 1"), "{text}");
    assert!(text.contains("# TYPE rake_served_compile_latency_seconds histogram"), "{text}");

    let (status, _) = roundtrip(&mut stream, "GET", "/nope", None).unwrap();
    assert_eq!(status, 404);
    let (status, _) = roundtrip(&mut stream, "GET", "/compile", None).unwrap();
    assert_eq!(status, 405);
    handle.shutdown();
}

#[test]
fn malformed_and_oversized_requests_are_4xx() {
    let handle = start(|c| c.max_body_bytes = 4 * 1024);
    // Bad JSON.
    let mut s = connect(&handle);
    let (status, doc) = post_compile(&mut s, b"{not json");
    assert_eq!(status, 400);
    assert!(doc.get("error").is_some());
    // Valid JSON, missing fields.
    let mut s = connect(&handle);
    let (status, _) = post_compile(&mut s, b"{}");
    assert_eq!(status, 400);
    // Valid JSON, bad S-expression.
    let mut s = connect(&handle);
    let (status, doc) = post_compile(&mut s, &compile_body(&["(add (oops"], &[]));
    assert_eq!(status, 400);
    let err = doc.get("error").and_then(Json::as_str).unwrap_or("");
    assert!(err.contains("expression 0"), "{err}");
    // Pathological S-expression nesting is rejected before parsing
    // (deep enough to trip MAX_SEXPR_DEPTH, small enough for the body cap).
    let deep = format!("{}x{}", "(".repeat(1000), ")".repeat(1000));
    let mut s = connect(&handle);
    let (status, _) = post_compile(&mut s, &compile_body(&[&deep], &[]));
    assert_eq!(status, 400);
    // Bad knobs.
    let mut s = connect(&handle);
    let (status, _) =
        post_compile(&mut s, &compile_body(&[TRIVIAL], &[("lanes", 4usize.into())]));
    assert_eq!(status, 400);
    let mut s = connect(&handle);
    let (status, _) =
        post_compile(&mut s, &compile_body(&[TRIVIAL], &[("tier_floor", "warp".into())]));
    assert_eq!(status, 400);
    // Oversized body → 413 before any parsing.
    let huge = format!("{{\"expr\":\"{}\"}}", "x".repeat(8 * 1024));
    let mut s = connect(&handle);
    let (status, reply) = roundtrip(&mut s, "POST", "/compile", Some(huge.as_bytes())).unwrap();
    assert_eq!(status, 413);
    assert!(String::from_utf8_lossy(&reply).contains("exceeds"), "{reply:?}");
    handle.shutdown();
}

#[test]
fn compile_roundtrip_then_warm_cache_hit() {
    let handle = start(|_| {});
    let mut stream = connect(&handle);

    let (status, doc) = post_compile(&mut stream, &compile_body(&[TRIVIAL], &[]));
    assert_eq!(status, 200);
    assert_eq!(outcome_of(&doc, 0), "compiled", "{doc}");
    let result = &doc.get("results").unwrap().as_arr().unwrap()[0];
    assert!(result.get("program").and_then(Json::as_str).is_some());
    assert!(result.get("cost").and_then(|c| c.get("cycles")).is_some());
    assert_eq!(result.get("cache_hit").and_then(Json::as_bool), Some(false));

    // Same expression again on the same connection: served warm.
    let (status, doc) = post_compile(&mut stream, &compile_body(&[TRIVIAL], &[]));
    assert_eq!(status, 200);
    let result = &doc.get("results").unwrap().as_arr().unwrap()[0];
    assert_eq!(result.get("cache_hit").and_then(Json::as_bool), Some(true));

    // Intra-request dedup: the same expr thrice is one unique job.
    let (status, doc) = post_compile(&mut stream, &compile_body(&[TRIVIAL; 3], &[]));
    assert_eq!(status, 200);
    for i in 0..3 {
        assert_eq!(outcome_of(&doc, i), "compiled");
    }
    assert_eq!(handle.metrics().synth_fresh(), 1, "exactly one fresh synthesis in total");
    handle.shutdown();
}

#[test]
fn concurrent_same_expr_is_one_synthesis() {
    let handle = start(|c| {
        c.permits = 4;
    });
    let compiled = Arc::new(AtomicUsize::new(0));
    let threads: Vec<_> = (0..4)
        .map(|_| {
            let addr = handle.addr();
            let compiled = Arc::clone(&compiled);
            std::thread::spawn(move || {
                let mut stream = TcpStream::connect(addr).unwrap();
                stream.set_read_timeout(Some(Duration::from_secs(120))).unwrap();
                let (status, doc) = {
                    let body = compile_body(&[TRIVIAL], &[]);
                    let (status, reply) =
                        roundtrip(&mut stream, "POST", "/compile", Some(&body)).unwrap();
                    (status, json::parse(&String::from_utf8_lossy(&reply)).unwrap())
                };
                assert_eq!(status, 200);
                if outcome_of(&doc, 0) == "compiled" {
                    compiled.fetch_add(1, Ordering::SeqCst);
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    assert_eq!(compiled.load(Ordering::SeqCst), 4, "every client gets a program");
    // The single-flight registry collapses the stampede to one synthesis.
    assert_eq!(handle.metrics().synth_fresh(), 1);

    // /metrics agrees.
    let mut stream = connect(&handle);
    let (_, body) = roundtrip(&mut stream, "GET", "/metrics", None).unwrap();
    let text = String::from_utf8(body).unwrap();
    assert!(text.contains("rake_served_synth_fresh_total 1"), "{text}");
    assert!(
        text.contains("rake_served_jobs_total{outcome=\"compiled\",tier=\"full\"} 4"),
        "{text}"
    );
    handle.shutdown();
}

#[test]
fn busy_server_answers_429_with_retry_after() {
    let handle = start(|c| {
        c.permits = 1;
        c.queue_slots = 0;
        c.default_timeout = Some(Duration::from_secs(20));
    });
    let (lanes, heavy) = heavy_workload();
    let refs: Vec<&str> = heavy.iter().map(String::as_str).collect();
    let body = compile_body(&refs, &[("lanes", lanes.into())]);
    let addr = handle.addr();
    let holder = std::thread::spawn(move || {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.set_read_timeout(Some(Duration::from_secs(120))).unwrap();
        let (status, _) = roundtrip(&mut stream, "POST", "/compile", Some(&body)).unwrap();
        status
    });
    // Wait until the heavy request holds the permit.
    let metrics = handle.metrics();
    assert!(
        wait_until(Duration::from_secs(30), || metrics.in_flight() == 1),
        "heavy request never started"
    );

    let mut stream = connect(&handle);
    let body = compile_body(&[TRIVIAL], &[]);
    let (status, reply) = roundtrip(&mut stream, "POST", "/compile", Some(&body)).unwrap();
    assert_eq!(status, 429, "{}", String::from_utf8_lossy(&reply));
    assert_eq!(holder.join().unwrap(), 200);
    handle.shutdown();
}

#[test]
fn client_disconnect_cancels_and_frees_the_worker() {
    let handle = start(|c| {
        c.permits = 1;
        c.default_timeout = Some(Duration::from_secs(60));
    });
    let (lanes, heavy) = heavy_workload();
    let refs: Vec<&str> = heavy.iter().map(String::as_str).collect();
    let body = compile_body(&refs, &[("lanes", lanes.into())]);

    // Send the heavy request, then vanish without reading the response.
    let metrics = handle.metrics();
    {
        use std::io::Write as _;
        let mut stream = connect(&handle);
        let head = format!(
            "POST /compile HTTP/1.1\r\nhost: t\r\ncontent-length: {}\r\n\r\n",
            body.len()
        );
        stream.write_all(head.as_bytes()).unwrap();
        stream.write_all(&body).unwrap();
        assert!(
            wait_until(Duration::from_secs(30), || metrics.in_flight() == 1),
            "heavy request never started"
        );
        // Dropping the stream closes the socket → RST/EOF at the server.
    }

    // The disconnect monitor must cancel the batch and free the permit
    // long before the 60-second synthesis budget.
    assert!(
        wait_until(Duration::from_secs(30), || metrics.in_flight() == 0),
        "cancellation did not free the worker"
    );

    // And the next client is served normally.
    let mut stream = connect(&handle);
    let (status, doc) = post_compile(&mut stream, &compile_body(&[TRIVIAL], &[]));
    assert_eq!(status, 200);
    assert_eq!(outcome_of(&doc, 0), "compiled");

    let (_, body) = roundtrip(&mut stream, "GET", "/metrics", None).unwrap();
    let text = String::from_utf8(body).unwrap();
    assert!(text.contains("rake_served_client_disconnects_total 1"), "{text}");
    handle.shutdown();
}

#[test]
fn graceful_drain_finishes_inflight_work() {
    let handle = start(|_| {});
    let addr = handle.addr();

    // A request in flight while we shut down must still be answered.
    let inflight = std::thread::spawn(move || {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.set_read_timeout(Some(Duration::from_secs(120))).unwrap();
        let body = compile_body(&[TRIVIAL], &[]);
        let (status, _) = roundtrip(&mut stream, "POST", "/compile", Some(&body)).unwrap();
        status
    });
    // Shut down only once the request has demonstrably reached the
    // compile path (in flight, or already through a fresh synthesis) —
    // a fixed pre-shutdown sleep raced the connection on slow machines.
    let metrics = handle.metrics();
    assert!(
        wait_until(Duration::from_secs(30), || {
            metrics.in_flight() > 0 || metrics.synth_fresh() > 0
        }),
        "request never reached the server"
    );
    handle.shutdown();
    assert_eq!(inflight.join().unwrap(), 200, "in-flight request must complete during drain");

    // After drain, the port no longer serves: either the connection is
    // refused or the request gets no response.
    let after = TcpStream::connect(addr).and_then(|mut s| {
        s.set_read_timeout(Some(Duration::from_millis(500)))?;
        roundtrip(&mut s, "GET", "/healthz", None)
    });
    assert!(after.is_err(), "drained server must not serve new requests");
}

#[test]
fn tier_floor_request_recompiles_degraded_cache_entries() {
    let handle = start(|_| {});

    // Plant a Direct-tier artifact in the server's shared cache, as a
    // degraded run (a loaded server shedding to cheaper tiers) would: a
    // local driver with the server's geometry and a Direct-only ladder
    // stores under exactly the key the server computes.
    let target = rake::Target { lanes: 128, vec_bytes: 128 };
    let seeder = driver::Driver::new(rake::Rake::new(target))
        .with_config(driver::DriverConfig {
            workers: 1,
            tiers: vec![driver::Tier::Direct],
            manage_thread_budget: false,
            ..driver::DriverConfig::default()
        })
        .with_shared_cache(handle.cache());
    let expr = halide_ir::sexpr::parse(TRIVIAL).unwrap();
    let report = seeder.compile_batch(std::slice::from_ref(&expr));
    assert_eq!(report.compiled(), 1);
    assert_eq!(report.results[0].tier, driver::Tier::Direct);

    // A floor-direct request is satisfied by the degraded entry: warm hit.
    let mut stream = connect(&handle);
    let (status, doc) =
        post_compile(&mut stream, &compile_body(&[TRIVIAL], &[("tier_floor", "direct".into())]));
    assert_eq!(status, 200);
    let result = &doc.get("results").unwrap().as_arr().unwrap()[0];
    assert_eq!(result.get("cache_hit").and_then(Json::as_bool), Some(true));
    assert_eq!(result.get("tier").and_then(Json::as_str), Some("direct"));

    // A floor-full request outranks it: fresh Full synthesis, and the
    // upgraded artifact overwrites the degraded entry.
    let (status, doc) =
        post_compile(&mut stream, &compile_body(&[TRIVIAL], &[("tier_floor", "full".into())]));
    assert_eq!(status, 200);
    let result = &doc.get("results").unwrap().as_arr().unwrap()[0];
    assert_eq!(
        result.get("cache_hit").and_then(Json::as_bool),
        Some(false),
        "a below-floor entry must not serve a stricter request: {doc}"
    );
    assert_eq!(result.get("tier").and_then(Json::as_str), Some("full"));
    assert_eq!(handle.metrics().synth_fresh(), 1);

    // The same strict request is now warm.
    let (status, doc) =
        post_compile(&mut stream, &compile_body(&[TRIVIAL], &[("tier_floor", "full".into())]));
    assert_eq!(status, 200);
    let result = &doc.get("results").unwrap().as_arr().unwrap()[0];
    assert_eq!(result.get("cache_hit").and_then(Json::as_bool), Some(true));
    assert_eq!(result.get("tier").and_then(Json::as_str), Some("full"));
    assert_eq!(handle.metrics().synth_fresh(), 1, "the upgrade must stick");

    let (_, body) = roundtrip(&mut stream, "GET", "/metrics", None).unwrap();
    let text = String::from_utf8(body).unwrap();
    assert!(text.contains("rake_served_cache_floor_misses_total 1"), "{text}");
    handle.shutdown();
}

#[test]
fn bounded_cache_evicts_and_reports_in_metrics() {
    let handle = start(|c| {
        c.cache_max_entries = Some(2);
    });
    let mut stream = connect(&handle);
    // Three distinct expressions (offsets survive canonicalization) into
    // two cache slots: at least one eviction.
    for dx in 0..3 {
        let expr = format!("(add (load a u8 {dx} 0) (load b u8 {dx} 0))");
        let (status, doc) = post_compile(&mut stream, &compile_body(&[&expr], &[]));
        assert_eq!(status, 200);
        assert_eq!(outcome_of(&doc, 0), "compiled", "{doc}");
    }
    assert!(handle.cache().len() <= 2, "entry cap violated: {}", handle.cache().len());

    let (_, body) = roundtrip(&mut stream, "GET", "/metrics", None).unwrap();
    let text = String::from_utf8(body).unwrap();
    let gauge = |name: &str| -> f64 {
        text.lines()
            .find_map(|l| l.strip_prefix(name))
            .and_then(|rest| rest.trim().parse().ok())
            .unwrap_or(-1.0)
    };
    assert!(gauge("rake_served_cache_entries ") <= 2.0, "{text}");
    assert!(gauge("rake_served_cache_evicted_total ") >= 1.0, "{text}");
    assert!(gauge("rake_served_cache_bytes ") > 0.0, "{text}");
    assert!(gauge("rake_served_verdict_entries ") >= 0.0, "{text}");
    handle.shutdown();
}

#[test]
fn warm_restart_resumes_from_persisted_state() {
    let dir = std::env::temp_dir().join(format!("rake-served-warm-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let cache_dir = dir.join("cache");
    let journal = dir.join("events.jsonl");

    let cold = start(|c| {
        c.cache_dir = Some(cache_dir.clone());
        c.log_path = Some(journal.clone());
    });
    let mut stream = connect(&cold);
    let (status, doc) = post_compile(&mut stream, &compile_body(&[TRIVIAL], &[]));
    assert_eq!(status, 200);
    assert_eq!(outcome_of(&doc, 0), "compiled");
    assert_eq!(cold.metrics().synth_fresh(), 1);
    drop(stream);
    cold.shutdown();
    assert!(journal.exists(), "journal must be written");

    // A restarted server loads the persisted cache and serves the same
    // expression without any fresh synthesis.
    let warm = start(|c| {
        c.cache_dir = Some(cache_dir.clone());
        c.log_path = Some(journal.clone());
    });
    let mut stream = connect(&warm);
    let (status, doc) = post_compile(&mut stream, &compile_body(&[TRIVIAL], &[]));
    assert_eq!(status, 200);
    assert_eq!(outcome_of(&doc, 0), "compiled");
    let result = &doc.get("results").unwrap().as_arr().unwrap()[0];
    assert_eq!(result.get("cache_hit").and_then(Json::as_bool), Some(true));
    assert_eq!(warm.metrics().synth_fresh(), 0, "warm restart must not re-synthesize");

    let (_, body) = roundtrip(&mut stream, "GET", "/metrics", None).unwrap();
    let text = String::from_utf8(body).unwrap();
    assert!(text.contains("rake_served_cache_loaded_total 1"), "{text}");
    warm.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
