//! Shared helpers for the served integration tests: deadline polling
//! instead of fixed sleeps, and bind-with-retry instead of trusting a
//! single ephemeral-port grab.

use std::time::{Duration, Instant};

use served::{serve, ServerConfig, ServerHandle};

/// Poll `cond` every few milliseconds until it holds or `deadline`
/// elapses. Returns whether the condition was observed — callers assert
/// with their own message so failures say *what* never happened.
pub fn wait_until(deadline: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let t0 = Instant::now();
    loop {
        if cond() {
            return true;
        }
        if t0.elapsed() >= deadline {
            return false;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// Start a server, retrying the bind a few times. `127.0.0.1:0` asks the
/// kernel for a fresh ephemeral port, but a loaded CI machine can still
/// fail the grab transiently (port-range exhaustion, a TIME_WAIT
/// collision when SO_REUSEADDR is in play); one retry loop here beats N
/// flaky tests.
pub fn start_with_retry(mut make_config: impl FnMut() -> ServerConfig) -> ServerHandle {
    let mut last_err = None;
    for attempt in 0..5 {
        match serve(make_config()) {
            Ok(handle) => return handle,
            Err(err) => {
                eprintln!("bind attempt {attempt} failed: {err}");
                last_err = Some(err);
                std::thread::sleep(Duration::from_millis(20 << attempt));
            }
        }
    }
    panic!("could not bind an ephemeral port after 5 attempts: {last_err:?}");
}
