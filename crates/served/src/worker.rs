//! The isolated synthesis worker: the hidden `worker` mode of the
//! `rake-served` binary.
//!
//! Under `--isolate`, compilation jobs never run inside the server
//! process. The supervisor ([`crate::supervisor`]) pre-forks a pool of
//! subprocesses — the server's own binary re-executed with the single
//! argument `worker` — and speaks a length-prefixed JSON protocol with
//! each over its stdin/stdout pipes. A worker that aborts, segfaults, is
//! OOM-killed, overflows its stack, or is `kill -9`'d takes down only
//! the jobs it was running; the server's warm cache, admission gate and
//! every other connection survive untouched.
//!
//! ## Wire protocol
//!
//! Each frame is a decimal byte-length line followed by exactly that
//! many payload bytes (`"17\n{\"op\":\"ping\",...}"`). Jobs flow parent →
//! worker on stdin; replies flow worker → parent on stdout, tagged with
//! the job's `id`. stderr is free-form and ends up in the supervisor's
//! crash forensics (last lines only).
//!
//! Job (`op:"compile"`): `id`, `expr` (Halide S-expression), `lanes`,
//! `tier` (ladder name), optional `deadline_ms` (budget from now),
//! optional `fault` (`"abort"`, `"oom"`, `"sleep:<ms>"` — the chaos
//! plane, honored before/around the real compile). `op:"ping"` is the
//! supervisor's heartbeat; the reply is `status:"pong"`.
//!
//! Reply statuses: `compiled` (with `uber`/`hvx` S-expressions and a
//! stats block), `error` (a [`rake::CompileError`] by its cache name),
//! `panicked` (a caught unwind, with the payload message), `pong`.
//!
//! The worker is deliberately stateful: it keeps one [`Rake`] per
//! (lanes, tier) so its SMT-proof and verdict memo tables warm up across
//! jobs, exactly like the in-process path. What it does *not* share is
//! the synthesis cache — the parent owns that; workers only ever see
//! cache misses.

use std::collections::HashMap;
use std::io::{self, BufRead, Write};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

use driver::json::{self, Json, ParseLimits};
use driver::Tier;
use rake::{Rake, Target};
use synth::LoweringOptions;

/// Upper bound on one frame's payload. A compile job is an S-expression
/// plus knobs; a reply is a program plus stats. Nothing legitimate comes
/// close to this, and a corrupted length prefix must not trigger an
/// unbounded allocation.
pub const MAX_FRAME_BYTES: usize = 4 * 1024 * 1024;

/// Write one length-prefixed frame.
///
/// # Errors
///
/// Propagates pipe failures (the peer is gone).
pub fn write_frame(w: &mut impl Write, payload: &str) -> io::Result<()> {
    // One write: a frame torn between length and payload by a crash is
    // detected by the reader, but no point inviting it.
    let mut wire = format!("{}\n", payload.len()).into_bytes();
    wire.extend_from_slice(payload.as_bytes());
    w.write_all(&wire)?;
    w.flush()
}

/// Read one length-prefixed frame. `Ok(None)` is clean EOF (the peer
/// closed the pipe — for a worker, the signal to exit).
///
/// # Errors
///
/// A malformed length line, an over-limit length, or a payload cut short
/// mid-frame is `InvalidData`; socket/pipe failures pass through.
pub fn read_frame(r: &mut impl BufRead) -> io::Result<Option<Vec<u8>>> {
    let mut line = String::new();
    if r.read_line(&mut line)? == 0 {
        return Ok(None);
    }
    let len: usize = line
        .trim()
        .parse()
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, format!("bad frame length {line:?}")))?;
    if len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {MAX_FRAME_BYTES}-byte cap"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// Run the worker loop over stdin/stdout until the parent closes the
/// pipe, then exit. Never returns.
pub fn worker_main() -> ! {
    let stdin = io::stdin();
    let stdout = io::stdout();
    let mut reader = io::BufReader::new(stdin.lock());
    let mut writer = io::BufWriter::new(stdout.lock());
    // One selector per (lanes, tier): repeated jobs on the same geometry
    // reuse warmed memo tables, mirroring the in-process hot path.
    let mut rakes: HashMap<(usize, Tier), Rake> = HashMap::new();

    loop {
        let payload = match read_frame(&mut reader) {
            Ok(Some(p)) => p,
            // Parent closed our stdin: clean retirement.
            Ok(None) => std::process::exit(0),
            Err(e) => {
                eprintln!("rake-served worker: bad frame: {e}");
                std::process::exit(2);
            }
        };
        let reply = match std::str::from_utf8(&payload)
            .ok()
            .and_then(|text| parse_job(text).ok())
        {
            Some(job) => handle_job(&job, &mut rakes),
            None => Json::obj([
                ("id", 0u64.into()),
                ("status", "error".into()),
                ("error", "malformed job frame".into()),
            ]),
        };
        if write_frame(&mut writer, &reply.to_string()).is_err() {
            // Parent gone mid-reply; nothing left to serve.
            std::process::exit(0);
        }
    }
}

/// A decoded job frame.
struct Job {
    id: u64,
    op: String,
    expr: String,
    lanes: usize,
    tier: Tier,
    deadline: Option<Duration>,
    fault: Option<String>,
    /// Parent span context: (trace id, parent span id, parent's
    /// monotonic clock in µs at dispatch). Present when the server
    /// traces; the worker's spans join that trace.
    trace: Option<(u64, u64, u64)>,
}

fn parse_job(text: &str) -> Result<Job, ()> {
    let limits = ParseLimits { max_depth: 64, max_bytes: MAX_FRAME_BYTES };
    let doc = json::parse_with_limits(text, limits).map_err(|_| ())?;
    let id = doc.get("id").and_then(Json::as_i64).unwrap_or(0).max(0) as u64;
    let op = doc.get("op").and_then(Json::as_str).unwrap_or("compile").to_owned();
    let trace = doc
        .get("trace")
        .and_then(Json::as_str)
        .and_then(trace::parse_id)
        .zip(doc.get("parent_span").and_then(Json::as_str).and_then(trace::parse_id))
        .map(|(t, p)| {
            (t, p, doc.get("t_now_us").and_then(Json::as_i64).unwrap_or(0).max(0) as u64)
        });
    Ok(Job {
        id,
        op,
        expr: doc.get("expr").and_then(Json::as_str).unwrap_or("").to_owned(),
        lanes: doc.get("lanes").and_then(Json::as_i64).unwrap_or(128).clamp(8, 1024) as usize,
        tier: doc
            .get("tier")
            .and_then(Json::as_str)
            .and_then(Tier::from_name)
            .unwrap_or(Tier::Full),
        deadline: doc
            .get("deadline_ms")
            .and_then(Json::as_i64)
            .filter(|&ms| ms > 0)
            .map(|ms| Duration::from_millis(ms as u64)),
        fault: doc.get("fault").and_then(Json::as_str).map(str::to_owned),
        trace,
    })
}

/// Cap on spans shipped back per reply, keeping the frame well under
/// [`MAX_FRAME_BYTES`] even for pathological synthesis runs.
const MAX_REPLY_SPANS: usize = 8192;

fn handle_job(job: &Job, rakes: &mut HashMap<(usize, Tier), Rake>) -> Json {
    if job.op == "ping" {
        return Json::obj([("id", job.id.into()), ("status", "pong".into())]);
    }
    let Some((trace_id, parent_span, t_now_us)) = job.trace else {
        return compile_reply(job, rakes);
    };
    // The parent traces this job: align our monotonic clock to the
    // parent's (offset applied as records publish), parent our spans
    // under the dispatching span, and ship everything recorded back in
    // the reply so the server can stitch one tree. A worker killed
    // mid-job simply never ships — the server's side of the trace stays
    // well-formed without ours.
    trace::enable();
    trace::set_clock_offset_us(t_now_us as i64 - trace::now_us() as i64);
    let mut reply = {
        let _adopted = trace::adopt(trace::TraceContext { trace_id, span_id: parent_span });
        let mut sp = trace::span("worker.compile", "worker");
        if sp.is_active() {
            sp.arg("lanes", job.lanes);
            sp.arg("tier", job.tier.name());
        }
        let reply = compile_reply(job, rakes);
        if sp.is_active() {
            sp.arg("status", reply.get("status").and_then(Json::as_str).unwrap_or("?"));
        }
        reply
    };
    let mut records = trace::drain_trace(trace_id);
    records.truncate(MAX_REPLY_SPANS);
    if let Json::Obj(fields) = &mut reply {
        fields.push(("spans".to_owned(), spans_json(&records)));
    }
    reply
}

/// Serialize completed spans for the reply frame (IDs in hex, times
/// already on the parent's clock).
fn spans_json(records: &[trace::SpanRecord]) -> Json {
    Json::Arr(
        records
            .iter()
            .map(|r| {
                let mut obj = vec![
                    ("seq".to_owned(), r.seq.into()),
                    ("trace".to_owned(), Json::Str(trace::fmt_id(r.trace_id))),
                    ("span".to_owned(), Json::Str(trace::fmt_id(r.span_id))),
                    ("parent".to_owned(), Json::Str(trace::fmt_id(r.parent_id))),
                    ("name".to_owned(), r.name.into()),
                    ("cat".to_owned(), r.cat.into()),
                    ("start_us".to_owned(), r.start_us.into()),
                    ("dur_us".to_owned(), r.dur_us.into()),
                    ("pid".to_owned(), u64::from(r.pid).into()),
                ];
                if !r.args.is_empty() {
                    let args = r
                        .args
                        .iter()
                        .map(|(k, v)| {
                            let value = match v {
                                trace::ArgValue::U64(n) => (*n).into(),
                                trace::ArgValue::I64(n) => Json::Num(*n as f64),
                                trace::ArgValue::Str(s) => s.as_str().into(),
                                trace::ArgValue::Bool(b) => (*b).into(),
                            };
                            ((*k).to_owned(), value)
                        })
                        .collect();
                    obj.push(("args".to_owned(), Json::Obj(args)));
                }
                Json::Obj(obj)
            })
            .collect(),
    )
}

fn compile_reply(job: &Job, rakes: &mut HashMap<(usize, Tier), Rake>) -> Json {
    // The chaos plane: lethal faults die *here*, inside the sacrificial
    // process, which is the whole point of isolation.
    match job.fault.as_deref() {
        Some("abort") => {
            eprintln!("rake-served worker: chaos abort injected");
            std::process::abort();
        }
        Some("oom") => {
            eprintln!("rake-served worker: chaos oom injected");
            oom_hog();
        }
        Some(f) => {
            if let Some(ms) = f.strip_prefix("sleep:").and_then(|ms| ms.parse::<u64>().ok()) {
                std::thread::sleep(Duration::from_millis(ms));
            }
        }
        None => {}
    }

    let expr = match halide_ir::sexpr::parse(job.expr.trim()) {
        Ok(e) => e,
        Err(e) => {
            return Json::obj([
                ("id", job.id.into()),
                ("status", "error".into()),
                ("error", "lift_failed".into()),
                ("detail", format!("unparseable expr: {e}").into()),
            ]);
        }
    };

    let base = rakes.entry((job.lanes, job.tier)).or_insert_with(|| {
        let vec_bytes = 128.min(job.lanes.max(8));
        let rake = Rake::new(Target { lanes: job.lanes, vec_bytes });
        match job.tier {
            Tier::Full | Tier::Baseline => rake,
            tier => tier.apply(&rake),
        }
    });
    let deadline = job.deadline.map(|d| Instant::now() + d);
    let opts = LoweringOptions { deadline, cancel: None, ..base.options() };
    let selector = base.clone().with_options(opts);

    match catch_unwind(AssertUnwindSafe(|| selector.compile(&expr))) {
        Ok(Ok(c)) => Json::obj([
            ("id", job.id.into()),
            ("status", "compiled".into()),
            ("uber", uber_ir::sexpr::to_sexpr(&c.uber).into()),
            ("hvx", hvx::sexpr::to_sexpr(&c.hvx).into()),
            (
                "stats",
                Json::obj([
                    ("lifting_queries", c.stats.lifting_queries.into()),
                    ("sketching_queries", c.stats.sketching_queries.into()),
                    ("swizzling_queries", c.stats.swizzling_queries.into()),
                    ("smt_queries", c.stats.smt_queries.into()),
                    ("verdict_cache_hits", c.stats.verdict_cache_hits.into()),
                    ("env_cache_hits", c.stats.env_cache_hits.into()),
                    ("deadline_exceeded", c.stats.deadline_exceeded.into()),
                ]),
            ),
        ]),
        Ok(Err(e)) => Json::obj([
            ("id", job.id.into()),
            ("status", "error".into()),
            ("error", driver::cache::error_name(&e).into()),
        ]),
        Err(payload) => Json::obj([
            ("id", job.id.into()),
            ("status", "panicked".into()),
            ("detail", driver::panic_message(payload.as_ref()).into()),
        ]),
    }
}

/// Allocate and touch heap until something kills the process: the
/// supervisor's RSS limit in an isolated run, the kernel otherwise.
/// Bounded at 8 GiB so a limitless misconfiguration still terminates.
fn oom_hog() -> ! {
    let mut hog: Vec<Vec<u8>> = Vec::new();
    for _ in 0..(8 * 1024) {
        let mut chunk = vec![0u8; 1024 * 1024];
        for page in chunk.chunks_mut(4096) {
            page[0] = 1;
        }
        hog.push(chunk);
        std::thread::sleep(Duration::from_micros(200));
    }
    std::process::abort();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_roundtrip() {
        let mut wire = Vec::new();
        write_frame(&mut wire, "hello").unwrap();
        write_frame(&mut wire, "").unwrap();
        write_frame(&mut wire, "{\"id\":7}").unwrap();
        let mut r = io::BufReader::new(wire.as_slice());
        assert_eq!(read_frame(&mut r).unwrap(), Some(b"hello".to_vec()));
        assert_eq!(read_frame(&mut r).unwrap(), Some(Vec::new()));
        assert_eq!(read_frame(&mut r).unwrap(), Some(b"{\"id\":7}".to_vec()));
        assert_eq!(read_frame(&mut r).unwrap(), None, "clean EOF");
    }

    #[test]
    fn frames_reject_garbage_and_giant_lengths() {
        let mut r = io::BufReader::new(&b"not-a-number\nxx"[..]);
        assert!(read_frame(&mut r).is_err());
        let huge = format!("{}\n", MAX_FRAME_BYTES + 1);
        let mut r = io::BufReader::new(huge.as_bytes());
        assert!(read_frame(&mut r).is_err());
        // Torn payload: length promises more bytes than arrive.
        let mut r = io::BufReader::new(&b"10\nshort"[..]);
        assert!(read_frame(&mut r).is_err());
    }

    #[test]
    fn jobs_compile_error_and_pong_in_process() {
        let mut rakes = HashMap::new();
        let ping = parse_job(r#"{"op":"ping","id":3}"#).unwrap();
        let reply = handle_job(&ping, &mut rakes);
        assert_eq!(reply.get("status").and_then(Json::as_str), Some("pong"));
        assert_eq!(reply.get("id").and_then(Json::as_i64), Some(3));

        let job = parse_job(
            r#"{"id":4,"expr":"(add (load a u8 0 0) (load b u8 0 0))","lanes":8,"tier":"direct"}"#,
        )
        .unwrap();
        let reply = handle_job(&job, &mut rakes);
        assert_eq!(reply.get("status").and_then(Json::as_str), Some("compiled"), "{reply}");
        assert!(reply.get("hvx").and_then(Json::as_str).is_some());
        assert!(reply.get("uber").and_then(Json::as_str).is_some());

        let bad = parse_job(r#"{"id":5,"expr":"(((","lanes":8}"#).unwrap();
        let reply = handle_job(&bad, &mut rakes);
        assert_eq!(reply.get("status").and_then(Json::as_str), Some("error"), "{reply}");
        assert_eq!(reply.get("id").and_then(Json::as_i64), Some(5));
    }
}
