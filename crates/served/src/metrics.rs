//! The server's metrics registry, rendered in Prometheus text exposition
//! format on `GET /metrics`.
//!
//! Two feeds land here: the HTTP layer records request/response/latency
//! facts directly, and every per-request [`driver::Driver`] is built with
//! an event sink ([`Metrics::sink`]) so job outcomes, tiers and
//! fresh-vs-cached synthesis counts stream in without re-parsing the
//! JSONL journal. Everything is atomics or a short-held mutex — the
//! registry is shared by every connection thread.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use driver::event::DriverEvent;
use driver::EventSink;

/// Latency histogram bucket upper bounds, in milliseconds. The `+Inf`
/// bucket is implicit.
const BUCKETS_MS: [u64; 13] = [1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000];

/// Endpoints broken out in `requests_total`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Endpoint {
    /// `POST /compile`
    Compile,
    /// `GET /metrics`
    Metrics,
    /// `GET /healthz`
    Healthz,
    /// Anything else.
    Other,
}

impl Endpoint {
    fn name(self) -> &'static str {
        match self {
            Endpoint::Compile => "compile",
            Endpoint::Metrics => "metrics",
            Endpoint::Healthz => "healthz",
            Endpoint::Other => "other",
        }
    }

    const ALL: [Endpoint; 4] =
        [Endpoint::Compile, Endpoint::Metrics, Endpoint::Healthz, Endpoint::Other];
}

/// A fixed-bucket latency histogram (Prometheus `histogram` type).
#[derive(Debug, Default)]
struct Histogram {
    /// Cumulative-from-scratch per-bucket counts (`le` semantics applied
    /// at render time); one extra slot for `+Inf`.
    counts: [AtomicU64; BUCKETS_MS.len() + 1],
    sum_micros: AtomicU64,
    count: AtomicU64,
}

impl Histogram {
    fn observe(&self, d: Duration) {
        let ms = d.as_millis() as u64;
        let idx = BUCKETS_MS.iter().position(|&b| ms <= b).unwrap_or(BUCKETS_MS.len());
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.sum_micros.fetch_add(d.as_micros() as u64, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    fn render(&self, out: &mut String, name: &str) {
        let mut cumulative = 0u64;
        for (i, &bound) in BUCKETS_MS.iter().enumerate() {
            cumulative += self.counts[i].load(Ordering::Relaxed);
            out.push_str(&format!(
                "{name}_bucket{{le=\"{}\"}} {cumulative}\n",
                bound as f64 / 1e3
            ));
        }
        cumulative += self.counts[BUCKETS_MS.len()].load(Ordering::Relaxed);
        out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {cumulative}\n"));
        out.push_str(&format!(
            "{name}_sum {}\n",
            self.sum_micros.load(Ordering::Relaxed) as f64 / 1e6
        ));
        out.push_str(&format!("{name}_count {}\n", self.count.load(Ordering::Relaxed)));
    }
}

/// Cache-layer numbers supplied by the server at render time (the cache
/// keeps its own counters; the registry does not duplicate them).
#[derive(Debug, Clone, Copy, Default)]
pub struct CacheSnapshot {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Misses caused by a cached entry below the request's tier floor.
    pub floor_misses: u64,
    /// Entries currently held.
    pub entries: usize,
    /// Serialized bytes of the in-memory entries (what the byte cap
    /// bounds).
    pub mem_bytes: usize,
    /// Entries loaded from disk at startup (warm-start size).
    pub loaded: u64,
    /// Entries evicted by the entry/byte caps.
    pub evicted: u64,
    /// Entry lines appended to the segment log.
    pub appended: u64,
    /// Log-into-snapshot compactions performed.
    pub compactions: u64,
    /// On-disk snapshot file size in bytes.
    pub snapshot_bytes: u64,
    /// On-disk segment-log size in bytes.
    pub log_bytes: u64,
    /// Timeout verdicts currently remembered.
    pub verdict_entries: usize,
    /// Timeout verdicts evicted by the cap.
    pub verdict_evictions: u64,
    /// Event-journal file size in bytes.
    pub journal_bytes: u64,
    /// Journal rotations performed since startup.
    pub journal_rotations: u64,
    /// Keys currently quarantined as poison pills (crashed workers past
    /// the threshold).
    pub quarantined: usize,
}

/// Worker-pool numbers supplied at render time when the server runs
/// isolated (`--isolate`); the pool keeps its own counters
/// ([`crate::supervisor::PoolCounters`]) and this is their snapshot.
#[derive(Debug, Clone, Default)]
pub struct WorkerSnapshot {
    /// Workers (re)started after the initial pre-fork.
    pub restarts: u64,
    /// Live worker processes right now.
    pub alive: u64,
    /// Highest resident-set size observed on any worker, in bytes.
    pub rss_high_water: u64,
    /// Crash counts by cause label (`signal_9`, `exit_2`, `rss`, ...).
    pub crashes: Vec<(String, u64)>,
}

/// The registry. One per server process, shared by all connections.
#[derive(Debug, Default)]
pub struct Metrics {
    requests: [AtomicU64; 4],
    responses: Mutex<BTreeMap<u16, u64>>,
    in_flight: AtomicU64,
    queue_depth: AtomicU64,
    rejected_busy: AtomicU64,
    warm_path: AtomicU64,
    timeout_verdicts: AtomicU64,
    exprs: AtomicU64,
    jobs: Mutex<BTreeMap<(&'static str, &'static str), u64>>,
    synth_fresh: AtomicU64,
    cache_served: AtomicU64,
    validation_mismatches: AtomicU64,
    disconnects: AtomicU64,
    quarantine_added: AtomicU64,
    latency: Histogram,
}

impl Metrics {
    /// A fresh registry.
    pub fn new() -> Arc<Metrics> {
        Arc::default()
    }

    /// Count a request hitting `endpoint`.
    pub fn request(&self, endpoint: Endpoint) {
        let idx = Endpoint::ALL.iter().position(|e| *e == endpoint).unwrap_or(3);
        self.requests[idx].fetch_add(1, Ordering::Relaxed);
    }

    /// Count a response by status code.
    pub fn response(&self, status: u16) {
        *self.responses.lock().unwrap().entry(status).or_insert(0) += 1;
    }

    /// Enter/exit the in-flight compile gauge (RAII-free: callers pair
    /// them around the compile path).
    pub fn compile_started(&self) {
        self.in_flight.fetch_add(1, Ordering::Relaxed);
    }

    /// See [`Metrics::compile_started`].
    pub fn compile_finished(&self, latency: Duration) {
        self.in_flight.fetch_sub(1, Ordering::Relaxed);
        self.latency.observe(latency);
    }

    /// Adjust the admission-queue depth gauge by `delta`.
    pub fn queue_changed(&self, delta: i64) {
        if delta >= 0 {
            self.queue_depth.fetch_add(delta as u64, Ordering::Relaxed);
        } else {
            self.queue_depth.fetch_sub((-delta) as u64, Ordering::Relaxed);
        }
    }

    /// Count a 429 admission rejection.
    pub fn rejected_busy(&self) {
        self.rejected_busy.fetch_add(1, Ordering::Relaxed);
    }

    /// Count a compile served on the warm fast path (every key already
    /// cached; no permit taken).
    pub fn warm_path(&self) {
        self.warm_path.fetch_add(1, Ordering::Relaxed);
    }

    /// Count expressions answered from the timeout-verdict cache instead
    /// of re-burning a synthesis budget that already expired once.
    pub fn timeout_verdicts_served(&self, n: usize) {
        self.timeout_verdicts.fetch_add(n as u64, Ordering::Relaxed);
    }

    /// Count expressions submitted for compilation.
    pub fn exprs_submitted(&self, n: usize) {
        self.exprs.fetch_add(n as u64, Ordering::Relaxed);
    }

    /// Count a client that vanished mid-compile (its cancel flag fired)
    /// or mid-response (the write hit EPIPE / a reset).
    pub fn client_disconnected(&self) {
        self.disconnects.fetch_add(1, Ordering::Relaxed);
    }

    /// Count a key newly quarantined as a poison pill.
    pub fn key_quarantined(&self) {
        self.quarantine_added.fetch_add(1, Ordering::Relaxed);
    }

    /// Current in-flight gauge (used by tests and the drain path).
    pub fn in_flight(&self) -> u64 {
        self.in_flight.load(Ordering::Relaxed)
    }

    /// Total fresh (non-cache, non-replay) synthesis runs observed.
    pub fn synth_fresh(&self) -> u64 {
        self.synth_fresh.load(Ordering::Relaxed)
    }

    /// An [`EventSink`] feeding this registry; hand it to every
    /// per-request driver via [`driver::Driver::with_event_sink`].
    pub fn sink(self: &Arc<Metrics>) -> EventSink {
        let metrics = Arc::clone(self);
        Arc::new(move |event: &DriverEvent| {
            match event {
                DriverEvent::JobFinished(r) => {
                    let key = (r.outcome.name(), r.tier.name());
                    *metrics.jobs.lock().unwrap().entry(key).or_insert(0) += 1;
                    if r.cache_hit || r.replayed {
                        metrics.cache_served.fetch_add(1, Ordering::Relaxed);
                    } else {
                        metrics.synth_fresh.fetch_add(1, Ordering::Relaxed);
                    }
                }
                DriverEvent::JobValidated { mismatches, .. } => {
                    metrics
                        .validation_mismatches
                        .fetch_add(*mismatches as u64, Ordering::Relaxed);
                }
                _ => {}
            }
        })
    }

    /// Render the whole registry in Prometheus text format. `workers` is
    /// `Some` only when the server runs with process isolation; its
    /// families are omitted otherwise.
    pub fn render(
        &self,
        started: Instant,
        cache: CacheSnapshot,
        workers: Option<&WorkerSnapshot>,
    ) -> String {
        let mut out = String::with_capacity(4096);
        let out = &mut out;

        out.push_str(
            "# HELP rake_served_uptime_seconds Seconds since the server started.\n\
             # TYPE rake_served_uptime_seconds gauge\n",
        );
        out.push_str(&format!(
            "rake_served_uptime_seconds {}\n",
            started.elapsed().as_secs_f64()
        ));

        out.push_str(
            "# HELP rake_served_requests_total Requests received, by endpoint.\n\
             # TYPE rake_served_requests_total counter\n",
        );
        for (i, e) in Endpoint::ALL.iter().enumerate() {
            out.push_str(&format!(
                "rake_served_requests_total{{endpoint=\"{}\"}} {}\n",
                e.name(),
                self.requests[i].load(Ordering::Relaxed)
            ));
        }

        out.push_str(
            "# HELP rake_served_responses_total Responses sent, by status code.\n\
             # TYPE rake_served_responses_total counter\n",
        );
        for (code, n) in self.responses.lock().unwrap().iter() {
            out.push_str(&format!("rake_served_responses_total{{code=\"{code}\"}} {n}\n"));
        }

        out.push_str(
            "# HELP rake_served_inflight_requests Compile requests currently executing.\n\
             # TYPE rake_served_inflight_requests gauge\n",
        );
        out.push_str(&format!(
            "rake_served_inflight_requests {}\n",
            self.in_flight.load(Ordering::Relaxed)
        ));

        out.push_str(
            "# HELP rake_served_queue_depth Requests waiting for a compile permit.\n\
             # TYPE rake_served_queue_depth gauge\n",
        );
        out.push_str(&format!(
            "rake_served_queue_depth {}\n",
            self.queue_depth.load(Ordering::Relaxed)
        ));

        out.push_str(
            "# HELP rake_served_rejected_busy_total Compile requests rejected with 429.\n\
             # TYPE rake_served_rejected_busy_total counter\n",
        );
        out.push_str(&format!(
            "rake_served_rejected_busy_total {}\n",
            self.rejected_busy.load(Ordering::Relaxed)
        ));

        out.push_str(
            "# HELP rake_served_warm_path_total Compile requests served entirely from cache, \
             bypassing admission control.\n\
             # TYPE rake_served_warm_path_total counter\n",
        );
        out.push_str(&format!(
            "rake_served_warm_path_total {}\n",
            self.warm_path.load(Ordering::Relaxed)
        ));

        out.push_str(
            "# HELP rake_served_timeout_verdicts_total Expressions answered from the \
             timeout-verdict cache (a recent identical request already timed out).\n\
             # TYPE rake_served_timeout_verdicts_total counter\n",
        );
        out.push_str(&format!(
            "rake_served_timeout_verdicts_total {}\n",
            self.timeout_verdicts.load(Ordering::Relaxed)
        ));

        out.push_str(
            "# HELP rake_served_exprs_total Expressions submitted for compilation.\n\
             # TYPE rake_served_exprs_total counter\n",
        );
        out.push_str(&format!("rake_served_exprs_total {}\n", self.exprs.load(Ordering::Relaxed)));

        out.push_str(
            "# HELP rake_served_jobs_total Per-expression outcomes, by outcome and tier.\n\
             # TYPE rake_served_jobs_total counter\n",
        );
        for ((outcome, tier), n) in self.jobs.lock().unwrap().iter() {
            out.push_str(&format!(
                "rake_served_jobs_total{{outcome=\"{outcome}\",tier=\"{tier}\"}} {n}\n"
            ));
        }

        out.push_str(
            "# HELP rake_served_synth_fresh_total Jobs that ran a fresh synthesis (not cache, \
             not journal replay).\n\
             # TYPE rake_served_synth_fresh_total counter\n",
        );
        out.push_str(&format!(
            "rake_served_synth_fresh_total {}\n",
            self.synth_fresh.load(Ordering::Relaxed)
        ));

        out.push_str(
            "# HELP rake_served_cache_served_total Jobs served from cache, dedup or journal.\n\
             # TYPE rake_served_cache_served_total counter\n",
        );
        out.push_str(&format!(
            "rake_served_cache_served_total {}\n",
            self.cache_served.load(Ordering::Relaxed)
        ));

        out.push_str(
            "# HELP rake_served_validation_mismatches_total Differential-oracle mismatches \
             (non-zero means a miscompile escaped).\n\
             # TYPE rake_served_validation_mismatches_total counter\n",
        );
        out.push_str(&format!(
            "rake_served_validation_mismatches_total {}\n",
            self.validation_mismatches.load(Ordering::Relaxed)
        ));

        out.push_str(
            "# HELP rake_served_client_disconnects_total Clients that vanished mid-compile; \
             their jobs were cooperatively cancelled.\n\
             # TYPE rake_served_client_disconnects_total counter\n",
        );
        out.push_str(&format!(
            "rake_served_client_disconnects_total {}\n",
            self.disconnects.load(Ordering::Relaxed)
        ));

        out.push_str(
            "# HELP rake_served_cache_hits_total Synthesis-cache lookup hits.\n\
             # TYPE rake_served_cache_hits_total counter\n",
        );
        out.push_str(&format!("rake_served_cache_hits_total {}\n", cache.hits));
        out.push_str(
            "# HELP rake_served_cache_misses_total Synthesis-cache lookup misses.\n\
             # TYPE rake_served_cache_misses_total counter\n",
        );
        out.push_str(&format!("rake_served_cache_misses_total {}\n", cache.misses));
        out.push_str(
            "# HELP rake_served_cache_entries Synthesis-cache entries currently held.\n\
             # TYPE rake_served_cache_entries gauge\n",
        );
        out.push_str(&format!("rake_served_cache_entries {}\n", cache.entries));
        out.push_str(
            "# HELP rake_served_cache_loaded_total Entries loaded from disk at startup.\n\
             # TYPE rake_served_cache_loaded_total counter\n",
        );
        out.push_str(&format!("rake_served_cache_loaded_total {}\n", cache.loaded));
        out.push_str(
            "# HELP rake_served_cache_floor_misses_total Lookups missed because the cached \
             entry sat below the request's tier floor.\n\
             # TYPE rake_served_cache_floor_misses_total counter\n",
        );
        out.push_str(&format!("rake_served_cache_floor_misses_total {}\n", cache.floor_misses));
        out.push_str(
            "# HELP rake_served_cache_bytes Serialized bytes of in-memory cache entries.\n\
             # TYPE rake_served_cache_bytes gauge\n",
        );
        out.push_str(&format!("rake_served_cache_bytes {}\n", cache.mem_bytes));
        out.push_str(
            "# HELP rake_served_cache_evicted_total Entries evicted by the entry/byte caps.\n\
             # TYPE rake_served_cache_evicted_total counter\n",
        );
        out.push_str(&format!("rake_served_cache_evicted_total {}\n", cache.evicted));
        out.push_str(
            "# HELP rake_served_cache_appended_total Entry lines appended to the cache's \
             segment log.\n\
             # TYPE rake_served_cache_appended_total counter\n",
        );
        out.push_str(&format!("rake_served_cache_appended_total {}\n", cache.appended));
        out.push_str(
            "# HELP rake_served_cache_compactions_total Segment-log-into-snapshot \
             compactions.\n\
             # TYPE rake_served_cache_compactions_total counter\n",
        );
        out.push_str(&format!("rake_served_cache_compactions_total {}\n", cache.compactions));
        out.push_str(
            "# HELP rake_served_cache_snapshot_bytes On-disk cache snapshot size.\n\
             # TYPE rake_served_cache_snapshot_bytes gauge\n",
        );
        out.push_str(&format!("rake_served_cache_snapshot_bytes {}\n", cache.snapshot_bytes));
        out.push_str(
            "# HELP rake_served_cache_log_bytes On-disk cache segment-log size.\n\
             # TYPE rake_served_cache_log_bytes gauge\n",
        );
        out.push_str(&format!("rake_served_cache_log_bytes {}\n", cache.log_bytes));
        out.push_str(
            "# HELP rake_served_verdict_entries Timeout verdicts currently remembered.\n\
             # TYPE rake_served_verdict_entries gauge\n",
        );
        out.push_str(&format!("rake_served_verdict_entries {}\n", cache.verdict_entries));
        out.push_str(
            "# HELP rake_served_verdict_evictions_total Timeout verdicts evicted by the cap.\n\
             # TYPE rake_served_verdict_evictions_total counter\n",
        );
        out.push_str(&format!(
            "rake_served_verdict_evictions_total {}\n",
            cache.verdict_evictions
        ));
        out.push_str(
            "# HELP rake_served_journal_bytes Event-journal file size.\n\
             # TYPE rake_served_journal_bytes gauge\n",
        );
        out.push_str(&format!("rake_served_journal_bytes {}\n", cache.journal_bytes));
        out.push_str(
            "# HELP rake_served_journal_rotations_total Journal rotations since startup.\n\
             # TYPE rake_served_journal_rotations_total counter\n",
        );
        out.push_str(&format!(
            "rake_served_journal_rotations_total {}\n",
            cache.journal_rotations
        ));
        out.push_str(
            "# HELP rake_served_quarantined_keys Keys currently quarantined as poison pills \
             (they crashed workers past the threshold; served as structured failures).\n\
             # TYPE rake_served_quarantined_keys gauge\n",
        );
        out.push_str(&format!("rake_served_quarantined_keys {}\n", cache.quarantined));
        out.push_str(
            "# HELP rake_served_quarantine_added_total Keys quarantined since startup.\n\
             # TYPE rake_served_quarantine_added_total counter\n",
        );
        out.push_str(&format!(
            "rake_served_quarantine_added_total {}\n",
            self.quarantine_added.load(Ordering::Relaxed)
        ));

        if let Some(w) = workers {
            out.push_str(
                "# HELP rake_served_worker_restarts_total Worker processes restarted by the \
                 supervisor (initial pre-forks excluded).\n\
                 # TYPE rake_served_worker_restarts_total counter\n",
            );
            out.push_str(&format!("rake_served_worker_restarts_total {}\n", w.restarts));
            out.push_str(
                "# HELP rake_served_worker_crashes_total Worker deaths, by cause.\n\
                 # TYPE rake_served_worker_crashes_total counter\n",
            );
            for (cause, n) in &w.crashes {
                out.push_str(&format!(
                    "rake_served_worker_crashes_total{{cause=\"{cause}\"}} {n}\n"
                ));
            }
            out.push_str(
                "# HELP rake_served_workers_alive Live worker processes.\n\
                 # TYPE rake_served_workers_alive gauge\n",
            );
            out.push_str(&format!("rake_served_workers_alive {}\n", w.alive));
            out.push_str(
                "# HELP rake_served_worker_rss_high_water_bytes Highest resident-set size \
                 observed on any worker.\n\
                 # TYPE rake_served_worker_rss_high_water_bytes gauge\n",
            );
            out.push_str(&format!(
                "rake_served_worker_rss_high_water_bytes {}\n",
                w.rss_high_water
            ));
        }

        out.push_str(
            "# HELP rake_served_compile_latency_seconds End-to-end /compile latency.\n\
             # TYPE rake_served_compile_latency_seconds histogram\n",
        );
        self.latency.render(out, "rake_served_compile_latency_seconds");
        std::mem::take(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_cumulative() {
        let h = Histogram::default();
        h.observe(Duration::from_millis(1));
        h.observe(Duration::from_millis(30));
        h.observe(Duration::from_secs(60));
        let mut out = String::new();
        h.render(&mut out, "t");
        assert!(out.contains("t_bucket{le=\"0.001\"} 1\n"), "{out}");
        assert!(out.contains("t_bucket{le=\"0.05\"} 2\n"), "{out}");
        assert!(out.contains("t_bucket{le=\"10\"} 2\n"), "{out}");
        assert!(out.contains("t_bucket{le=\"+Inf\"} 3\n"), "{out}");
        assert!(out.contains("t_count 3\n"), "{out}");
    }

    #[test]
    fn render_includes_all_families() {
        let m = Metrics::new();
        m.request(Endpoint::Compile);
        m.response(200);
        m.compile_started();
        m.compile_finished(Duration::from_millis(3));
        m.exprs_submitted(2);
        m.rejected_busy();
        m.key_quarantined();
        let text = m.render(
            Instant::now(),
            CacheSnapshot {
                hits: 5,
                misses: 2,
                floor_misses: 1,
                entries: 4,
                mem_bytes: 2048,
                loaded: 3,
                evicted: 7,
                appended: 9,
                compactions: 2,
                snapshot_bytes: 4096,
                log_bytes: 512,
                verdict_entries: 6,
                verdict_evictions: 1,
                journal_bytes: 8192,
                journal_rotations: 3,
                quarantined: 2,
            },
            Some(&WorkerSnapshot {
                restarts: 4,
                alive: 2,
                rss_high_water: 1 << 20,
                crashes: vec![("signal_9".to_owned(), 3)],
            }),
        );
        for family in [
            "rake_served_requests_total{endpoint=\"compile\"} 1",
            "rake_served_responses_total{code=\"200\"} 1",
            "rake_served_inflight_requests 0",
            "rake_served_queue_depth 0",
            "rake_served_rejected_busy_total 1",
            "rake_served_exprs_total 2",
            "rake_served_cache_hits_total 5",
            "rake_served_cache_entries 4",
            "rake_served_cache_floor_misses_total 1",
            "rake_served_cache_bytes 2048",
            "rake_served_cache_evicted_total 7",
            "rake_served_cache_appended_total 9",
            "rake_served_cache_compactions_total 2",
            "rake_served_cache_snapshot_bytes 4096",
            "rake_served_cache_log_bytes 512",
            "rake_served_verdict_entries 6",
            "rake_served_verdict_evictions_total 1",
            "rake_served_journal_bytes 8192",
            "rake_served_journal_rotations_total 3",
            "rake_served_quarantined_keys 2",
            "rake_served_quarantine_added_total 1",
            "rake_served_worker_restarts_total 4",
            "rake_served_worker_crashes_total{cause=\"signal_9\"} 3",
            "rake_served_workers_alive 2",
            "rake_served_worker_rss_high_water_bytes 1048576",
            "rake_served_compile_latency_seconds_count 1",
        ] {
            assert!(text.contains(family), "missing `{family}` in:\n{text}");
        }
        let plain = m.render(Instant::now(), CacheSnapshot::default(), None);
        assert!(
            !plain.contains("rake_served_worker_restarts_total"),
            "worker families must be omitted without a pool"
        );
        assert!(plain.contains("rake_served_quarantined_keys 0"));
    }

    #[test]
    fn sink_classifies_fresh_vs_cached() {
        use driver::event::{JobRecord, OutcomeKind};
        use driver::Tier;
        use std::time::Duration;
        let m = Metrics::new();
        let sink = m.sink();
        let record = |cache_hit| {
            DriverEvent::JobFinished(JobRecord {
                index: 0,
                name: None,
                key: "k".into(),
                outcome: OutcomeKind::Compiled,
                detail: None,
                tier: Tier::Full,
                retries: 0,
                fault_injected: false,
                replayed: false,
                cache_hit,
                queue_wait: Duration::ZERO,
                run_time: Duration::ZERO,
                instructions: None,
                stats: Default::default(),
            })
        };
        sink(&record(false));
        sink(&record(true));
        sink(&record(true));
        assert_eq!(m.synth_fresh(), 1);
        assert_eq!(m.cache_served.load(Ordering::Relaxed), 2);
        let jobs = m.jobs.lock().unwrap();
        assert_eq!(jobs.get(&("compiled", "full")), Some(&3));
    }
}
