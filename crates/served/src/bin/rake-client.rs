//! `rake-client` — command-line client for `rake-served`.
//!
//! ```sh
//! echo '(add (load a u8 0 0) (load b u8 0 0))' | rake-client --addr 127.0.0.1:8347
//! rake-client --addr 127.0.0.1:8347 --metrics
//! ```
//!
//! Options:
//!   --addr HOST:PORT   server address (required)
//!   --lanes N          vectorization width knob (default 128)
//!   --timeout-ms N     per-job synthesis budget
//!   --validate         differentially validate the compiled program
//!   --tier-floor T     lowest degradation tier to try (full|reduced|direct)
//!   --retries N        retry transient failures (connection errors, 429,
//!                      503) up to N times with capped exponential backoff
//!                      and full jitter (default 0)
//!   --retry-max-ms N   cap on a single retry delay (default 2000)
//!   --chaos FAULT      ask the server to inject FAULT (`abort`, `oom`,
//!                      `sleep:<ms>`) worker-side; needs a --chaos server
//!   --json             print the raw response JSON instead of the program
//!   --metrics          GET /metrics and print it
//!   --healthz          GET /healthz and print it
//!   [file.sexp]        expression file (default: stdin)
//!
//! Exit codes mirror `rakec` where they overlap:
//!   0 compiled, 1 usage/connection error, 2 synthesis failed,
//!   3 timed out, 4 validation mismatch, 5 panicked, 6 server busy (429),
//!   7 quarantined (the expression keeps crashing isolated workers)

use std::io::Read as _;
use std::net::TcpStream;
use std::process::ExitCode;
use std::time::Duration;

use driver::json::{self, Json};
use served::http::{backoff_delay, roundtrip, roundtrip_headers};

const EXIT_FAILED: u8 = 2;
const EXIT_TIMED_OUT: u8 = 3;
const EXIT_MISCOMPILE: u8 = 4;
const EXIT_PANICKED: u8 = 5;
const EXIT_BUSY: u8 = 6;
const EXIT_QUARANTINED: u8 = 7;

/// Base delay for the first retry, doubled per attempt up to the cap.
const RETRY_BASE_MS: u64 = 100;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut addr: Option<String> = None;
    let mut lanes: Option<u64> = None;
    let mut timeout_ms: Option<u64> = None;
    let mut validate = false;
    let mut tier_floor: Option<String> = None;
    let mut retries: u32 = 0;
    let mut retry_max_ms: u64 = 2000;
    let mut chaos: Option<String> = None;
    let mut raw_json = false;
    let mut do_metrics = false;
    let mut do_healthz = false;
    let mut path: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => match it.next() {
                Some(v) => addr = Some(v.clone()),
                None => return usage("--addr needs HOST:PORT"),
            },
            "--lanes" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => lanes = Some(v),
                None => return usage("--lanes needs an integer"),
            },
            "--timeout-ms" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => timeout_ms = Some(v),
                None => return usage("--timeout-ms needs an integer"),
            },
            "--validate" => validate = true,
            "--tier-floor" => match it.next() {
                Some(v) => tier_floor = Some(v.clone()),
                None => return usage("--tier-floor needs a tier name"),
            },
            "--retries" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => retries = v,
                None => return usage("--retries needs an integer"),
            },
            "--retry-max-ms" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => retry_max_ms = v,
                None => return usage("--retry-max-ms needs an integer"),
            },
            "--chaos" => match it.next() {
                Some(v) => chaos = Some(v.clone()),
                None => return usage("--chaos needs a fault name"),
            },
            "--json" => raw_json = true,
            "--metrics" => do_metrics = true,
            "--healthz" => do_healthz = true,
            "--help" | "-h" => return usage(""),
            other if !other.starts_with('-') => path = Some(other.to_owned()),
            other => return usage(&format!("unknown option `{other}`")),
        }
    }
    let Some(addr) = addr else {
        return usage("--addr is required");
    };

    if do_metrics || do_healthz {
        let mut stream = match TcpStream::connect(&addr) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("rake-client: cannot connect to {addr}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let _ = stream.set_read_timeout(Some(Duration::from_secs(900)));
        let path = if do_metrics { "/metrics" } else { "/healthz" };
        return match roundtrip(&mut stream, "GET", path, None) {
            Ok((status, body)) => {
                print!("{}", String::from_utf8_lossy(&body));
                if status == 200 {
                    ExitCode::SUCCESS
                } else {
                    eprintln!("rake-client: server answered {status}");
                    ExitCode::FAILURE
                }
            }
            Err(e) => {
                eprintln!("rake-client: {e}");
                ExitCode::FAILURE
            }
        };
    }

    let input = match path {
        Some(p) => match std::fs::read_to_string(&p) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("rake-client: cannot read {p}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => {
            let mut s = String::new();
            if std::io::stdin().read_to_string(&mut s).is_err() {
                eprintln!("rake-client: cannot read stdin");
                return ExitCode::FAILURE;
            }
            s
        }
    };

    let mut req = vec![("expr".to_owned(), Json::Str(input.trim().to_owned()))];
    if let Some(n) = lanes {
        req.push(("lanes".to_owned(), n.into()));
    }
    if let Some(ms) = timeout_ms {
        req.push(("timeout_ms".to_owned(), ms.into()));
    }
    if validate {
        req.push(("validate".to_owned(), true.into()));
    }
    if let Some(floor) = tier_floor {
        req.push(("tier_floor".to_owned(), floor.into()));
    }
    if let Some(fault) = chaos {
        req.push(("chaos".to_owned(), fault.into()));
    }
    let body = Json::Obj(req).to_string();

    // Each attempt uses a fresh connection (the server may close after a
    // 429/503, and a refused connect has no stream at all). Transient
    // failures — transport errors, 429, 503 — retry with capped
    // exponential backoff and full jitter; a 429/503 carrying
    // `Retry-After` has its hint honored instead (still capped).
    let salt = std::process::id() as u64;
    let mut attempt: u32 = 0;
    let (status, body) = loop {
        let result = TcpStream::connect(&addr)
            .map_err(|e| format!("cannot connect to {addr}: {e}"))
            .and_then(|mut stream| {
                let _ = stream.set_read_timeout(Some(Duration::from_secs(900)));
                roundtrip_headers(&mut stream, "POST", "/compile", Some(body.as_bytes()))
                    .map_err(|e| e.to_string())
            });
        match result {
            Ok((status, headers, resp_body)) if matches!(status, 429 | 503) && attempt < retries => {
                let hinted = headers
                    .iter()
                    .find(|(name, _)| name == "retry-after")
                    .and_then(|(_, v)| v.trim().parse::<u64>().ok())
                    .map(Duration::from_secs);
                let delay = hinted
                    .unwrap_or_else(|| backoff_delay(RETRY_BASE_MS, retry_max_ms, attempt, salt))
                    .min(Duration::from_millis(retry_max_ms.max(1)));
                eprintln!(
                    "rake-client: server answered {status}; retrying in {}ms ({} of {} retries)",
                    delay.as_millis(),
                    attempt + 1,
                    retries,
                );
                std::thread::sleep(delay);
                attempt += 1;
                drop(resp_body);
            }
            Ok((status, _, resp_body)) => break (status, resp_body),
            Err(e) if attempt < retries => {
                let delay = backoff_delay(RETRY_BASE_MS, retry_max_ms, attempt, salt);
                eprintln!(
                    "rake-client: {e}; retrying in {}ms ({} of {} retries)",
                    delay.as_millis(),
                    attempt + 1,
                    retries,
                );
                std::thread::sleep(delay);
                attempt += 1;
            }
            Err(e) => {
                eprintln!("rake-client: {e}");
                return ExitCode::FAILURE;
            }
        }
    };
    let text = String::from_utf8_lossy(&body);
    if status == 429 {
        eprintln!("rake-client: server busy (429); retry later");
        return ExitCode::from(EXIT_BUSY);
    }
    if status != 200 {
        eprintln!("rake-client: server answered {status}: {}", text.trim_end());
        return ExitCode::FAILURE;
    }
    if raw_json {
        println!("{text}");
        return ExitCode::SUCCESS;
    }

    let Ok(doc) = json::parse(&text) else {
        eprintln!("rake-client: unparseable response: {text}");
        return ExitCode::FAILURE;
    };
    let Some(result) = doc.get("results").and_then(Json::as_arr).and_then(|r| r.first()) else {
        eprintln!("rake-client: response has no results: {text}");
        return ExitCode::FAILURE;
    };
    let outcome = result.get("outcome").and_then(Json::as_str).unwrap_or("?");
    let tier = result.get("tier").and_then(Json::as_str).unwrap_or("?");
    let cache_hit = result.get("cache_hit").and_then(Json::as_bool).unwrap_or(false);
    match outcome {
        "compiled" => {
            println!(
                "; compiled on the `{tier}` tier{}",
                if cache_hit { " (cache hit)" } else { "" }
            );
            if let Some(cost) = result.get("cost") {
                println!(
                    "; cost: latency {} loads {} cycles {}",
                    cost.get("latency_sum").and_then(Json::as_i64).unwrap_or(0),
                    cost.get("load_units").and_then(Json::as_i64).unwrap_or(0),
                    cost.get("cycles").and_then(Json::as_i64).unwrap_or(0),
                );
            }
            if let Some(program) = result.get("program").and_then(Json::as_str) {
                print!("{program}");
            }
            if let Some(v) = result.get("validation") {
                let mismatches = v.get("mismatches").and_then(Json::as_i64).unwrap_or(0);
                let checks = v.get("checks").and_then(Json::as_i64).unwrap_or(0);
                println!("; differential validation: {checks} points, {mismatches} mismatches");
                if mismatches > 0 {
                    eprintln!("rake-client: MISCOMPILE reported by the server oracle");
                    return ExitCode::from(EXIT_MISCOMPILE);
                }
            }
            ExitCode::SUCCESS
        }
        "failed" => {
            let detail = result.get("detail").and_then(Json::as_str).unwrap_or("unknown");
            eprintln!("rake-client: synthesis failed: {detail}");
            ExitCode::from(EXIT_FAILED)
        }
        "timed_out" | "cancelled" => {
            eprintln!("rake-client: synthesis {outcome}");
            ExitCode::from(EXIT_TIMED_OUT)
        }
        "panicked" => {
            let detail = result.get("detail").and_then(Json::as_str).unwrap_or("unknown");
            eprintln!("rake-client: selector panicked: {detail}");
            ExitCode::from(EXIT_PANICKED)
        }
        "quarantined" => {
            let detail = result.get("detail").and_then(Json::as_str).unwrap_or("unknown");
            eprintln!("rake-client: expression is quarantined: {detail}");
            ExitCode::from(EXIT_QUARANTINED)
        }
        other => {
            eprintln!("rake-client: unknown outcome `{other}`");
            ExitCode::FAILURE
        }
    }
}

fn usage(err: &str) -> ExitCode {
    if !err.is_empty() {
        eprintln!("rake-client: {err}");
    }
    eprintln!(
        "usage: rake-client --addr HOST:PORT [--lanes N] [--timeout-ms N] [--validate] \
         [--tier-floor full|reduced|direct] [--retries N] [--retry-max-ms N] [--chaos FAULT] \
         [--json] [file.sexp]\n\
         \x20      rake-client --addr HOST:PORT --metrics | --healthz\n\
         exit codes: 0 compiled, 1 usage/connection, 2 failed, 3 timed out/cancelled, \
         4 miscompile, 5 panicked, 6 busy, 7 quarantined"
    );
    if err.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
