//! `rake-served` — the compilation server daemon.
//!
//! ```sh
//! rake-served --addr 127.0.0.1:8347 --cache /var/cache/rake --log rake.jsonl
//! ```
//!
//! Options:
//!   --addr HOST:PORT   bind address (default 127.0.0.1:8347; port 0 = ephemeral)
//!   --port-file FILE   write the bound `host:port` to FILE after listening
//!                      (how scripts discover an ephemeral port)
//!   --permits N        concurrent compile permits (default: cores, max 4)
//!   --queue N          admission queue slots (default 16)
//!   --cache DIR        persistent synthesis cache directory
//!   --cache-max-entries N  in-memory cache entry cap; cost-aware LRU
//!                      eviction past it (default unbounded; 0 = unbounded)
//!   --cache-max-bytes N    in-memory cache byte cap over serialized entry
//!                      sizes (default unbounded; 0 = unbounded)
//!   --cache-log-max-bytes N  segment-log size that triggers compaction
//!                      into the snapshot (default 4 MiB)
//!   --log FILE         JSONL event journal (write-ahead log)
//!   --journal-rotate-bytes N  journal size that triggers rotation into a
//!                      replay snapshot (default 8 MiB; 0 = never rotate)
//!   --timeout SEC      default per-job synthesis budget (default 30)
//!   --threads N        process-wide synthesis thread budget
//!   --verdict-ttl SEC  how long a timed-out verdict is served from memory
//!                      instead of re-running synthesis (default 300; 0 off)
//!   --verdict-cap N    timeout verdicts remembered at most (default 1024;
//!                      0 = unbounded)
//!   --read-timeout-ms N  slow-loris guard: a started request must arrive
//!                      whole within N ms or the connection is answered
//!                      408 (default 10000; 0 disables)
//!   --isolate          run synthesis in supervised worker subprocesses;
//!                      worker deaths fail only their own jobs
//!   --workers N        worker subprocesses under --isolate (default:
//!                      same as --permits)
//!   --worker-rss-mb N  per-worker resident-set cap in MiB; past it the
//!                      supervisor kills the worker (default 4096; 0 off)
//!   --worker-grace-ms N  grace past a job's deadline before the
//!                      supervisor kills its worker (default 5000)
//!   --crash-threshold N  worker crashes a single key may cause before it
//!                      is quarantined as a poison pill (default 2)
//!   --quarantine-ttl-s N  how long a quarantined key stays poisoned
//!                      (default 3600; 0 = forever)
//!   --chaos            accept the per-request `chaos` fault-injection
//!                      field (test/benchmark plumbing)
//!   --trace-out DIR    enable structured tracing and write one Chrome
//!                      trace-event JSON per request into DIR
//!   --trace-slow-ms N  enable tracing and log spans slower than N ms
//!                      to stderr (independent of --trace-out)
//!
//! The hidden first argument `worker` switches the binary into the
//! frame-protocol worker the supervisor pre-forks under `--isolate`.
//!
//! SIGTERM/SIGINT drain gracefully: in-flight requests finish, the cache
//! is persisted, then the process exits 0.

use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use served::{serve, ServerConfig};

static SHUTDOWN: AtomicBool = AtomicBool::new(false);

/// Raw libc signal hookup — std links libc on every supported platform,
/// so declaring the one symbol we need keeps the workspace free of
/// external crates. The handler only flips an atomic (async-signal-safe).
#[cfg(unix)]
mod sig {
    use super::SHUTDOWN;
    use std::sync::atomic::Ordering;

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        SHUTDOWN.store(true, Ordering::SeqCst);
    }

    pub fn install() {
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        let handler = on_signal as extern "C" fn(i32) as usize;
        unsafe {
            signal(SIGINT, handler);
            signal(SIGTERM, handler);
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // Hidden worker mode: the supervisor re-execs this binary with the
    // single argument `worker` (dispatched before flag parsing so the
    // worker surface cannot drift from the server's).
    if args.first().map(String::as_str) == Some("worker") {
        served::worker::worker_main();
    }
    let mut config = ServerConfig::default();
    let mut port_file: Option<std::path::PathBuf> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => match it.next() {
                Some(v) => config.addr = v.clone(),
                None => return usage("--addr needs HOST:PORT"),
            },
            "--port-file" => match it.next() {
                Some(v) => port_file = Some(v.into()),
                None => return usage("--port-file needs a path"),
            },
            "--permits" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => config.permits = v,
                None => return usage("--permits needs an integer"),
            },
            "--queue" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => config.queue_slots = v,
                None => return usage("--queue needs an integer"),
            },
            "--cache" => match it.next() {
                Some(v) => config.cache_dir = Some(v.into()),
                None => return usage("--cache needs a directory"),
            },
            "--cache-max-entries" => match it.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(v) => config.cache_max_entries = (v > 0).then_some(v),
                None => return usage("--cache-max-entries needs an integer"),
            },
            "--cache-max-bytes" => match it.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(v) => config.cache_max_bytes = (v > 0).then_some(v),
                None => return usage("--cache-max-bytes needs an integer"),
            },
            "--cache-log-max-bytes" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => config.cache_log_compact_bytes = v,
                None => return usage("--cache-log-max-bytes needs an integer"),
            },
            "--log" => match it.next() {
                Some(v) => config.log_path = Some(v.into()),
                None => return usage("--log needs a file"),
            },
            "--journal-rotate-bytes" => match it.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(v) => config.journal_rotate_bytes = (v > 0).then_some(v),
                None => return usage("--journal-rotate-bytes needs an integer"),
            },
            "--timeout" => match it.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(secs) => config.default_timeout = Some(Duration::from_secs_f64(secs)),
                None => return usage("--timeout needs seconds"),
            },
            "--threads" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => config.thread_budget = v,
                None => return usage("--threads needs an integer"),
            },
            "--verdict-ttl" => match it.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(secs) => config.timeout_verdict_ttl = Duration::from_secs_f64(secs),
                None => return usage("--verdict-ttl needs seconds"),
            },
            "--verdict-cap" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => config.verdict_cache_cap = v,
                None => return usage("--verdict-cap needs an integer"),
            },
            "--read-timeout-ms" => match it.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(v) => config.read_timeout = (v > 0).then(|| Duration::from_millis(v)),
                None => return usage("--read-timeout-ms needs an integer"),
            },
            "--isolate" => config.isolate = true,
            "--workers" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => config.pool_workers = v,
                None => return usage("--workers needs an integer"),
            },
            "--worker-rss-mb" => match it.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(v) => config.worker_rss_limit = (v > 0).then_some(v * 1024 * 1024),
                None => return usage("--worker-rss-mb needs an integer"),
            },
            "--worker-grace-ms" => match it.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(v) => config.worker_grace = Duration::from_millis(v),
                None => return usage("--worker-grace-ms needs an integer"),
            },
            "--crash-threshold" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => config.crash_threshold = v,
                None => return usage("--crash-threshold needs an integer"),
            },
            "--quarantine-ttl-s" => match it.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(v) => config.quarantine_ttl = (v > 0).then(|| Duration::from_secs(v)),
                None => return usage("--quarantine-ttl-s needs an integer"),
            },
            "--chaos" => config.chaos = true,
            "--trace-out" => match it.next() {
                Some(v) => config.trace_out = Some(v.into()),
                None => return usage("--trace-out needs a directory"),
            },
            "--trace-slow-ms" => match it.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(v) => config.trace_slow_ms = Some(v),
                None => return usage("--trace-slow-ms needs an integer"),
            },
            "--help" | "-h" => return usage(""),
            other => return usage(&format!("unknown option `{other}`")),
        }
    }

    #[cfg(unix)]
    sig::install();

    let handle = match serve(config) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("rake-served: cannot listen: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!("rake-served: listening on {}", handle.addr());
    if let Some(path) = &port_file {
        // Write via a temp file + rename so a watcher never reads a
        // half-written address.
        let tmp = path.with_extension("tmp");
        let write = std::fs::write(&tmp, handle.addr().to_string())
            .and_then(|()| std::fs::rename(&tmp, path));
        if let Err(e) = write {
            eprintln!("rake-served: cannot write port file {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }

    while !SHUTDOWN.load(Ordering::SeqCst) {
        std::thread::sleep(Duration::from_millis(50));
    }
    eprintln!("rake-served: draining");
    handle.shutdown();
    eprintln!("rake-served: bye");
    ExitCode::SUCCESS
}

fn usage(err: &str) -> ExitCode {
    if !err.is_empty() {
        eprintln!("rake-served: {err}");
    }
    eprintln!(
        "usage: rake-served [--addr HOST:PORT] [--port-file FILE] [--permits N] [--queue N] \
         [--cache DIR] [--cache-max-entries N] [--cache-max-bytes N] \
         [--cache-log-max-bytes N] [--log FILE] [--journal-rotate-bytes N] [--timeout SEC] \
         [--threads N] [--verdict-ttl SEC] [--verdict-cap N] [--read-timeout-ms N] \
         [--isolate] [--workers N] [--worker-rss-mb N] [--worker-grace-ms N] \
         [--crash-threshold N] [--quarantine-ttl-s N] [--chaos] [--trace-out DIR] \
         [--trace-slow-ms N]"
    );
    if err.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
