//! `rake-served` — an HTTP/1.1 JSON compilation service over the
//! [`driver`] layer, built entirely on `std` (no external crates, like
//! the rest of the workspace).
//!
//! The binary [`rake-served`](../rake_served/index.html) serves:
//!
//! * `POST /compile` — S-expression Halide exprs plus per-request knobs
//!   (`lanes`, `timeout_ms`, `validate`, `tier_floor`) → synthesized HVX
//!   programs with cost, producing tier, and cache statistics. Duplicate
//!   expressions are deduplicated within a request by the driver and
//!   across concurrent requests by a single-flight key registry.
//! * `GET /metrics` — Prometheus text exposition ([`metrics`]).
//! * `GET /healthz` — liveness (503 while draining).
//!
//! Admission control bounds concurrent synthesis with a permit gate and
//! a bounded wait queue (429 + `Retry-After` past it); oversized bodies
//! are 413; a client that disconnects mid-compile has its synthesis
//! cooperatively cancelled via [`synth::cancel`]. One process-wide
//! content-addressed cache and memo handle back every connection, and
//! `--cache`/`--log` make the warm state survive restarts.
//!
//! The companion binary `rake-client` speaks the same protocol from the
//! command line, and the `loadgen` bench drives a server closed-loop for
//! the `BENCH_5` latency baseline.

pub mod http;
pub mod metrics;
pub mod server;
pub mod supervisor;
pub mod worker;

pub use metrics::Metrics;
pub use server::{serve, ServerConfig, ServerHandle};
pub use supervisor::{PoolConfig, WorkerPool};
