//! A minimal HTTP/1.1 implementation over `std::net` — just enough for
//! the compilation server and its clients, with hard limits everywhere a
//! remote peer controls an allocation.
//!
//! Supported surface: request line + headers + `Content-Length` bodies,
//! keep-alive by default (HTTP/1.1 semantics), `Connection: close`
//! opt-out. Chunked transfer encoding, trailers, upgrades and multi-line
//! headers are deliberately rejected; the wire peer is either our own
//! `rake-client`/loadgen or `curl`, both of which speak this subset.

use std::io::{self, BufRead, Read, Write};
use std::net::TcpStream;
use std::time::Instant;

/// Upper bound on the request line plus all header bytes. Prevents a
/// peer from streaming an unbounded header section.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// A parsed request.
#[derive(Debug)]
pub struct Request {
    /// Method verb, uppercased by the peer (`GET`, `POST`, ...).
    pub method: String,
    /// Request target, e.g. `/compile`.
    pub path: String,
    /// Header name/value pairs; names lowercased.
    pub headers: Vec<(String, String)>,
    /// The body (empty without `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of a header, by lowercase name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(k, _)| k == name).map(|(_, v)| v.as_str())
    }

    /// Whether the peer asked to drop the connection after this exchange.
    pub fn wants_close(&self) -> bool {
        self.header("connection").is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum ReadError {
    /// The peer closed the connection before sending a request line —
    /// the normal end of a keep-alive session, not an error to report.
    Closed,
    /// The request violates the supported HTTP subset or its limits; the
    /// string is a human-readable reason for the 400 response.
    Malformed(String),
    /// `Content-Length` exceeds the configured body limit → 413.
    BodyTooLarge {
        /// The declared length.
        declared: usize,
        /// The configured cap.
        limit: usize,
    },
    /// A started request did not finish arriving within the read
    /// deadline (slow-loris guard) → 408. Distinct from an *idle*
    /// keep-alive connection timing out between requests, which is a
    /// clean close.
    TimedOut,
    /// The socket failed mid-read (reset, ...).
    Io(io::Error),
}

/// Read one request from the stream.
///
/// # Errors
///
/// See [`ReadError`]; `Closed` is the clean end of a keep-alive session.
pub fn read_request(
    reader: &mut impl BufRead,
    max_body_bytes: usize,
) -> Result<Request, ReadError> {
    read_request_deadline(reader, max_body_bytes, None)
}

/// [`read_request`] with a slow-loris guard: the *entire* request —
/// line, headers, body — must arrive before `deadline`, or the read
/// fails with [`ReadError::TimedOut`] (→ 408).
///
/// The deadline catches drip-feed peers (a byte every few seconds keeps
/// any per-read socket timeout happy forever); callers should *also*
/// set a socket read timeout of the same order so a fully silent peer
/// cannot pin the thread between bytes — with a deadline armed, those
/// `WouldBlock`/`TimedOut` socket errors are mapped to `TimedOut` too.
///
/// # Errors
///
/// See [`ReadError`].
pub fn read_request_deadline(
    reader: &mut impl BufRead,
    max_body_bytes: usize,
    deadline: Option<Instant>,
) -> Result<Request, ReadError> {
    read_request_inner(reader, max_body_bytes, deadline).map_err(|e| match e {
        // With a deadline armed, a socket-level stall is the same
        // slow-loris verdict as blowing the overall deadline.
        ReadError::Io(io)
            if deadline.is_some()
                && matches!(io.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) =>
        {
            ReadError::TimedOut
        }
        other => other,
    })
}

fn read_request_inner(
    reader: &mut impl BufRead,
    max_body_bytes: usize,
    deadline: Option<Instant>,
) -> Result<Request, ReadError> {
    let overdue = || deadline.is_some_and(|d| Instant::now() >= d);
    let mut head_budget = MAX_HEAD_BYTES;
    let line = read_line(reader, &mut head_budget)?;
    if line.is_empty() {
        return Err(ReadError::Closed);
    }
    if overdue() {
        return Err(ReadError::TimedOut);
    }
    let mut parts = line.split_whitespace();
    let (Some(method), Some(path), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return Err(ReadError::Malformed("bad request line".to_owned()));
    };
    if !version.starts_with("HTTP/1.") {
        return Err(ReadError::Malformed(format!("unsupported version `{version}`")));
    }
    let method = method.to_owned();
    let path = path.to_owned();

    let mut headers = Vec::new();
    loop {
        let line = read_line(reader, &mut head_budget)?;
        if overdue() {
            return Err(ReadError::TimedOut);
        }
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(ReadError::Malformed(format!("bad header line `{line}`")));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_owned()));
    }

    let mut req = Request { method, path, headers, body: Vec::new() };
    if req.header("transfer-encoding").is_some() {
        return Err(ReadError::Malformed("chunked transfer encoding is not supported".to_owned()));
    }
    if let Some(len) = req.header("content-length") {
        let Ok(len) = len.parse::<usize>() else {
            return Err(ReadError::Malformed(format!("bad content-length `{len}`")));
        };
        if len > max_body_bytes {
            return Err(ReadError::BodyTooLarge { declared: len, limit: max_body_bytes });
        }
        // Chunked reads so a drip-fed body checks the deadline between
        // chunks instead of sitting in one long `read_exact`.
        let mut body = vec![0u8; len];
        let mut filled = 0usize;
        while filled < len {
            if overdue() {
                return Err(ReadError::TimedOut);
            }
            let chunk = (len - filled).min(64 * 1024);
            match reader.read(&mut body[filled..filled + chunk]) {
                Ok(0) => {
                    return Err(ReadError::Io(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "body cut short",
                    )));
                }
                Ok(n) => filled += n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(ReadError::Io(e)),
            }
        }
        req.body = body;
    }
    Ok(req)
}

/// Read one CRLF (or bare LF) terminated line, charging `budget`. An empty
/// return means either a blank line or EOF — callers distinguish by
/// position.
fn read_line(reader: &mut impl BufRead, budget: &mut usize) -> Result<String, ReadError> {
    let mut line = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match reader.read(&mut byte) {
            Ok(0) => break,
            Ok(_) => {
                if *budget == 0 {
                    return Err(ReadError::Malformed(format!(
                        "request head exceeds {MAX_HEAD_BYTES} bytes"
                    )));
                }
                *budget -= 1;
                if byte[0] == b'\n' {
                    break;
                }
                line.push(byte[0]);
            }
            Err(e) => return Err(ReadError::Io(e)),
        }
    }
    if line.last() == Some(&b'\r') {
        line.pop();
    }
    String::from_utf8(line).map_err(|_| ReadError::Malformed("non-UTF-8 in head".to_owned()))
}

/// A response under construction.
#[derive(Debug)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Extra headers beyond `Content-Type`/`Content-Length`/`Connection`.
    pub headers: Vec<(String, String)>,
    /// Media type of the body.
    pub content_type: &'static str,
    /// The body.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: &driver::json::Json) -> Response {
        Response {
            status,
            headers: Vec::new(),
            content_type: "application/json",
            body: body.to_string().into_bytes(),
        }
    }

    /// A plain-text response.
    pub fn text(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            headers: Vec::new(),
            content_type: "text/plain; charset=utf-8",
            body: body.into().into_bytes(),
        }
    }

    /// Add a header.
    pub fn with_header(mut self, name: &str, value: impl Into<String>) -> Response {
        self.headers.push((name.to_owned(), value.into()));
        self
    }

    /// Serialize onto the wire. `close` controls the `Connection` header.
    ///
    /// # Errors
    ///
    /// Propagates socket write failures (the peer may already be gone).
    pub fn write_to(&self, stream: &mut impl Write, close: bool) -> io::Result<()> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\nconnection: {}\r\n",
            self.status,
            reason(self.status),
            self.content_type,
            self.body.len(),
            if close { "close" } else { "keep-alive" },
        );
        for (name, value) in &self.headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str("\r\n");
        // One write per response: head and body split across two small
        // writes interacts with Nagle + delayed ACK for a ~40 ms stall
        // per exchange, which would dwarf a warm cache hit.
        let mut wire = head.into_bytes();
        wire.extend_from_slice(&self.body);
        stream.write_all(&wire)?;
        stream.flush()
    }
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Response",
    }
}

/// Client side: write `method path` with an optional body over `stream`
/// and read back `(status, body)`. Keep-alive: the same stream can be
/// reused for the next call unless the server answered `Connection:
/// close`.
///
/// # Errors
///
/// Propagates socket failures and malformed responses as `io::Error`.
pub fn roundtrip(
    stream: &mut TcpStream,
    method: &str,
    path: &str,
    body: Option<&[u8]>,
) -> io::Result<(u16, Vec<u8>)> {
    roundtrip_headers(stream, method, path, body).map(|(status, _, body)| (status, body))
}

/// Status, headers (lowercased names), and body of an HTTP response.
pub type StatusHeadersBody = (u16, Vec<(String, String)>, Vec<u8>);

/// [`roundtrip`], but also returning the response headers (lowercased
/// names) — retry logic needs `Retry-After`.
///
/// # Errors
///
/// Propagates socket failures and malformed responses as `io::Error`.
pub fn roundtrip_headers(
    stream: &mut TcpStream,
    method: &str,
    path: &str,
    body: Option<&[u8]>,
) -> io::Result<StatusHeadersBody> {
    let body = body.unwrap_or(&[]);
    let head = format!(
        "{method} {path} HTTP/1.1\r\nhost: rake-served\r\ncontent-length: {}\r\n\r\n",
        body.len()
    );
    // Single write for the same reason as `Response::write_to`: two
    // small writes on a keep-alive connection trip Nagle + delayed ACK.
    let mut wire = head.into_bytes();
    wire.extend_from_slice(body);
    stream.set_nodelay(true).ok();
    stream.write_all(&wire)?;
    stream.flush()?;

    let mut reader = io::BufReader::new(stream.try_clone()?);
    let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_owned());
    let mut budget = MAX_HEAD_BYTES;
    let status_line = read_line(&mut reader, &mut budget).map_err(|e| match e {
        ReadError::Io(io) => io,
        other => io::Error::new(io::ErrorKind::InvalidData, format!("{other:?}")),
    })?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad(&format!("bad status line `{status_line}`")))?;
    let mut content_length = 0usize;
    let mut headers = Vec::new();
    loop {
        let line = read_line(&mut reader, &mut budget).map_err(|e| match e {
            ReadError::Io(io) => io,
            other => io::Error::new(io::ErrorKind::InvalidData, format!("{other:?}")),
        })?;
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length =
                    value.trim().parse().map_err(|_| bad("bad response content-length"))?;
            }
            headers.push((name.trim().to_ascii_lowercase(), value.trim().to_owned()));
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok((status, headers, body))
}

/// Capped exponential backoff with full jitter, for retrying transient
/// failures: delay `attempt` (0-based) is uniform in
/// `[0, min(base · 2^attempt, cap)]` — the AWS "full jitter" scheme,
/// which decorrelates a thundering herd of retrying clients. `salt`
/// seeds the jitter (callers mix in pid/time; this module stays
/// dependency-free and deterministic for tests).
pub fn backoff_delay(base_ms: u64, cap_ms: u64, attempt: u32, salt: u64) -> std::time::Duration {
    let ceiling = base_ms.saturating_mul(1u64 << attempt.min(20)).min(cap_ms).max(1);
    // SplitMix64 finalizer over (salt, attempt) → uniform-enough jitter.
    let mut z = salt.wrapping_add(0x9e3779b97f4a7c15u64.wrapping_mul(u64::from(attempt) + 1));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^= z >> 31;
    std::time::Duration::from_millis(z % ceiling)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &[u8]) -> Result<Request, ReadError> {
        read_request(&mut BufReader::new(raw), 1024)
    }

    #[test]
    fn parses_post_with_body() {
        let req = parse(
            b"POST /compile HTTP/1.1\r\nHost: x\r\nContent-Length: 5\r\n\r\nhello",
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/compile");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.body, b"hello");
        assert!(!req.wants_close());
    }

    #[test]
    fn clean_eof_is_closed_not_error() {
        assert!(matches!(parse(b""), Err(ReadError::Closed)));
    }

    #[test]
    fn oversized_body_is_413_class() {
        let err = parse(b"POST / HTTP/1.1\r\ncontent-length: 9999\r\n\r\n").unwrap_err();
        assert!(matches!(err, ReadError::BodyTooLarge { declared: 9999, limit: 1024 }));
    }

    #[test]
    fn rejects_garbage_and_oversized_heads() {
        assert!(matches!(parse(b"\x00\x01\x02\r\n\r\n"), Err(ReadError::Malformed(_))));
        assert!(matches!(parse(b"GET /\r\n\r\n"), Err(ReadError::Malformed(_))));
        let huge = format!("GET / HTTP/1.1\r\nx: {}\r\n\r\n", "y".repeat(MAX_HEAD_BYTES));
        assert!(matches!(parse(huge.as_bytes()), Err(ReadError::Malformed(_))));
    }

    #[test]
    fn expired_deadline_is_timed_out_not_malformed() {
        let raw = b"POST /compile HTTP/1.1\r\ncontent-length: 5\r\n\r\nhello";
        let past = Instant::now() - std::time::Duration::from_millis(1);
        let err = read_request_deadline(&mut BufReader::new(&raw[..]), 1024, Some(past))
            .unwrap_err();
        assert!(matches!(err, ReadError::TimedOut), "{err:?}");
        // A generous deadline changes nothing.
        let future = Instant::now() + std::time::Duration::from_secs(60);
        let req =
            read_request_deadline(&mut BufReader::new(&raw[..]), 1024, Some(future)).unwrap();
        assert_eq!(req.body, b"hello");
    }

    #[test]
    fn socket_stall_maps_to_timed_out_only_under_deadline() {
        struct Stall;
        impl io::Read for Stall {
            fn read(&mut self, _: &mut [u8]) -> io::Result<usize> {
                Err(io::Error::new(io::ErrorKind::WouldBlock, "stalled"))
            }
        }
        let future = Instant::now() + std::time::Duration::from_secs(60);
        let err = read_request_deadline(&mut BufReader::new(Stall), 1024, Some(future))
            .unwrap_err();
        assert!(matches!(err, ReadError::TimedOut), "{err:?}");
        let err = read_request_deadline(&mut BufReader::new(Stall), 1024, None).unwrap_err();
        assert!(matches!(err, ReadError::Io(_)), "no deadline keeps the old Io verdict: {err:?}");
    }

    #[test]
    fn backoff_jitter_stays_under_the_cap_and_grows() {
        for attempt in 0..10 {
            for salt in [1u64, 7, 42, 0xDEAD] {
                let d = backoff_delay(100, 2000, attempt, salt);
                let ceiling = 100u64.saturating_mul(1 << attempt).min(2000);
                assert!(d.as_millis() < u128::from(ceiling.max(1)) + 1, "{d:?} vs {ceiling}");
            }
        }
        // Deterministic for a fixed (salt, attempt).
        assert_eq!(backoff_delay(100, 2000, 3, 9), backoff_delay(100, 2000, 3, 9));
    }

    #[test]
    fn response_serializes_with_length_and_connection() {
        let mut out = Vec::new();
        Response::text(429, "busy")
            .with_header("retry-after", "1")
            .write_to(&mut out, true)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"), "{text}");
        assert!(text.contains("content-length: 4\r\n"));
        assert!(text.contains("connection: close\r\n"));
        assert!(text.contains("retry-after: 1\r\n"));
        assert!(text.ends_with("\r\n\r\nbusy"));
    }
}
