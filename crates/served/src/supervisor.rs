//! The worker-pool supervisor behind `rake-served --isolate`.
//!
//! Owns a fixed number of worker slots, each holding (when healthy) a
//! pre-forked subprocess speaking the [`crate::worker`] frame protocol.
//! The pool's job is *containment*: any worker death — abort, SIGSEGV,
//! SIGKILL, OOM, stack overflow, injected chaos — is converted into a
//! structured [`DispatchOutcome::Crashed`] for the jobs on that worker
//! and affects nothing else.
//!
//! ## Supervision loop
//!
//! A monitor thread wakes every ~150 ms and
//!
//! * **reaps** exited workers (`try_wait`) and schedules replacements
//!   with exponential backoff per slot (reset after a successful job);
//! * **enforces the RSS limit**: `/proc/<pid>/statm` resident pages ×
//!   page size past the cap → `SIGKILL`, cause `rss`, and the global
//!   high-water gauge updated;
//! * **heartbeats** idle workers (a `ping` frame roughly every 10 s); a
//!   worker that cannot accept the write is dead pipe-wise and reaped;
//! * **trips the restart-storm breaker**: more than `storm_limit`
//!   respawns inside `storm_window` opens the breaker for
//!   `storm_cooldown` — cold dispatches fail fast ([`DispatchOutcome::
//!   Unavailable`] → 503) instead of fork-bombing a crashing binary.
//!
//! Wall-clock enforcement lives in [`WorkerPool::dispatch`] itself: a
//! worker that blows `deadline + grace` is killed and reported with
//! cause `wallclock` (the in-worker deadline is cooperative; this one is
//! not).
//!
//! Per-key crash counts feed the serving layer's poison-pill quarantine:
//! the pool only *counts*; the caller decides when the count crosses the
//! threshold and writes the quarantine verdict into the synthesis cache.

use std::collections::{HashMap, VecDeque};
use std::io::{BufRead, BufReader, Read};
use std::process::{Child, ChildStdin, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use driver::json::{self, Json, ParseLimits};
use driver::Tier;

use crate::worker::{read_frame, write_frame, MAX_FRAME_BYTES};

/// `kill(2)` — the only libc entry point the supervisor needs, declared
/// raw like the signal hooks in the `rake-served` binary (std exposes
/// no way to send SIGKILL to a non-child-handle pid).
mod sys {
    extern "C" {
        fn kill(pid: i32, sig: i32) -> i32;
    }
    pub const SIGKILL: i32 = 9;

    pub fn kill_pid(pid: u32, sig: i32) {
        // Best-effort: the worker may already be gone.
        unsafe {
            let _ = kill(pid as i32, sig);
        }
    }
}

/// Pool configuration.
#[derive(Debug, Clone)]
pub struct PoolConfig {
    /// Worker subprocesses to keep alive.
    pub workers: usize,
    /// Program + arguments to exec per worker. The server passes its own
    /// binary with the single argument `worker`.
    pub worker_cmd: Vec<String>,
    /// Per-worker resident-set cap; past it the monitor kills the worker
    /// (cause `rss`). `None` disables the check.
    pub rss_limit_bytes: Option<u64>,
    /// Grace beyond a job's deadline before the supervisor kills the
    /// worker (cause `wallclock`). The in-worker deadline is cooperative
    /// and can be ignored by a wedged solver; this one cannot.
    pub job_grace: Duration,
    /// Absolute wall-clock cap for jobs dispatched without a deadline.
    pub max_job_wall: Duration,
    /// Exponential respawn backoff: base delay, doubling per consecutive
    /// failure on a slot, capped at `backoff_max`.
    pub backoff_base: Duration,
    /// Cap on the per-slot respawn delay.
    pub backoff_max: Duration,
    /// Restart-storm window (see module docs).
    pub storm_window: Duration,
    /// Respawns tolerated inside the window before the breaker opens.
    pub storm_limit: u32,
    /// How long the breaker stays open once tripped.
    pub storm_cooldown: Duration,
    /// Idle heartbeat interval.
    pub heartbeat: Duration,
}

impl Default for PoolConfig {
    fn default() -> PoolConfig {
        PoolConfig {
            workers: 2,
            worker_cmd: Vec::new(),
            rss_limit_bytes: Some(4 * 1024 * 1024 * 1024),
            job_grace: Duration::from_secs(5),
            max_job_wall: Duration::from_secs(660),
            backoff_base: Duration::from_millis(50),
            backoff_max: Duration::from_secs(5),
            storm_window: Duration::from_secs(10),
            storm_limit: 8,
            storm_cooldown: Duration::from_secs(5),
            heartbeat: Duration::from_secs(10),
        }
    }
}

/// One job for an isolated worker.
#[derive(Debug, Clone)]
pub struct WorkerJob {
    /// The synthesis cache key (crash accounting + forensics).
    pub key: String,
    /// The Halide expression, as an S-expression.
    pub expr: String,
    /// Lane count of the target geometry.
    pub lanes: usize,
    /// Ladder tier to compile at.
    pub tier: Tier,
    /// Cooperative in-worker budget from dispatch time.
    pub deadline: Option<Instant>,
    /// Chaos fault to inject in the worker (`abort` / `oom` /
    /// `sleep:<ms>`), when the server runs with the chaos plane enabled.
    pub fault: Option<String>,
}

/// What happened to a dispatched job.
#[derive(Debug)]
pub enum DispatchOutcome {
    /// The worker compiled it; S-expressions + stats, ready for the
    /// caller to parse back into a [`rake::Compiled`].
    Compiled(Box<WorkerArtifacts>),
    /// A deterministic [`rake::CompileError`], by cache name.
    Error(String),
    /// The worker caught a panic in-process (ordinary, non-lethal).
    Panicked(String),
    /// The worker *died* under this job. The report carries forensics
    /// and this key's running crash count.
    Crashed(CrashReport),
    /// No worker could take the job (restart-storm breaker open, or the
    /// pool never managed to spawn one). Callers answer 503.
    Unavailable(String),
    /// The dispatch was abandoned because the request's cancel flag rose
    /// (client gone). The worker was killed to reclaim its budget; the
    /// crash is not charged to the key.
    Cancelled,
}

/// A compiled reply, pre-parse.
#[derive(Debug)]
pub struct WorkerArtifacts {
    /// Lifted Uber-IR S-expression.
    pub uber: String,
    /// Synthesized HVX S-expression.
    pub hvx: String,
    /// Worker-side stats subset.
    pub stats: synth::SynthStats,
}

/// Why a worker died, for forensics and metrics labels.
#[derive(Debug, Clone)]
pub struct CrashReport {
    /// `signal`, `exit`, `wallclock`, `rss`, or `spawn`.
    pub cause: &'static str,
    /// Terminating signal, when the OS reported one.
    pub signal: Option<i32>,
    /// Exit code, for non-signal deaths.
    pub exit_code: Option<i32>,
    /// Last stderr lines the worker wrote before dying.
    pub stderr_tail: String,
    /// Crashes recorded against this job's key, this one included.
    pub crashes_for_key: u32,
}

impl CrashReport {
    /// One-line human summary (`signal 9`, `exit code 2`, ...).
    pub fn summary(&self) -> String {
        match (self.cause, self.signal, self.exit_code) {
            ("wallclock", ..) => "exceeded the wall-clock limit".to_owned(),
            ("rss", ..) => "exceeded the RSS limit".to_owned(),
            (_, Some(sig), _) => format!("killed by signal {sig}"),
            (_, None, Some(code)) => format!("exited with code {code}"),
            _ => "died".to_owned(),
        }
    }

    /// The metrics label for this crash (`signal_9`, `exit_2`, `rss`,
    /// `wallclock`, `spawn`).
    pub fn metric_cause(&self) -> String {
        match (self.cause, self.signal, self.exit_code) {
            ("rss" | "wallclock" | "spawn", ..) => self.cause.to_owned(),
            (_, Some(sig), _) => format!("signal_{sig}"),
            (_, None, Some(code)) => format!("exit_{code}"),
            _ => "unknown".to_owned(),
        }
    }
}

/// A live worker subprocess plus its reader plumbing.
struct WorkerProc {
    child: Child,
    pid: u32,
    stdin: ChildStdin,
    /// Replies parsed off the worker's stdout by its reader thread. A
    /// disconnect means the pipe closed — the worker is dead or dying.
    rx: Receiver<Json>,
    /// Ring of the worker's last stderr lines.
    stderr_tail: Arc<Mutex<VecDeque<String>>>,
    next_id: u64,
    last_used: Instant,
}

impl WorkerProc {
    fn forensics(&self) -> String {
        let tail = self.stderr_tail.lock().unwrap();
        tail.iter().cloned().collect::<Vec<_>>().join("\n")
    }
}

/// Slot lifecycle. `Busy` parks the process handle with the dispatching
/// thread; the slot records the pid + deadline so the monitor can still
/// police it.
enum Slot {
    Idle(Box<WorkerProc>),
    Busy {
        pid: u32,
        /// Kill past this instant (deadline + grace), cause `wallclock`.
        kill_at: Instant,
        /// Set by the monitor when *it* killed the worker, so the
        /// dispatcher reports the right cause.
        killed: Option<&'static str>,
    },
    /// No live process; respawn not before `retry_at`.
    Dead { retry_at: Instant, failures: u32 },
}

struct PoolState {
    slots: Vec<Slot>,
    /// Breaker-open horizon; `None` when closed.
    storm_open_until: Option<Instant>,
    /// Recent respawn instants, pruned to the storm window.
    respawns: VecDeque<Instant>,
    /// Per-key crash counts (the quarantine input).
    key_crashes: HashMap<String, u32>,
    shutting_down: bool,
}

/// Counters the pool exports (rendered by [`crate::metrics`]).
#[derive(Debug, Default)]
pub struct PoolCounters {
    /// Workers (re)started after the initial pre-fork.
    pub restarts: AtomicU64,
    /// Crashes by metric cause label.
    pub crashes: Mutex<HashMap<String, u64>>,
    /// Highest resident-set size observed on any worker, in bytes.
    pub rss_high_water: AtomicU64,
    /// Live worker processes right now.
    pub alive: AtomicU64,
}

/// The pool. One per server; shared behind `Arc`.
pub struct WorkerPool {
    config: PoolConfig,
    state: Mutex<PoolState>,
    cv: Condvar,
    counters: PoolCounters,
    monitor: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl WorkerPool {
    /// Pre-fork `config.workers` subprocesses and start the monitor.
    /// Spawn failures leave slots `Dead` (the monitor keeps retrying);
    /// the pool itself always constructs.
    pub fn start(config: PoolConfig) -> Arc<WorkerPool> {
        let workers = config.workers.max(1);
        let now = Instant::now();
        let mut slots = Vec::with_capacity(workers);
        for _ in 0..workers {
            slots.push(Slot::Dead { retry_at: now, failures: 0 });
        }
        let pool = Arc::new(WorkerPool {
            config,
            state: Mutex::new(PoolState {
                slots,
                storm_open_until: None,
                respawns: VecDeque::new(),
                key_crashes: HashMap::new(),
                shutting_down: false,
            }),
            cv: Condvar::new(),
            counters: PoolCounters::default(),
            monitor: Mutex::new(None),
        });
        // Bring the initial fleet up synchronously so the first request
        // does not race the monitor (initial spawns are not "restarts").
        {
            let mut st = pool.state.lock().unwrap();
            for i in 0..workers {
                match spawn_worker(&pool.config) {
                    Ok(proc_) => {
                        pool.counters.alive.fetch_add(1, Ordering::Relaxed);
                        st.slots[i] = Slot::Idle(Box::new(proc_));
                    }
                    Err(e) => {
                        eprintln!("rake-served: worker spawn failed: {e}");
                        st.slots[i] = Slot::Dead {
                            retry_at: Instant::now() + pool.config.backoff_base,
                            failures: 1,
                        };
                    }
                }
            }
        }
        let monitor_pool = Arc::clone(&pool);
        let handle = std::thread::Builder::new()
            .name("rake-served-supervisor".to_owned())
            .spawn(move || monitor_loop(&monitor_pool))
            .expect("spawn supervisor thread");
        *pool.monitor.lock().unwrap() = Some(handle);
        pool
    }

    /// Whether the restart-storm breaker is open right now.
    pub fn breaker_open(&self) -> bool {
        let st = self.state.lock().unwrap();
        st.storm_open_until.is_some_and(|until| Instant::now() < until)
    }

    /// The pool's exported counters.
    pub fn counters(&self) -> &PoolCounters {
        &self.counters
    }

    /// Snapshot the counters for `/metrics`.
    pub fn metrics_snapshot(&self) -> crate::metrics::WorkerSnapshot {
        let mut crashes: Vec<(String, u64)> = {
            let map = self.counters.crashes.lock().unwrap();
            map.iter().map(|(k, n)| (k.clone(), *n)).collect()
        };
        crashes.sort();
        crate::metrics::WorkerSnapshot {
            restarts: self.counters.restarts.load(Ordering::Relaxed),
            alive: self.counters.alive.load(Ordering::Relaxed),
            rss_high_water: self.counters.rss_high_water.load(Ordering::Relaxed),
            crashes,
        }
    }

    /// Live worker pids (tests kill these to prove containment).
    pub fn worker_pids(&self) -> Vec<u32> {
        let st = self.state.lock().unwrap();
        st.slots
            .iter()
            .filter_map(|s| match s {
                Slot::Idle(p) => Some(p.pid),
                Slot::Busy { pid, .. } => Some(*pid),
                Slot::Dead { .. } => None,
            })
            .collect()
    }

    /// Pids of workers currently executing a job. Tests poll this to
    /// know a dispatch has actually landed in a subprocess (instead of
    /// sleeping a guessed interval and hoping).
    pub fn busy_workers(&self) -> Vec<u32> {
        let st = self.state.lock().unwrap();
        st.slots
            .iter()
            .filter_map(|s| match s {
                Slot::Busy { pid, .. } => Some(*pid),
                Slot::Idle(_) | Slot::Dead { .. } => None,
            })
            .collect()
    }

    /// Crashes recorded against `key` so far.
    pub fn crashes_for(&self, key: &str) -> u32 {
        let st = self.state.lock().unwrap();
        st.key_crashes.get(key).copied().unwrap_or(0)
    }

    /// Run one job on an isolated worker, blocking until it concludes
    /// one way or another (see [`DispatchOutcome`] — this never panics
    /// and never blocks past the job's wall-clock cap + scheduling).
    pub fn dispatch(&self, job: &WorkerJob, cancel: Option<synth::CancelFlag>) -> DispatchOutcome {
        let kill_at = job
            .deadline
            .unwrap_or_else(|| Instant::now() + self.config.max_job_wall)
            + self.config.job_grace;
        let (slot_idx, mut proc_) = match self.claim_worker(kill_at, cancel) {
            Ok(claimed) => claimed,
            Err(outcome) => return outcome,
        };

        proc_.next_id += 1;
        let id = proc_.next_id;
        let mut fields = vec![
            ("id".to_owned(), id.into()),
            ("op".to_owned(), "compile".into()),
            ("expr".to_owned(), job.expr.as_str().into()),
            ("lanes".to_owned(), job.lanes.into()),
            ("tier".to_owned(), job.tier.name().into()),
            (
                "deadline_ms".to_owned(),
                job.deadline
                    .map_or(0u64, |d| {
                        d.saturating_duration_since(Instant::now()).as_millis() as u64
                    })
                    .into(),
            ),
            (
                "fault".to_owned(),
                match &job.fault {
                    Some(f) => Json::Str(f.clone()),
                    None => Json::Null,
                },
            ),
        ];
        // Span propagation across the process boundary: ship the current
        // span's identity plus our monotonic clock reading; the worker
        // aligns its clock to ours and parents its spans under this one,
        // so the request's trace stitches into a single tree.
        if trace::enabled() {
            if let Some(ctx) = trace::current() {
                fields.push(("trace".to_owned(), Json::Str(trace::fmt_id(ctx.trace_id))));
                fields.push(("parent_span".to_owned(), Json::Str(trace::fmt_id(ctx.span_id))));
                fields.push(("t_now_us".to_owned(), trace::now_us().into()));
            }
        }
        let frame = Json::Obj(fields);
        if write_frame(&mut proc_.stdin, &frame.to_string()).is_err() {
            // The pipe is already gone: the worker died between jobs.
            return self.conclude_crash(slot_idx, *proc_, job, "exit");
        }

        // Wait for the tagged reply, polling so cancellation and the
        // wall-clock cap stay responsive.
        loop {
            if synth::cancel::cancelled(cancel) {
                sys::kill_pid(proc_.pid, sys::SIGKILL);
                self.reap_cancelled(slot_idx, *proc_);
                return DispatchOutcome::Cancelled;
            }
            let now = Instant::now();
            if now >= kill_at {
                sys::kill_pid(proc_.pid, sys::SIGKILL);
                return self.conclude_crash(slot_idx, *proc_, job, "wallclock");
            }
            let wait = (kill_at - now).min(Duration::from_millis(100));
            match proc_.rx.recv_timeout(wait) {
                Ok(reply) => {
                    if reply.get("id").and_then(Json::as_i64) != Some(id as i64) {
                        continue; // stale pong or leftover from a prior job
                    }
                    ingest_reply_spans(&reply);
                    let outcome = parse_reply(&reply);
                    self.return_worker(slot_idx, proc_);
                    return outcome;
                }
                Err(RecvTimeoutError::Timeout) => {
                    // Did the monitor kill it under us (rss)?
                    let killed = {
                        let st = self.state.lock().unwrap();
                        match &st.slots[slot_idx] {
                            Slot::Busy { killed, .. } => *killed,
                            _ => None,
                        }
                    };
                    if let Some(cause) = killed {
                        return self.conclude_crash(slot_idx, *proc_, job, cause);
                    }
                }
                Err(RecvTimeoutError::Disconnected) => {
                    // Reader thread saw EOF: the worker is dead.
                    let killed = {
                        let st = self.state.lock().unwrap();
                        match &st.slots[slot_idx] {
                            Slot::Busy { killed, .. } => *killed,
                            _ => None,
                        }
                    };
                    return self.conclude_crash(slot_idx, *proc_, job, killed.unwrap_or("signal"));
                }
            }
        }
    }

    /// Graceful stop: close every worker's stdin (clean exit), join the
    /// monitor.
    pub fn shutdown(&self) {
        {
            let mut st = self.state.lock().unwrap();
            st.shutting_down = true;
            for slot in &mut st.slots {
                if let Slot::Idle(p) = slot {
                    sys::kill_pid(p.pid, sys::SIGKILL);
                }
                *slot = Slot::Dead { retry_at: Instant::now(), failures: 0 };
            }
        }
        self.cv.notify_all();
        if let Some(handle) = self.monitor.lock().unwrap().take() {
            let _ = handle.join();
        }
        self.counters.alive.store(0, Ordering::Relaxed);
    }

    /// Block until an idle worker is available, claim it, and mark the
    /// slot `Busy`. Fails fast with `Unavailable` when the breaker is
    /// open and no worker is already idle.
    fn claim_worker(
        &self,
        kill_at: Instant,
        cancel: Option<synth::CancelFlag>,
    ) -> Result<(usize, Box<WorkerProc>), DispatchOutcome> {
        let mut st = self.state.lock().unwrap();
        loop {
            if st.shutting_down {
                return Err(DispatchOutcome::Unavailable("shutting down".to_owned()));
            }
            if let Some(idx) = st.slots.iter().position(|s| matches!(s, Slot::Idle(_))) {
                let slot = std::mem::replace(
                    &mut st.slots[idx],
                    Slot::Busy { pid: 0, kill_at, killed: None },
                );
                let Slot::Idle(proc_) = slot else { unreachable!() };
                st.slots[idx] = Slot::Busy { pid: proc_.pid, kill_at, killed: None };
                return Ok((idx, proc_));
            }
            let storm_open = st.storm_open_until.is_some_and(|until| Instant::now() < until);
            let all_dead = st.slots.iter().all(|s| matches!(s, Slot::Dead { .. }));
            if storm_open && all_dead {
                return Err(DispatchOutcome::Unavailable(
                    "worker pool in restart-storm cooldown".to_owned(),
                ));
            }
            if synth::cancel::cancelled(cancel) {
                return Err(DispatchOutcome::Cancelled);
            }
            if Instant::now() >= kill_at {
                return Err(DispatchOutcome::Unavailable(
                    "no worker became available within the job budget".to_owned(),
                ));
            }
            let (guard, _) = self.cv.wait_timeout(st, Duration::from_millis(50)).unwrap();
            st = guard;
        }
    }

    /// Put a healthy worker back in its slot.
    fn return_worker(&self, idx: usize, mut proc_: Box<WorkerProc>) {
        proc_.last_used = Instant::now();
        let mut st = self.state.lock().unwrap();
        st.slots[idx] = Slot::Idle(proc_);
        drop(st);
        self.cv.notify_one();
    }

    /// A worker died under `job`: reap it, record forensics, charge the
    /// key, schedule the slot's respawn, and build the outcome.
    fn conclude_crash(
        &self,
        idx: usize,
        mut proc_: WorkerProc,
        job: &WorkerJob,
        cause_hint: &'static str,
    ) -> DispatchOutcome {
        // Give a just-killed process a beat to be reapable, then collect
        // its status for the signal/exit-code forensics.
        let status = wait_reap(&mut proc_.child, Duration::from_secs(2));
        let (signal, exit_code) = match status {
            Some(status) => {
                #[cfg(unix)]
                {
                    use std::os::unix::process::ExitStatusExt;
                    (status.signal(), status.code())
                }
                #[cfg(not(unix))]
                (None, status.code())
            }
            None => (None, None),
        };
        let stderr_tail = proc_.forensics();
        self.counters.alive.fetch_sub(1, Ordering::Relaxed);

        let mut st = self.state.lock().unwrap();
        let crashes_for_key = {
            let n = st.key_crashes.entry(job.key.clone()).or_insert(0);
            *n += 1;
            *n
        };
        let failures = match &st.slots[idx] {
            Slot::Dead { failures, .. } => *failures + 1,
            _ => 1,
        };
        let delay = backoff_delay(self.config.backoff_base, self.config.backoff_max, failures);
        st.slots[idx] = Slot::Dead { retry_at: Instant::now() + delay, failures };
        drop(st);
        self.cv.notify_all();

        let cause = match (cause_hint, signal) {
            ("wallclock" | "rss" | "spawn", _) => cause_hint,
            (_, Some(_)) => "signal",
            _ => "exit",
        };
        let report = CrashReport { cause, signal, exit_code, stderr_tail, crashes_for_key };
        let mut crashes = self.counters.crashes.lock().unwrap();
        *crashes.entry(report.metric_cause()).or_insert(0) += 1;
        drop(crashes);
        DispatchOutcome::Crashed(report)
    }

    /// A dispatch abandoned by cancellation killed its worker; recycle
    /// the slot without charging anyone.
    fn reap_cancelled(&self, idx: usize, mut proc_: WorkerProc) {
        let _ = wait_reap(&mut proc_.child, Duration::from_secs(2));
        self.counters.alive.fetch_sub(1, Ordering::Relaxed);
        let mut st = self.state.lock().unwrap();
        st.slots[idx] = Slot::Dead { retry_at: Instant::now(), failures: 0 };
        drop(st);
        self.cv.notify_all();
    }
}

/// Exponential backoff with a cap: `base * 2^(failures-1)`, saturating.
fn backoff_delay(base: Duration, max: Duration, failures: u32) -> Duration {
    let shift = failures.saturating_sub(1).min(16);
    base.saturating_mul(1u32 << shift).min(max)
}

/// `try_wait` with a bounded grace for the exit status to land.
fn wait_reap(child: &mut Child, grace: Duration) -> Option<std::process::ExitStatus> {
    let deadline = Instant::now() + grace;
    loop {
        match child.try_wait() {
            Ok(Some(status)) => return Some(status),
            Ok(None) if Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(10));
            }
            _ => return None,
        }
    }
}

/// Spawn one worker subprocess and its stdout/stderr reader threads.
fn spawn_worker(config: &PoolConfig) -> std::io::Result<WorkerProc> {
    let (program, args) = match config.worker_cmd.split_first() {
        Some((p, rest)) => (p.clone(), rest.to_vec()),
        None => {
            let exe = std::env::current_exe()?;
            (exe.to_string_lossy().into_owned(), vec!["worker".to_owned()])
        }
    };
    let mut child = Command::new(&program)
        .args(&args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()?;
    let pid = child.id();
    let stdin = child.stdin.take().expect("piped stdin");
    let stdout = child.stdout.take().expect("piped stdout");
    let stderr = child.stderr.take().expect("piped stderr");

    let (tx, rx): (Sender<Json>, Receiver<Json>) = std::sync::mpsc::channel();
    std::thread::Builder::new()
        .name(format!("rake-served-worker-{pid}-out"))
        .spawn(move || read_replies(stdout, &tx))
        .expect("spawn worker reader");

    let stderr_tail: Arc<Mutex<VecDeque<String>>> = Arc::new(Mutex::new(VecDeque::new()));
    let tail = Arc::clone(&stderr_tail);
    std::thread::Builder::new()
        .name(format!("rake-served-worker-{pid}-err"))
        .spawn(move || {
            let reader = BufReader::new(stderr);
            for line in reader.lines() {
                let Ok(line) = line else { break };
                let mut tail = tail.lock().unwrap();
                if tail.len() >= 20 {
                    tail.pop_front();
                }
                tail.push_back(line);
            }
        })
        .expect("spawn worker stderr reader");

    Ok(WorkerProc {
        child,
        pid,
        stdin,
        rx,
        stderr_tail,
        next_id: 0,
        last_used: Instant::now(),
    })
}

/// Worker stdout → parsed reply frames, until EOF. Dropping the sender
/// on exit is the death signal dispatchers listen for.
fn read_replies(stdout: impl Read, tx: &Sender<Json>) {
    let mut reader = BufReader::new(stdout);
    let limits = ParseLimits { max_depth: 64, max_bytes: MAX_FRAME_BYTES };
    while let Ok(Some(payload)) = read_frame(&mut reader) {
        let Ok(text) = String::from_utf8(payload) else { break };
        let Ok(reply) = json::parse_with_limits(&text, limits) else { break };
        if tx.send(reply).is_err() {
            break;
        }
    }
}

/// Re-publish the worker-side spans a reply carries into this process's
/// trace ring, so the request's export sees one stitched tree. Worker
/// span IDs are pid-seeded and cannot collide with ours; timestamps were
/// already aligned to our clock worker-side. Names arrive as strings and
/// are interned (a bounded leak: the span vocabulary is finite).
fn ingest_reply_spans(reply: &Json) {
    if !trace::enabled() {
        return;
    }
    let Some(spans) = reply.get("spans").and_then(Json::as_arr) else { return };
    for s in spans {
        let id = |k: &str| s.get(k).and_then(Json::as_str).and_then(trace::parse_id);
        let num = |k: &str| s.get(k).and_then(Json::as_i64).map_or(0, |n| n.max(0) as u64);
        let (Some(trace_id), Some(span_id)) = (id("trace"), id("span")) else { continue };
        let mut args = Vec::new();
        if let Some(Json::Obj(fields)) = s.get("args") {
            for (k, v) in fields {
                let key = trace::intern(k);
                match v {
                    Json::Str(t) => args.push((key, trace::ArgValue::Str(t.clone()))),
                    Json::Bool(b) => args.push((key, trace::ArgValue::Bool(*b))),
                    Json::Num(_) => {
                        if let Some(n) = v.as_i64() {
                            args.push((key, trace::ArgValue::I64(n)));
                        }
                    }
                    _ => {}
                }
            }
        }
        trace::submit(trace::SpanRecord {
            seq: num("seq"),
            trace_id,
            span_id,
            parent_id: id("parent").unwrap_or(0),
            name: trace::intern(s.get("name").and_then(Json::as_str).unwrap_or("worker.span")),
            cat: trace::intern(s.get("cat").and_then(Json::as_str).unwrap_or("worker")),
            start_us: num("start_us"),
            dur_us: num("dur_us"),
            pid: num("pid") as u32,
            args,
        });
    }
}

fn parse_reply(reply: &Json) -> DispatchOutcome {
    match reply.get("status").and_then(Json::as_str) {
        Some("compiled") => {
            let uber = reply.get("uber").and_then(Json::as_str).unwrap_or("").to_owned();
            let hvx = reply.get("hvx").and_then(Json::as_str).unwrap_or("").to_owned();
            let stats = reply.get("stats");
            let count = |name: &str| {
                stats
                    .and_then(|s| s.get(name))
                    .and_then(Json::as_i64)
                    .map_or(0, |n| n.max(0) as u64)
            };
            DispatchOutcome::Compiled(Box::new(WorkerArtifacts {
                uber,
                hvx,
                stats: synth::SynthStats {
                    lifting_queries: count("lifting_queries"),
                    sketching_queries: count("sketching_queries"),
                    swizzling_queries: count("swizzling_queries"),
                    smt_queries: count("smt_queries"),
                    verdict_cache_hits: count("verdict_cache_hits"),
                    env_cache_hits: count("env_cache_hits"),
                    deadline_exceeded: stats
                        .and_then(|s| s.get("deadline_exceeded"))
                        .and_then(Json::as_bool)
                        .unwrap_or(false),
                    ..synth::SynthStats::default()
                },
            }))
        }
        Some("error") => DispatchOutcome::Error(
            reply.get("error").and_then(Json::as_str).unwrap_or("lower_failed").to_owned(),
        ),
        Some("panicked") => DispatchOutcome::Panicked(
            reply.get("detail").and_then(Json::as_str).unwrap_or("worker panic").to_owned(),
        ),
        other => DispatchOutcome::Panicked(format!("unintelligible worker reply ({other:?})")),
    }
}

/// Resident-set size of a pid in bytes, from `/proc/<pid>/statm`
/// (resident pages × 4096). `None` off-Linux or once the pid is gone.
fn rss_bytes(pid: u32) -> Option<u64> {
    let statm = std::fs::read_to_string(format!("/proc/{pid}/statm")).ok()?;
    let resident_pages: u64 = statm.split_whitespace().nth(1)?.parse().ok()?;
    Some(resident_pages * 4096)
}

/// The supervision loop: reap, respawn (with storm accounting), police
/// RSS, heartbeat idle workers. Exits when the pool shuts down.
fn monitor_loop(pool: &Arc<WorkerPool>) {
    loop {
        std::thread::sleep(Duration::from_millis(150));
        let mut st = pool.state.lock().unwrap();
        if st.shutting_down {
            return;
        }
        let now = Instant::now();

        // Storm accounting first: prune the window, maybe close the
        // breaker again.
        while st.respawns.front().is_some_and(|t| now - *t > pool.config.storm_window) {
            st.respawns.pop_front();
        }
        if st.storm_open_until.is_some_and(|until| now >= until) {
            st.storm_open_until = None;
            st.respawns.clear();
        }
        let breaker_open = st.storm_open_until.is_some();

        for idx in 0..st.slots.len() {
            // Idle: reap between-jobs deaths, police RSS, heartbeat.
            // (Scoped borrow of the slot; the Dead reassignment happens
            // after it ends.)
            let mut idle_died = false;
            if let Slot::Idle(proc_) = &mut st.slots[idx] {
                if proc_.child.try_wait().ok().flatten().is_some() {
                    idle_died = true;
                } else {
                    if let (Some(limit), Some(rss)) =
                        (pool.config.rss_limit_bytes, rss_bytes(proc_.pid))
                    {
                        pool.counters.rss_high_water.fetch_max(rss, Ordering::Relaxed);
                        if rss > limit {
                            sys::kill_pid(proc_.pid, sys::SIGKILL);
                            // Reaped as an idle death on the next tick.
                            continue;
                        }
                    }
                    // Heartbeat: an idle worker whose pipe rejects a ping
                    // is dead pipe-wise; the reaper collects it next tick.
                    if now.duration_since(proc_.last_used) >= pool.config.heartbeat {
                        proc_.last_used = now;
                        proc_.next_id += 1;
                        let ping = Json::obj([
                            ("id", proc_.next_id.into()),
                            ("op", "ping".into()),
                        ]);
                        let _ = write_frame(&mut proc_.stdin, &ping.to_string());
                    }
                    continue;
                }
            }
            if idle_died {
                pool.counters.alive.fetch_sub(1, Ordering::Relaxed);
                let mut crashes = pool.counters.crashes.lock().unwrap();
                *crashes.entry("idle_exit".to_owned()).or_insert(0) += 1;
                drop(crashes);
                st.slots[idx] =
                    Slot::Dead { retry_at: now + pool.config.backoff_base, failures: 1 };
                continue;
            }

            if let Slot::Busy { pid, kill_at, killed } = &mut st.slots[idx] {
                let pid = *pid;
                if now >= *kill_at && killed.is_none() {
                    *killed = Some("wallclock");
                    sys::kill_pid(pid, sys::SIGKILL);
                } else if let (Some(limit), Some(rss)) =
                    (pool.config.rss_limit_bytes, rss_bytes(pid))
                {
                    pool.counters.rss_high_water.fetch_max(rss, Ordering::Relaxed);
                    if rss > limit && killed.is_none() {
                        *killed = Some("rss");
                        sys::kill_pid(pid, sys::SIGKILL);
                    }
                }
                continue;
            }

            let (retry_at, failures) = match &st.slots[idx] {
                Slot::Dead { retry_at, failures } => (*retry_at, *failures),
                _ => continue,
            };
            if breaker_open || now < retry_at {
                continue;
            }
            if st.respawns.len() as u32 >= pool.config.storm_limit {
                st.storm_open_until = Some(now + pool.config.storm_cooldown);
                eprintln!(
                    "rake-served: worker restart storm ({} respawns in {:?}); breaker open for {:?}",
                    st.respawns.len(),
                    pool.config.storm_window,
                    pool.config.storm_cooldown,
                );
                continue;
            }
            match spawn_worker(&pool.config) {
                Ok(proc_) => {
                    st.respawns.push_back(now);
                    pool.counters.restarts.fetch_add(1, Ordering::Relaxed);
                    pool.counters.alive.fetch_add(1, Ordering::Relaxed);
                    st.slots[idx] = Slot::Idle(Box::new(proc_));
                    pool.cv.notify_one();
                }
                Err(e) => {
                    eprintln!("rake-served: worker respawn failed: {e}");
                    let mut crashes = pool.counters.crashes.lock().unwrap();
                    *crashes.entry("spawn".to_owned()).or_insert(0) += 1;
                    drop(crashes);
                    let failures = failures + 1;
                    st.slots[idx] = Slot::Dead {
                        retry_at: now
                            + backoff_delay(
                                pool.config.backoff_base,
                                pool.config.backoff_max,
                                failures,
                            ),
                        failures,
                    };
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_and_caps() {
        let base = Duration::from_millis(50);
        let max = Duration::from_secs(5);
        assert_eq!(backoff_delay(base, max, 1), Duration::from_millis(50));
        assert_eq!(backoff_delay(base, max, 2), Duration::from_millis(100));
        assert_eq!(backoff_delay(base, max, 4), Duration::from_millis(400));
        assert_eq!(backoff_delay(base, max, 30), max, "cap holds for huge failure counts");
    }

    #[test]
    fn crash_report_labels_and_summaries() {
        let sig = CrashReport {
            cause: "signal",
            signal: Some(9),
            exit_code: None,
            stderr_tail: String::new(),
            crashes_for_key: 1,
        };
        assert_eq!(sig.metric_cause(), "signal_9");
        assert_eq!(sig.summary(), "killed by signal 9");
        let rss = CrashReport { cause: "rss", ..sig.clone() };
        assert_eq!(rss.metric_cause(), "rss");
        assert_eq!(rss.summary(), "exceeded the RSS limit");
        let exit = CrashReport { cause: "exit", signal: None, exit_code: Some(2), ..sig.clone() };
        assert_eq!(exit.metric_cause(), "exit_2");
        assert_eq!(exit.summary(), "exited with code 2");
    }

    #[test]
    fn reply_parsing_covers_all_statuses() {
        let compiled = json::parse(
            r#"{"id":1,"status":"compiled","uber":"(u)","hvx":"(h)","stats":{"smt_queries":3}}"#,
        )
        .unwrap();
        let DispatchOutcome::Compiled(art) = parse_reply(&compiled) else {
            panic!("compiled reply must parse as Compiled")
        };
        assert_eq!(art.uber, "(u)");
        assert_eq!(art.hvx, "(h)");
        assert_eq!(art.stats.smt_queries, 3);

        let err = json::parse(r#"{"id":2,"status":"error","error":"not_qualifying"}"#).unwrap();
        assert!(matches!(parse_reply(&err), DispatchOutcome::Error(e) if e == "not_qualifying"));
        let pan = json::parse(r#"{"id":3,"status":"panicked","detail":"boom"}"#).unwrap();
        assert!(matches!(parse_reply(&pan), DispatchOutcome::Panicked(d) if d == "boom"));
        let junk = json::parse(r#"{"id":4}"#).unwrap();
        assert!(matches!(parse_reply(&junk), DispatchOutcome::Panicked(_)));
    }

    #[test]
    fn dead_pool_without_breaker_reports_unavailable_on_deadline() {
        // A pool whose worker command cannot spawn: every slot stays
        // Dead; a dispatch with an immediate deadline fails fast as
        // Unavailable rather than hanging.
        let pool = WorkerPool::start(PoolConfig {
            workers: 1,
            worker_cmd: vec!["/nonexistent/rake-worker-binary".to_owned()],
            backoff_base: Duration::from_millis(10),
            ..PoolConfig::default()
        });
        let job = WorkerJob {
            key: "k".to_owned(),
            expr: "(x)".to_owned(),
            lanes: 8,
            tier: Tier::Full,
            deadline: Some(Instant::now() + Duration::from_millis(200)),
            fault: None,
        };
        let outcome = pool.dispatch(&job, None);
        assert!(
            matches!(outcome, DispatchOutcome::Unavailable(_)),
            "got {outcome:?} from a pool that cannot spawn workers"
        );
        pool.shutdown();
    }
}
