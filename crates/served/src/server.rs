//! The compilation server: accept loop, admission control, request
//! routing, and the `/compile` pipeline over [`driver::Driver`].
//!
//! ## Architecture
//!
//! One thread per connection (requests are seconds-long synthesis runs;
//! connection counts are small), with three shared structures behind
//! `Arc`: the content-addressed [`SynthCache`], the [`Metrics`] registry,
//! and the admission [`Gate`]. Each `/compile` request builds a
//! short-lived [`driver::Driver`] around a clone of the lane-width's base
//! [`rake::Rake`] — cloning shares the selector's memo tables, so every
//! connection warms the same SMT-proof and verdict caches — and hands it
//! the shared cache plus an event sink into the registry.
//!
//! ## Admission
//!
//! A fixed number of compile permits bounds concurrent synthesis; a
//! bounded wait queue sits in front of the permits, and everything past
//! it is answered `429 Too Many Requests` with `Retry-After`. The
//! process-wide [`synth::pool`] thread budget is set once at startup
//! (per-request drivers run with `manage_thread_budget: false`), so a
//! request cannot resize the global cap under its neighbors.
//!
//! ## Cancellation
//!
//! While a compile runs, a monitor thread `peek`s the connection; when
//! the client vanishes, it raises the request's [`synth::cancel`] flag
//! and the synthesis stops at its next deadline-check point, freeing the
//! permit for the next request.

use std::collections::HashSet;
use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use driver::cache::SynthCache;
use driver::event::DriverEvent;
use driver::json::{self, Json, ParseLimits};
use driver::{CacheLimits, Driver, DriverConfig, JobOutcome, Journal, Tier};
use halide_ir::Expr;
use hvx::SlotBudget;
use rake::{CompileError, Compiled, Rake, Target};

use crate::http::{read_request_deadline, ReadError, Request, Response};
use crate::metrics::{CacheSnapshot, Endpoint, Metrics};
use crate::supervisor::{DispatchOutcome, PoolConfig, WorkerJob, WorkerPool};

/// Hard cap on expressions per `/compile` request.
pub const MAX_EXPRS_PER_REQUEST: usize = 64;

/// Hard cap on S-expression paren nesting (the S-expression parser is
/// recursive; this is its stack guard, mirroring the JSON depth limit).
pub const MAX_SEXPR_DEPTH: usize = 256;

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port (see
    /// [`ServerHandle::addr`]).
    pub addr: String,
    /// Concurrent compile permits (requests synthesizing at once).
    pub permits: usize,
    /// Admission queue slots in front of the permits; a request arriving
    /// with the queue full is answered 429 immediately.
    pub queue_slots: usize,
    /// How long a queued request waits for a permit before giving up
    /// with 429.
    pub queue_wait: Duration,
    /// `Content-Length` cap; larger requests are answered 413.
    pub max_body_bytes: usize,
    /// Default per-job synthesis budget when the request does not send
    /// `timeout_ms`.
    pub default_timeout: Option<Duration>,
    /// Hard ceiling on the per-request `timeout_ms` knob.
    pub max_timeout: Duration,
    /// Directory for the persistent synthesis cache (also the warm-start
    /// source after a restart). `None` keeps the cache in memory.
    pub cache_dir: Option<PathBuf>,
    /// In-memory synthesis-cache entry cap (cost-aware LRU eviction past
    /// it). `None` is unbounded.
    pub cache_max_entries: Option<usize>,
    /// In-memory synthesis-cache byte cap, measured over serialized entry
    /// sizes. `None` is unbounded.
    pub cache_max_bytes: Option<usize>,
    /// Size threshold on the cache's append-only segment log; a persist
    /// that leaves the log above it folds log + snapshot into a fresh
    /// snapshot.
    pub cache_log_compact_bytes: u64,
    /// JSONL event journal (the driver's write-ahead log). `None`
    /// disables journaling. One [`driver::Journal`] handle is shared by
    /// every request, so size-triggered rotation is safe.
    pub log_path: Option<PathBuf>,
    /// Rotate the shared journal once it exceeds this many bytes,
    /// folding it into one replay record per key. `None` never rotates.
    pub journal_rotate_bytes: Option<u64>,
    /// Upper bound on remembered timeout verdicts (oldest evicted past
    /// it). Zero disables the bound.
    pub verdict_cache_cap: usize,
    /// How long a timed-out synthesis verdict is served from memory
    /// before the same expression (under identical knobs) is allowed to
    /// burn a fresh budget. Timeouts are budget-dependent, so the
    /// synthesis cache refuses to store them — but a server replaying a
    /// 30-second dead end for every repeat of a hard expression would
    /// starve its permits. `Duration::ZERO` disables the verdict cache.
    pub timeout_verdict_ttl: Duration,
    /// Per-connection idle read timeout.
    pub idle_timeout: Duration,
    /// Slow-loris guard: once a request's first byte arrives, the whole
    /// request (line + headers + body) must land within this window or
    /// the connection is answered 408. `None` disables the deadline
    /// (the idle timeout still bounds fully-silent peers).
    pub read_timeout: Option<Duration>,
    /// Process-wide [`synth::pool`] thread budget, set once at startup.
    pub thread_budget: usize,
    /// How long [`ServerHandle::shutdown`] waits for in-flight work.
    pub drain_timeout: Duration,
    /// Run synthesis in isolated worker subprocesses ([`WorkerPool`])
    /// instead of in-process. Worker deaths then fail only their own
    /// jobs.
    pub isolate: bool,
    /// Worker subprocesses to pre-fork under `isolate`; zero means "as
    /// many as `permits`".
    pub pool_workers: usize,
    /// Program + args to exec per worker; `None` re-execs the server's
    /// own binary in hidden `worker` mode. (Tests override this because
    /// `current_exe` is the test harness there.)
    pub worker_cmd: Option<Vec<String>>,
    /// Per-worker resident-set cap, enforced by the supervisor with
    /// SIGKILL. `None` disables the check.
    pub worker_rss_limit: Option<u64>,
    /// Grace past a job's deadline before the supervisor kills its
    /// worker.
    pub worker_grace: Duration,
    /// Worker crashes a single key may cause before it is quarantined as
    /// a poison pill.
    pub crash_threshold: u32,
    /// How long a quarantined key stays poisoned; `None` is forever.
    pub quarantine_ttl: Option<Duration>,
    /// Accept the per-request `chaos` field (fault injection inside
    /// workers). Test/benchmark plumbing; off by default.
    pub chaos: bool,
    /// Directory for per-request Chrome trace-event exports
    /// (`trace-<id>.json`, schema `rake-trace-v1`). Setting it turns the
    /// tracer on; every `/compile` response then echoes its `trace_id`.
    pub trace_out: Option<PathBuf>,
    /// Slow-span threshold in milliseconds: spans at or over it are
    /// logged to stderr after each request. Setting it turns the tracer
    /// on even without `trace_out`.
    pub trace_slow_ms: Option<u64>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(2);
        ServerConfig {
            addr: "127.0.0.1:8347".to_owned(),
            permits: cores.clamp(1, 4),
            queue_slots: 16,
            queue_wait: Duration::from_secs(5),
            max_body_bytes: 256 * 1024,
            default_timeout: Some(Duration::from_secs(30)),
            max_timeout: Duration::from_secs(600),
            cache_dir: None,
            cache_max_entries: None,
            cache_max_bytes: None,
            cache_log_compact_bytes: CacheLimits::default().log_compact_bytes,
            log_path: None,
            journal_rotate_bytes: Some(8 * 1024 * 1024),
            verdict_cache_cap: 1024,
            timeout_verdict_ttl: Duration::from_secs(300),
            idle_timeout: Duration::from_secs(60),
            read_timeout: Some(Duration::from_secs(10)),
            thread_budget: cores,
            drain_timeout: Duration::from_secs(30),
            isolate: false,
            pool_workers: 0,
            worker_cmd: None,
            worker_rss_limit: Some(4 * 1024 * 1024 * 1024),
            worker_grace: Duration::from_secs(5),
            crash_threshold: 2,
            quarantine_ttl: Some(Duration::from_secs(3600)),
            chaos: false,
            trace_out: None,
            trace_slow_ms: None,
        }
    }
}

/// Admission outcome.
enum Admission {
    /// A permit, released on drop.
    Granted(Permit),
    /// Queue full or permit wait timed out.
    Busy,
}

/// Compile-permit gate: `permits` concurrent holders, at most
/// `queue_slots` waiters.
struct Gate {
    state: Mutex<GateState>,
    cv: Condvar,
    permits: usize,
    queue_slots: usize,
    queue_wait: Duration,
}

struct GateState {
    active: usize,
    waiting: usize,
}

impl Gate {
    fn new(permits: usize, queue_slots: usize, queue_wait: Duration) -> Gate {
        Gate {
            state: Mutex::new(GateState { active: 0, waiting: 0 }),
            cv: Condvar::new(),
            permits: permits.max(1),
            queue_slots,
            queue_wait,
        }
    }

    fn acquire(self: &Arc<Gate>, metrics: &Metrics) -> Admission {
        let mut st = self.state.lock().unwrap();
        if st.active < self.permits {
            st.active += 1;
            return Admission::Granted(Permit { gate: Arc::clone(self) });
        }
        if st.waiting >= self.queue_slots {
            return Admission::Busy;
        }
        st.waiting += 1;
        metrics.queue_changed(1);
        let deadline = Instant::now() + self.queue_wait;
        loop {
            let now = Instant::now();
            if st.active < self.permits {
                st.waiting -= 1;
                metrics.queue_changed(-1);
                st.active += 1;
                return Admission::Granted(Permit { gate: Arc::clone(self) });
            }
            if now >= deadline {
                st.waiting -= 1;
                metrics.queue_changed(-1);
                return Admission::Busy;
            }
            let (guard, _) = self.cv.wait_timeout(st, deadline - now).unwrap();
            st = guard;
        }
    }
}

/// RAII compile permit.
struct Permit {
    gate: Arc<Gate>,
}

impl Drop for Permit {
    fn drop(&mut self) {
        let mut st = self.gate.state.lock().unwrap();
        st.active -= 1;
        drop(st);
        self.gate.cv.notify_one();
    }
}

/// Cross-request single-flight registry: at most one request compiles a
/// given cache key at a time; later arrivals wait, then hit the cache.
#[derive(Default)]
struct InFlight {
    keys: Mutex<HashSet<String>>,
    cv: Condvar,
}

impl InFlight {
    /// Block until none of `keys` is being compiled elsewhere, then claim
    /// them. Callers MUST hold a compile permit (so a claim-holder always
    /// makes progress) and must call [`InFlight::release`] afterwards.
    fn claim(&self, keys: &[String]) {
        let mut held = self.keys.lock().unwrap();
        loop {
            if keys.iter().all(|k| !held.contains(k)) {
                for k in keys {
                    held.insert(k.clone());
                }
                return;
            }
            held = self.cv.wait(held).unwrap();
        }
    }

    fn release(&self, keys: &[String]) {
        let mut held = self.keys.lock().unwrap();
        for k in keys {
            held.remove(k);
        }
        drop(held);
        self.cv.notify_all();
    }
}

/// TTL memory for timed-out synthesis verdicts, keyed by cache key plus
/// a fingerprint of the request knobs (tiers, budget, validate). The
/// [`SynthCache`] deliberately refuses timeouts — they are verdicts
/// about a budget, not about the expression — so without this layer
/// every repeat of a hard expression would re-burn its full budget and
/// starve the admission gate. Entries expire after the TTL, letting the
/// expression retry on a quieter server; past `cap` entries the oldest
/// is evicted.
struct VerdictCache {
    ttl: Duration,
    /// Entry cap; zero disables the bound.
    cap: usize,
    evictions: AtomicU64,
    entries: Mutex<std::collections::HashMap<String, (Instant, Json)>>,
}

impl VerdictCache {
    fn new(ttl: Duration, cap: usize) -> VerdictCache {
        VerdictCache {
            ttl,
            cap,
            evictions: AtomicU64::new(0),
            entries: Mutex::new(std::collections::HashMap::new()),
        }
    }

    /// A still-fresh remembered verdict, if any.
    fn get(&self, key: &str) -> Option<Json> {
        if self.ttl.is_zero() {
            return None;
        }
        let entries = self.entries.lock().unwrap();
        let (at, verdict) = entries.get(key)?;
        (at.elapsed() < self.ttl).then(|| verdict.clone())
    }

    fn put(&self, key: String, verdict: Json) {
        if self.ttl.is_zero() {
            return;
        }
        let mut entries = self.entries.lock().unwrap();
        entries.retain(|_, (at, _)| at.elapsed() < self.ttl);
        if self.cap > 0 && entries.len() >= self.cap {
            if let Some(oldest) = entries
                .iter()
                .min_by_key(|(_, (at, _))| *at)
                .map(|(k, _)| k.clone())
            {
                entries.remove(&oldest);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        entries.insert(key, (Instant::now(), verdict));
    }

    /// Verdicts currently remembered (expired-but-unswept included).
    fn len(&self) -> usize {
        self.entries.lock().unwrap().len()
    }

    fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }
}

/// State shared by every connection thread.
struct Shared {
    config: ServerConfig,
    cache: Arc<SynthCache>,
    /// The one journal handle every request appends through (rotation
    /// assumes a single writer). `None` when journaling is disabled.
    journal: Option<Arc<Journal>>,
    metrics: Arc<Metrics>,
    gate: Arc<Gate>,
    inflight: InFlight,
    verdicts: VerdictCache,
    /// Base selector per lane width; cloned per request so every
    /// connection shares one memo handle per geometry.
    rakes: Mutex<std::collections::HashMap<usize, Rake>>,
    /// The isolated worker pool; `Some` only under `--isolate`.
    pool: Option<Arc<WorkerPool>>,
    draining: AtomicBool,
    connections: AtomicUsize,
    started: Instant,
}

impl Shared {
    fn base_rake(&self, lanes: usize) -> Rake {
        let vec_bytes = 128.min(lanes.max(8));
        self.rakes
            .lock()
            .unwrap()
            .entry(lanes)
            .or_insert_with(|| Rake::new(Target { lanes, vec_bytes }))
            .clone()
    }

    fn cache_snapshot(&self) -> CacheSnapshot {
        let stats = self.cache.stats();
        let (snapshot_bytes, log_bytes) = self.cache.disk_bytes();
        CacheSnapshot {
            hits: stats.hits,
            misses: stats.misses,
            floor_misses: stats.floor_misses,
            entries: self.cache.len(),
            mem_bytes: self.cache.total_bytes(),
            loaded: stats.loaded,
            evicted: stats.evicted,
            appended: stats.appended,
            compactions: stats.compactions,
            snapshot_bytes,
            log_bytes,
            verdict_entries: self.verdicts.len(),
            verdict_evictions: self.verdicts.evictions(),
            journal_bytes: self.journal.as_ref().map_or(0, |j| j.bytes()),
            journal_rotations: self.journal.as_ref().map_or(0, |j| j.rotations()),
            quarantined: self.cache.quarantined_count(),
        }
    }
}

/// A running server. Dropping the handle does NOT stop the server; call
/// [`ServerHandle::shutdown`].
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept_join: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The metrics registry (shared with every connection).
    pub fn metrics(&self) -> Arc<Metrics> {
        Arc::clone(&self.shared.metrics)
    }

    /// The shared synthesis cache.
    pub fn cache(&self) -> Arc<SynthCache> {
        Arc::clone(&self.shared.cache)
    }

    /// Live worker pids under `--isolate` (tests kill these to prove
    /// containment); empty in-process.
    pub fn worker_pids(&self) -> Vec<u32> {
        self.shared.pool.as_ref().map(|p| p.worker_pids()).unwrap_or_default()
    }

    /// Pids of workers currently executing a job; empty in-process.
    /// Lets tests wait for a dispatch to land instead of sleeping.
    pub fn busy_workers(&self) -> Vec<u32> {
        self.shared.pool.as_ref().map(|p| p.busy_workers()).unwrap_or_default()
    }

    /// Graceful drain: stop accepting, let in-flight requests finish (up
    /// to [`ServerConfig::drain_timeout`]), persist the cache, return.
    pub fn shutdown(mut self) {
        self.shared.draining.store(true, Ordering::SeqCst);
        if let Some(join) = self.accept_join.take() {
            let _ = join.join();
        }
        let deadline = Instant::now() + self.shared.config.drain_timeout;
        while self.shared.connections.load(Ordering::SeqCst) > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        if let Some(pool) = &self.shared.pool {
            pool.shutdown();
        }
        if let Err(err) = self.shared.cache.persist() {
            eprintln!("rake-served: cache persist on shutdown failed: {err}");
        }
    }
}

/// Bind and start serving on background threads; returns immediately.
///
/// # Errors
///
/// Propagates bind/listen failures.
pub fn serve(config: ServerConfig) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;

    synth::pool::set_thread_budget(config.thread_budget.max(1));
    if config.trace_out.is_some() || config.trace_slow_ms.is_some() {
        trace::enable();
        if let Some(ms) = config.trace_slow_ms {
            trace::set_slow_threshold_us(ms.saturating_mul(1000));
        }
        if let Some(dir) = &config.trace_out {
            std::fs::create_dir_all(dir)?;
        }
    }
    let limits = CacheLimits {
        max_entries: config.cache_max_entries,
        max_bytes: config.cache_max_bytes,
        log_compact_bytes: config.cache_log_compact_bytes,
    };
    let cache = Arc::new(match &config.cache_dir {
        Some(dir) => SynthCache::bounded(dir, limits),
        None => SynthCache::in_memory_bounded(limits),
    });
    let journal = match &config.log_path {
        Some(path) => Some(Arc::new(Journal::open(path, config.journal_rotate_bytes)?)),
        None => None,
    };
    let gate = Arc::new(Gate::new(config.permits, config.queue_slots, config.queue_wait));
    let verdicts = VerdictCache::new(config.timeout_verdict_ttl, config.verdict_cache_cap);
    let pool = config.isolate.then(|| {
        let workers = if config.pool_workers == 0 { config.permits } else { config.pool_workers };
        WorkerPool::start(PoolConfig {
            workers: workers.max(1),
            worker_cmd: config.worker_cmd.clone().unwrap_or_default(),
            rss_limit_bytes: config.worker_rss_limit,
            job_grace: config.worker_grace,
            // Give jobs without a deadline the max budget plus slack.
            max_job_wall: config.max_timeout + Duration::from_secs(60),
            ..PoolConfig::default()
        })
    });
    let shared = Arc::new(Shared {
        config,
        cache,
        journal,
        metrics: Metrics::new(),
        gate,
        inflight: InFlight::default(),
        verdicts,
        rakes: Mutex::new(std::collections::HashMap::new()),
        pool,
        draining: AtomicBool::new(false),
        connections: AtomicUsize::new(0),
        started: Instant::now(),
    });

    let accept_shared = Arc::clone(&shared);
    let accept_join = std::thread::Builder::new()
        .name("rake-served-accept".to_owned())
        .spawn(move || accept_loop(&listener, &accept_shared))
        .expect("spawn accept thread");

    Ok(ServerHandle { addr, shared, accept_join: Some(accept_join) })
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    loop {
        if shared.draining.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                // Responses are latency-sensitive and written whole;
                // never let Nagle hold them for a delayed ACK.
                stream.set_nodelay(true).ok();
                let shared = Arc::clone(shared);
                shared.connections.fetch_add(1, Ordering::SeqCst);
                let result = std::thread::Builder::new()
                    .name("rake-served-conn".to_owned())
                    .spawn(move || {
                        handle_connection(&shared, stream);
                        shared.connections.fetch_sub(1, Ordering::SeqCst);
                    });
                if result.is_err() {
                    eprintln!("rake-served: failed to spawn connection thread");
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(e) => {
                eprintln!("rake-served: accept failed: {e}");
                std::thread::sleep(Duration::from_millis(100));
            }
        }
    }
}

fn handle_connection(shared: &Arc<Shared>, stream: TcpStream) {
    use std::io::BufRead;
    let Ok(read_half) = stream.try_clone() else { return };
    let mut reader = BufReader::new(read_half);
    let mut write_half = stream;
    loop {
        if shared.draining.load(Ordering::SeqCst) {
            return;
        }
        // Await the request's first byte under the idle timeout (the
        // compile path's disconnect monitor adjusts the socket timeout,
        // so restore it each loop), then arm the slow-loris deadline:
        // a peer may idle *between* requests, but once it starts one it
        // must deliver line + headers + body within `read_timeout` or
        // the connection is answered 408.
        let _ = write_half.set_read_timeout(Some(shared.config.idle_timeout));
        match reader.fill_buf() {
            Ok([]) => return, // EOF between requests
            Ok(_) => {}
            Err(_) => return, // idle timeout or reset
        }
        let deadline = shared.config.read_timeout.map(|t| {
            // Per-read socket timeout of the same order, so a peer that
            // goes fully silent mid-request cannot pin the thread past
            // the deadline (read_request_deadline maps the stall to 408).
            let _ = write_half.set_read_timeout(Some(t));
            Instant::now() + t
        });
        let req =
            match read_request_deadline(&mut reader, shared.config.max_body_bytes, deadline) {
                Ok(req) => req,
                Err(ReadError::Closed) => return,
                Err(ReadError::Io(_)) => return,
                Err(ReadError::TimedOut) => {
                    let resp =
                        Response::text(408, "request did not complete within the read timeout\n");
                    shared.metrics.response(resp.status);
                    let _ = resp.write_to(&mut write_half, true);
                    return;
                }
                Err(ReadError::Malformed(why)) => {
                    let resp = Response::text(400, format!("{why}\n"));
                    shared.metrics.response(resp.status);
                    let _ = resp.write_to(&mut write_half, true);
                    return;
                }
                Err(ReadError::BodyTooLarge { declared, limit }) => {
                    let resp = Response::text(
                        413,
                        format!("request body {declared} bytes exceeds the {limit}-byte limit\n"),
                    );
                    shared.metrics.response(resp.status);
                    let _ = resp.write_to(&mut write_half, true);
                    return;
                }
            };
        let close = req.wants_close() || shared.draining.load(Ordering::SeqCst);
        // One disconnect count per connection, whichever side sees it
        // first: the compile path's monitor (a small response to a
        // vanished peer can be written "successfully") or the response
        // write below (EPIPE mid-response, no monitor running).
        let disconnected = AtomicBool::new(false);
        let resp = route(shared, &req, &write_half, &disconnected);
        shared.metrics.response(resp.status);
        if resp.write_to(&mut write_half, close).is_err() {
            // Rust ignores SIGPIPE before main, so a vanished peer
            // surfaces here as plain EPIPE/ECONNRESET — count it and
            // move on; nothing to log per-connection.
            if !disconnected.swap(true, Ordering::SeqCst) {
                shared.metrics.client_disconnected();
            }
            return;
        }
        if close {
            return;
        }
    }
}

fn route(
    shared: &Arc<Shared>,
    req: &Request,
    stream: &TcpStream,
    disconnected: &AtomicBool,
) -> Response {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => {
            shared.metrics.request(Endpoint::Healthz);
            if shared.draining.load(Ordering::SeqCst) {
                Response::text(503, "draining\n")
            } else {
                Response::text(200, "ok\n")
            }
        }
        ("GET", "/metrics") => {
            shared.metrics.request(Endpoint::Metrics);
            let workers = shared.pool.as_ref().map(|p| p.metrics_snapshot());
            let text =
                shared.metrics.render(shared.started, shared.cache_snapshot(), workers.as_ref());
            Response {
                status: 200,
                headers: Vec::new(),
                content_type: "text/plain; version=0.0.4; charset=utf-8",
                body: text.into_bytes(),
            }
        }
        ("POST", "/compile") => {
            shared.metrics.request(Endpoint::Compile);
            handle_compile(shared, req, stream, disconnected)
        }
        (_, "/compile") | (_, "/healthz") | (_, "/metrics") => {
            shared.metrics.request(Endpoint::Other);
            Response::text(405, "method not allowed\n")
        }
        _ => {
            shared.metrics.request(Endpoint::Other);
            Response::text(404, "unknown path\n")
        }
    }
}

/// Per-request knobs decoded from the `/compile` body.
struct CompileRequest {
    exprs: Vec<(String, Expr)>,
    lanes: usize,
    timeout: Option<Duration>,
    validate: bool,
    tiers: Vec<Tier>,
    /// Chaos fault to inject worker-side (`abort` / `oom` /
    /// `sleep:<ms>`); only accepted when the server runs `--chaos`.
    fault: Option<String>,
}

fn bad(msg: impl Into<String>) -> Response {
    let msg = msg.into();
    Response::json(400, &Json::obj([("error", msg.into())]))
}

fn parse_compile_request(shared: &Shared, body: &[u8]) -> Result<CompileRequest, Response> {
    let text = std::str::from_utf8(body).map_err(|_| bad("body is not UTF-8"))?;
    let limits = ParseLimits { max_depth: 64, max_bytes: shared.config.max_body_bytes };
    let doc = json::parse_with_limits(text, limits).map_err(|e| bad(format!("bad JSON: {e}")))?;

    let mut raw: Vec<String> = Vec::new();
    match (doc.get("expr"), doc.get("exprs")) {
        (Some(_), Some(_)) => return Err(bad("send either `expr` or `exprs`, not both")),
        (Some(e), None) => {
            raw.push(e.as_str().ok_or_else(|| bad("`expr` must be a string"))?.to_owned());
        }
        (None, Some(list)) => {
            let items = list.as_arr().ok_or_else(|| bad("`exprs` must be an array"))?;
            for item in items {
                raw.push(
                    item.as_str()
                        .ok_or_else(|| bad("`exprs` items must be strings"))?
                        .to_owned(),
                );
            }
        }
        (None, None) => return Err(bad("missing `expr` (string) or `exprs` (array)")),
    }
    if raw.is_empty() {
        return Err(bad("`exprs` is empty"));
    }
    if raw.len() > MAX_EXPRS_PER_REQUEST {
        return Err(bad(format!(
            "{} expressions exceeds the per-request cap of {MAX_EXPRS_PER_REQUEST}",
            raw.len()
        )));
    }

    let mut exprs = Vec::with_capacity(raw.len());
    for (i, s) in raw.iter().enumerate() {
        if sexpr_depth(s) > MAX_SEXPR_DEPTH {
            return Err(bad(format!(
                "expression {i} nests deeper than {MAX_SEXPR_DEPTH} levels"
            )));
        }
        let expr = halide_ir::sexpr::parse(s.trim())
            .map_err(|e| bad(format!("expression {i}: {e}")))?;
        exprs.push((s.clone(), expr));
    }

    let lanes = match doc.get("lanes") {
        None => 128,
        Some(v) => {
            let n = v.as_i64().ok_or_else(|| bad("`lanes` must be an integer"))?;
            if !(8..=1024).contains(&n) {
                return Err(bad("`lanes` must be between 8 and 1024"));
            }
            n as usize
        }
    };

    let timeout = match doc.get("timeout_ms") {
        None => shared.config.default_timeout,
        Some(v) => {
            let ms = v.as_i64().ok_or_else(|| bad("`timeout_ms` must be an integer"))?;
            if ms <= 0 {
                return Err(bad("`timeout_ms` must be positive"));
            }
            Some(Duration::from_millis(ms as u64).min(shared.config.max_timeout))
        }
    };

    let validate = match doc.get("validate") {
        None => false,
        Some(v) => v.as_bool().ok_or_else(|| bad("`validate` must be a boolean"))?,
    };

    let fault = match doc.get("chaos") {
        None => None,
        Some(_) if !shared.config.chaos => {
            return Err(bad("`chaos` requires the server to run with --chaos"));
        }
        Some(v) => {
            let f = v.as_str().ok_or_else(|| bad("`chaos` must be a string"))?;
            let valid = f == "abort" || f == "oom" || f.strip_prefix("sleep:").is_some_and(|ms| ms.parse::<u64>().is_ok());
            if !valid {
                return Err(bad("`chaos` must be `abort`, `oom`, or `sleep:<ms>`"));
            }
            Some(f.to_owned())
        }
    };

    let tiers = match doc.get("tier_floor") {
        None => Tier::ladder().to_vec(),
        Some(v) => {
            let name = v.as_str().ok_or_else(|| bad("`tier_floor` must be a string"))?;
            let floor =
                Tier::from_name(name).ok_or_else(|| bad(format!("unknown tier `{name}`")))?;
            if floor == Tier::Baseline {
                Tier::ladder().to_vec()
            } else {
                let ladder = Tier::ladder();
                let stop = ladder.iter().position(|t| *t == floor).unwrap_or(ladder.len() - 1);
                ladder[..=stop].to_vec()
            }
        }
    };

    Ok(CompileRequest { exprs, lanes, timeout, validate, tiers, fault })
}

/// Maximum paren nesting of an S-expression, counting inside-string
/// nothing (the Halide S-expression grammar has no string literals).
fn sexpr_depth(s: &str) -> usize {
    let mut depth = 0usize;
    let mut max = 0usize;
    for b in s.bytes() {
        match b {
            b'(' => {
                depth += 1;
                max = max.max(depth);
            }
            b')' => depth = depth.saturating_sub(1),
            _ => {}
        }
    }
    max
}

fn handle_compile(
    shared: &Arc<Shared>,
    req: &Request,
    stream: &TcpStream,
    disconnected: &AtomicBool,
) -> Response {
    if !trace::enabled() {
        return handle_compile_inner(shared, req, stream, disconnected, None);
    }
    // One trace per request: the root span covers parse, admission, the
    // driver batch, and response assembly. Worker-subprocess spans join
    // the same trace through the frame protocol.
    let trace_id = trace::new_trace_id();
    let resp = {
        let mut root = trace::span_root("http.request", "served", trace_id);
        let resp = handle_compile_inner(shared, req, stream, disconnected, Some(trace_id));
        root.arg("status", u64::from(resp.status));
        root.arg("body_bytes", req.body.len());
        resp
    };
    export_trace(shared, trace_id);
    resp
}

/// Export one completed request trace: Chrome trace-event JSON into the
/// configured directory, slow spans to stderr. Drains only this trace's
/// records; concurrent requests keep theirs.
fn export_trace(shared: &Shared, trace_id: u64) {
    let records = trace::drain_trace(trace_id);
    if let Some(dir) = &shared.config.trace_out {
        if !records.is_empty() {
            let path = dir.join(format!("trace-{}.json", trace::fmt_id(trace_id)));
            if let Err(err) = std::fs::write(&path, trace::chrome_trace_json(&records)) {
                eprintln!("rake-served: failed to write {}: {err}", path.display());
            }
        }
    }
    if shared.config.trace_slow_ms.is_some() {
        let slow = trace::drain_slow();
        if !slow.is_empty() {
            eprint!("{}", trace::slow_log_lines(&slow));
        }
    }
}

fn handle_compile_inner(
    shared: &Arc<Shared>,
    req: &Request,
    stream: &TcpStream,
    disconnected: &AtomicBool,
    trace_id: Option<u64>,
) -> Response {
    if shared.draining.load(Ordering::SeqCst) {
        return Response::text(503, "draining\n");
    }
    let parsed = match parse_compile_request(shared, &req.body) {
        Ok(p) => p,
        Err(resp) => return resp,
    };

    let base = shared.base_rake(parsed.lanes);
    let mut driver = Driver::new(base)
        .with_config(DriverConfig {
            workers: parsed.exprs.len().clamp(1, 4),
            job_timeout: parsed.timeout,
            tiers: parsed.tiers.clone(),
            cache_dir: None,
            log_path: None,
            validate: parsed.validate,
            cancel: None,
            manage_thread_budget: false,
            ..DriverConfig::default()
        })
        .with_shared_cache(Arc::clone(&shared.cache))
        .with_event_sink(shared.metrics.sink());
    if let Some(journal) = &shared.journal {
        driver = driver.with_shared_journal(Arc::clone(journal));
    }
    if let Some(pool) = &shared.pool {
        driver = driver.with_compile_fn(isolated_compile_fn(shared, pool, &parsed));
    }

    let expr_keys: Vec<String> =
        parsed.exprs.iter().map(|(_, e)| driver.cache_key(e)).collect();

    // Remembered timeout verdicts (see [`VerdictCache`]): any expression
    // that recently timed out under the same knobs is answered from
    // memory instead of re-burning its budget. The knob fingerprint
    // keeps a bigger `timeout_ms` or a different tier floor honest —
    // those requests recompile.
    let knobs = format!(
        "{}|{}|{}",
        parsed.tiers.iter().map(|t| t.name()).collect::<Vec<_>>().join(","),
        parsed.timeout.map_or(0, |t| t.as_millis()),
        parsed.validate,
    );
    let mut slots: Vec<Option<Json>> = expr_keys
        .iter()
        .map(|k| shared.verdicts.get(&format!("{k}|{knobs}")))
        .collect();
    let remembered = slots.iter().filter(|s| s.is_some()).count();
    if remembered > 0 {
        shared.metrics.timeout_verdicts_served(remembered);
    }
    let to_compile: Vec<usize> = (0..slots.len()).filter(|&i| slots[i].is_none()).collect();

    let mut keys: Vec<String> = to_compile.iter().map(|&i| expr_keys[i].clone()).collect();
    keys.sort();
    keys.dedup();

    // Warm fast path: when every key already has a verdict in the cache,
    // the request costs milliseconds and holds no synthesis threads — so
    // it skips admission control entirely. Permits, queue slots, the
    // cancel slot, and the disconnect monitor all exist to bound and
    // shed *synthesis* work; spending them on cache reads would let slow
    // cold requests queue-block the warm traffic they protect. The check
    // honors the request's tier floor: an entry a more degraded run left
    // behind does not make a stricter request warm — it recompiles.
    let floor = parsed.tiers.iter().copied().max_by_key(|t| t.rank()).unwrap_or(Tier::Full);
    let warm = keys.iter().all(|k| shared.cache.contains_meeting(k, floor));
    if !warm {
        // Cold work needs live workers; while the restart-storm breaker
        // is open, fail fast instead of queueing behind a pool that will
        // refuse the dispatch anyway. Warm requests still serve.
        if let Some(pool) = &shared.pool {
            if pool.breaker_open() {
                return Response::json(
                    503,
                    &Json::obj([(
                        "error",
                        "worker pool in restart-storm cooldown; retry later".into(),
                    )]),
                )
                .with_header("retry-after", "2");
            }
        }
    }
    let permit = if warm {
        shared.metrics.warm_path();
        None
    } else {
        match shared.gate.acquire(&shared.metrics) {
            Admission::Granted(p) => Some(p),
            Admission::Busy => {
                shared.metrics.rejected_busy();
                return Response::json(
                    429,
                    &Json::obj([("error", "server at capacity; retry later".into())]),
                )
                .with_header("retry-after", "1");
            }
        }
    };

    shared.metrics.compile_started();
    shared.metrics.exprs_submitted(parsed.exprs.len());
    let started = Instant::now();

    let mut memo_stats = (0u64, 0u64);
    if !to_compile.is_empty() {
        let cancel = if warm {
            None
        } else {
            let cancel = synth::cancel::acquire();
            driver.set_cancel(Some(cancel));
            // Single-flight: claim this request's cache keys so concurrent
            // requests for the same expression run one synthesis, not N.
            shared.inflight.claim(&keys);
            Some(cancel)
        };

        // Watch the connection while we compile; a vanished client raises
        // the cancel flag and the synthesis stops cooperatively.
        let done = Arc::new(AtomicBool::new(false));
        let monitor = cancel.and_then(|cancel| {
            stream.try_clone().ok().map(|peer| {
                let done = Arc::clone(&done);
                std::thread::Builder::new()
                    .name("rake-served-monitor".to_owned())
                    .spawn(move || monitor_disconnect(&peer, cancel, &done))
                    .expect("spawn disconnect monitor")
            })
        });

        let exprs: Vec<Expr> =
            to_compile.iter().map(|&i| parsed.exprs[i].1.clone()).collect();
        let report = driver.compile_batch(&exprs);

        done.store(true, Ordering::SeqCst);
        // The monitor is authoritative for mid-compile disconnects: a
        // small response written to a half-closed socket can still
        // "succeed", so the connection loop's EPIPE check alone would
        // undercount. The shared once-flag keeps the two sites from
        // ever counting the same connection twice.
        if let Some(m) = monitor {
            if m.join().unwrap_or(false) && !disconnected.swap(true, Ordering::SeqCst) {
                shared.metrics.client_disconnected();
            }
        }
        drop(driver);
        if let Some(cancel) = cancel {
            shared.inflight.release(&keys);
            // Contract of `synth::cancel`: the flag outlives every reader;
            // all batch workers have joined once `compile_batch` returns.
            synth::cancel::release(cancel);
        }

        memo_stats =
            (report.stats.lifting_queries, report.stats.sketching_queries);
        for (&slot, r) in to_compile.iter().zip(report.results.iter()) {
            let rendered = render_result(r, parsed.lanes);
            if matches!(r.outcome, JobOutcome::TimedOut) {
                let mut remembered = rendered.clone();
                if let Json::Obj(fields) = &mut remembered {
                    fields.push(("verdict_cached".to_owned(), true.into()));
                }
                shared.verdicts.put(format!("{}|{knobs}", expr_keys[slot]), remembered);
            }
            slots[slot] = Some(rendered);
        }
    }

    let latency = started.elapsed();
    shared.metrics.compile_finished(latency);
    drop(permit);

    let results: Vec<Json> =
        slots.into_iter().map(|s| s.expect("every slot is filled")).collect();
    let cache = shared.cache_snapshot();
    let mut body: Vec<(String, Json)> = Vec::new();
    if let Some(tid) = trace_id {
        body.push(("trace_id".to_owned(), Json::Str(trace::fmt_id(tid))));
    }
    body.push(("results".to_owned(), Json::Arr(results)));
    body.push(("wall_ms".to_owned(), ((latency.as_secs_f64() * 1e5).round() / 1e2).into()));
    body.push((
        "cache".to_owned(),
        Json::obj([
            ("hits", cache.hits.into()),
            ("misses", cache.misses.into()),
            ("entries", cache.entries.into()),
        ]),
    ));
    body.push((
        "memo".to_owned(),
        Json::obj([
            ("lifting_queries", memo_stats.0.into()),
            ("sketching_queries", memo_stats.1.into()),
        ]),
    ));
    Response::json(200, &Json::Obj(body))
}

/// The per-job compile function under `--isolate`: ship the expression
/// to a pooled worker subprocess and translate its fate back into the
/// driver's vocabulary.
///
/// Worker *deaths* (and pool unavailability) surface via
/// [`std::panic::resume_unwind`] with a string payload: the driver's
/// existing `catch_unwind` turns that into a structured `panicked`
/// outcome for this job only, without tripping the process panic hook
/// (no log spam) and without widening [`rake::CompileError`]. A key
/// whose crash count crosses the threshold is quarantined in the shared
/// synthesis cache as a poison pill — later requests get a structured
/// `quarantined` outcome straight from the cache, burning no budget.
fn isolated_compile_fn(
    shared: &Arc<Shared>,
    pool: &Arc<WorkerPool>,
    parsed: &CompileRequest,
) -> impl Fn(
    &Expr,
    Option<Instant>,
    Tier,
    Option<synth::CancelFlag>,
) -> Result<Compiled, CompileError>
       + Send
       + Sync
       + 'static {
    let pool = Arc::clone(pool);
    let cache = Arc::clone(&shared.cache);
    let journal = shared.journal.clone();
    let metrics = Arc::clone(&shared.metrics);
    let key_rake = shared.base_rake(parsed.lanes);
    let lanes = parsed.lanes;
    let fault = parsed.fault.clone();
    let crash_threshold = shared.config.crash_threshold.max(1);
    let quarantine_ttl = shared.config.quarantine_ttl;
    move |e, deadline, tier, cancel| {
        let key = driver::cache_key(&key_rake, e);
        // A key quarantined seconds ago — by this very batch's previous
        // tier attempt, or by a concurrent request — must not be
        // redispatched down the ladder.
        if let Some(reason) = cache.quarantine_reason(&key) {
            std::panic::resume_unwind(Box::new(format!("poison pill: {reason}")));
        }
        let job = WorkerJob {
            key: key.clone(),
            expr: halide_ir::sexpr::to_sexpr(e),
            lanes,
            tier,
            deadline,
            fault: fault.clone(),
        };
        match pool.dispatch(&job, cancel) {
            DispatchOutcome::Compiled(art) => {
                match (uber_ir::sexpr::parse(&art.uber), hvx::sexpr::parse(&art.hvx)) {
                    (Ok(uber), Ok(hvx)) => {
                        let program = hvx.to_program();
                        Ok(Compiled {
                            uber,
                            hvx,
                            program,
                            trace: Default::default(),
                            stats: art.stats,
                        })
                    }
                    _ => std::panic::resume_unwind(Box::new(
                        "worker returned unparseable artifacts".to_owned(),
                    )),
                }
            }
            DispatchOutcome::Error(name) => {
                Err(driver::cache::error_from(&name).unwrap_or(CompileError::LowerFailed))
            }
            DispatchOutcome::Panicked(detail) => std::panic::resume_unwind(Box::new(detail)),
            DispatchOutcome::Crashed(report) => {
                if let Some(journal) = &journal {
                    journal.append(&DriverEvent::WorkerCrashed {
                        key: Some(key.clone()),
                        tier: Some(tier),
                        cause: report.cause.to_owned(),
                        signal: report.signal,
                        crashes_for_key: report.crashes_for_key,
                        stderr_tail: report.stderr_tail.clone(),
                    });
                }
                if report.crashes_for_key >= crash_threshold {
                    cache.quarantine(
                        &key,
                        &format!(
                            "worker {} ({} crashes)",
                            report.summary(),
                            report.crashes_for_key
                        ),
                        quarantine_ttl,
                    );
                    metrics.key_quarantined();
                }
                std::panic::resume_unwind(Box::new(format!(
                    "worker crashed: {}",
                    report.summary()
                )))
            }
            DispatchOutcome::Unavailable(why) => {
                std::panic::resume_unwind(Box::new(format!("worker pool unavailable: {why}")))
            }
            DispatchOutcome::Cancelled => Err(CompileError::DeadlineExceeded),
        }
    }
}

/// Render one per-expression job result as the `/compile` response JSON.
fn render_result(r: &driver::JobResult, lanes: usize) -> Json {
    let vec_bytes = 128.min(lanes.max(8));
    let mut obj = vec![
        ("outcome".to_owned(), Json::Str(outcome_name(&r.outcome).to_owned())),
        ("tier".to_owned(), r.tier.name().into()),
        ("cache_hit".to_owned(), r.cache_hit.into()),
        ("retries".to_owned(), (r.retries as u64).into()),
        ("key".to_owned(), r.key.as_str().into()),
    ];
    match &r.outcome {
        JobOutcome::Compiled(c) => {
            obj.push(("program".to_owned(), c.program.to_string().into()));
            obj.push(("hvx".to_owned(), hvx::sexpr::to_sexpr(&c.hvx).into()));
            obj.push(("uber".to_owned(), uber_ir::sexpr::to_sexpr(&c.uber).into()));
            let schedule = c.program.schedule(lanes, vec_bytes, SlotBudget::hvx());
            obj.push((
                "cost".to_owned(),
                Json::obj([
                    ("latency_sum", c.program.latency_sum(lanes, vec_bytes).into()),
                    ("load_units", c.program.load_units(lanes, vec_bytes).into()),
                    ("cycles", schedule.cycles.into()),
                ]),
            ));
        }
        JobOutcome::Failed(e) => {
            obj.push(("detail".to_owned(), e.to_string().into()));
        }
        JobOutcome::Panicked(msg) => {
            obj.push(("detail".to_owned(), msg.as_str().into()));
        }
        JobOutcome::Quarantined(reason) => {
            obj.push(("detail".to_owned(), reason.as_str().into()));
        }
        JobOutcome::TimedOut | JobOutcome::Cancelled => {}
    }
    if let Some(p) = &r.fallback {
        obj.push(("fallback".to_owned(), p.to_string().into()));
    }
    if let Some(v) = &r.validation {
        obj.push((
            "validation".to_owned(),
            Json::obj([("checks", v.checks.into()), ("mismatches", v.mismatches.into())]),
        ));
    }
    Json::Obj(obj)
}

fn outcome_name(outcome: &JobOutcome) -> &'static str {
    match outcome {
        JobOutcome::Compiled(_) => "compiled",
        JobOutcome::Failed(_) => "failed",
        JobOutcome::TimedOut => "timed_out",
        JobOutcome::Panicked(_) => "panicked",
        JobOutcome::Cancelled => "cancelled",
        JobOutcome::Quarantined(_) => "quarantined",
    }
}

/// Poll the connection until the compile finishes or the peer vanishes;
/// returns whether a disconnect was detected (and the flag raised).
fn monitor_disconnect(
    peer: &TcpStream,
    cancel: synth::CancelFlag,
    done: &AtomicBool,
) -> bool {
    // The poll interval doubles as the handler's join latency once the
    // compile finishes — keep it small so warm cache hits stay fast.
    let _ = peer.set_read_timeout(Some(Duration::from_millis(15)));
    let mut buf = [0u8; 1];
    loop {
        if done.load(Ordering::SeqCst) {
            return false;
        }
        match peer.peek(&mut buf) {
            // EOF: the client closed its end.
            Ok(0) => {
                cancel.store(true, std::sync::atomic::Ordering::Relaxed);
                return true;
            }
            // Pipelined bytes waiting — still connected; don't consume.
            Ok(_) => std::thread::sleep(Duration::from_millis(15)),
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut => {}
            // Reset / broken pipe / anything else: treat as gone.
            Err(_) => {
                cancel.store(true, std::sync::atomic::Ordering::Relaxed);
                return true;
            }
        }
    }
}

/// Make sure the accept loop cannot outlive a panicking connection
/// thread silently: connection handlers run plain functions, and a panic
/// unwinds that one thread only. (Compile-path panics are already caught
/// inside the driver.)
#[allow(dead_code)]
fn _assert_send_sync() {
    fn check<T: Send + Sync>() {}
    check::<Shared>();
    check::<Metrics>();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_grants_up_to_permits_then_queues_then_rejects() {
        let metrics = Metrics::new();
        let gate = Arc::new(Gate::new(2, 0, Duration::from_millis(10)));
        let a = gate.acquire(&metrics);
        let b = gate.acquire(&metrics);
        assert!(matches!(&a, Admission::Granted(_)));
        assert!(matches!(&b, Admission::Granted(_)));
        // No queue slots: immediate rejection.
        assert!(matches!(gate.acquire(&metrics), Admission::Busy));
        drop(a);
        assert!(matches!(gate.acquire(&metrics), Admission::Granted(_)));
    }

    #[test]
    fn gate_queue_wait_times_out() {
        let metrics = Metrics::new();
        let gate = Arc::new(Gate::new(1, 4, Duration::from_millis(50)));
        let held = gate.acquire(&metrics);
        assert!(matches!(&held, Admission::Granted(_)));
        let start = Instant::now();
        assert!(matches!(gate.acquire(&metrics), Admission::Busy));
        assert!(start.elapsed() >= Duration::from_millis(50));
    }

    #[test]
    fn queued_waiter_gets_released_permit() {
        let metrics = Metrics::new();
        let gate = Arc::new(Gate::new(1, 4, Duration::from_secs(5)));
        let held = gate.acquire(&metrics);
        let gate2 = Arc::clone(&gate);
        let metrics2 = Arc::clone(&metrics);
        let waiter = std::thread::spawn(move || gate2.acquire(&metrics2));
        std::thread::sleep(Duration::from_millis(50));
        drop(held);
        assert!(matches!(waiter.join().unwrap(), Admission::Granted(_)));
    }

    #[test]
    fn inflight_serializes_same_key() {
        let inflight = Arc::new(InFlight::default());
        let keys = vec!["k".to_owned()];
        inflight.claim(&keys);
        let inflight2 = Arc::clone(&inflight);
        let keys2 = keys.clone();
        let t = std::thread::spawn(move || {
            inflight2.claim(&keys2);
            inflight2.release(&keys2);
        });
        std::thread::sleep(Duration::from_millis(30));
        assert!(!t.is_finished(), "second claim must block while the first holds the key");
        inflight.release(&keys);
        t.join().unwrap();
    }

    #[test]
    fn sexpr_depth_counts_nesting() {
        assert_eq!(sexpr_depth("(a (b (c)))"), 3);
        assert_eq!(sexpr_depth("flat"), 0);
        assert_eq!(sexpr_depth(&"(".repeat(1000)), 1000);
    }

    #[test]
    fn verdict_cache_remembers_within_ttl_and_respects_zero() {
        let cache = VerdictCache::new(Duration::from_secs(60), 1024);
        assert!(cache.get("k|knobs").is_none());
        cache.put("k|knobs".to_owned(), Json::Str("timed_out".to_owned()));
        assert_eq!(cache.get("k|knobs"), Some(Json::Str("timed_out".to_owned())));
        assert!(cache.get("k|other-knobs").is_none(), "knob fingerprint is part of the key");
        assert_eq!(cache.len(), 1);

        let disabled = VerdictCache::new(Duration::ZERO, 1024);
        disabled.put("k".to_owned(), Json::Str("x".to_owned()));
        assert!(disabled.get("k").is_none(), "TTL zero disables the cache");
    }

    #[test]
    fn verdict_cache_cap_evicts_oldest_first() {
        let cache = VerdictCache::new(Duration::from_secs(60), 2);
        cache.put("a".to_owned(), Json::Str("1".to_owned()));
        cache.put("b".to_owned(), Json::Str("2".to_owned()));
        cache.put("c".to_owned(), Json::Str("3".to_owned()));
        assert_eq!(cache.len(), 2, "cap holds");
        assert_eq!(cache.evictions(), 1);
        assert!(cache.get("a").is_none(), "oldest entry evicted");
        assert!(cache.get("b").is_some() && cache.get("c").is_some());

        let unbounded = VerdictCache::new(Duration::from_secs(60), 0);
        for i in 0..8 {
            unbounded.put(format!("k{i}"), Json::Str("x".to_owned()));
        }
        assert_eq!(unbounded.len(), 8, "cap zero disables the bound");
        assert_eq!(unbounded.evictions(), 0);
    }

    #[test]
    fn tier_floor_truncates_ladder() {
        let shared_cfg = ServerConfig::default();
        let shared = Shared {
            config: shared_cfg,
            cache: Arc::new(SynthCache::in_memory()),
            journal: None,
            metrics: Metrics::new(),
            gate: Arc::new(Gate::new(1, 1, Duration::from_secs(1))),
            inflight: InFlight::default(),
            verdicts: VerdictCache::new(Duration::from_secs(300), 1024),
            rakes: Mutex::new(std::collections::HashMap::new()),
            pool: None,
            draining: AtomicBool::new(false),
            connections: AtomicUsize::new(0),
            started: Instant::now(),
        };
        let body = |floor: &str| {
            format!(
                "{{\"expr\":\"(add (load a u8 0 0) (load b u8 0 0))\",\"tier_floor\":\"{floor}\"}}"
            )
        };
        let full = parse_compile_request(&shared, body("full").as_bytes()).unwrap();
        assert_eq!(full.tiers, vec![Tier::Full]);
        let reduced = parse_compile_request(&shared, body("reduced").as_bytes()).unwrap();
        assert_eq!(reduced.tiers, vec![Tier::Full, Tier::Reduced]);
        let all = parse_compile_request(&shared, body("direct").as_bytes()).unwrap();
        assert_eq!(all.tiers, Tier::ladder().to_vec());
        assert!(parse_compile_request(&shared, body("nonsense").as_bytes()).is_err());
    }
}
