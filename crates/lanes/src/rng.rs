//! A small deterministic pseudo-random generator for test-input and
//! environment generation.
//!
//! The crates in this workspace need seeded, reproducible randomness (the
//! verifier's random fills, benchmark input buffers, randomized tests) but
//! nothing cryptographic — and the build must succeed with no registry
//! access, so an external `rand` dependency is out. This is SplitMix64
//! (Steele et al., "Fast splittable pseudorandom number generators"), the
//! generator `rand` itself uses for seeding: a full-period 64-bit
//! permutation with excellent statistical quality for its size.

use std::ops::RangeInclusive;

/// A seeded SplitMix64 generator.
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// A generator whose stream is fully determined by `seed`.
    pub fn seed_from_u64(seed: u64) -> Rng {
        Rng { state: seed }
    }

    /// The next 64 raw bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform draw from an inclusive range (`gen_range(lo..=hi)`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range(&mut self, range: RangeInclusive<i64>) -> i64 {
        let (lo, hi) = (*range.start(), *range.end());
        assert!(lo <= hi, "gen_range: empty range {lo}..={hi}");
        // Span fits in u64 for any i64 pair; modulo bias is negligible for
        // the small spans used here (element-type ranges, sizes).
        let span = (hi as i128 - lo as i128 + 1) as u64;
        let r = if span == 0 {
            // lo..=hi covers the full i64 domain.
            self.next_u64()
        } else {
            self.next_u64() % span
        };
        (lo as i128 + r as i128) as i64
    }

    /// A uniform draw from an inclusive `usize` range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range_usize(&mut self, range: RangeInclusive<usize>) -> usize {
        let (lo, hi) = (*range.start(), *range.end());
        assert!(lo <= hi, "gen_range_usize: empty range {lo}..={hi}");
        let span = (hi - lo) as u64 + 1;
        lo + (self.next_u64() % span) as usize
    }

    /// `true` with probability `p`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = Rng::seed_from_u64(42);
        let mut b = Rng::seed_from_u64(42);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::seed_from_u64(43);
        assert_ne!(Rng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn range_respects_bounds() {
        let mut rng = Rng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(-128..=127);
            assert!((-128..=127).contains(&v));
            let u = rng.gen_range_usize(3..=9);
            assert!((3..=9).contains(&u));
        }
        assert_eq!(rng.gen_range(5..=5), 5);
    }

    #[test]
    fn covers_extremes_eventually() {
        let mut rng = Rng::seed_from_u64(1);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..10_000 {
            match rng.gen_range(0..=15) {
                0 => seen_lo = true,
                15 => seen_hi = true,
                _ => {}
            }
        }
        assert!(seen_lo && seen_hi);
    }

    #[test]
    fn bool_probabilities() {
        let mut rng = Rng::seed_from_u64(9);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..=6_000).contains(&heads), "got {heads}");
    }
}
