//! Typed fixed-point lane arithmetic.
//!
//! This crate is the numeric substrate shared by every interpreter in the
//! Rake reproduction: the Halide IR interpreter, the Uber-Instruction IR
//! interpreter and the HVX instruction-set model all compute on the same
//! canonical scalar representation so that cross-level equivalence checks
//! compare like with like.
//!
//! A scalar value of element type `t` is stored as an `i64` holding the
//! *canonical* value: for unsigned types the plain value in `0..=t.max()`,
//! for signed types the sign-extended value in `t.min()..=t.max()`. All
//! operations take and return canonical values; [`ElemType::wrap`] and
//! [`ElemType::saturate`] are the two ways of re-canonicalizing a wider
//! intermediate result.
//!
//! # Example
//!
//! ```
//! use lanes::{ElemType, Vector};
//!
//! let a = Vector::splat(ElemType::U8, 200, 4);
//! let b = Vector::splat(ElemType::U8, 100, 4);
//! let wrapped = a.zip(&b, |x, y| ElemType::U8.wrap(x + y));
//! let saturated = a.zip(&b, |x, y| ElemType::U8.saturate(x + y));
//! assert_eq!(wrapped.get(0), 44);      // 300 mod 256
//! assert_eq!(saturated.get(0), 255);   // clamped
//! ```

mod elem;
mod ops;
pub mod rng;
mod vector;

pub use elem::ElemType;
pub use ops::{
    absd, add_sat, add_wrap, asr, asr_rnd, asr_rnd_sat, avg, lsr, max, min, mul_wrap, navg, shl,
    sub_sat, sub_wrap,
};
#[cfg(any(test, feature = "test-fixtures"))]
pub use ops::broken_avg;
pub use vector::Vector;
