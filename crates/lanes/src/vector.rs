//! Typed vector values.

use std::fmt;

use crate::ElemType;

/// A typed vector value: an element type plus one canonical `i64` per lane.
///
/// This is the value domain of the Halide IR and Uber-Instruction IR
/// interpreters. (The HVX model uses raw byte registers instead, and
/// converts through [`Vector::to_le_bytes`] / [`Vector::from_le_bytes`].)
///
/// # Example
///
/// ```
/// use lanes::{ElemType, Vector};
///
/// let v = Vector::from_fn(ElemType::I16, 4, |i| i as i64 * 10);
/// assert_eq!(v.lanes(), 4);
/// assert_eq!(v.get(3), 30);
/// let bytes = v.to_le_bytes();
/// assert_eq!(Vector::from_le_bytes(ElemType::I16, &bytes), v);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Vector {
    ty: ElemType,
    data: Vec<i64>,
}

impl Vector {
    /// Build a vector from explicit canonical lane values.
    ///
    /// # Panics
    ///
    /// Panics if any value is outside the canonical range of `ty`.
    pub fn new(ty: ElemType, data: Vec<i64>) -> Vector {
        for (i, &v) in data.iter().enumerate() {
            assert!(ty.contains(v), "lane {i} value {v} not canonical for {ty}");
        }
        Vector { ty, data }
    }

    /// Build a vector by wrapping each value into the canonical range.
    pub fn new_wrapped(ty: ElemType, data: impl IntoIterator<Item = i64>) -> Vector {
        Vector { ty, data: data.into_iter().map(|v| ty.wrap(v)).collect() }
    }

    /// A vector with every lane equal to `value` (wrapped).
    pub fn splat(ty: ElemType, value: i64, lanes: usize) -> Vector {
        Vector { ty, data: vec![ty.wrap(value); lanes] }
    }

    /// Build a vector lane-by-lane from a function of the lane index.
    pub fn from_fn(ty: ElemType, lanes: usize, f: impl FnMut(usize) -> i64) -> Vector {
        Vector { ty, data: (0..lanes).map(f).map(|v| ty.wrap(v)).collect() }
    }

    /// The element type.
    pub fn ty(&self) -> ElemType {
        self.ty
    }

    /// The number of lanes.
    pub fn lanes(&self) -> usize {
        self.data.len()
    }

    /// The canonical value of lane `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn get(&self, i: usize) -> i64 {
        self.data[i]
    }

    /// Overwrite lane `i` with `v` (wrapped).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn set(&mut self, i: usize, v: i64) {
        self.data[i] = self.ty.wrap(v);
    }

    /// Iterate over canonical lane values.
    pub fn iter(&self) -> impl Iterator<Item = i64> + '_ {
        self.data.iter().copied()
    }

    /// The lanes as a slice of canonical values.
    pub fn as_slice(&self) -> &[i64] {
        &self.data
    }

    /// Apply `f` to each lane; the results are wrapped into `self.ty()`.
    pub fn map(&self, mut f: impl FnMut(i64) -> i64) -> Vector {
        Vector::from_fn(self.ty, self.lanes(), |i| f(self.data[i]))
    }

    /// Apply `f` to each lane, producing a vector of a different type.
    pub fn map_to(&self, ty: ElemType, mut f: impl FnMut(i64) -> i64) -> Vector {
        Vector::from_fn(ty, self.lanes(), |i| f(self.data[i]))
    }

    /// Combine two same-length vectors lane-wise; results wrap into
    /// `self.ty()`.
    ///
    /// # Panics
    ///
    /// Panics if the lane counts differ.
    pub fn zip(&self, other: &Vector, mut f: impl FnMut(i64, i64) -> i64) -> Vector {
        assert_eq!(self.lanes(), other.lanes(), "lane count mismatch");
        Vector::from_fn(self.ty, self.lanes(), |i| f(self.data[i], other.data[i]))
    }

    /// Combine two same-length vectors lane-wise into a vector of type `ty`.
    ///
    /// # Panics
    ///
    /// Panics if the lane counts differ.
    pub fn zip_to(
        &self,
        other: &Vector,
        ty: ElemType,
        mut f: impl FnMut(i64, i64) -> i64,
    ) -> Vector {
        assert_eq!(self.lanes(), other.lanes(), "lane count mismatch");
        Vector::from_fn(ty, self.lanes(), |i| f(self.data[i], other.data[i]))
    }

    /// Lane-wise cast to `ty`, truncating (wrap) or saturating.
    pub fn cast(&self, ty: ElemType, saturate: bool) -> Vector {
        let f = if saturate { ElemType::saturate } else { ElemType::wrap };
        Vector { ty, data: self.data.iter().map(|&v| f(ty, v)).collect() }
    }

    /// Serialize to little-endian bytes (`lanes * ty.bytes()` long), the
    /// layout an HVX register holds.
    pub fn to_le_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.lanes() * self.ty.bytes());
        for &v in &self.data {
            let bits = self.ty.to_bits(v);
            out.extend_from_slice(&bits.to_le_bytes()[..self.ty.bytes()]);
        }
        out
    }

    /// Deserialize from little-endian bytes.
    ///
    /// # Panics
    ///
    /// Panics if `bytes.len()` is not a multiple of `ty.bytes()`.
    pub fn from_le_bytes(ty: ElemType, bytes: &[u8]) -> Vector {
        assert_eq!(bytes.len() % ty.bytes(), 0, "byte length not a multiple of element size");
        let data = bytes
            .chunks_exact(ty.bytes())
            .map(|chunk| {
                let mut raw = [0u8; 8];
                raw[..chunk.len()].copy_from_slice(chunk);
                ty.wrap(u64::from_le_bytes(raw) as i64)
            })
            .collect();
        Vector { ty, data }
    }

    /// Concatenate two vectors of the same element type.
    ///
    /// # Panics
    ///
    /// Panics if the element types differ.
    pub fn concat(&self, other: &Vector) -> Vector {
        assert_eq!(self.ty, other.ty, "element type mismatch");
        let mut data = self.data.clone();
        data.extend_from_slice(&other.data);
        Vector { ty: self.ty, data }
    }

    /// A sub-range of lanes `[start, start + len)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn slice(&self, start: usize, len: usize) -> Vector {
        Vector { ty: self.ty, data: self.data[start..start + len].to_vec() }
    }
}

impl fmt::Debug for Vector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}{:?}", self.ty, self.lanes(), self.data)
    }
}

impl fmt::Display for Vector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}[", self.ty, self.lanes())?;
        for (i, v) in self.data.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let v = Vector::new(ElemType::U8, vec![1, 2, 3]);
        assert_eq!(v.lanes(), 3);
        assert_eq!(v.get(1), 2);
        assert_eq!(v.ty(), ElemType::U8);
    }

    #[test]
    #[should_panic(expected = "not canonical")]
    fn new_rejects_out_of_range() {
        let _ = Vector::new(ElemType::U8, vec![300]);
    }

    #[test]
    fn new_wrapped_wraps() {
        let v = Vector::new_wrapped(ElemType::U8, [300, -1]);
        assert_eq!(v.as_slice(), &[44, 255]);
    }

    #[test]
    fn cast_truncating_vs_saturating() {
        let v = Vector::new(ElemType::I16, vec![300, -5, 100]);
        assert_eq!(v.cast(ElemType::U8, false).as_slice(), &[44, 251, 100]);
        assert_eq!(v.cast(ElemType::U8, true).as_slice(), &[255, 0, 100]);
    }

    #[test]
    fn concat_and_slice() {
        let a = Vector::new(ElemType::U8, vec![1, 2]);
        let b = Vector::new(ElemType::U8, vec![3, 4]);
        let c = a.concat(&b);
        assert_eq!(c.as_slice(), &[1, 2, 3, 4]);
        assert_eq!(c.slice(1, 2).as_slice(), &[2, 3]);
    }

    #[test]
    fn byte_layout_is_little_endian() {
        let v = Vector::new(ElemType::I16, vec![-2, 0x0102]);
        assert_eq!(v.to_le_bytes(), vec![0xfe, 0xff, 0x02, 0x01]);
    }

    #[test]
    fn display_is_nonempty() {
        let v = Vector::new(ElemType::U8, vec![]);
        assert_eq!(format!("{v}"), "u8x0[]");
    }

    fn random_data(rng: &mut crate::rng::Rng, ty: ElemType, min_len: usize) -> Vec<i64> {
        let len = rng.gen_range_usize(min_len..=15);
        (0..len).map(|_| rng.gen_range(ty.min_value()..=ty.max_value())).collect()
    }

    #[test]
    fn prop_bytes_roundtrip() {
        let mut rng = crate::rng::Rng::seed_from_u64(0xb17e5);
        for _ in 0..256 {
            let v = Vector::new(ElemType::I16, random_data(&mut rng, ElemType::I16, 0));
            let back = Vector::from_le_bytes(ElemType::I16, &v.to_le_bytes());
            assert_eq!(v, back);
        }
    }

    #[test]
    fn prop_zip_commutes_with_map() {
        let mut rng = crate::rng::Rng::seed_from_u64(0x217);
        for _ in 0..256 {
            let v = Vector::new(ElemType::U8, random_data(&mut rng, ElemType::U8, 1));
            let doubled = v.zip(&v, |a, b| a + b);
            let mapped = v.map(|a| a * 2);
            assert_eq!(doubled, mapped);
        }
    }
}
