//! Scalar fixed-point operations over canonical values.
//!
//! Every function takes canonical values of `ty` (see crate docs) and
//! returns a canonical value of the result type (`ty` unless stated
//! otherwise). Intermediate math is done in `i64`/`i128`, which cannot
//! overflow for operands of at most 32 bits.

use crate::ElemType;

/// Wrapping addition.
pub fn add_wrap(ty: ElemType, a: i64, b: i64) -> i64 {
    ty.wrap(a + b)
}

/// Saturating addition.
pub fn add_sat(ty: ElemType, a: i64, b: i64) -> i64 {
    ty.saturate(a + b)
}

/// Wrapping subtraction.
pub fn sub_wrap(ty: ElemType, a: i64, b: i64) -> i64 {
    ty.wrap(a - b)
}

/// Saturating subtraction.
pub fn sub_sat(ty: ElemType, a: i64, b: i64) -> i64 {
    ty.saturate(a - b)
}

/// Wrapping multiplication. Products of 32-bit canonical values fit in
/// `i64`, so plain multiplication followed by a wrap is exact.
pub fn mul_wrap(ty: ElemType, a: i64, b: i64) -> i64 {
    ty.wrap(((a as i128) * (b as i128)) as i64)
}

/// Lane minimum.
pub fn min(_ty: ElemType, a: i64, b: i64) -> i64 {
    a.min(b)
}

/// Lane maximum.
pub fn max(_ty: ElemType, a: i64, b: i64) -> i64 {
    a.max(b)
}

/// Absolute difference, `|a - b|`, computed without overflow. The result of
/// `absd` on unsigned operands always fits the unsigned type; on signed
/// operands HVX (and Halide's `absd`) return the unsigned distance wrapped
/// into the same-width type, which is what we model.
pub fn absd(ty: ElemType, a: i64, b: i64) -> i64 {
    ty.wrap((a - b).abs())
}

/// Averaging with optional round-up: `(a + b + round) >> 1`, matching HVX
/// `vavg`/`vavgrnd`. The intermediate sum is computed at full precision
/// (HVX averages through a 9/17/33-bit adder, so `u8` 255+255 averages to
/// 255, not to a wrapped value), and the halved result always lands back
/// in the operand range: `2*MIN <= a+b+1 <= 2*MAX+1` floors to
/// `[MIN, MAX]`. The final wrap mirrors `navg` and keeps the function
/// closed over canonical values even if a caller hands in non-canonical
/// operands.
pub fn avg(ty: ElemType, a: i64, b: i64, round: bool) -> i64 {
    ty.wrap((a + b + i64::from(round)) >> 1)
}

/// Negative averaging: `(a - b + round) >> 1`, matching HVX `vnavg`.
pub fn navg(ty: ElemType, a: i64, b: i64, round: bool) -> i64 {
    ty.wrap((a - b + i64::from(round)) >> 1)
}

/// Deliberately broken [`avg`] used as a differential-oracle fixture: the
/// sum wraps at the operand width *before* the halving shift (the classic
/// "forgot the widening" vectorization bug — `u8` 200 avg 100 comes out as
/// 22 instead of 150). Only compiled for tests; a dependent crate's test
/// suite cannot see another crate's `#[cfg(test)]` items, so the oracle
/// crate opts in through the `test-fixtures` feature instead.
#[cfg(any(test, feature = "test-fixtures"))]
pub fn broken_avg(ty: ElemType, a: i64, b: i64, round: bool) -> i64 {
    ty.wrap(ty.wrap(a + b + i64::from(round)) >> 1)
}

/// Wrapping shift left by an immediate amount in `0..ty.bits()`.
///
/// # Panics
///
/// Panics if `n >= ty.bits()`: such shifts are malformed at IR construction
/// time, not a runtime data condition.
pub fn shl(ty: ElemType, a: i64, n: u32) -> i64 {
    assert!(n < ty.bits(), "shift amount {n} out of range for {ty}");
    ty.wrap(((a as i128) << n) as i64)
}

/// Logical shift right on the raw bit pattern.
///
/// # Panics
///
/// Panics if `n >= ty.bits()`.
pub fn lsr(ty: ElemType, a: i64, n: u32) -> i64 {
    assert!(n < ty.bits(), "shift amount {n} out of range for {ty}");
    ty.wrap((ty.to_bits(a) >> n) as i64)
}

/// Arithmetic shift right on the canonical (sign-carrying) value.
///
/// # Panics
///
/// Panics if `n >= ty.bits()`.
pub fn asr(ty: ElemType, a: i64, n: u32) -> i64 {
    assert!(n < ty.bits(), "shift amount {n} out of range for {ty}");
    a >> n
}

/// Rounding arithmetic shift right: `(a + (1 << (n-1))) >> n` for `n > 0`,
/// identity for `n == 0`. Matches HVX round-before-shift semantics. The
/// rounded intermediate is wrapped back into the operand type, as hardware
/// does.
///
/// # Panics
///
/// Panics if `n >= ty.bits()`.
pub fn asr_rnd(ty: ElemType, a: i64, n: u32) -> i64 {
    assert!(n < ty.bits(), "shift amount {n} out of range for {ty}");
    if n == 0 {
        return a;
    }
    ty.wrap(a + (1i64 << (n - 1))) >> n
}

/// Fused rounding shift-right with saturating narrow to `out`: the pattern
/// implemented by HVX instructions such as `vasrhubrndsat`. The rounding add
/// is performed at full precision (no intermediate wrap), which is the
/// behaviour of the fused hardware instruction — this is exactly why it can
/// replace an unfused `(x + (1<<(n-1))) >> n` sequence only when the
/// intermediate cannot overflow.
pub fn asr_rnd_sat(_ty: ElemType, out: ElemType, a: i64, n: u32) -> i64 {
    let rounded = if n == 0 { a } else { (a + (1i64 << (n - 1))) >> n };
    out.saturate(rounded)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wrapping_add_overflows() {
        assert_eq!(add_wrap(ElemType::U8, 200, 100), 44);
        assert_eq!(add_wrap(ElemType::I16, 32767, 1), -32768);
    }

    #[test]
    fn saturating_add_clamps() {
        assert_eq!(add_sat(ElemType::U8, 200, 100), 255);
        assert_eq!(add_sat(ElemType::I16, 32767, 1), 32767);
        assert_eq!(add_sat(ElemType::I16, -32768, -1), -32768);
    }

    #[test]
    fn mul_wrap_matches_primitive() {
        assert_eq!(mul_wrap(ElemType::I16, 300, 300), (300i16.wrapping_mul(300)) as i64);
        assert_eq!(mul_wrap(ElemType::U8, 16, 16), 0);
        assert_eq!(
            mul_wrap(ElemType::I32, i32::MIN as i64, -1),
            (i32::MIN).wrapping_mul(-1) as i64
        );
    }

    #[test]
    fn absd_is_distance() {
        assert_eq!(absd(ElemType::U16, 10, 300), 290);
        assert_eq!(absd(ElemType::U16, 300, 10), 290);
        assert_eq!(absd(ElemType::I16, -5, 5), 10);
    }

    #[test]
    fn avg_rounding() {
        assert_eq!(avg(ElemType::U8, 3, 4, false), 3);
        assert_eq!(avg(ElemType::U8, 3, 4, true), 4);
        assert_eq!(navg(ElemType::I8, 3, 8, false), -3);
    }

    #[test]
    fn avg_boundaries_match_hvx_vavg() {
        // HVX `vavg` computes the sum through a wider adder: the extremes
        // of every type average to themselves, with or without rounding.
        for ty in ElemType::ALL {
            let (lo, hi) = (ty.min_value(), ty.max_value());
            for round in [false, true] {
                assert_eq!(avg(ty, hi, hi, round), hi, "{ty} max/max round={round}");
                assert_eq!(avg(ty, lo, lo, round), lo, "{ty} min/min round={round}");
            }
            // One step inside the corner: floor vs round-up is visible.
            assert_eq!(avg(ty, hi, hi - 1, false), hi - 1, "{ty}");
            assert_eq!(avg(ty, hi, hi - 1, true), hi, "{ty}");
        }
        // Wide-unsigned spot checks: the sum exceeds the type's range, the
        // average must not wrap through it.
        assert_eq!(avg(ElemType::U16, 65535, 65535, true), 65535);
        assert_eq!(avg(ElemType::U32, u32::MAX as i64, u32::MAX as i64 - 1, false), u32::MAX as i64 - 1);
        // Signed full-spread average straddles zero.
        assert_eq!(avg(ElemType::I16, -32768, 32767, false), -1);
        assert_eq!(avg(ElemType::I16, -32768, 32767, true), 0);
    }

    #[test]
    fn prop_avg_closed_over_all_types() {
        let mut rng = crate::rng::Rng::seed_from_u64(0xa76b);
        for ty in ElemType::ALL {
            for _ in 0..256 {
                let (a, b) = (canonical(&mut rng, ty), canonical(&mut rng, ty));
                let round = rng.gen_bool(0.5);
                let r = avg(ty, a, b, round);
                assert!(ty.contains(r), "{ty} avg({a},{b},{round}) = {r} not canonical");
                assert!(r >= a.min(b) && r <= a.max(b));
            }
        }
    }

    #[test]
    fn broken_avg_fixture_is_actually_broken() {
        // The oracle's shrink test relies on this fixture diverging from
        // the real `avg` exactly when the operand-width sum overflows.
        assert_eq!(broken_avg(ElemType::U8, 200, 100, false), 22);
        assert_eq!(avg(ElemType::U8, 200, 100, false), 150);
        assert_eq!(broken_avg(ElemType::U8, 3, 4, true), avg(ElemType::U8, 3, 4, true));
    }

    #[test]
    fn shifts() {
        assert_eq!(shl(ElemType::U8, 0x81, 1), 0x02);
        assert_eq!(lsr(ElemType::I8, -2, 1), 0x7f);
        assert_eq!(asr(ElemType::I8, -2, 1), -1);
        assert_eq!(asr_rnd(ElemType::I16, 7, 2), 2);
        assert_eq!(asr_rnd(ElemType::I16, 6, 2), 2);
        assert_eq!(asr_rnd(ElemType::I16, 5, 2), 1);
        assert_eq!(asr_rnd(ElemType::I16, 100, 0), 100);
    }

    #[test]
    fn fused_asr_rnd_sat() {
        // (250 + 8) >> 4 = 16 as a u8: fits.
        assert_eq!(asr_rnd_sat(ElemType::I16, ElemType::U8, 250, 4), 16);
        // Large value saturates at 255.
        assert_eq!(asr_rnd_sat(ElemType::I16, ElemType::U8, 30000, 4), 255);
        // Negative saturates at 0 for unsigned output.
        assert_eq!(asr_rnd_sat(ElemType::I16, ElemType::U8, -100, 4), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn shift_amount_validated() {
        let _ = shl(ElemType::U8, 1, 8);
    }

    fn canonical(rng: &mut crate::rng::Rng, ty: ElemType) -> i64 {
        rng.gen_range(ty.min_value()..=ty.max_value())
    }

    #[test]
    fn prop_add_wrap_closed_u16() {
        let mut rng = crate::rng::Rng::seed_from_u64(0x0add);
        for _ in 0..256 {
            let (a, b) = (canonical(&mut rng, ElemType::U16), canonical(&mut rng, ElemType::U16));
            let r = add_wrap(ElemType::U16, a, b);
            assert!(ElemType::U16.contains(r));
            assert_eq!(r, ((a as u16).wrapping_add(b as u16)) as i64);
        }
    }

    #[test]
    fn prop_add_sat_bounds_i16() {
        let mut rng = crate::rng::Rng::seed_from_u64(0x5a7);
        for _ in 0..256 {
            let (a, b) = (canonical(&mut rng, ElemType::I16), canonical(&mut rng, ElemType::I16));
            let r = add_sat(ElemType::I16, a, b);
            assert!(ElemType::I16.contains(r));
            assert_eq!(r, ((a as i16).saturating_add(b as i16)) as i64);
        }
    }

    #[test]
    fn prop_absd_symmetric() {
        let mut rng = crate::rng::Rng::seed_from_u64(0xab5d);
        for _ in 0..256 {
            let (a, b) = (canonical(&mut rng, ElemType::U8), canonical(&mut rng, ElemType::U8));
            assert_eq!(absd(ElemType::U8, a, b), absd(ElemType::U8, b, a));
            assert!(ElemType::U8.contains(absd(ElemType::U8, a, b)));
        }
    }

    #[test]
    fn prop_avg_within_operands() {
        let mut rng = crate::rng::Rng::seed_from_u64(0xa76);
        for _ in 0..256 {
            let (a, b) = (canonical(&mut rng, ElemType::U8), canonical(&mut rng, ElemType::U8));
            let r = avg(ElemType::U8, a, b, false);
            assert!(r >= a.min(b) && r <= a.max(b));
        }
    }

    #[test]
    fn prop_asr_rnd_close_to_division() {
        let mut rng = crate::rng::Rng::seed_from_u64(0xa52);
        for _ in 0..256 {
            let a = canonical(&mut rng, ElemType::I16);
            let n = rng.gen_range(1..=7) as u32;
            // Rounding shift approximates division by 2^n to within 1/2 ulp,
            // whenever the rounding add does not wrap.
            if a + (1i64 << (n - 1)) <= ElemType::I16.max_value() {
                let r = asr_rnd(ElemType::I16, a, n);
                let exact = (a as f64) / f64::from(1u32 << n);
                assert!((r as f64 - exact).abs() <= 0.5 + 1e-9);
            }
        }
    }

    #[test]
    fn prop_asr_rnd_zero_shift_is_plain_asr() {
        // `n == 0` must not evaluate `1 << (n - 1)`: the guard makes the
        // rounding shift degenerate to the identity, exactly like `asr`.
        let mut rng = crate::rng::Rng::seed_from_u64(0xa520);
        for ty in ElemType::ALL {
            for _ in 0..256 {
                let a = canonical(&mut rng, ty);
                assert_eq!(asr_rnd(ty, a, 0), asr(ty, a, 0), "{ty} a={a}");
                assert_eq!(asr_rnd(ty, a, 0), a);
            }
        }
    }

    #[test]
    fn prop_mul_wrap_closed() {
        let mut rng = crate::rng::Rng::seed_from_u64(0x371);
        for _ in 0..256 {
            let (a, b) = (canonical(&mut rng, ElemType::I32), canonical(&mut rng, ElemType::I32));
            assert!(ElemType::I32.contains(mul_wrap(ElemType::I32, a, b)));
        }
    }
}
