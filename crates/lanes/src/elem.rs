//! Element types of vector lanes.

use std::fmt;

/// A fixed-point lane element type, mirroring the integer types HVX and
/// Halide operate on.
///
/// The type carries a width (8/16/32 bits) and a signedness. Canonical
/// scalar values for a type are `i64`s inside [`ElemType::min_value`]..=
/// [`ElemType::max_value`].
///
/// # Example
///
/// ```
/// use lanes::ElemType;
/// assert_eq!(ElemType::I16.wrap(0x1_0005), 5);
/// assert_eq!(ElemType::U8.saturate(-3), 0);
/// assert_eq!(ElemType::U8.widened(), Some(ElemType::U16));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ElemType {
    /// Unsigned byte.
    U8,
    /// Signed byte.
    I8,
    /// Unsigned halfword.
    U16,
    /// Signed halfword.
    I16,
    /// Unsigned word.
    U32,
    /// Signed word.
    I32,
}

impl ElemType {
    /// All element types, in increasing width order.
    pub const ALL: [ElemType; 6] = [
        ElemType::U8,
        ElemType::I8,
        ElemType::U16,
        ElemType::I16,
        ElemType::U32,
        ElemType::I32,
    ];

    /// Width of the type in bits (8, 16 or 32).
    pub fn bits(self) -> u32 {
        match self {
            ElemType::U8 | ElemType::I8 => 8,
            ElemType::U16 | ElemType::I16 => 16,
            ElemType::U32 | ElemType::I32 => 32,
        }
    }

    /// Width of the type in bytes (1, 2 or 4).
    pub fn bytes(self) -> usize {
        (self.bits() / 8) as usize
    }

    /// Whether the type is signed.
    pub fn is_signed(self) -> bool {
        matches!(self, ElemType::I8 | ElemType::I16 | ElemType::I32)
    }

    /// The minimum canonical value of the type.
    pub fn min_value(self) -> i64 {
        if self.is_signed() {
            -(1i64 << (self.bits() - 1))
        } else {
            0
        }
    }

    /// The maximum canonical value of the type.
    pub fn max_value(self) -> i64 {
        if self.is_signed() {
            (1i64 << (self.bits() - 1)) - 1
        } else {
            (1i64 << self.bits()) - 1
        }
    }

    /// Reduce an arbitrary `i64` to the canonical value with two's-complement
    /// wrap-around semantics (what a truncating cast or overflowing
    /// arithmetic produces in hardware).
    pub fn wrap(self, v: i64) -> i64 {
        let bits = self.bits();
        let masked = (v as u64) & (u64::MAX >> (64 - bits));
        if self.is_signed() && (masked >> (bits - 1)) & 1 == 1 {
            (masked as i64) - (1i64 << bits)
        } else {
            masked as i64
        }
    }

    /// Clamp an arbitrary `i64` to the canonical range (saturating cast).
    pub fn saturate(self, v: i64) -> i64 {
        v.clamp(self.min_value(), self.max_value())
    }

    /// Whether `v` is already a canonical value of this type.
    pub fn contains(self, v: i64) -> bool {
        (self.min_value()..=self.max_value()).contains(&v)
    }

    /// The same-signedness type of double the width, if one exists.
    pub fn widened(self) -> Option<ElemType> {
        match self {
            ElemType::U8 => Some(ElemType::U16),
            ElemType::I8 => Some(ElemType::I16),
            ElemType::U16 => Some(ElemType::U32),
            ElemType::I16 => Some(ElemType::I32),
            ElemType::U32 | ElemType::I32 => None,
        }
    }

    /// The same-signedness type of half the width, if one exists.
    pub fn narrowed(self) -> Option<ElemType> {
        match self {
            ElemType::U8 | ElemType::I8 => None,
            ElemType::U16 => Some(ElemType::U8),
            ElemType::I16 => Some(ElemType::I8),
            ElemType::U32 => Some(ElemType::U16),
            ElemType::I32 => Some(ElemType::I16),
        }
    }

    /// The signed type of the same width.
    pub fn as_signed(self) -> ElemType {
        match self {
            ElemType::U8 | ElemType::I8 => ElemType::I8,
            ElemType::U16 | ElemType::I16 => ElemType::I16,
            ElemType::U32 | ElemType::I32 => ElemType::I32,
        }
    }

    /// The unsigned type of the same width.
    pub fn as_unsigned(self) -> ElemType {
        match self {
            ElemType::U8 | ElemType::I8 => ElemType::U8,
            ElemType::U16 | ElemType::I16 => ElemType::U16,
            ElemType::U32 | ElemType::I32 => ElemType::U32,
        }
    }

    /// Reinterpret the low `bits()` bits of the canonical value of this type
    /// as an unsigned integer (the raw bit pattern).
    pub fn to_bits(self, v: i64) -> u64 {
        (v as u64) & (u64::MAX >> (64 - self.bits()))
    }

    /// Short Halide-style name: `u8`, `i16`, ...
    pub fn name(self) -> &'static str {
        match self {
            ElemType::U8 => "u8",
            ElemType::I8 => "i8",
            ElemType::U16 => "u16",
            ElemType::I16 => "i16",
            ElemType::U32 => "u32",
            ElemType::I32 => "i32",
        }
    }
}

impl fmt::Display for ElemType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn widths_and_ranges() {
        assert_eq!(ElemType::U8.bits(), 8);
        assert_eq!(ElemType::I32.bytes(), 4);
        assert_eq!(ElemType::U8.min_value(), 0);
        assert_eq!(ElemType::U8.max_value(), 255);
        assert_eq!(ElemType::I16.min_value(), -32768);
        assert_eq!(ElemType::I16.max_value(), 32767);
        assert_eq!(ElemType::U32.max_value(), u32::MAX as i64);
    }

    #[test]
    fn wrap_matches_primitive_casts() {
        for v in [-300i64, -1, 0, 1, 127, 128, 255, 256, 70000, -70000] {
            assert_eq!(ElemType::U8.wrap(v), (v as u8) as i64, "u8 wrap {v}");
            assert_eq!(ElemType::I8.wrap(v), (v as i8) as i64, "i8 wrap {v}");
            assert_eq!(ElemType::U16.wrap(v), (v as u16) as i64, "u16 wrap {v}");
            assert_eq!(ElemType::I16.wrap(v), (v as i16) as i64, "i16 wrap {v}");
            assert_eq!(ElemType::U32.wrap(v), (v as u32) as i64, "u32 wrap {v}");
            assert_eq!(ElemType::I32.wrap(v), (v as i32) as i64, "i32 wrap {v}");
        }
    }

    #[test]
    fn saturate_clamps() {
        assert_eq!(ElemType::U8.saturate(300), 255);
        assert_eq!(ElemType::U8.saturate(-5), 0);
        assert_eq!(ElemType::I16.saturate(40000), 32767);
        assert_eq!(ElemType::I16.saturate(-40000), -32768);
        assert_eq!(ElemType::I16.saturate(17), 17);
    }

    #[test]
    fn widen_narrow_roundtrip() {
        for t in ElemType::ALL {
            if let Some(w) = t.widened() {
                assert_eq!(w.narrowed(), Some(t));
                assert_eq!(w.is_signed(), t.is_signed());
                assert_eq!(w.bits(), t.bits() * 2);
            }
        }
    }

    #[test]
    fn sign_conversion() {
        assert_eq!(ElemType::U16.as_signed(), ElemType::I16);
        assert_eq!(ElemType::I16.as_unsigned(), ElemType::U16);
        assert_eq!(ElemType::I8.as_signed(), ElemType::I8);
    }

    #[test]
    fn bit_patterns() {
        assert_eq!(ElemType::I8.to_bits(-1), 0xff);
        assert_eq!(ElemType::I16.to_bits(-2), 0xfffe);
        assert_eq!(ElemType::U8.to_bits(200), 200);
    }

    #[test]
    fn contains_checks_range() {
        assert!(ElemType::U8.contains(0));
        assert!(ElemType::U8.contains(255));
        assert!(!ElemType::U8.contains(256));
        assert!(!ElemType::U8.contains(-1));
        assert!(ElemType::I8.contains(-128));
    }
}
