//! Machine-learning (TensorFlow operator) and matrix-multiply benchmarks.

use halide_ir::builder::*;
use halide_ir::Expr;
use lanes::ElemType::{I16, I32, U16, U32, U8};

use crate::{Category, Workload};

fn ml(
    name: &'static str,
    lanes: usize,
    exprs: Vec<Expr>,
    buffers: Vec<(&'static str, lanes::ElemType, bool)>,
) -> Workload {
    Workload {
        name,
        category: Category::MachineLearning,
        lanes,
        exprs,
        buffers,
        rake_layout_penalty: 0,
    }
}

/// Quantized matrix multiply: a two-tap dot-product accumulation over the
/// unrolled reduction (`C += A[y,k] * B[k,x]`) followed by requantization.
pub fn matmul() -> Workload {
    let prod = |k: i32| {
        mul(
            widen(load("b", U8, 0, k)),
            widen(bcast_load("a", k, 0, U8)),
        )
    };
    let acc = add(prod(0), prod(1));
    let requant = sat_cast(U8, shr(add(acc.clone(), bcast(128, U16)), 8));
    Workload {
        name: "matmul",
        category: Category::MatrixMultiply,
        lanes: 128,
        exprs: vec![acc.clone(), requant],
        buffers: vec![("b", U8, false), ("a", U8, true)],
        rake_layout_penalty: 0,
    }
}

/// TFLite `add`: the Figure 12 pattern — a shifted widening plus a
/// precomputed runtime offset, foldable into one `vmpy-acc`.
pub fn add_op() -> Workload {
    let e = add(
        shl(cast(I16, load("input", U8, 0, 0)), 6),
        bcast_load("offset", 0, 0, I16),
    );
    ml("add", 128, vec![e], vec![("input", U8, false), ("offset", I16, true)])
}

/// TFLite `mul`: widening multiply with a saturating requantization.
pub fn mul_op() -> Workload {
    let prod = mul(
        widen(load("a", U8, 0, 0)),
        widen(load("b", U8, 0, 0)),
    );
    let e = sat_cast(U8, shr(add(prod, bcast(64, U16)), 7));
    ml("mul", 128, vec![e], vec![("a", U8, false), ("b", U8, false)])
}

/// Mean over a 4-wide window with rounding.
pub fn mean() -> Workload {
    let w = |dx| widen(load("input", U8, dx, 0));
    let sum = add(add(add(w(0), w(1)), w(2)), w(3));
    let e = cast(U8, shr(add(sum, bcast(2, U16)), 2));
    ml("mean", 128, vec![e], vec![("input", U8, false)])
}

/// L2 normalization: the Figure 12 word×halfword pattern. The operand is
/// provably non-negative (a clamped magnitude), which licenses `vmpyie`.
pub fn l2norm() -> Workload {
    let magnitude = max(load("mag", I16, 0, 0), bcast(0, I16));
    let e = mul(cast(I32, magnitude), bcast_load("inv_norm", 0, 0, I32));
    ml("l2norm", 64, vec![e], vec![("mag", I16, false), ("inv_norm", I32, true)])
}

/// Softmax requantization stage: exponent table value times a runtime
/// reciprocal, narrowed with saturation.
pub fn softmax() -> Workload {
    let prod = mul(
        cast(U32, load("exp", U16, 0, 0)),
        cast(U32, bcast_load("recip", 0, 0, U16)),
    );
    let e = sat_cast(U16, shr(add(prod, bcast(1 << 14, U32)), 15));
    ml("softmax", 64, vec![e], vec![("exp", U16, false), ("recip", U16, true)])
}

/// Average pooling: the Figure 12 accumulation step (`u16 + widen(u8)` —
/// one `vmpy-acc` for Rake) plus the rounding narrow.
pub fn average_pool() -> Workload {
    let accumulate = add(
        load("acc", U16, 0, 0),
        widen(load("input", U8, 0, 0)),
    );
    let finish = cast(U8, shr(add(load("acc", U16, 0, 0), bcast(2, U16)), 2));
    ml(
        "average_pool",
        128,
        vec![accumulate, finish],
        vec![("acc", U16, false), ("input", U8, false)],
    )
}

/// Max pooling over a 2×2 window.
pub fn max_pool() -> Workload {
    let p = |dx, dy| load("input", U8, dx, dy);
    let e = max(max(p(0, 0), p(1, 0)), max(p(0, 1), p(1, 1)));
    ml("max_pool", 128, vec![e], vec![("input", U8, false)])
}

/// Fully connected layer: four-tap runtime-weight dot product plus bias,
/// requantized.
pub fn fully_connected() -> Workload {
    let prod = |k: i32| {
        mul(
            widen(load("x", U8, 0, k)),
            widen(bcast_load("w", k, 0, U8)),
        )
    };
    let acc = add(
        add(add(prod(0), prod(1)), add(prod(2), prod(3))),
        bcast_load("bias", 0, 0, U16),
    );
    let e = sat_cast(U8, shr(add(acc, bcast(128, U16)), 8));
    ml(
        "fully_connected",
        128,
        vec![e],
        vec![("x", U8, false), ("w", U8, true), ("bias", U16, true)],
    )
}

/// Convolutional layer: a 3-tap runtime-weight row convolution with a
/// saturating requantization.
pub fn conv_nn() -> Workload {
    let prod = |k: i32| {
        mul(
            widen(load("x", U8, k, 0)),
            widen(bcast_load("w", k, 0, U8)),
        )
    };
    let acc = add(add(prod(0), prod(1)), prod(2));
    let e = sat_cast(U8, shr(add(acc, bcast(32, U16)), 6));
    ml("conv_nn", 128, vec![e], vec![("x", U8, false), ("w", U8, true)])
}

/// Depthwise convolution: same compute shape as `conv_nn`, but split in
/// two stages through an intermediate buffer. The production backend
/// coordinates the intermediate layout across both stages; Rake optimizes
/// each expression in isolation (§7.3), which the harness models with a
/// per-tile permute penalty.
pub fn depthwise_conv() -> Workload {
    let prod = |k: i32| {
        mul(
            widen(load("x", U8, k, 0)),
            widen(bcast_load("w", k, 0, U8)),
        )
    };
    let stage1 = add(add(prod(0), prod(1)), prod(2));
    let stage2 = sat_cast(U8, shr(add(load("acc16", U16, 0, 0), bcast(32, U16)), 6));
    Workload {
        name: "depthwise_conv",
        category: Category::MachineLearning,
        lanes: 128,
        exprs: vec![stage1, stage2],
        buffers: vec![("x", U8, false), ("w", U8, true), ("acc16", U16, false)],
        rake_layout_penalty: 2,
    }
}
