//! Image-processing and camera-pipeline benchmarks.

use halide_ir::builder::*;
use halide_ir::Expr;
use lanes::ElemType::{I16, I32, U16, U8};

use crate::{Category, Workload};

fn img(name: &'static str, lanes: usize, exprs: Vec<Expr>) -> Workload {
    Workload {
        name,
        category: Category::ImageProcessing,
        lanes,
        exprs,
        buffers: vec![("input", U8, false)],
        rake_layout_penalty: 0,
    }
}

/// `u16` 3-tap horizontal row `[1, 2, 1]` at row offset `dy`.
fn row121(dy: i32) -> Expr {
    let w = |dx| widen(load("input", U8, dx, dy));
    add(add(w(-1), mul(w(0), bcast(2, U16))), w(1))
}

/// The Sobel filter (Figures 2–4): gradient magnitude approximation with a
/// saturating narrow.
pub fn sobel() -> Workload {
    let col121 = |dx: i32| {
        let w = |dy| widen(load("input", U8, dx, dy));
        add(add(w(-1), mul(w(0), bcast(2, U16))), w(1))
    };
    let sobel_x = absd(row121(-1), row121(1));
    let sobel_y = absd(col121(-1), col121(1));
    let sum = add(sobel_x, sobel_y);
    let out = cast(U8, max(min(sum, bcast(255, U16)), bcast(0, U16)));
    img("sobel", 128, vec![out])
}

/// 3×3 grayscale dilation: max over the neighborhood.
pub fn dilate() -> Workload {
    let mut m = load("input", U8, -1, -1);
    for (dx, dy) in [(0, -1), (1, -1), (-1, 0), (0, 0), (1, 0), (-1, 1), (0, 1), (1, 1)] {
        m = max(m, load("input", U8, dx, dy));
    }
    img("dilate", 128, vec![m])
}

/// 2×2 box blur via cascaded rounding averages.
pub fn box_blur() -> Workload {
    let p = |dx, dy| load("input", U8, dx, dy);
    let h0 = avg_halide(p(0, 0), p(1, 0));
    let h1 = avg_halide(p(0, 1), p(1, 1));
    let out = avg_halide_narrowed(h0, h1);
    img("box_blur", 128, vec![out])
}

/// `u8` rounding average written as Halide lowers it:
/// `u8((u16(a) + u16(b) + 1) >> 1)`.
fn avg_halide(a: Expr, b: Expr) -> Expr {
    cast(U8, shr(add(add(widen(a.clone()), widen(b.clone())), bcast(1, U16)), 1))
}

fn avg_halide_narrowed(a: Expr, b: Expr) -> Expr {
    avg_halide(a, b)
}

/// 3×3 median via the classic min/max network.
pub fn median() -> Workload {
    let p = |dx: i32, dy: i32| load("input", U8, dx, dy);
    let min3 = |a: Expr, b: Expr, c: Expr| min(min(a, b), c);
    let max3 = |a: Expr, b: Expr, c: Expr| max(max(a, b), c);
    let med3 = |a: Expr, b: Expr, c: Expr| max(min(max(a.clone(), b.clone()), c), min(a, b));
    let col = |dx: i32| (p(dx, -1), p(dx, 0), p(dx, 1));
    let (a0, a1, a2) = col(-1);
    let (b0, b1, b2) = col(0);
    let (c0, c1, c2) = col(1);
    let mins = max3(
        min3(a0.clone(), a1.clone(), a2.clone()),
        min3(b0.clone(), b1.clone(), b2.clone()),
        min3(c0.clone(), c1.clone(), c2.clone()),
    );
    let meds = med3(
        med3(a0.clone(), a1.clone(), a2.clone()),
        med3(b0.clone(), b1.clone(), b2.clone()),
        med3(c0.clone(), c1.clone(), c2.clone()),
    );
    let maxs = min3(max3(a0, a1, a2), max3(b0, b1, b2), max3(c0, c1, c2));
    img("median", 128, vec![med3(mins, meds, maxs)])
}

/// 3×3 Gaussian blur: `[1,2,1]` rows and columns with a rounding shift —
/// the paper's biggest Rake win (the fused `vasr-rnd-sat`).
pub fn gaussian3x3() -> Workload {
    let sum = add(add(row121(-1), mul(row121(0), bcast(2, U16))), row121(1));
    let out = cast(U8, shr(add(sum, bcast(8, U16)), 4));
    img("gaussian3x3", 128, vec![out])
}

/// 5×5 Gaussian blur: `[1,4,6,4,1]` separable kernel, `>> 8` with rounding.
pub fn gaussian5x5() -> Workload {
    let taps: [i64; 5] = [1, 4, 6, 4, 1];
    let row = |dy: i32| {
        let mut acc: Option<Expr> = None;
        for (k, &t) in taps.iter().enumerate() {
            let w = widen(load("input", U8, k as i32 - 2, dy));
            let term = if t == 1 { w } else { mul(w, bcast(t, U16)) };
            acc = Some(match acc {
                None => term,
                Some(a) => add(a, term),
            });
        }
        acc.expect("non-empty kernel")
    };
    let mut sum: Option<Expr> = None;
    for (k, &t) in taps.iter().enumerate() {
        let r = row(k as i32 - 2);
        let term = if t == 1 { r } else { mul(r, bcast(t, U16)) };
        sum = Some(match sum {
            None => term,
            Some(a) => add(a, term),
        });
    }
    let out = cast(U8, shr(add(sum.expect("non-empty"), bcast(128, U16)), 8));
    img("gaussian5x5", 128, vec![out])
}

/// 7×7 Gaussian blur in 16-bit fixed point: rows are rescaled by a
/// rounding shift so the column accumulation stays in `u16` (the standard
/// DSP formulation that avoids 32-bit intermediates).
pub fn gaussian7x7() -> Workload {
    let taps: [i64; 7] = [1, 6, 15, 20, 15, 6, 1];
    let row = |dy: i32| {
        let mut acc: Option<Expr> = None;
        for (k, &t) in taps.iter().enumerate() {
            let w = widen(load("input", U8, k as i32 - 3, dy));
            let term = if t == 1 { w } else { mul(w, bcast(t, U16)) };
            acc = Some(match acc {
                None => term,
                Some(a) => add(a, term),
            });
        }
        // Rescale: row <= 16320, (row + 8) >> 4 <= 1020.
        shr(add(acc.expect("non-empty kernel"), bcast(8, U16)), 4)
    };
    let mut sum: Option<Expr> = None;
    for (k, &t) in taps.iter().enumerate() {
        let r = row(k as i32 - 3);
        let term = if t == 1 { r } else { mul(r, bcast(t, U16)) };
        sum = Some(match sum {
            None => term,
            Some(a) => add(a, term),
        });
    }
    // sum <= 1020 * 64 = 65280: fits u16; final rounding narrow to u8.
    let out = cast(U8, shr(add(sum.expect("non-empty"), bcast(128, U16)), 8));
    img("gaussian7x7", 128, vec![out])
}

/// General 3×3 convolution with signed weights and a 16-bit accumulator.
pub fn conv3x3a16() -> Workload {
    let kernel: [[i64; 3]; 3] = [[1, -2, 3], [-4, 5, -4], [3, -2, 1]];
    let mut acc: Option<Expr> = None;
    for (j, krow) in kernel.iter().enumerate() {
        for (i, &k) in krow.iter().enumerate() {
            let w = cast(I16, load("input", U8, i as i32 - 1, j as i32 - 1));
            let term = if k == 1 { w } else { mul(w, bcast(k, I16)) };
            acc = Some(match acc {
                None => term,
                Some(a) => add(a, term),
            });
        }
    }
    let out = sat_cast(U8, shr(add(acc.expect("non-empty"), bcast(8, I16)), 4));
    img("conv3x3a16", 128, vec![out])
}

/// General 3×3 convolution over 16-bit samples with a 32-bit accumulator,
/// vectorized at 64 lanes so the `i32` accumulator fills a register pair.
pub fn conv3x3a32() -> Workload {
    let kernel: [[i64; 3]; 3] = [[7, -12, 5], [-11, 16, -11], [5, -12, 7]];
    let mut sum: Option<Expr> = None;
    for (j, krow) in kernel.iter().enumerate() {
        for (i, &k) in krow.iter().enumerate() {
            let w = cast(I32, load("input", I16, i as i32 - 1, j as i32 - 1));
            let term = if k == 1 { w } else { mul(w, bcast(k, I32)) };
            sum = Some(match sum {
                None => term,
                Some(a) => add(a, term),
            });
        }
    }
    // 16-bit output (the a32 variant keeps wide samples end to end).
    let out = sat_cast(I16, shr(add(sum.expect("non-empty"), bcast(32, I32)), 6));
    Workload {
        name: "conv3x3a32",
        category: Category::ImageProcessing,
        lanes: 64,
        exprs: vec![out],
        buffers: vec![("input", I16, false)],
        rake_layout_penalty: 0,
    }
}

/// One representative camera-pipeline stage: color correction into the
/// inexact-clamp narrowing of Figure 12 (`min` against 127, `max` against
/// 0 — the saturating pack makes the `max` redundant, which only Rake
/// discovers).
pub fn camera_pipe() -> Workload {
    let c = |name: &str, dx| cast(I16, load(name, U8, dx, 0));
    let corrected = shr(
        add(
            add(mul(c("r", 0), bcast(3, I16)), mul(c("g", 0), bcast(2, I16))),
            mul(c("b", 0), bcast(-1, I16)),
        ),
        2,
    );
    let out = cast(U8, max(min(corrected, bcast(127, I16)), bcast(0, I16)));
    Workload {
        name: "camera_pipe",
        category: Category::CameraPipeline,
        lanes: 128,
        exprs: vec![out],
        buffers: vec![("r", U8, false), ("g", U8, false), ("b", U8, false)],
        rake_layout_penalty: 0,
    }
}
