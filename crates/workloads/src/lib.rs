//! The 21 evaluation benchmarks of the Rake paper (§7, Table 1), expressed
//! as lowered Halide IR vector expressions.
//!
//! Each [`Workload`] carries the qualifying vector expressions of its
//! innermost loop bodies (what Rake extracts from the scheduled pipeline),
//! the vectorization width its schedule picks, and a deterministic input
//! generator. Benchmarks whose accumulators are 32-bit vectorize at 64
//! lanes so a tile still fits an HVX register pair — mirroring how real
//! Halide HVX schedules choose vector sizes by byte width.
//!
//! `depthwise_conv` additionally carries the paper's §7.3 limitation
//! marker: Rake optimizes each expression in isolation and cannot change
//! intermediate buffer layouts across expressions, so the harness charges
//! it the re-layout permutes the production backend avoids — reproducing
//! the one benchmark where Rake loses.

mod image;
mod ml;

use halide_ir::{Buffer2D, Env, Expr};
use lanes::ElemType;
use lanes::rng::Rng;

/// Benchmark category (the grouping of §7).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Category {
    /// Blurs, edge detection, dilation, general convolutions.
    ImageProcessing,
    /// TensorFlow operator kernels.
    MachineLearning,
    /// The Frankencamera raw-processing pipeline.
    CameraPipeline,
    /// Quantized matrix multiplication.
    MatrixMultiply,
}

/// One evaluation benchmark.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Benchmark name (Table 1's first column).
    pub name: &'static str,
    /// Category.
    pub category: Category,
    /// Vectorization width in lanes.
    pub lanes: usize,
    /// The qualifying vector expressions of the loop bodies.
    pub exprs: Vec<Expr>,
    /// Input buffers: `(name, element type, is_scalar_table)`. Scalar
    /// tables hold runtime broadcast operands and stay small.
    pub buffers: Vec<(&'static str, ElemType, bool)>,
    /// Extra permute units charged to Rake per tile: models the §7.3
    /// cross-expression layout limitation (non-zero only for
    /// `depthwise_conv`).
    pub rake_layout_penalty: u32,
}

impl Workload {
    /// Deterministic input environment covering a `width`×`height` tile
    /// sweep (plus halo).
    pub fn env(&self, width: usize, height: usize, seed: u64) -> Env {
        let mut env = Env::new();
        for (i, (name, ty, scalar_table)) in self.buffers.iter().enumerate() {
            let mut rng = Rng::seed_from_u64(seed.wrapping_mul(0x9e37).wrapping_add(i as u64));
            let (w, h) = if *scalar_table { (16, height + 16) } else { (width, height) };
            env.insert(Buffer2D::from_fn(name, *ty, w, h, |_, _| {
                rng.gen_range(ty.min_value()..=ty.max_value())
            }));
        }
        env
    }
}

/// All 21 benchmarks, in the paper's Table 1 order.
pub fn all() -> Vec<Workload> {
    vec![
        image::sobel(),
        image::dilate(),
        image::box_blur(),
        image::median(),
        image::gaussian3x3(),
        image::gaussian5x5(),
        image::gaussian7x7(),
        image::conv3x3a16(),
        image::conv3x3a32(),
        image::camera_pipe(),
        ml::matmul(),
        ml::add_op(),
        ml::mul_op(),
        ml::mean(),
        ml::l2norm(),
        ml::softmax(),
        ml::average_pool(),
        ml::max_pool(),
        ml::fully_connected(),
        ml::conv_nn(),
        ml::depthwise_conv(),
    ]
}

/// Look up one benchmark by name.
pub fn by_name(name: &str) -> Option<Workload> {
    all().into_iter().find(|w| w.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use halide_ir::EvalCtx;

    #[test]
    fn twenty_one_benchmarks() {
        let ws = all();
        assert_eq!(ws.len(), 21);
        let names: Vec<&str> = ws.iter().map(|w| w.name).collect();
        assert!(names.contains(&"sobel"));
        assert!(names.contains(&"depthwise_conv"));
        // Names are unique.
        let mut sorted = names.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 21);
    }

    #[test]
    fn every_workload_evaluates() {
        for w in all() {
            let env = w.env(w.lanes + 64, 16, 1);
            for (i, e) in w.exprs.iter().enumerate() {
                let ctx = EvalCtx { env: &env, x0: 16, y0: 8, lanes: w.lanes };
                let v = halide_ir::eval(e, &ctx)
                    .unwrap_or_else(|err| panic!("{}[{i}]: {err}", w.name));
                assert_eq!(v.lanes(), w.lanes);
                assert_eq!(v.ty(), e.ty());
            }
        }
    }

    #[test]
    fn every_expression_qualifies() {
        for w in all() {
            for e in &w.exprs {
                assert!(
                    halide_ir::analysis::is_qualifying(e),
                    "{}: trivial expression {e}",
                    w.name
                );
            }
        }
    }

    #[test]
    fn only_depthwise_has_layout_penalty() {
        for w in all() {
            if w.name == "depthwise_conv" {
                assert!(w.rake_layout_penalty > 0);
            } else {
                assert_eq!(w.rake_layout_penalty, 0, "{}", w.name);
            }
        }
    }

    #[test]
    fn env_is_deterministic() {
        let w = by_name("sobel").unwrap();
        let a = w.env(64, 8, 42);
        let b = w.env(64, 8, 42);
        let (ba, bb) = (a.get("input").unwrap(), b.get("input").unwrap());
        for x in 0..64 {
            assert_eq!(ba.get(x, 3), bb.get(x, 3));
        }
    }
}
