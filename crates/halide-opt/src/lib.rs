//! The baseline: a pattern-matching HVX instruction selector in the style
//! of Halide 12's `HexagonOptimizer` — the comparison target of the Rake
//! paper's evaluation (§7).
//!
//! The selector walks the Halide IR greedily, rewriting syntactic patterns
//! into HVX intrinsics. It is *correct* (every translation is
//! differentially tested against the IR interpreter) but it has exactly
//! the blind spots the paper documents for the production backend:
//!
//! * no 3-tap sliding-window fusion — a `[1,2,1]` row becomes
//!   `vmpa + vzxt + vadd`, never `vtmpy` (Figure 4a);
//! * no accumulator fusion — `vmpa + vadd`, never `vmpa.acc` (Figure 4b);
//! * no fused round-shift-saturate narrowing — rounding shifts become
//!   `vadd + vasr + vshuffe` (Figure 12, gaussian3x3);
//! * explicit clamps are kept even when a saturating pack subsumes them
//!   (Figure 12, camera_pipe);
//! * widening results are normalized to natural lane order immediately
//!   after each producing instruction; only *adjacent* shuffle/deal pairs
//!   are cancelled, so interleaves survive whenever any op sits between
//!   them (§7.1.3, "not always able to do so");
//! * no `vmpyie` — word×halfword products shift the even halfwords into
//!   odd position with `vaslw` and reuse `vmpyio` (Figure 12, l2norm);
//! * no widening multiply-accumulate for mixed-width adds — `u16 + u8`
//!   zero-extends and adds (Figure 12, average_pool);
//! * shifts never fold into multiplies (Figure 12, add).

use std::fmt;

use halide_ir::{BinOp, Expr, ShiftDir};
use hvx::{HvxExpr, Op, ScalarOperand};
use lanes::ElemType;

/// Geometry of the target machine (mirrors `rake::Target`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BaselineOptions {
    /// Vectorization width in lanes.
    pub lanes: usize,
    /// Register width in bytes.
    pub vec_bytes: usize,
}

impl BaselineOptions {
    /// Full-width HVX.
    pub fn hvx() -> BaselineOptions {
        BaselineOptions { lanes: 128, vec_bytes: 128 }
    }

    /// Scaled-down machine for tests.
    pub fn small(lanes: usize) -> BaselineOptions {
        BaselineOptions { lanes, vec_bytes: lanes }
    }
}

/// The selector failed to cover an expression shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SelectError(String);

impl fmt::Display for SelectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "no pattern covers: {}", self.0)
    }
}

impl std::error::Error for SelectError {}

/// Select HVX instructions for `e` with the baseline pattern matcher,
/// producing a natural-order result.
///
/// # Errors
///
/// Returns [`SelectError`] if some sub-expression matches no rule.
pub fn select(e: &Expr, opts: BaselineOptions) -> Result<HvxExpr, SelectError> {
    let sel = Selector { opts };
    let out = sel.go(e)?;
    Ok(cancel_adjacent_shuffles(out))
}

struct Selector {
    opts: BaselineOptions,
}

/// One flattened additive term: an expression with a constant weight, plus
/// whether it is a "narrow" term (needs widening into the result type).
struct Term {
    expr: Expr,
    weight: i64,
    narrow: bool,
}

impl Selector {
    fn pair_sized(&self, ty: ElemType) -> bool {
        self.opts.lanes * ty.bytes() > self.opts.vec_bytes
    }

    /// Normalize a deinterleaved pair to natural order — what the
    /// production backend does after every widening instruction.
    fn normalize(&self, e: HvxExpr, ty: ElemType) -> HvxExpr {
        if self.pair_sized(ty) {
            HvxExpr::op(Op::VshuffPair { elem: ty }, vec![e])
        } else {
            e
        }
    }

    fn go(&self, e: &Expr) -> Result<HvxExpr, SelectError> {
        // Rules are tried most-specific first, as a pattern matcher does.
        if let Some(r) = self.match_avg(e)? {
            return Ok(r);
        }
        if let Some(r) = self.match_saturating_narrow(e)? {
            return Ok(r);
        }
        match e {
            Expr::Load(l) => Ok(HvxExpr::vmem(&l.buffer, l.ty, l.dx, l.dy)),
            Expr::Broadcast(b) => Ok(HvxExpr::vsplat_imm(b.value, b.ty)),
            Expr::BroadcastLoad(b) => Ok(HvxExpr::vsplat_load(&b.buffer, b.x, b.dy, b.ty)),
            Expr::Cast(c) => self.cast(e, c.to, &c.arg, c.saturating),
            Expr::Binary(b) => match b.op {
                BinOp::Add | BinOp::Sub => self.add_chain(e),
                BinOp::Mul => self.mul(e, &b.lhs, &b.rhs),
                BinOp::Min => self.elementwise(Op::Vmin { elem: e.ty() }, &b.lhs, &b.rhs),
                BinOp::Max => self.elementwise(Op::Vmax { elem: e.ty() }, &b.lhs, &b.rhs),
                BinOp::Absd => {
                    self.elementwise(Op::Vabsdiff { elem: e.ty() }, &b.lhs, &b.rhs)
                }
            },
            Expr::Shift(s) => {
                let a = self.go(&s.arg)?;
                let op = match s.dir {
                    ShiftDir::Left => Op::Vasl { elem: e.ty(), shift: s.amount },
                    ShiftDir::Right => Op::Vasr { elem: e.ty(), shift: s.amount },
                };
                Ok(HvxExpr::op(op, vec![a]))
            }
        }
    }

    fn elementwise(&self, op: Op, a: &Expr, b: &Expr) -> Result<HvxExpr, SelectError> {
        Ok(HvxExpr::op(op, vec![self.go(a)?, self.go(b)?]))
    }

    /// `cast_narrow((widen(a) + widen(b) [+ 1]) >> 1)` → `vavg` — a rule
    /// the production backend does have.
    fn match_avg(&self, e: &Expr) -> Result<Option<HvxExpr>, SelectError> {
        let Expr::Cast(c) = e else { return Ok(None) };
        if c.to.bits() * 2 != c.arg.ty().bits() {
            return Ok(None);
        }
        let Expr::Shift(s) = &*c.arg else { return Ok(None) };
        if s.dir != ShiftDir::Right || s.amount != 1 {
            return Ok(None);
        }
        let (sum, round) = match &*s.arg {
            Expr::Binary(b)
                if b.op == BinOp::Add
                    && matches!(&*b.rhs, Expr::Broadcast(bc) if bc.value == 1) =>
            {
                (&b.lhs, true)
            }
            _ => (&s.arg, false),
        };
        let Expr::Binary(add) = &**sum else { return Ok(None) };
        if add.op != BinOp::Add {
            return Ok(None);
        }
        let (Some(a), Some(b)) = (strip_widen(&add.lhs), strip_widen(&add.rhs)) else {
            return Ok(None);
        };
        if a.ty() != c.to || b.ty() != c.to {
            return Ok(None);
        }
        Ok(Some(HvxExpr::op(
            Op::Vavg { elem: c.to, round },
            vec![self.go(a)?, self.go(b)?],
        )))
    }

    /// `cast_narrow(max(min(x, hi), 0))` with `hi` = the exact type maximum
    /// → saturating pack. (With any other bound the pattern does NOT fire
    /// and the clamp is computed explicitly — the camera_pipe miss.)
    fn match_saturating_narrow(&self, e: &Expr) -> Result<Option<HvxExpr>, SelectError> {
        let Expr::Cast(c) = e else { return Ok(None) };
        let src = c.arg.ty();
        if c.to.bits() * 2 != src.bits() {
            return Ok(None);
        }
        let Expr::Binary(outer) = &*c.arg else { return Ok(None) };
        if outer.op != BinOp::Max || !matches!(&*outer.rhs, Expr::Broadcast(b) if b.value == 0) {
            return Ok(None);
        }
        let Expr::Binary(inner) = &*outer.lhs else { return Ok(None) };
        if inner.op != BinOp::Min
            || !matches!(&*inner.rhs, Expr::Broadcast(b) if b.value == c.to.max_value())
        {
            return Ok(None);
        }
        let x = self.go(&inner.lhs)?;
        let deal = self.deal_for_narrow(x, src);
        Ok(Some(self.pack(deal, src, c.to, true)))
    }

    fn cast(
        &self,
        _e: &Expr,
        to: ElemType,
        arg: &Expr,
        saturating: bool,
    ) -> Result<HvxExpr, SelectError> {
        let src = arg.ty();
        if to.bits() > src.bits() {
            // Widening: vzxt/vsxt, then normalize to natural order.
            if to.bits() != src.bits() * 2 {
                return Err(SelectError(format!("double-widening cast {src} -> {to}")));
            }
            let a = self.go(arg)?;
            let op = if src.is_signed() { Op::Vsxt { elem: src } } else { Op::Vzxt { elem: src } };
            Ok(self.normalize(HvxExpr::op(op, vec![a]), to))
        } else if to.bits() == src.bits() {
            // Same-width reinterpretation is free on registers.
            self.go(arg)
        } else {
            if to.bits() * 2 != src.bits() {
                return Err(SelectError(format!("double-narrowing cast {src} -> {to}")));
            }
            if !self.pair_sized(src) {
                // Narrowing needs the two halves of a pair; a tile that
                // fits one register has no pack rule.
                return Err(SelectError(format!("narrow of single-register {src} tile")));
            }
            let a = self.go(arg)?;
            let deal = self.deal_for_narrow(a, src);
            Ok(self.pack(deal, src, to, saturating))
        }
    }

    /// Narrowing instructions interleave from a deinterleaved pair, so a
    /// natural-order pair must be dealt first.
    fn deal_for_narrow(&self, e: HvxExpr, src: ElemType) -> HvxExpr {
        if self.pair_sized(src) {
            HvxExpr::op(Op::VdealPair { elem: src }, vec![e])
        } else {
            e
        }
    }

    fn pack(&self, dealt: HvxExpr, src: ElemType, to: ElemType, sat: bool) -> HvxExpr {
        HvxExpr::op(
            Op::Vpack { elem: src, sat, out: to },
            vec![
                HvxExpr::op(Op::Hi, vec![dealt.clone()]),
                HvxExpr::op(Op::Lo, vec![dealt]),
            ],
        )
    }

    fn mul(&self, e: &Expr, lhs: &Expr, rhs: &Expr) -> Result<HvxExpr, SelectError> {
        let ty = e.ty();
        // Widening multiply patterns. Scalar registers are element-wide
        // (Rt.b/Rt.h), so the rule only fires when the scalar fits.
        for (a, b) in [(lhs, rhs), (rhs, lhs)] {
            if let (Some(na), Some(scalar)) = (strip_widen(a), scalar_of(b)) {
                if na.ty().bits() * 2 == ty.bits() && scalar_fits(b, na.ty()) {
                    let m = HvxExpr::op(
                        Op::VmpyScalar { elem: na.ty(), scalar },
                        vec![self.go(na)?],
                    );
                    return Ok(self.normalize(m, ty));
                }
            }
        }
        if let (Some(na), Some(nb)) = (strip_widen(lhs), strip_widen(rhs)) {
            if na.ty() == nb.ty() && na.ty().bits() * 2 == ty.bits() {
                let m = HvxExpr::op(Op::Vmpy { elem: na.ty() }, vec![self.go(na)?, self.go(nb)?]);
                return Ok(self.normalize(m, ty));
            }
        }
        // Word × halfword via vmpyio + vaslw (no vmpyie rule). The widen of
        // the halfword operand never happens physically: vmpyio reads the
        // halfword lanes straight from the register.
        if ty.bits() == 32 {
            for (a, b) in [(lhs, rhs), (rhs, lhs)] {
                if let (Some(wa), Some(nb)) = (widen_to_word(a), strip_widen(b)) {
                    if nb.ty().bits() == 16 && !self.pair_sized(nb.ty()) {
                        let w = self.word_operand(wa)?;
                        let h = self.go(nb)?;
                        let odd = HvxExpr::op(Op::Vmpyio, vec![w.clone(), h.clone()]);
                        let shifted =
                            HvxExpr::op(Op::Vasl { elem: ElemType::I32, shift: 16 }, vec![h]);
                        let even = HvxExpr::op(Op::Vmpyio, vec![w, shifted]);
                        let m = HvxExpr::op(Op::Vcombine, vec![odd, even]);
                        return Ok(self.normalize(m, ty));
                    }
                }
            }
        }
        // Non-widening multiply by a constant. `vmpyi` scalars are at most
        // half the element width (`vmpyiwh`, `vmpyihb`).
        for (a, b) in [(lhs, rhs), (rhs, lhs)] {
            if let Some(scalar) = scalar_of(b) {
                let narrow = ty.narrowed();
                if narrow.is_some_and(|n| scalar_fits(b, n)) {
                    return Ok(HvxExpr::op(Op::Vmpyi { elem: ty, scalar }, vec![self.go(a)?]));
                }
            }
        }
        Err(SelectError(e.to_string()))
    }

    /// One register holding the broadcast word for `vmpyio`.
    fn word_operand(&self, w: &Expr) -> Result<HvxExpr, SelectError> {
        let full = self.go(w)?;
        if self.pair_sized(w.ty()) {
            Ok(HvxExpr::op(Op::Lo, vec![full]))
        } else {
            Ok(full)
        }
    }

    /// Greedy multiply-add selection over a flattened `+`/`-` chain: pair
    /// the first weighted narrow term with its neighbour into a `vmpa`,
    /// zero-extend lone widen terms, and `vadd` everything together. No
    /// `vtmpy`, no accumulating forms — the production backend's shape.
    fn add_chain(&self, e: &Expr) -> Result<HvxExpr, SelectError> {
        let ty = e.ty();
        let mut terms = Vec::new();
        flatten_add(e, 1, &mut terms);
        let widening = terms.iter().any(|t| t.narrow);
        if !widening {
            return self.add_chain_flat(e, ty, terms);
        }

        // Partition: narrow (widening) terms vs wide terms.
        let (narrow, wide): (Vec<&Term>, Vec<&Term>) = terms.iter().partition(|t| t.narrow);
        if narrow.iter().any(|t| t.expr.ty().bits() * 2 != ty.bits())
            || wide.iter().any(|t| t.expr.ty().bits() != ty.bits())
        {
            return Err(SelectError(e.to_string()));
        }
        let mut parts: Vec<HvxExpr> = Vec::new();
        // Order weighted terms first so vmpa absorbs the multiplies.
        let mut narrow = narrow;
        narrow.sort_by_key(|t| t.weight.abs() == 1);
        let mut i = 0;
        while i < narrow.len() {
            let t0 = narrow[i];
            if i + 1 < narrow.len() && t0.expr.ty() == narrow[i + 1].expr.ty() {
                let t1 = narrow[i + 1];
                let m = HvxExpr::op(
                    Op::Vmpa { elem: t0.expr.ty(), w0: t0.weight, w1: t1.weight },
                    vec![self.go(&t0.expr)?, self.go(&t1.expr)?],
                );
                parts.push(self.normalize(m, ty));
                i += 2;
            } else {
                let src = t0.expr.ty();
                let m = if t0.weight == 1 {
                    let op = if src.is_signed() {
                        Op::Vsxt { elem: src }
                    } else {
                        Op::Vzxt { elem: src }
                    };
                    HvxExpr::op(op, vec![self.go(&t0.expr)?])
                } else {
                    HvxExpr::op(
                        Op::VmpyScalar { elem: src, scalar: ScalarOperand::Imm(t0.weight) },
                        vec![self.go(&t0.expr)?],
                    )
                };
                parts.push(self.normalize(m, ty));
                i += 1;
            }
        }
        for t in wide {
            let x = self.go(&t.expr)?;
            let x = match t.weight {
                1 => x,
                w => HvxExpr::op(
                    Op::Vmpyi { elem: ty, scalar: ScalarOperand::Imm(w) },
                    vec![x],
                ),
            };
            parts.push(x);
        }
        let mut acc = parts.remove(0);
        for p in parts {
            acc = HvxExpr::op(Op::Vadd { elem: ty, sat: false }, vec![acc, p]);
        }
        Ok(acc)
    }

    /// Same-width add/sub chain.
    fn add_chain_flat(
        &self,
        e: &Expr,
        ty: ElemType,
        terms: Vec<Term>,
    ) -> Result<HvxExpr, SelectError> {
        if terms.iter().any(|t| t.expr.ty() != ty) {
            return Err(SelectError(e.to_string()));
        }
        let mut acc: Option<HvxExpr> = None;
        for t in terms {
            let x = self.go(&t.expr)?;
            let x = match t.weight {
                1 | -1 => x,
                w => HvxExpr::op(
                    Op::Vmpyi { elem: ty, scalar: ScalarOperand::Imm(w) },
                    vec![x],
                ),
            };
            acc = Some(match (acc.take(), t.weight) {
                (None, w) if !(-1..1).contains(&w) => x,
                (None, _) => {
                    let zero = HvxExpr::vsplat_imm(0, ty);
                    HvxExpr::op(Op::Vsub { elem: ty, sat: false }, vec![zero, x])
                }
                (Some(acc), -1) => HvxExpr::op(Op::Vsub { elem: ty, sat: false }, vec![acc, x]),
                (Some(acc), _) => HvxExpr::op(Op::Vadd { elem: ty, sat: false }, vec![acc, x]),
            });
        }
        acc.ok_or_else(|| SelectError(e.to_string()))
    }
}

/// `widen(x)` → `x` for a one-step widening cast.
fn strip_widen(e: &Expr) -> Option<&Expr> {
    match e {
        Expr::Cast(c) if !c.saturating && c.to.bits() == c.arg.ty().bits() * 2 => Some(&c.arg),
        _ => None,
    }
}

/// Whether the broadcast scalar fits an element-wide scalar register.
/// Signed and unsigned register variants both exist, so the valid range is
/// their union; runtime scalars are judged by their buffer's width.
fn scalar_fits(e: &Expr, elem: ElemType) -> bool {
    match e {
        Expr::Broadcast(b) => {
            b.value >= elem.as_signed().min_value() && b.value <= elem.max_value()
        }
        Expr::BroadcastLoad(b) => b.ty.bits() <= elem.bits(),
        _ => false,
    }
}

/// A broadcast (immediate or runtime scalar) as a scalar operand.
fn scalar_of(e: &Expr) -> Option<ScalarOperand> {
    match e {
        Expr::Broadcast(b) => Some(ScalarOperand::Imm(b.value)),
        Expr::BroadcastLoad(b) => {
            Some(ScalarOperand::Load { buffer: b.buffer.clone(), x: b.x, dy: b.dy })
        }
        _ => None,
    }
}

/// A broadcast already at word width (for the vmpyio rule).
fn widen_to_word(e: &Expr) -> Option<&Expr> {
    match e {
        Expr::Broadcast(b) if b.ty.bits() == 32 => Some(e),
        Expr::BroadcastLoad(b) if b.ty.bits() == 32 => Some(e),
        _ => None,
    }
}

/// Flatten `a + b` / `a - b` chains into weighted terms, marking widening
/// (`widen(x) * c` / `widen(x)`) terms as narrow.
fn flatten_add(e: &Expr, weight: i64, terms: &mut Vec<Term>) {
    match e {
        Expr::Binary(b) if b.op == BinOp::Add => {
            flatten_add(&b.lhs, weight, terms);
            flatten_add(&b.rhs, weight, terms);
        }
        Expr::Binary(b) if b.op == BinOp::Sub => {
            flatten_add(&b.lhs, weight, terms);
            flatten_add(&b.rhs, -weight, terms);
        }
        Expr::Binary(b) if b.op == BinOp::Mul => {
            // widen(x) * c or c * widen(x).
            for (v, c) in [(&b.lhs, &b.rhs), (&b.rhs, &b.lhs)] {
                if let (Some(n), Expr::Broadcast(bc)) = (strip_widen(v), &**c) {
                    terms.push(Term { expr: n.clone(), weight: bc.value * weight, narrow: true });
                    return;
                }
            }
            terms.push(Term { expr: e.clone(), weight, narrow: false });
        }
        _ => {
            if let Some(n) = strip_widen(e) {
                terms.push(Term { expr: n.clone(), weight, narrow: true });
            } else {
                terms.push(Term { expr: e.clone(), weight, narrow: false });
            }
        }
    }
}

/// The production backend's interleave-elimination pass: cancel *directly
/// adjacent* `vshuffvdd`/`vdealvdd` pairs. Anything in between defeats it.
fn cancel_adjacent_shuffles(e: HvxExpr) -> HvxExpr {
    let args: Vec<HvxExpr> =
        e.args().iter().cloned().map(cancel_adjacent_shuffles).collect();
    match (e.root(), args.as_slice()) {
        (Op::VdealPair { .. }, [inner]) if matches!(inner.root(), Op::VshuffPair { .. }) => {
            inner.args()[0].clone()
        }
        (Op::VshuffPair { .. }, [inner]) if matches!(inner.root(), Op::VdealPair { .. }) => {
            inner.args()[0].clone()
        }
        _ => HvxExpr::op(e.root().clone(), args),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use halide_ir::builder::*;
    use halide_ir::{Buffer2D, Env, EvalCtx};
    use lanes::rng::Rng;

    const LANES: usize = 8;

    fn opts() -> BaselineOptions {
        BaselineOptions::small(LANES)
    }

    fn check_equiv(e: &Expr) -> HvxExpr {
        let h = select(e, opts()).expect("baseline must cover workloads");
        // Differential check against the IR interpreter.
        let mut rng = Rng::seed_from_u64(7);
        for _ in 0..8 {
            let mut env = Env::new();
            for name in halide_ir::analysis::buffers_used(e) {
                let ty = halide_ir::analysis::loads(e)
                    .iter()
                    .find(|l| l.buffer == name)
                    .map(|l| l.ty)
                    .unwrap_or(ElemType::U8);
                env.insert(Buffer2D::from_fn(&name, ty, 64, 9, |_, _| {
                    rng.gen_range(ty.min_value()..=ty.max_value())
                }));
            }
            let ctx = EvalCtx { env: &env, x0: 16, y0: 4, lanes: LANES };
            let want = halide_ir::eval(e, &ctx).unwrap();
            let got = h.eval(&env, 16, 4, LANES).unwrap();
            assert_eq!(got.typed_lanes(e.ty()), want, "baseline wrong for {e}");
        }
        h
    }

    fn count(e: &HvxExpr, f: &dyn Fn(&Op) -> bool) -> usize {
        // Count over the CSE'd program so shared subtrees count once.
        e.to_program().instrs().iter().filter(|i| f(&i.op)).count()
    }

    #[test]
    fn conv_row_uses_vmpa_vzxt_vadd_not_vtmpy() {
        let t = |dx| widen(load("in", ElemType::U8, dx, 0));
        let e = add(add(t(-1), mul(t(0), bcast(2, ElemType::U16))), t(1));
        let h = check_equiv(&e);
        assert_eq!(count(&h, &|o| matches!(o, Op::Vtmpy { .. })), 0);
        assert_eq!(count(&h, &|o| matches!(o, Op::Vmpa { .. })), 1, "got:\n{h}");
        assert_eq!(count(&h, &|o| matches!(o, Op::Vzxt { .. })), 1, "got:\n{h}");
        assert_eq!(count(&h, &|o| matches!(o, Op::Vadd { .. })), 1, "got:\n{h}");
    }

    #[test]
    fn rounding_shift_is_unfused() {
        let t = |dx| widen(load("in", ElemType::U8, dx, 0));
        let row = add(add(t(-1), mul(t(0), bcast(2, ElemType::U16))), t(1));
        let e = cast(ElemType::U8, shr(add(row, bcast(8, ElemType::U16)), 4));
        let h = check_equiv(&e);
        assert_eq!(count(&h, &|o| matches!(o, Op::VasrNarrow { .. })), 0, "got:\n{h}");
        assert!(count(&h, &|o| matches!(o, Op::Vasr { .. })) >= 1, "got:\n{h}");
        assert!(count(&h, &|o| matches!(o, Op::Vpack { .. })) >= 1, "got:\n{h}");
    }

    #[test]
    fn exact_clamp_pattern_fires_saturating_pack() {
        let x = add(
            widen(load("in", ElemType::U8, 0, 0)),
            widen(load("in", ElemType::U8, 1, 0)),
        );
        let e = cast(ElemType::U8, clamp(x, 0, 255));
        let h = check_equiv(&e);
        assert_eq!(count(&h, &|o| matches!(o, Op::Vpack { sat: true, .. })), 1);
        assert_eq!(count(&h, &|o| matches!(o, Op::Vmax { .. })), 0, "got:\n{h}");
    }

    #[test]
    fn inexact_clamp_keeps_min_max() {
        // min against 127 (not the u8 max): pattern does not fire.
        let x = load("w", ElemType::I16, 0, 0);
        let e = cast(ElemType::U8, max(min(x, bcast(127, ElemType::I16)), bcast(0, ElemType::I16)));
        let h = check_equiv(&e);
        assert_eq!(count(&h, &|o| matches!(o, Op::Vmin { .. })), 1, "got:\n{h}");
        assert_eq!(count(&h, &|o| matches!(o, Op::Vmax { .. })), 1, "got:\n{h}");
    }

    #[test]
    fn average_rule_exists() {
        let a = widen(load("a", ElemType::U8, 0, 0));
        let b = widen(load("b", ElemType::U8, 0, 0));
        let e = cast(ElemType::U8, shr(add(add(a, b), bcast(1, ElemType::U16)), 1));
        let h = check_equiv(&e);
        assert_eq!(count(&h, &|o| matches!(o, Op::Vavg { round: true, .. })), 1, "got:\n{h}");
    }

    #[test]
    fn mixed_width_add_zero_extends() {
        // u16 + widen(u8): vzxt + vadd, not vmpy-acc (Figure 12).
        let e = add(
            load("w", ElemType::U16, 0, 0),
            widen(load("n", ElemType::U8, 0, 0)),
        );
        let h = check_equiv(&e);
        assert_eq!(count(&h, &|o| matches!(o, Op::Vzxt { .. })), 1, "got:\n{h}");
        assert_eq!(count(&h, &|o| matches!(o, Op::VmpyAcc { .. })), 0);
    }

    #[test]
    fn widening_scalar_multiply() {
        let e = mul(widen(load("in", ElemType::U8, 0, 0)), bcast(3, ElemType::U16));
        let h = check_equiv(&e);
        assert_eq!(count(&h, &|o| matches!(o, Op::VmpyScalar { .. })), 1, "got:\n{h}");
    }

    #[test]
    fn adjacent_shuffles_cancel() {
        // widen then immediately narrow: the shuff/deal pair cancels.
        let e = cast(
            ElemType::U8,
            widen(load("in", ElemType::U8, 0, 0)),
        );
        let h = check_equiv(&e);
        assert_eq!(count(&h, &|o| matches!(o, Op::VshuffPair { .. })), 0, "got:\n{h}");
        assert_eq!(count(&h, &|o| matches!(o, Op::VdealPair { .. })), 0, "got:\n{h}");
    }

    #[test]
    fn intervening_op_defeats_cancellation() {
        // widen, add a splat, then narrow: shuff and deal survive (§7.1.3).
        let wide = add(widen(load("in", ElemType::U8, 0, 0)), bcast(5, ElemType::U16));
        let e = cast(ElemType::U8, wide);
        let h = check_equiv(&e);
        assert_eq!(count(&h, &|o| matches!(o, Op::VshuffPair { .. })), 1, "got:\n{h}");
        assert_eq!(count(&h, &|o| matches!(o, Op::VdealPair { .. })), 1, "got:\n{h}");
    }

    #[test]
    fn word_half_uses_vaslw_not_vmpyie() {
        // x(runtime i32) * i32(i16x): the scalar does not fit Rt.h, so the
        // word×halfword rule fires — vmpyio twice with a vaslw, never
        // vmpyie (Figure 12, l2norm). Geometry: i16 tile in one register.
        let e = mul(
            cast(ElemType::I32, load("h", ElemType::I16, 0, 0)),
            bcast_load("s", 0, 0, ElemType::I32),
        );
        let o = BaselineOptions { lanes: 8, vec_bytes: 16 };
        let h = select(&e, o).expect("must select");
        let prog = h.to_program();
        let n_io = prog.instrs().iter().filter(|i| matches!(i.op, Op::Vmpyio)).count();
        let n_ie = prog.instrs().iter().filter(|i| matches!(i.op, Op::Vmpyie)).count();
        let n_asl =
            prog.instrs().iter().filter(|i| matches!(i.op, Op::Vasl { shift: 16, .. })).count();
        assert_eq!((n_io, n_ie, n_asl), (2, 0, 1), "got:\n{h}");
        // Differential check at that geometry.
        let mut env = Env::new();
        env.insert(Buffer2D::from_fn("h", ElemType::I16, 64, 1, |x, _| (x as i64) * 117 - 400));
        env.insert(Buffer2D::from_fn("s", ElemType::I32, 4, 1, |_, _| 1 << 20));
        let ctx = EvalCtx { env: &env, x0: 16, y0: 0, lanes: 8 };
        let want = halide_ir::eval(&e, &ctx).unwrap();
        let got = h
            .eval_ctx(&hvx::ExecCtx { env: &env, x0: 16, y0: 0, lanes: 8, vec_bytes: 16 })
            .unwrap();
        assert_eq!(got.typed_lanes(ElemType::I32), want);
    }
}
