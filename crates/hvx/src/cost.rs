//! The paper's cost model (§6): per-resource instruction counting.

use crate::ops::Resource;
use crate::program::Program;

/// Instruction units charged to each hardware resource.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResourceCounts {
    /// Load/store units.
    pub load: u32,
    /// Multiplier units.
    pub mpy: u32,
    /// Shifter units.
    pub shift: u32,
    /// Permute-network units.
    pub permute: u32,
    /// Vector-ALU units.
    pub alu: u32,
}

impl ResourceCounts {
    /// The paper's cost: the maximum over resources. "Since different
    /// instructions can execute on different hardware resources within the
    /// same cycle, we count the number of instructions per resource and
    /// take the maximum" (§6).
    pub fn cost(&self) -> u32 {
        self.load.max(self.mpy).max(self.shift).max(self.permute).max(self.alu)
    }

    /// Total units across all resources (tie-breaker: fewer instructions
    /// overall is better at equal max-cost).
    pub fn total(&self) -> u32 {
        self.load + self.mpy + self.shift + self.permute + self.alu
    }

    fn slot(&mut self, r: Resource) -> &mut u32 {
        match r {
            Resource::Load => &mut self.load,
            Resource::Mpy => &mut self.mpy,
            Resource::Shift => &mut self.shift,
            Resource::Permute => &mut self.permute,
            Resource::Alu => &mut self.alu,
        }
    }
}

/// The cost model used by the lowering search (Algorithm 2's `InferCost`).
///
/// # Example
///
/// ```
/// use rake_hvx::{CostModel, HvxExpr, Op};
/// use lanes::ElemType;
///
/// let e = HvxExpr::op(
///     Op::Vtmpy { elem: ElemType::U8, w0: 1, w1: 2 },
///     vec![
///         HvxExpr::vmem("in", ElemType::U8, -1, 0),
///         HvxExpr::vmem("in", ElemType::U8, 127, 0),
///     ],
/// );
/// let model = CostModel::new(128, 128);
/// let counts = model.count(&e.to_program());
/// assert_eq!(counts.mpy, 1);
/// assert_eq!(counts.load, 2);
/// assert_eq!(counts.cost(), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostModel {
    lanes: usize,
    vec_bytes: usize,
}

impl CostModel {
    /// A cost model for the given vectorization width (lanes) and register
    /// byte width.
    pub fn new(lanes: usize, vec_bytes: usize) -> CostModel {
        CostModel { lanes, vec_bytes }
    }

    /// Per-resource unit counts for a program.
    pub fn count(&self, p: &Program) -> ResourceCounts {
        let units = p.units(self.lanes, self.vec_bytes);
        let mut counts = ResourceCounts::default();
        for (instr, &u) in p.instrs().iter().zip(&units) {
            *counts.slot(instr.op.resource()) += u;
        }
        counts
    }

    /// Scalar cost of a program: `(max-per-resource, total, latency-sum)`
    /// compared lexicographically. The primary term is the paper's cost;
    /// the others break ties toward smaller and shorter code.
    pub fn cost(&self, p: &Program) -> (u32, u32, u64) {
        let c = self.count(p);
        (c.cost(), c.total(), p.latency_sum(self.lanes, self.vec_bytes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::HvxExpr;
    use crate::ops::Op;
    use lanes::ElemType;

    fn model() -> CostModel {
        CostModel::new(128, 128)
    }

    #[test]
    fn counts_spread_across_resources() {
        // shift feeding an add: one unit each on shift + alu + load.
        let e = HvxExpr::op(
            Op::Vadd { elem: ElemType::U8, sat: false },
            vec![
                HvxExpr::op(
                    Op::Vlsr { elem: ElemType::U8, shift: 1 },
                    vec![HvxExpr::vmem("in", ElemType::U8, 0, 0)],
                ),
                HvxExpr::vmem("in", ElemType::U8, 1, 0),
            ],
        );
        let c = model().count(&e.to_program());
        assert_eq!(c.load, 2);
        assert_eq!(c.shift, 1);
        assert_eq!(c.alu, 1);
        assert_eq!(c.mpy, 0);
        assert_eq!(c.cost(), 2);
        assert_eq!(c.total(), 4);
    }

    #[test]
    fn max_biases_toward_balance() {
        // Three ALU ops on one resource cost 3...
        let load = HvxExpr::vmem("in", ElemType::U8, 0, 0);
        let mut alu = load.clone();
        for _ in 0..3 {
            alu = HvxExpr::op(
                Op::Vadd { elem: ElemType::U8, sat: false },
                vec![alu, HvxExpr::vsplat_imm(1, ElemType::U8)],
            );
        }
        let c_alu = model().count(&alu.to_program());
        assert_eq!(c_alu.alu, 3);
        assert_eq!(c_alu.cost(), 3);

        // ...while alu+shift+mpy of the same length costs max = 1 each.
        let spread = HvxExpr::op(
            Op::Vmpyi { elem: ElemType::U8, scalar: crate::ops::ScalarOperand::Imm(3) },
            vec![HvxExpr::op(
                Op::Vlsr { elem: ElemType::U8, shift: 1 },
                vec![HvxExpr::op(
                    Op::Vadd { elem: ElemType::U8, sat: false },
                    vec![load.clone(), HvxExpr::vsplat_imm(1, ElemType::U8)],
                )],
            )],
        );
        let c = model().count(&spread.to_program());
        assert_eq!(c.cost(), 1);
        assert!(c.total() >= 3);
    }

    #[test]
    fn lexicographic_cost_ordering() {
        let a = HvxExpr::op(
            Op::Vtmpy { elem: ElemType::U8, w0: 1, w1: 2 },
            vec![
                HvxExpr::vmem("in", ElemType::U8, -1, 0),
                HvxExpr::vmem("in", ElemType::U8, 127, 0),
            ],
        );
        let b = HvxExpr::op(
            Op::Vadd { elem: ElemType::U16, sat: false },
            vec![
                HvxExpr::op(
                    Op::Vmpa { elem: ElemType::U8, w0: 2, w1: 1 },
                    vec![
                        HvxExpr::vmem("in", ElemType::U8, 0, 0),
                        HvxExpr::vmem("in", ElemType::U8, 1, 0),
                    ],
                ),
                HvxExpr::op(
                    Op::Vzxt { elem: ElemType::U8 },
                    vec![HvxExpr::vmem("in", ElemType::U8, -1, 0)],
                ),
            ],
        );
        let ca = model().cost(&a.to_program());
        let cb = model().cost(&b.to_program());
        assert!(ca < cb, "vtmpy ({ca:?}) must beat vmpa+vadd+vzxt ({cb:?})");
    }
}
