//! Vector registers and values as raw bytes.

use std::fmt;

use lanes::{ElemType, Vector};

/// A vector register: raw little-endian bytes. Instructions interpret the
/// bytes by element type, which is what makes interleave/deinterleave
/// effects observable.
///
/// The byte length is not fixed: benchmarks run 128-byte (1024-bit)
/// registers, synthesis-time verification runs narrow ones. Operations
/// require their operands to agree in length.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct VecReg {
    bytes: Vec<u8>,
}

impl VecReg {
    /// A register from raw bytes.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is empty or of odd length (every element type is
    /// at least evenly sized, and pairs must split evenly).
    pub fn new(bytes: Vec<u8>) -> VecReg {
        assert!(!bytes.is_empty() && bytes.len().is_multiple_of(2), "register length must be even");
        VecReg { bytes }
    }

    /// A zero-filled register of `len` bytes.
    pub fn zeros(len: usize) -> VecReg {
        VecReg::new(vec![0; len])
    }

    /// Pack typed lanes into a register.
    pub fn from_lanes(v: &Vector) -> VecReg {
        VecReg::new(v.to_le_bytes())
    }

    /// Interpret the register as lanes of `elem`.
    ///
    /// # Panics
    ///
    /// Panics if the byte length is not a multiple of the element size.
    pub fn typed_lanes(&self, elem: ElemType) -> Vector {
        Vector::from_le_bytes(elem, &self.bytes)
    }

    /// Number of lanes when viewed as `elem`.
    pub fn lanes(&self, elem: ElemType) -> usize {
        self.bytes.len() / elem.bytes()
    }

    /// Raw bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Byte length.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Registers are never empty; provided for API completeness.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Rotate bytes right by `n` (byte 0 becomes byte `len - n`).
    pub fn rotate_bytes(&self, n: usize) -> VecReg {
        let len = self.bytes.len();
        let n = n % len;
        let mut out = Vec::with_capacity(len);
        out.extend_from_slice(&self.bytes[n..]);
        out.extend_from_slice(&self.bytes[..n]);
        VecReg::new(out)
    }
}

impl fmt::Debug for VecReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "VecReg[{}B]{:02x?}", self.bytes.len(), &self.bytes)
    }
}

/// A value flowing through an HVX expression: a single register or a
/// register pair.
///
/// A pair's *natural* typed content is `lo` lanes followed by `hi` lanes
/// (its memory order when stored). Widening instructions instead produce
/// pairs in *deinterleaved* layout — even result lanes in `lo`, odd in `hi`
/// — and it takes an explicit [`crate::Op::VshuffPair`] to restore natural
/// order. That asymmetry is the data-movement cost §5.1 of the paper is
/// about.
#[derive(Clone, PartialEq, Eq, Hash)]
pub enum Value {
    /// A single register.
    Vec(VecReg),
    /// A register pair (`lo`, `hi`).
    Pair(VecReg, VecReg),
}

impl Value {
    /// The single register, if this is not a pair.
    pub fn as_vec(&self) -> Option<&VecReg> {
        match self {
            Value::Vec(r) => Some(r),
            Value::Pair(..) => None,
        }
    }

    /// The `(lo, hi)` registers, if this is a pair.
    pub fn as_pair(&self) -> Option<(&VecReg, &VecReg)> {
        match self {
            Value::Vec(_) => None,
            Value::Pair(lo, hi) => Some((lo, hi)),
        }
    }

    /// Whether the value is a pair.
    pub fn is_pair(&self) -> bool {
        matches!(self, Value::Pair(..))
    }

    /// Total byte length.
    pub fn len(&self) -> usize {
        match self {
            Value::Vec(r) => r.len(),
            Value::Pair(lo, hi) => lo.len() + hi.len(),
        }
    }

    /// Values are never empty; provided for API completeness.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Natural-order typed lanes: a vector's lanes, or a pair's `lo` lanes
    /// followed by `hi` lanes.
    ///
    /// # Panics
    ///
    /// Panics if the byte length is not a multiple of the element size.
    pub fn typed_lanes(&self, elem: ElemType) -> Vector {
        match self {
            Value::Vec(r) => r.typed_lanes(elem),
            Value::Pair(lo, hi) => lo.typed_lanes(elem).concat(&hi.typed_lanes(elem)),
        }
    }

    /// Build a value of `total_bytes` from typed lanes, splitting into a
    /// pair when the data exceeds `reg_bytes`.
    ///
    /// # Panics
    ///
    /// Panics if the data is larger than a pair of `reg_bytes` registers.
    pub fn from_lanes(v: &Vector, reg_bytes: usize) -> Value {
        let bytes = v.to_le_bytes();
        if bytes.len() <= reg_bytes {
            Value::Vec(VecReg::new(bytes))
        } else {
            assert!(
                bytes.len() <= 2 * reg_bytes,
                "value of {} bytes exceeds a register pair",
                bytes.len()
            );
            let half = bytes.len() / 2;
            Value::Pair(VecReg::new(bytes[..half].to_vec()), VecReg::new(bytes[half..].to_vec()))
        }
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Vec(r) => write!(f, "Vec({r:?})"),
            Value::Pair(lo, hi) => write!(f, "Pair(lo: {lo:?}, hi: {hi:?})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_lanes() {
        let v = Vector::new(ElemType::I16, vec![-1, 2, -3, 4]);
        let r = VecReg::from_lanes(&v);
        assert_eq!(r.len(), 8);
        assert_eq!(r.typed_lanes(ElemType::I16), v);
        assert_eq!(r.lanes(ElemType::I16), 4);
        assert_eq!(r.lanes(ElemType::U8), 8);
    }

    #[test]
    fn reinterpretation_is_byte_level() {
        let v = Vector::new(ElemType::U16, vec![0x0201, 0x0403]);
        let r = VecReg::from_lanes(&v);
        assert_eq!(r.typed_lanes(ElemType::U8).as_slice(), &[1, 2, 3, 4]);
    }

    #[test]
    fn rotate() {
        let r = VecReg::new(vec![0, 1, 2, 3]);
        assert_eq!(r.rotate_bytes(1).as_bytes(), &[1, 2, 3, 0]);
        assert_eq!(r.rotate_bytes(4).as_bytes(), &[0, 1, 2, 3]);
        assert_eq!(r.rotate_bytes(6).as_bytes(), &[2, 3, 0, 1]);
    }

    #[test]
    #[should_panic(expected = "must be even")]
    fn odd_register_rejected() {
        let _ = VecReg::new(vec![1, 2, 3]);
    }

    #[test]
    fn pair_natural_order() {
        let lo = VecReg::from_lanes(&Vector::new(ElemType::U16, vec![1, 2]));
        let hi = VecReg::from_lanes(&Vector::new(ElemType::U16, vec![3, 4]));
        let v = Value::Pair(lo, hi);
        assert_eq!(v.typed_lanes(ElemType::U16).as_slice(), &[1, 2, 3, 4]);
        assert!(v.is_pair());
        assert_eq!(v.len(), 8);
    }

    #[test]
    fn from_lanes_splits_pairs() {
        let v = Vector::from_fn(ElemType::U16, 8, |i| i as i64);
        let val = Value::from_lanes(&v, 8); // 16 bytes of data, 8-byte regs
        let (lo, hi) = val.as_pair().expect("should be a pair");
        assert_eq!(lo.typed_lanes(ElemType::U16).as_slice(), &[0, 1, 2, 3]);
        assert_eq!(hi.typed_lanes(ElemType::U16).as_slice(), &[4, 5, 6, 7]);

        let small = Value::from_lanes(&Vector::from_fn(ElemType::U8, 8, |i| i as i64), 8);
        assert!(!small.is_pair());
    }
}
