//! Property tests over the instruction semantics: the algebraic
//! identities the synthesis engine's correctness leans on.

use halide_ir::{Buffer2D, Env};
use lanes::rng::Rng;
use lanes::{ElemType, Vector};

use crate::exec::{eval_op, ExecCtx};
use crate::ops::{Op, ScalarOperand};
use crate::reg::{Value, VecReg};

fn env_with(name: &str, ty: ElemType, data: &[i64]) -> Env {
    let mut env = Env::new();
    env.insert(Buffer2D::from_fn(name, ty, data.len(), 1, |x, _| data[x]));
    env
}

fn ctx<'a>(env: &'a Env, lanes: usize) -> ExecCtx<'a> {
    ExecCtx { env, x0: 0, y0: 0, lanes, vec_bytes: lanes }
}

fn vec_of(ty: ElemType, data: &[i64]) -> Value {
    Value::Vec(VecReg::from_lanes(&Vector::new_wrapped(ty, data.iter().copied())))
}

fn bytes(rng: &mut Rng, n: usize) -> Vec<i64> {
    (0..n).map(|_| rng.gen_range(0..=255)).collect()
}

/// Interleave then deinterleave of a pair is the identity, at any
/// element granularity.
#[test]
fn prop_shuff_deal_roundtrip() {
    let mut rng = Rng::seed_from_u64(0x5dea1);
    for _ in 0..64 {
        let data = bytes(&mut rng, 8);
        let env = Env::new();
        let c = ctx(&env, 8);
        let pair = Value::Pair(
            VecReg::from_lanes(&Vector::new(ElemType::U8, data[..4].to_vec())),
            VecReg::from_lanes(&Vector::new(ElemType::U8, data[4..].to_vec())),
        );
        for elem in [ElemType::U8, ElemType::U16] {
            let shuffled =
                eval_op(&Op::VshuffPair { elem }, std::slice::from_ref(&pair), &c).expect("shuff");
            let back = eval_op(&Op::VdealPair { elem }, &[shuffled], &c).expect("deal");
            assert_eq!(&back, &pair);
        }
    }
}

/// The widening multiply's deinterleaved pair holds exactly the
/// products, with even lanes in `lo`.
#[test]
fn prop_vmpy_deinterleaves() {
    let mut rng = Rng::seed_from_u64(0x33d1);
    for _ in 0..64 {
        let a = bytes(&mut rng, 8);
        let b = bytes(&mut rng, 8);
        let env = Env::new();
        let c = ctx(&env, 8);
        let out = eval_op(
            &Op::Vmpy { elem: ElemType::U8 },
            &[vec_of(ElemType::U8, &a), vec_of(ElemType::U8, &b)],
            &c,
        )
        .expect("vmpy");
        let (lo, hi) = out.as_pair().expect("pair");
        let (llo, lhi) = (lo.typed_lanes(ElemType::U16), hi.typed_lanes(ElemType::U16));
        for i in 0..8usize {
            let expect = a[i] * b[i];
            let got = if i % 2 == 0 { llo.get(i / 2) } else { lhi.get(i / 2) };
            assert_eq!(got, expect, "lane {i}");
        }
    }
}

/// valign reads the byte window of the concatenation.
#[test]
fn prop_valign_window() {
    let mut rng = Rng::seed_from_u64(0xa116);
    for _ in 0..64 {
        let data = bytes(&mut rng, 16);
        let n = rng.gen_range_usize(0..=7) as u32;
        let env = Env::new();
        let c = ctx(&env, 8);
        let a = vec_of(ElemType::U8, &data[8..]);
        let b = vec_of(ElemType::U8, &data[..8]);
        let out = eval_op(&Op::Valign { bytes: n }, &[a, b], &c).expect("valign");
        let lanes = out.typed_lanes(ElemType::U8);
        for i in 0..8usize {
            assert_eq!(lanes.get(i), data[i + n as usize]);
        }
    }
}

/// vmpa == two vmpy-by-scalar added lane-wise (the uber-instruction
/// unification the paper's §6 describes).
#[test]
fn prop_vmpa_is_sum_of_scalar_multiplies() {
    let mut rng = Rng::seed_from_u64(0x33a2);
    for _ in 0..64 {
        let a = bytes(&mut rng, 8);
        let b = bytes(&mut rng, 8);
        let w0 = rng.gen_range(-4..=4);
        let w1 = rng.gen_range(-4..=4);
        let env = Env::new();
        let c = ctx(&env, 8);
        let va = vec_of(ElemType::U8, &a);
        let vb = vec_of(ElemType::U8, &b);
        let mpa = eval_op(&Op::Vmpa { elem: ElemType::U8, w0, w1 }, &[va.clone(), vb.clone()], &c)
            .expect("vmpa");
        // Reference: products at full precision, deinterleaved.
        let (lo, hi) = mpa.as_pair().expect("pair");
        let (llo, lhi) = (lo.typed_lanes(ElemType::U16), hi.typed_lanes(ElemType::U16));
        for i in 0..8usize {
            let expect = ElemType::U16.wrap(a[i] * w0 + b[i] * w1);
            let got = if i % 2 == 0 { llo.get(i / 2) } else { lhi.get(i / 2) };
            assert_eq!(got, expect, "lane {i}");
        }
    }
}

/// The fused narrowing shift applied to the two halves of a widening
/// op's pair restores natural order: narrow(widen(x)) == x >> 0.
#[test]
fn prop_narrow_of_widen_is_identity() {
    let mut rng = Rng::seed_from_u64(0x1de1);
    for _ in 0..64 {
        let data = bytes(&mut rng, 8);
        let env = env_with("in", ElemType::U8, &data);
        let c = ctx(&env, 8);
        let loaded = eval_op(
            &Op::Vmem { buffer: "in".into(), dx: 0, dy: 0, elem: ElemType::U8 },
            &[],
            &c,
        )
        .expect("load");
        let wide = eval_op(&Op::Vzxt { elem: ElemType::U8 }, std::slice::from_ref(&loaded), &c)
            .expect("zxt");
        let (lo, hi) = wide.as_pair().expect("pair");
        let packed = eval_op(
            &Op::Vpack { elem: ElemType::U16, sat: false, out: ElemType::U8 },
            &[Value::Vec(hi.clone()), Value::Vec(lo.clone())],
            &c,
        )
        .expect("pack");
        assert_eq!(packed, loaded);
    }
}

/// Saturating pack clamps; truncating pack wraps.
#[test]
fn prop_pack_sat_vs_trunc() {
    let mut rng = Rng::seed_from_u64(0x9acc);
    for _ in 0..64 {
        let data: Vec<i64> = (0..8).map(|_| rng.gen_range(-32768..=32767)).collect();
        let env = Env::new();
        let c = ctx(&env, 8);
        let half = |r: &[i64]| vec_of(ElemType::I16, r);
        let (lo, hi) = (half(&data[..4]), half(&data[4..]));
        // Build natural order from the deinterleaved convention:
        // out[2i] = f(even_src[i] = lo), out[2i+1] = f(odd_src[i] = hi).
        let sat = eval_op(
            &Op::Vpack { elem: ElemType::I16, sat: true, out: ElemType::U8 },
            &[hi.clone(), lo.clone()],
            &c,
        )
        .expect("sat pack");
        let trunc = eval_op(
            &Op::Vpack { elem: ElemType::I16, sat: false, out: ElemType::U8 },
            &[hi, lo],
            &c,
        )
        .expect("trunc pack");
        let (s, t) = (sat.typed_lanes(ElemType::U8), trunc.typed_lanes(ElemType::U8));
        for i in 0..8usize {
            let src = if i % 2 == 0 { data[i / 2] } else { data[4 + i / 2] };
            assert_eq!(s.get(i), ElemType::U8.saturate(src));
            assert_eq!(t.get(i), ElemType::U8.wrap(src));
        }
    }
}

/// Scalar-multiply operands out of the dual signed/unsigned range are
/// rejected rather than silently wrapped.
#[test]
fn prop_scalar_range_validated() {
    let mut rng = Rng::seed_from_u64(0x5ca1);
    for _ in 0..64 {
        let v = rng.gen_range(-70000..=69999);
        let env = Env::new();
        let c = ctx(&env, 8);
        let x = vec_of(ElemType::U8, &[1, 2, 3, 4, 5, 6, 7, 8]);
        let r = eval_op(
            &Op::VmpyScalar { elem: ElemType::U8, scalar: ScalarOperand::Imm(v) },
            &[x],
            &c,
        );
        let in_range = (ElemType::I8.min_value()..=ElemType::U8.max_value()).contains(&v);
        assert_eq!(r.is_ok(), in_range, "scalar {v}");
    }
}
