//! Property tests over the VLIW packet scheduler: resource slots are
//! never oversubscribed, dependencies are respected, and the cycle count
//! is bounded below by both the critical path and the resource bound.

use lanes::rng::Rng;
use lanes::ElemType;

use crate::expr::HvxExpr;
use crate::ops::{Op, Resource};
use crate::program::SlotBudget;

/// A random compute DAG built from loads at distinct offsets.
fn random_program(seed: u64, size: usize) -> crate::program::Program {
    let mut rng = Rng::seed_from_u64(seed);
    let mut exprs: Vec<HvxExpr> = (0..3)
        .map(|i| HvxExpr::vmem("in", ElemType::U8, i, 0))
        .collect();
    for _ in 0..size {
        let pick = |rng: &mut Rng, exprs: &[HvxExpr]| -> HvxExpr {
            exprs[rng.gen_range_usize(0..=exprs.len() - 1)].clone()
        };
        // Only compose same-shape (single register, u8) values.
        let a = pick(&mut rng, &exprs);
        let b = pick(&mut rng, &exprs);
        let e = match rng.gen_range(0..=4) {
            0 => HvxExpr::op(Op::Vadd { elem: ElemType::U8, sat: false }, vec![a, b]),
            1 => HvxExpr::op(Op::Vmax { elem: ElemType::U8 }, vec![a, b]),
            2 => HvxExpr::op(Op::Vabsdiff { elem: ElemType::U8 }, vec![a, b]),
            3 => HvxExpr::op(Op::Vlsr { elem: ElemType::U8, shift: 1 }, vec![a]),
            _ => HvxExpr::op(
                Op::Vmpyi { elem: ElemType::U8, scalar: crate::ops::ScalarOperand::Imm(3) },
                vec![a],
            ),
        };
        exprs.push(e);
    }
    exprs.last().expect("non-empty").to_program()
}

/// Draw (seed, size) pairs for the randomized schedule tests.
fn cases(n: usize, salt: u64) -> Vec<(u64, usize)> {
    let mut rng = Rng::seed_from_u64(salt);
    (0..n).map(|_| (rng.next_u64() % 1000, rng.gen_range_usize(1..=23))).collect()
}

/// No cycle issues more units of a resource than the packet allows.
#[test]
fn prop_no_slot_oversubscription() {
    for (seed, size) in cases(32, 0x5105) {
        let p = random_program(seed, size);
        let slots = SlotBudget::hvx();
        let s = p.schedule(8, 8, slots);
        let units = p.units(8, 8);
        let mut per_cycle: std::collections::HashMap<(u64, Resource), u32> =
            std::collections::HashMap::new();
        for (i, instr) in p.instrs().iter().enumerate() {
            if units[i] == 0 {
                continue;
            }
            *per_cycle.entry((s.issue[i], instr.op.resource())).or_insert(0) += units[i];
        }
        for ((cycle, r), used) in per_cycle {
            let cap = match r {
                Resource::Load => 1,
                Resource::Mpy => 2,
                Resource::Shift => 1,
                Resource::Permute => 1,
                Resource::Alu => 2,
            };
            if used > cap {
                // A wide op may exceed one packet's slots by spilling into
                // later cycles, but then it must be ALONE on the resource.
                let issuers = p
                    .instrs()
                    .iter()
                    .enumerate()
                    .filter(|(i, instr)| {
                        units[*i] > 0
                            && s.issue[*i] == cycle
                            && instr.op.resource() == r
                    })
                    .count();
                assert_eq!(
                    issuers, 1,
                    "cycle {}: {} units on {:?} (cap {}) from {} instructions",
                    cycle, used, r, cap, issuers
                );
            }
        }
    }
}

/// Every instruction issues only after its operands' results are ready.
#[test]
fn prop_dependencies_respected() {
    for (seed, size) in cases(32, 0xdeb5) {
        let p = random_program(seed, size);
        let s = p.schedule(8, 8, SlotBudget::hvx());
        for (i, instr) in p.instrs().iter().enumerate() {
            for &a in &instr.args {
                let ready = s.issue[a] + u64::from(p.instrs()[a].op.latency());
                assert!(
                    s.issue[i] >= ready,
                    "instr {i} issued at {} before operand {a} ready at {ready}",
                    s.issue[i]
                );
            }
        }
    }
}

/// Total cycles dominate both the dependence critical path and the
/// per-resource unit count (the paper's cost lower bound).
#[test]
fn prop_cycles_lower_bounds() {
    for (seed, size) in cases(32, 0xcb0d) {
        let p = random_program(seed, size);
        let slots = SlotBudget::hvx();
        let s = p.schedule(8, 8, slots);
        // Resource bound: ceil(units / capacity) per resource.
        let counts = crate::cost::CostModel::new(8, 8).count(&p);
        let res_bound = [
            (counts.load, 1u32),
            (counts.mpy, 2),
            (counts.shift, 1),
            (counts.permute, 1),
            (counts.alu, 2),
        ]
        .iter()
        .map(|&(n, cap)| u64::from(n.div_ceil(cap)))
        .max()
        .unwrap_or(0);
        assert!(s.cycles >= res_bound, "cycles {} < resource bound {res_bound}", s.cycles);

        // Critical-path bound.
        let mut depth = vec![0u64; p.len()];
        for (i, instr) in p.instrs().iter().enumerate() {
            let in_depth =
                instr.args.iter().map(|&a| depth[a]).max().unwrap_or(0);
            depth[i] = in_depth + u64::from(instr.op.latency());
        }
        let cp = depth.iter().copied().max().unwrap_or(0);
        assert!(s.cycles >= cp, "cycles {} < critical path {cp}", s.cycles);
    }
}

/// Scheduling is deterministic.
#[test]
fn prop_deterministic() {
    let mut rng = Rng::seed_from_u64(0xde7e);
    for _ in 0..32 {
        let (seed, size) = (rng.next_u64() % 200, rng.gen_range_usize(1..=15));
        let p = random_program(seed, size);
        let a = p.schedule(8, 8, SlotBudget::hvx());
        let b = p.schedule(8, 8, SlotBudget::hvx());
        assert_eq!(a, b);
    }
}
