//! HVX expression trees — the form Rake grafts back into the pipeline.

use std::collections::HashMap;
use std::fmt;

use halide_ir::Env;
use lanes::ElemType;

use crate::exec::{eval_op, ExecCtx, ExecError};
use crate::ops::{Op, ScalarOperand};
use crate::program::{Instr, Program};
use crate::reg::Value;

/// An expression over HVX operations. Leaves are arity-0 ops (loads and
/// broadcasts).
///
/// # Example
///
/// ```
/// use rake_hvx::{HvxExpr, Op};
/// use lanes::ElemType;
///
/// let a = HvxExpr::vmem("in", ElemType::U8, 0, 0);
/// let b = HvxExpr::vsplat_imm(1, ElemType::U8);
/// let sum = HvxExpr::op(Op::Vadd { elem: ElemType::U8, sat: true }, vec![a, b]);
/// assert_eq!(sum.node_count(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct HvxExpr {
    op: Op,
    args: Vec<HvxExpr>,
}

impl HvxExpr {
    /// Build a node, validating arity.
    ///
    /// # Panics
    ///
    /// Panics if `args.len() != op.arity()` — malformed trees are
    /// construction bugs.
    pub fn op(op: Op, args: Vec<HvxExpr>) -> HvxExpr {
        assert_eq!(args.len(), op.arity(), "`{op}` expects {} arguments", op.arity());
        HvxExpr { op, args }
    }

    /// A vector load leaf.
    pub fn vmem(buffer: &str, elem: ElemType, dx: i32, dy: i32) -> HvxExpr {
        HvxExpr { op: Op::Vmem { buffer: buffer.to_owned(), dx, dy, elem }, args: Vec::new() }
    }

    /// An immediate-broadcast leaf.
    pub fn vsplat_imm(value: i64, elem: ElemType) -> HvxExpr {
        HvxExpr { op: Op::Vsplat { value: ScalarOperand::Imm(value), elem }, args: Vec::new() }
    }

    /// A runtime-scalar-broadcast leaf (`buffer[x, y0+dy]` splat).
    pub fn vsplat_load(buffer: &str, x: i32, dy: i32, elem: ElemType) -> HvxExpr {
        HvxExpr {
            op: Op::Vsplat {
                value: ScalarOperand::Load { buffer: buffer.to_owned(), x, dy },
                elem,
            },
            args: Vec::new(),
        }
    }

    /// The root operation.
    pub fn root(&self) -> &Op {
        &self.op
    }

    /// The child expressions.
    pub fn args(&self) -> &[HvxExpr] {
        &self.args
    }

    /// Total number of nodes.
    pub fn node_count(&self) -> usize {
        1 + self.args.iter().map(HvxExpr::node_count).sum::<usize>()
    }

    /// Evaluate the expression. `lanes` is the Halide-level vectorization
    /// width; the machine register width defaults to `lanes` bytes.
    ///
    /// # Errors
    ///
    /// Propagates [`ExecError`] from any operation.
    pub fn eval(&self, env: &Env, x0: i64, y0: i64, lanes: usize) -> Result<Value, ExecError> {
        self.eval_ctx(&ExecCtx { env, x0, y0, lanes, vec_bytes: lanes })
    }

    /// Evaluate with an explicit context (register width, origin).
    ///
    /// # Errors
    ///
    /// Propagates [`ExecError`] from any operation.
    pub fn eval_ctx(&self, ctx: &ExecCtx<'_>) -> Result<Value, ExecError> {
        let args = self
            .args
            .iter()
            .map(|a| a.eval_ctx(ctx))
            .collect::<Result<Vec<Value>, ExecError>>()?;
        eval_op(&self.op, &args, ctx)
    }

    /// Flatten the tree into an SSA program with common-subexpression
    /// elimination (identical subtrees evaluate once).
    pub fn to_program(&self) -> Program {
        fn go(
            e: &HvxExpr,
            memo: &mut HashMap<HvxExpr, usize>,
            instrs: &mut Vec<Instr>,
        ) -> usize {
            if let Some(&id) = memo.get(e) {
                return id;
            }
            let args: Vec<usize> = e.args.iter().map(|a| go(a, memo, instrs)).collect();
            let id = instrs.len();
            instrs.push(Instr { op: e.op.clone(), args });
            memo.insert(e.clone(), id);
            id
        }
        let mut memo = HashMap::new();
        let mut instrs = Vec::new();
        let output = go(self, &mut memo, &mut instrs);
        Program::new(instrs, output)
    }
}

impl fmt::Display for HvxExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn go(e: &HvxExpr, indent: usize, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            let pad = "  ".repeat(indent);
            if e.args.is_empty() {
                writeln!(f, "{pad}{}", e.op)
            } else {
                writeln!(f, "{pad}{}(", e.op)?;
                for a in &e.args {
                    go(a, indent + 1, f)?;
                }
                writeln!(f, "{pad})")
            }
        }
        go(self, 0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use halide_ir::Buffer2D;

    fn env() -> Env {
        let mut env = Env::new();
        env.insert(Buffer2D::from_fn("in", ElemType::U8, 64, 4, |x, y| (x + y) as i64));
        env
    }

    #[test]
    fn eval_simple_add() {
        let e = HvxExpr::op(
            Op::Vadd { elem: ElemType::U8, sat: false },
            vec![
                HvxExpr::vmem("in", ElemType::U8, 0, 0),
                HvxExpr::vmem("in", ElemType::U8, 1, 0),
            ],
        );
        let out = e.eval(&env(), 4, 1, 8).unwrap();
        let lanes = out.typed_lanes(ElemType::U8);
        // lane i: in(4+i,1) + in(5+i,1) = (5+i) + (6+i)
        assert_eq!(lanes.get(0), 11);
        assert_eq!(lanes.get(7), 25);
    }

    #[test]
    fn cse_in_program() {
        let load = HvxExpr::vmem("in", ElemType::U8, 0, 0);
        let e = HvxExpr::op(
            Op::Vadd { elem: ElemType::U8, sat: false },
            vec![load.clone(), load],
        );
        let p = e.to_program();
        assert_eq!(p.len(), 2, "shared load should be CSE'd");
    }

    #[test]
    fn vtmpy_matches_manual_convolution() {
        let e = HvxExpr::op(
            Op::Vtmpy { elem: ElemType::U8, w0: 1, w1: 2 },
            vec![
                HvxExpr::vmem("in", ElemType::U8, -1, 0),
                HvxExpr::vmem("in", ElemType::U8, 7, 0), // next 8-lane vector
            ],
        );
        let out = e.eval(&env(), 4, 0, 8).unwrap();
        // Deinterleaved pair; natural lane i lives at lo[i/2] or hi[i/2].
        let (lo, hi) = out.as_pair().expect("vtmpy produces a pair");
        let llo = lo.typed_lanes(ElemType::U16);
        let lhi = hi.typed_lanes(ElemType::U16);
        for i in 0..8usize {
            let x = |d: i64| 4 + i as i64 + d; // in(x,0) = x
            let expect = x(-1) + 2 * x(0) + x(1);
            let got = if i % 2 == 0 { llo.get(i / 2) } else { lhi.get(i / 2) };
            assert_eq!(got, expect, "lane {i}");
        }
    }

    #[test]
    fn display_nests() {
        let e = HvxExpr::op(
            Op::Vmax { elem: ElemType::U8 },
            vec![
                HvxExpr::vmem("in", ElemType::U8, 0, 0),
                HvxExpr::vsplat_imm(9, ElemType::U8),
            ],
        );
        let s = e.to_string();
        assert!(s.contains("vmax.u8("));
        assert!(s.contains("vsplat.u8(9)"));
    }

    #[test]
    #[should_panic(expected = "expects 2 arguments")]
    fn arity_validated() {
        let _ = HvxExpr::op(Op::Vadd { elem: ElemType::U8, sat: false }, vec![]);
    }
}
