//! Unit tests for instruction semantics not covered by the property tests:
//! reductions, accumulating forms, bitwise and rotate ops, and error paths.

use halide_ir::{Buffer2D, Env};
use lanes::{ElemType, Vector};

use crate::exec::{eval_op, ExecCtx, ExecError};
use crate::ops::{Op, ScalarOperand};
use crate::reg::{Value, VecReg};

fn ctx(env: &Env, lanes: usize) -> ExecCtx<'_> {
    ExecCtx { env, x0: 0, y0: 0, lanes, vec_bytes: lanes }
}

fn v8(data: &[i64]) -> Value {
    Value::Vec(VecReg::from_lanes(&Vector::new_wrapped(ElemType::U8, data.iter().copied())))
}

fn v16(data: &[i64]) -> Value {
    Value::Vec(VecReg::from_lanes(&Vector::new_wrapped(ElemType::I16, data.iter().copied())))
}

fn lanes_of(v: &Value, ty: ElemType) -> Vec<i64> {
    v.typed_lanes(ty).as_slice().to_vec()
}

#[test]
fn vdmpy_pairwise_reduce() {
    let env = Env::new();
    let a = v8(&[1, 2, 3, 4, 5, 6, 7, 8]);
    let out = eval_op(
        &Op::Vdmpy { elem: ElemType::U8, w0: 2, w1: 3 },
        &[a],
        &ctx(&env, 8),
    )
    .expect("vdmpy");
    // out[i] = a[2i]*2 + a[2i+1]*3
    assert_eq!(lanes_of(&out, ElemType::U16), vec![2 + 2 * 3, 3 * 2 + 4 * 3, 5 * 2 + 6 * 3, 7 * 2 + 8 * 3]);
}

#[test]
fn vdmpy_acc_accumulates() {
    let env = Env::new();
    let a = v8(&[1, 1, 1, 1, 2, 2, 2, 2]);
    let acc = Value::Vec(VecReg::from_lanes(&Vector::new(
        ElemType::U16,
        vec![100, 200, 300, 400],
    )));
    let out = eval_op(
        &Op::VdmpyAcc { elem: ElemType::U8, w0: 1, w1: 1 },
        &[acc, a],
        &ctx(&env, 8),
    )
    .expect("vdmpy-acc");
    assert_eq!(lanes_of(&out, ElemType::U16), vec![102, 202, 304, 404]);
}

#[test]
fn vrmpy_four_way_reduce() {
    let env = Env::new();
    let a = v8(&[1, 2, 3, 4, 10, 20, 30, 40]);
    let out = eval_op(
        &Op::Vrmpy { elem: ElemType::U8, w: [1, -1, 2, -2] },
        &[a],
        &ctx(&env, 8),
    )
    .expect("vrmpy");
    // out[0] = 1 - 2 + 6 - 8 = -3; out[1] = 10 - 20 + 60 - 80 = -30.
    assert_eq!(lanes_of(&out, ElemType::I32), vec![-3, -30]);
}

#[test]
fn vrmpy_acc_and_byte_requirement() {
    let env = Env::new();
    let a = v8(&[1, 1, 1, 1, 1, 1, 1, 1]);
    let acc =
        Value::Vec(VecReg::from_lanes(&Vector::new(ElemType::I32, vec![5, -5])));
    let out = eval_op(
        &Op::VrmpyAcc { elem: ElemType::U8, w: [1, 1, 1, 1] },
        &[acc, a],
        &ctx(&env, 8),
    )
    .expect("vrmpy-acc");
    assert_eq!(lanes_of(&out, ElemType::I32), vec![9, -1]);

    let wide = v16(&[1, 2, 3, 4]);
    let err = eval_op(&Op::Vrmpy { elem: ElemType::I16, w: [1, 1, 1, 1] }, &[wide], &ctx(&env, 4))
        .unwrap_err();
    assert!(matches!(err, ExecError::BadOperand { .. }));
}

#[test]
fn vtmpy_acc_adds_window() {
    let env = Env::new();
    let a = v8(&[1, 2, 3, 4]);
    let b = v8(&[5, 6, 7, 8]);
    let plain = eval_op(
        &Op::Vtmpy { elem: ElemType::U8, w0: 1, w1: 1 },
        &[a.clone(), b.clone()],
        &ctx(&env, 4),
    )
    .expect("vtmpy");
    let acc = eval_op(
        &Op::VtmpyAcc { elem: ElemType::U8, w0: 1, w1: 1 },
        &[plain.clone(), a, b],
        &ctx(&env, 4),
    )
    .expect("vtmpy-acc");
    let (p, q) = (plain.typed_lanes(ElemType::U16), acc.typed_lanes(ElemType::U16));
    for i in 0..p.lanes() {
        assert_eq!(q.get(i), p.get(i) * 2, "lane {i}");
    }
}

#[test]
fn vnavg_and_vlsr() {
    let env = Env::new();
    let a = v16(&[10, -10, 300, 7]);
    let b = v16(&[4, 6, 100, 7]);
    let out = eval_op(&Op::Vnavg { elem: ElemType::I16 }, &[a.clone(), b], &ctx(&env, 4))
        .expect("vnavg");
    assert_eq!(lanes_of(&out, ElemType::I16), vec![3, -8, 100, 0]);

    let out = eval_op(&Op::Vlsr { elem: ElemType::I16, shift: 4 }, &[a], &ctx(&env, 4))
        .expect("vlsr");
    // Logical shift on the bit pattern: -10 as u16 = 0xfff6 >> 4 = 0x0fff.
    assert_eq!(lanes_of(&out, ElemType::I16), vec![0, 0x0fff, 300 >> 4, 0]);
}

#[test]
fn bitwise_ops() {
    let env = Env::new();
    let a = v8(&[0b1100, 0b1010, 0xff, 0]);
    let b = v8(&[0b1010, 0b0110, 0x0f, 0xff]);
    let and = eval_op(&Op::Vand, &[a.clone(), b.clone()], &ctx(&env, 4)).expect("vand");
    assert_eq!(lanes_of(&and, ElemType::U8), vec![0b1000, 0b0010, 0x0f, 0]);
    let or = eval_op(&Op::Vor, &[a.clone(), b.clone()], &ctx(&env, 4)).expect("vor");
    assert_eq!(lanes_of(&or, ElemType::U8), vec![0b1110, 0b1110, 0xff, 0xff]);
    let xor = eval_op(&Op::Vxor, &[a.clone(), b], &ctx(&env, 4)).expect("vxor");
    assert_eq!(lanes_of(&xor, ElemType::U8), vec![0b0110, 0b1100, 0xf0, 0xff]);
    let not = eval_op(&Op::Vnot, &[a], &ctx(&env, 4)).expect("vnot");
    assert_eq!(lanes_of(&not, ElemType::U8), vec![0xf3, 0xf5, 0, 0xff]);
}

#[test]
fn vmpyi_and_acc() {
    let env = Env::new();
    let a = v16(&[5, -5, 100, 0]);
    let m = eval_op(
        &Op::Vmpyi { elem: ElemType::I16, scalar: ScalarOperand::Imm(-3) },
        std::slice::from_ref(&a),
        &ctx(&env, 4),
    )
    .expect("vmpyi");
    assert_eq!(lanes_of(&m, ElemType::I16), vec![-15, 15, -300, 0]);
    let acc = eval_op(
        &Op::VmpyiAcc { elem: ElemType::I16, scalar: ScalarOperand::Imm(2) },
        &[m, a],
        &ctx(&env, 4),
    )
    .expect("vmpyi-acc");
    assert_eq!(lanes_of(&acc, ElemType::I16), vec![-5, 5, -100, 0]);
}

#[test]
fn vror_rotates_register_bytes() {
    let env = Env::new();
    let a = v8(&[1, 2, 3, 4]);
    let out = eval_op(&Op::Vror { bytes: 1 }, &[a], &ctx(&env, 4)).expect("vror");
    assert_eq!(lanes_of(&out, ElemType::U8), vec![2, 3, 4, 1]);
}

#[test]
fn runtime_scalar_loads_resolve_per_row() {
    let mut env = Env::new();
    env.insert(Buffer2D::from_fn("w", ElemType::U8, 4, 4, |x, y| (10 * y + x) as i64));
    let a = v8(&[1, 1, 1, 1]);
    let op = Op::VmpyScalar {
        elem: ElemType::U8,
        scalar: ScalarOperand::Load { buffer: "w".into(), x: 2, dy: 1 },
    };
    // y0 = 2 -> reads w(2, 3) = 32.
    let c = ExecCtx { env: &env, x0: 0, y0: 2, lanes: 4, vec_bytes: 4 };
    let out = eval_op(&op, &[a], &c).expect("vmpy with runtime scalar");
    assert_eq!(out.typed_lanes(ElemType::U16).get(0), 32);
}

#[test]
fn arity_and_shape_errors() {
    let env = Env::new();
    let a = v8(&[1, 2, 3, 4]);
    let err = eval_op(&Op::Vnot, &[], &ctx(&env, 4)).unwrap_err();
    assert!(matches!(err, ExecError::Arity { .. }));

    let err = eval_op(&Op::Lo, std::slice::from_ref(&a), &ctx(&env, 4)).unwrap_err();
    assert!(matches!(err, ExecError::Shape { .. }));
    assert!(!err.to_string().is_empty());

    let short = v8(&[1, 2]);
    let err = eval_op(&Op::Vadd { elem: ElemType::U8, sat: false }, &[a, short], &ctx(&env, 4))
        .unwrap_err();
    assert!(matches!(err, ExecError::Shape { .. }));
}

#[test]
fn missing_buffer_and_bad_shift() {
    let env = Env::new();
    let err = eval_op(
        &Op::Vmem { buffer: "nope".into(), dx: 0, dy: 0, elem: ElemType::U8 },
        &[],
        &ctx(&env, 4),
    )
    .unwrap_err();
    assert!(matches!(err, ExecError::Buffer(_)));

    let a = v8(&[1, 2, 3, 4]);
    let err =
        eval_op(&Op::Vasl { elem: ElemType::U8, shift: 8 }, &[a], &ctx(&env, 4)).unwrap_err();
    assert!(matches!(err, ExecError::BadOperand { .. }));
}

#[test]
fn valign_offset_validated() {
    let env = Env::new();
    let a = v8(&[1, 2, 3, 4]);
    let b = v8(&[5, 6, 7, 8]);
    let err = eval_op(&Op::Valign { bytes: 5 }, &[a, b], &ctx(&env, 4)).unwrap_err();
    assert!(matches!(err, ExecError::BadOperand { .. }));
}
