//! Flattened SSA programs and the VLIW packet scheduler.

use std::fmt;

use halide_ir::Env;

use crate::exec::{eval_op, ExecCtx, ExecError};
use crate::ops::{Op, Resource};
use crate::reg::Value;

/// One SSA instruction: an op applied to earlier results.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Instr {
    /// The operation.
    pub op: Op,
    /// Indices of argument instructions (all `<` this instruction's index).
    pub args: Vec<usize>,
}

/// A flattened, CSE'd HVX program with a single output value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    instrs: Vec<Instr>,
    output: usize,
}

impl Program {
    /// Build a program from instructions in dependency order.
    ///
    /// # Panics
    ///
    /// Panics if an instruction references a later (or its own) index, if
    /// an arity is wrong, or if `output` is out of range.
    pub fn new(instrs: Vec<Instr>, output: usize) -> Program {
        for (i, instr) in instrs.iter().enumerate() {
            assert_eq!(
                instr.args.len(),
                instr.op.arity(),
                "instruction {i} (`{}`) has wrong arity",
                instr.op
            );
            for &a in &instr.args {
                assert!(a < i, "instruction {i} references later value {a}");
            }
        }
        assert!(output < instrs.len(), "output index out of range");
        Program { instrs, output }
    }

    /// The instructions in order.
    pub fn instrs(&self) -> &[Instr] {
        &self.instrs
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Whether the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// Index of the output instruction.
    pub fn output(&self) -> usize {
        self.output
    }

    /// Execute the program, returning the output value.
    ///
    /// # Errors
    ///
    /// Propagates the first [`ExecError`].
    pub fn run(&self, env: &Env, x0: i64, y0: i64, lanes: usize) -> Result<Value, ExecError> {
        let ctx = ExecCtx { env, x0, y0, lanes, vec_bytes: lanes };
        self.run_ctx(&ctx)
    }

    /// Execute with an explicit context.
    ///
    /// # Errors
    ///
    /// Propagates the first [`ExecError`].
    pub fn run_ctx(&self, ctx: &ExecCtx<'_>) -> Result<Value, ExecError> {
        let mut values: Vec<Value> = Vec::with_capacity(self.instrs.len());
        for instr in &self.instrs {
            let args: Vec<Value> = instr.args.iter().map(|&a| values[a].clone()).collect();
            values.push(eval_op(&instr.op, &args, ctx)?);
        }
        Ok(values[self.output].clone())
    }

    /// Static byte sizes of every instruction's result, given the
    /// vectorization width in lanes.
    pub fn result_bytes(&self, lanes: usize) -> Vec<usize> {
        let mut sizes = Vec::with_capacity(self.instrs.len());
        for instr in &self.instrs {
            let arg = |k: usize| sizes[instr.args[k]];
            let size = match &instr.op {
                Op::Vmem { elem, .. } | Op::Vsplat { elem, .. } => lanes * elem.bytes(),
                // Widening ops double the primary input.
                Op::Vmpy { .. } | Op::VmpyScalar { .. } | Op::Vmpa { .. } => arg(0) * 2,
                Op::Vzxt { .. } | Op::Vsxt { .. } => arg(0) * 2,
                Op::Vtmpy { .. } => arg(0) * 2,
                // Accumulating widening ops keep the accumulator's size.
                Op::VmpyAcc { .. } | Op::VmpaAcc { .. } | Op::VtmpyAcc { .. } => arg(0),
                // Reductions keep byte size (fewer, wider lanes): 4 lanes
                // of 1 byte become 1 lane of 4 bytes.
                Op::Vdmpy { .. } | Op::Vrmpy { .. } => arg(0),
                Op::VdmpyAcc { .. } | Op::VrmpyAcc { .. } => arg(0),
                // Narrows: two inputs of B bytes -> one output of B bytes.
                Op::VasrNarrow { .. } | Op::Vpack { .. } => arg(0),
                Op::Vcombine => arg(0) + arg(1),
                Op::Lo | Op::Hi => arg(0) / 2,
                _ => arg(0),
            };
            sizes.push(size);
        }
        sizes
    }

    /// Issue units per instruction: how many resource slots it occupies.
    /// Free ops take 0; pair-native permutes take 1; everything else takes
    /// one unit per `vec_bytes` of its widest operand (or result, for
    /// sources) — e.g. an element-wise add over a register pair issues as
    /// two instructions, matching how HVX "double vector" pseudo-ops expand.
    pub fn units(&self, lanes: usize, vec_bytes: usize) -> Vec<u32> {
        let sizes = self.result_bytes(lanes);
        self.instrs
            .iter()
            .enumerate()
            .map(|(i, instr)| {
                if instr.op.is_free() {
                    return 0;
                }
                match instr.op {
                    Op::VshuffPair { .. } | Op::VdealPair { .. } | Op::Vcombine => 1,
                    Op::Vmem { .. } => div_ceil(sizes[i], vec_bytes) as u32,
                    // Accumulating forms issue once per *input* register:
                    // the pair accumulator rides along (`Vdd += vmpy(...)`).
                    Op::VmpyAcc { .. }
                    | Op::VmpaAcc { .. }
                    | Op::VtmpyAcc { .. }
                    | Op::VdmpyAcc { .. }
                    | Op::VrmpyAcc { .. } => {
                        let widest =
                            instr.args[1..].iter().map(|&a| sizes[a]).max().unwrap_or(sizes[i]);
                        div_ceil(widest, vec_bytes) as u32
                    }
                    _ => {
                        let widest =
                            instr.args.iter().map(|&a| sizes[a]).max().unwrap_or(sizes[i]);
                        div_ceil(widest, vec_bytes) as u32
                    }
                }
            })
            .collect()
    }
}

fn div_ceil(a: usize, b: usize) -> usize {
    a.div_ceil(b)
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, instr) in self.instrs.iter().enumerate() {
            write!(f, "v{i} = {}", instr.op)?;
            if !instr.args.is_empty() {
                write!(f, " [")?;
                for (k, a) in instr.args.iter().enumerate() {
                    if k > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "v{a}")?;
                }
                write!(f, "]")?;
            }
            writeln!(f)?;
        }
        writeln!(f, "output: v{}", self.output)
    }
}

/// Per-packet issue-slot capacities by resource class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlotBudget {
    /// Load/store slots per packet.
    pub load: u32,
    /// Multiplier slots.
    pub mpy: u32,
    /// Shifter slots.
    pub shift: u32,
    /// Permute-network slots.
    pub permute: u32,
    /// Plain vector-ALU slots.
    pub alu: u32,
}

impl SlotBudget {
    /// A budget modeled on an HVX core: one load, two multiply pipes, one
    /// shifter, one permute network, two ALU pipes per packet.
    pub fn hvx() -> SlotBudget {
        SlotBudget { load: 1, mpy: 2, shift: 1, permute: 1, alu: 2 }
    }

    fn capacity(&self, r: Resource) -> u32 {
        match r {
            Resource::Load => self.load,
            Resource::Mpy => self.mpy,
            Resource::Shift => self.shift,
            Resource::Permute => self.permute,
            Resource::Alu => self.alu,
        }
    }
}

/// The result of scheduling a program: per-instruction issue cycles and the
/// total cycle count of one loop body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    /// Cycle at which each instruction issues (free ops issue at cycle 0).
    pub issue: Vec<u64>,
    /// First cycle after every result is available.
    pub cycles: u64,
}

impl Program {
    /// Greedy critical-path list scheduling under per-packet slot budgets:
    /// our stand-in for the Hexagon simulator's cycle counts.
    ///
    /// Each instruction issues `units` micro-ops on its resource (possibly
    /// across several cycles); its result is ready `latency` cycles after
    /// its last micro-op issues.
    pub fn schedule(&self, lanes: usize, vec_bytes: usize, slots: SlotBudget) -> Schedule {
        let units = self.units(lanes, vec_bytes);
        let n = self.instrs.len();

        // Priority: longest latency path to the output.
        let mut height = vec![0u64; n];
        for i in (0..n).rev() {
            let h = height[i] + u64::from(self.instrs[i].op.latency());
            for &a in &self.instrs[i].args {
                height[a] = height[a].max(h);
            }
        }

        let mut ready_at = vec![0u64; n]; // earliest cycle all deps resolved
        let mut issue = vec![0u64; n];
        let mut done = vec![false; n];
        let mut remaining = n;
        let mut cycle: u64 = 0;
        let mut finish = 0u64;
        // Up-front: dependency readiness is dynamic; compute lazily.
        while remaining > 0 {
            let mut used = [0u32; 5];
            // Candidates ready this cycle, by descending criticality.
            let mut cands: Vec<usize> = (0..n)
                .filter(|&i| !done[i])
                .filter(|&i| {
                    self.instrs[i]
                        .args
                        .iter()
                        .all(|&a| done[a] && ready_at[a] <= cycle)
                })
                .collect();
            cands.sort_by_key(|&i| std::cmp::Reverse(height[i]));
            for i in cands {
                if units[i] == 0 {
                    issue[i] = cycle;
                    ready_at[i] = cycle; // free ops complete immediately
                    done[i] = true;
                    remaining -= 1;
                    continue;
                }
                let r = self.instrs[i].op.resource();
                let ridx = Resource::ALL.iter().position(|&x| x == r).expect("resource");
                let cap = slots.capacity(r);
                if used[ridx] + units[i] <= cap {
                    used[ridx] += units[i];
                    issue[i] = cycle;
                    ready_at[i] = cycle + u64::from(self.instrs[i].op.latency());
                    done[i] = true;
                    remaining -= 1;
                    finish = finish.max(ready_at[i]);
                } else if units[i] > cap {
                    // Wide op: issues over multiple cycles when the packet
                    // is otherwise empty for its resource.
                    if used[ridx] == 0 {
                        let extra = u64::from(units[i].div_ceil(cap)) - 1;
                        used[ridx] = cap;
                        issue[i] = cycle;
                        ready_at[i] =
                            cycle + extra + u64::from(self.instrs[i].op.latency());
                        done[i] = true;
                        remaining -= 1;
                        finish = finish.max(ready_at[i]);
                    }
                }
            }
            cycle += 1;
            // Defensive: a scheduler bug would spin forever otherwise.
            assert!(cycle < 1_000_000, "scheduler failed to make progress");
        }
        Schedule { issue, cycles: finish.max(cycle) }
    }

    /// Sum of instruction latencies (free ops excluded), weighted by issue
    /// units — the "Latency" figure the paper annotates codegen listings
    /// with (Figure 4).
    pub fn latency_sum(&self, lanes: usize, vec_bytes: usize) -> u64 {
        let units = self.units(lanes, vec_bytes);
        self.instrs
            .iter()
            .zip(&units)
            .filter(|(i, _)| !matches!(i.op, Op::Vmem { .. }))
            .map(|(i, &u)| u64::from(i.op.latency()) * u64::from(u.max(1)) * u64::from(u > 0))
            .sum()
    }

    /// Number of load units issued (the "Loads" figure of Figure 4).
    pub fn load_units(&self, lanes: usize, vec_bytes: usize) -> u64 {
        let units = self.units(lanes, vec_bytes);
        self.instrs
            .iter()
            .zip(&units)
            .filter(|(i, _)| matches!(i.op, Op::Vmem { .. }))
            .map(|(_, &u)| u64::from(u))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::HvxExpr;
    use halide_ir::Buffer2D;
    use lanes::ElemType;

    fn simple_env() -> Env {
        let mut env = Env::new();
        env.insert(Buffer2D::from_fn("in", ElemType::U8, 64, 2, |x, _| x as i64));
        env
    }

    fn add_expr() -> HvxExpr {
        HvxExpr::op(
            Op::Vadd { elem: ElemType::U8, sat: false },
            vec![
                HvxExpr::vmem("in", ElemType::U8, 0, 0),
                HvxExpr::vmem("in", ElemType::U8, 1, 0),
            ],
        )
    }

    #[test]
    fn program_matches_tree_eval() {
        let e = add_expr();
        let env = simple_env();
        let t = e.eval(&env, 3, 0, 8).unwrap();
        let p = e.to_program().run(&env, 3, 0, 8).unwrap();
        assert_eq!(t, p);
    }

    #[test]
    fn result_bytes_and_units() {
        let e = HvxExpr::op(
            Op::Vmpy { elem: ElemType::U8 },
            vec![
                HvxExpr::vmem("in", ElemType::U8, 0, 0),
                HvxExpr::vmem("in", ElemType::U8, 1, 0),
            ],
        );
        let p = e.to_program();
        let sizes = p.result_bytes(128);
        assert_eq!(sizes[0], 128); // u8 load
        assert_eq!(sizes[2], 256); // widened pair
        let units = p.units(128, 128);
        assert_eq!(units, vec![1, 1, 1]); // vmpy on one reg: 1 unit

        // Element-wise add over pairs costs 2 units.
        let wide_add = HvxExpr::op(
            Op::Vadd { elem: ElemType::U16, sat: false },
            vec![e.clone(), e],
        );
        let p = wide_add.to_program();
        let units = p.units(128, 128);
        assert_eq!(*units.last().unwrap(), 2);
    }

    #[test]
    fn schedule_respects_dependencies() {
        let e = add_expr();
        let p = e.to_program();
        let s = p.schedule(128, 128, SlotBudget::hvx());
        // Two loads on one load slot: cycles 0 and 1; add after both.
        assert!(s.cycles >= 3);
        let add_issue = s.issue[p.output()];
        assert!(add_issue >= 2);
    }

    #[test]
    fn latency_matches_figure4_style() {
        // vtmpy alone: latency 2 (Figure 4a, Rake column).
        let rake = HvxExpr::op(
            Op::Vtmpy { elem: ElemType::U8, w0: 1, w1: 2 },
            vec![
                HvxExpr::vmem("in", ElemType::U8, -1, 0),
                HvxExpr::vmem("in", ElemType::U8, 127, 0),
            ],
        );
        let p = rake.to_program();
        assert_eq!(p.latency_sum(128, 128), 2);
        assert_eq!(p.load_units(128, 128), 2);

        // vmpa + vadd + vzxt: latency 4 (Figure 4a/b, Halide column).
        let halide = HvxExpr::op(
            Op::Vadd { elem: ElemType::U16, sat: false },
            vec![
                HvxExpr::op(
                    Op::Vmpa { elem: ElemType::U8, w0: 2, w1: 1 },
                    vec![
                        HvxExpr::vmem("in", ElemType::U8, 0, 0),
                        HvxExpr::vmem("in", ElemType::U8, 1, 0),
                    ],
                ),
                HvxExpr::op(
                    Op::Vzxt { elem: ElemType::U8 },
                    vec![HvxExpr::vmem("in", ElemType::U8, -1, 0)],
                ),
            ],
        );
        let p = halide.to_program();
        // vmpa (2) + vzxt (1) + vadd over a pair (2 units x 1 cycle... the
        // paper counts the dv-add once). Our unit-weighted sum gives 5; the
        // ordering Rake < Halide is what matters.
        assert!(p.latency_sum(128, 128) > 2);
        assert_eq!(p.load_units(128, 128), 3);
    }

    #[test]
    fn free_ops_cost_nothing() {
        let e = HvxExpr::op(
            Op::Vadd { elem: ElemType::U8, sat: false },
            vec![
                HvxExpr::vmem("in", ElemType::U8, 0, 0),
                HvxExpr::vsplat_imm(3, ElemType::U8),
            ],
        );
        let p = e.to_program();
        let units = p.units(128, 128);
        assert_eq!(units[1], 0, "splat is free");
    }

    #[test]
    #[should_panic(expected = "references later value")]
    fn program_validates_ssa_order() {
        let _ = Program::new(
            vec![Instr {
                op: Op::Vnot,
                args: vec![0],
            }],
            0,
        );
    }
}
