//! S-expression serialization of HVX expressions.
//!
//! The synthesis cache persists compiled tiles across processes, so the
//! HVX side needs the same canonical machine-readable bridge the Uber-IR
//! already has (`uber_ir::sexpr`): a form distinct from the pretty
//! [`std::fmt::Display`] listing, with an exact round-tripping parser.
//!
//! # Grammar
//!
//! ```text
//! expr   := (<head> <param>... expr...)
//! head   := vmem | vsplat | vadd | vsub | ... (one per [`Op`] variant)
//! scalar := <int> | (scal <buffer> <x> <dy>)
//! flag   := #t | #f
//! ```
//!
//! Each head is followed by the variant's parameters (element types,
//! flags, weights) and then exactly `op.arity()` child expressions.

use std::fmt;

use lanes::ElemType;

use crate::expr::HvxExpr;
use crate::ops::{Op, ScalarOperand};

/// Serialize to the canonical S-expression.
pub fn to_sexpr(e: &HvxExpr) -> String {
    let mut s = String::new();
    write_expr(e, &mut s);
    s
}

fn flag(b: bool) -> &'static str {
    if b {
        "#t"
    } else {
        "#f"
    }
}

fn write_scalar(s: &ScalarOperand, out: &mut String) {
    use std::fmt::Write;
    let _ = match s {
        ScalarOperand::Imm(v) => write!(out, "{v}"),
        ScalarOperand::Load { buffer, x, dy } => write!(out, "(scal {buffer} {x} {dy})"),
    };
}

fn write_head(op: &Op, out: &mut String) {
    use std::fmt::Write;
    match op {
        Op::Vmem { buffer, dx, dy, elem } => {
            let _ = write!(out, "vmem {buffer} {elem} {dx} {dy}");
        }
        Op::Vsplat { value, elem } => {
            out.push_str("vsplat ");
            write_scalar(value, out);
            let _ = write!(out, " {elem}");
        }
        Op::Vadd { elem, sat } => {
            let _ = write!(out, "vadd {elem} {}", flag(*sat));
        }
        Op::Vsub { elem, sat } => {
            let _ = write!(out, "vsub {elem} {}", flag(*sat));
        }
        Op::Vavg { elem, round } => {
            let _ = write!(out, "vavg {elem} {}", flag(*round));
        }
        Op::Vnavg { elem } => {
            let _ = write!(out, "vnavg {elem}");
        }
        Op::Vabsdiff { elem } => {
            let _ = write!(out, "vabsdiff {elem}");
        }
        Op::Vmax { elem } => {
            let _ = write!(out, "vmax {elem}");
        }
        Op::Vmin { elem } => {
            let _ = write!(out, "vmin {elem}");
        }
        Op::Vand => out.push_str("vand"),
        Op::Vor => out.push_str("vor"),
        Op::Vxor => out.push_str("vxor"),
        Op::Vnot => out.push_str("vnot"),
        Op::Vasl { elem, shift } => {
            let _ = write!(out, "vasl {elem} {shift}");
        }
        Op::Vasr { elem, shift } => {
            let _ = write!(out, "vasr {elem} {shift}");
        }
        Op::Vlsr { elem, shift } => {
            let _ = write!(out, "vlsr {elem} {shift}");
        }
        Op::VasrNarrow { elem, shift, round, sat, out: oty } => {
            let _ =
                write!(out, "vasr-narrow {elem} {shift} {} {} {oty}", flag(*round), flag(*sat));
        }
        Op::Vmpy { elem } => {
            let _ = write!(out, "vmpy {elem}");
        }
        Op::VmpyScalar { elem, scalar } => {
            let _ = write!(out, "vmpy-scalar {elem} ");
            write_scalar(scalar, out);
        }
        Op::VmpyAcc { elem, scalar } => {
            let _ = write!(out, "vmpy-acc {elem} ");
            write_scalar(scalar, out);
        }
        Op::Vmpyi { elem, scalar } => {
            let _ = write!(out, "vmpyi {elem} ");
            write_scalar(scalar, out);
        }
        Op::VmpyiAcc { elem, scalar } => {
            let _ = write!(out, "vmpyi-acc {elem} ");
            write_scalar(scalar, out);
        }
        Op::Vmpyie => out.push_str("vmpyie"),
        Op::Vmpyio => out.push_str("vmpyio"),
        Op::Vmpa { elem, w0, w1 } => {
            let _ = write!(out, "vmpa {elem} {w0} {w1}");
        }
        Op::VmpaAcc { elem, w0, w1 } => {
            let _ = write!(out, "vmpa-acc {elem} {w0} {w1}");
        }
        Op::Vtmpy { elem, w0, w1 } => {
            let _ = write!(out, "vtmpy {elem} {w0} {w1}");
        }
        Op::VtmpyAcc { elem, w0, w1 } => {
            let _ = write!(out, "vtmpy-acc {elem} {w0} {w1}");
        }
        Op::Vdmpy { elem, w0, w1 } => {
            let _ = write!(out, "vdmpy {elem} {w0} {w1}");
        }
        Op::VdmpyAcc { elem, w0, w1 } => {
            let _ = write!(out, "vdmpy-acc {elem} {w0} {w1}");
        }
        Op::Vrmpy { elem, w } => {
            let _ = write!(out, "vrmpy {elem} {} {} {} {}", w[0], w[1], w[2], w[3]);
        }
        Op::VrmpyAcc { elem, w } => {
            let _ = write!(out, "vrmpy-acc {elem} {} {} {} {}", w[0], w[1], w[2], w[3]);
        }
        Op::Vpack { elem, sat, out: oty } => {
            let _ = write!(out, "vpack {elem} {} {oty}", flag(*sat));
        }
        Op::Vcombine => out.push_str("vcombine"),
        Op::Lo => out.push_str("lo"),
        Op::Hi => out.push_str("hi"),
        Op::VshuffPair { elem } => {
            let _ = write!(out, "vshuff-pair {elem}");
        }
        Op::VdealPair { elem } => {
            let _ = write!(out, "vdeal-pair {elem}");
        }
        Op::Valign { bytes } => {
            let _ = write!(out, "valign {bytes}");
        }
        Op::Vror { bytes } => {
            let _ = write!(out, "vror {bytes}");
        }
        Op::Vzxt { elem } => {
            let _ = write!(out, "vzxt {elem}");
        }
        Op::Vsxt { elem } => {
            let _ = write!(out, "vsxt {elem}");
        }
    }
}

fn write_expr(e: &HvxExpr, out: &mut String) {
    out.push('(');
    write_head(e.root(), out);
    for a in e.args() {
        out.push(' ');
        write_expr(a, out);
    }
    out.push(')');
}

/// A parse failure with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

struct P<'s> {
    input: &'s str,
    pos: usize,
}

impl<'s> P<'s> {
    fn err<T>(&self, message: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError { offset: self.pos, message: message.into() })
    }

    fn skip_ws(&mut self) {
        while self.pos < self.input.len()
            && self.input.as_bytes()[self.pos].is_ascii_whitespace()
        {
            self.pos += 1;
        }
    }

    fn eat(&mut self, c: u8) -> Result<(), ParseError> {
        self.skip_ws();
        if self.input.as_bytes().get(self.pos) == Some(&c) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(format!("expected `{}`", c as char))
        }
    }

    fn peek_open(&mut self) -> bool {
        self.skip_ws();
        self.input.as_bytes().get(self.pos) == Some(&b'(')
    }

    fn atom(&mut self) -> Result<&'s str, ParseError> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.input.len() {
            let b = self.input.as_bytes()[self.pos];
            if b.is_ascii_whitespace() || b == b'(' || b == b')' {
                break;
            }
            self.pos += 1;
        }
        if self.pos == start {
            return self.err("expected atom");
        }
        Ok(&self.input[start..self.pos])
    }

    fn int(&mut self) -> Result<i64, ParseError> {
        let a = self.atom()?;
        a.parse().map_err(|_| ParseError {
            offset: self.pos,
            message: format!("expected integer, got `{a}`"),
        })
    }

    fn flag(&mut self) -> Result<bool, ParseError> {
        match self.atom()? {
            "#t" => Ok(true),
            "#f" => Ok(false),
            other => self.err(format!("expected #t or #f, got `{other}`")),
        }
    }

    fn ty(&mut self) -> Result<ElemType, ParseError> {
        let a = self.atom()?;
        ElemType::ALL.into_iter().find(|t| t.name() == a).ok_or(ParseError {
            offset: self.pos,
            message: format!("unknown element type `{a}`"),
        })
    }

    fn scalar(&mut self) -> Result<ScalarOperand, ParseError> {
        if self.peek_open() {
            self.eat(b'(')?;
            let tag = self.atom()?;
            if tag != "scal" {
                return self.err(format!("expected `scal`, got `{tag}`"));
            }
            let buffer = self.atom()?.to_owned();
            let x = self.int()? as i32;
            let dy = self.int()? as i32;
            self.eat(b')')?;
            Ok(ScalarOperand::Load { buffer, x, dy })
        } else {
            Ok(ScalarOperand::Imm(self.int()?))
        }
    }

    fn weights4(&mut self) -> Result<[i64; 4], ParseError> {
        Ok([self.int()?, self.int()?, self.int()?, self.int()?])
    }

    fn op(&mut self, head: &str) -> Result<Op, ParseError> {
        Ok(match head {
            "vmem" => {
                let buffer = self.atom()?.to_owned();
                let elem = self.ty()?;
                let dx = self.int()? as i32;
                let dy = self.int()? as i32;
                Op::Vmem { buffer, dx, dy, elem }
            }
            "vsplat" => {
                let value = self.scalar()?;
                let elem = self.ty()?;
                Op::Vsplat { value, elem }
            }
            "vadd" => Op::Vadd { elem: self.ty()?, sat: self.flag()? },
            "vsub" => Op::Vsub { elem: self.ty()?, sat: self.flag()? },
            "vavg" => Op::Vavg { elem: self.ty()?, round: self.flag()? },
            "vnavg" => Op::Vnavg { elem: self.ty()? },
            "vabsdiff" => Op::Vabsdiff { elem: self.ty()? },
            "vmax" => Op::Vmax { elem: self.ty()? },
            "vmin" => Op::Vmin { elem: self.ty()? },
            "vand" => Op::Vand,
            "vor" => Op::Vor,
            "vxor" => Op::Vxor,
            "vnot" => Op::Vnot,
            "vasl" => Op::Vasl { elem: self.ty()?, shift: self.int()? as u32 },
            "vasr" => Op::Vasr { elem: self.ty()?, shift: self.int()? as u32 },
            "vlsr" => Op::Vlsr { elem: self.ty()?, shift: self.int()? as u32 },
            "vasr-narrow" => Op::VasrNarrow {
                elem: self.ty()?,
                shift: self.int()? as u32,
                round: self.flag()?,
                sat: self.flag()?,
                out: self.ty()?,
            },
            "vmpy" => Op::Vmpy { elem: self.ty()? },
            "vmpy-scalar" => Op::VmpyScalar { elem: self.ty()?, scalar: self.scalar()? },
            "vmpy-acc" => Op::VmpyAcc { elem: self.ty()?, scalar: self.scalar()? },
            "vmpyi" => Op::Vmpyi { elem: self.ty()?, scalar: self.scalar()? },
            "vmpyi-acc" => Op::VmpyiAcc { elem: self.ty()?, scalar: self.scalar()? },
            "vmpyie" => Op::Vmpyie,
            "vmpyio" => Op::Vmpyio,
            "vmpa" => Op::Vmpa { elem: self.ty()?, w0: self.int()?, w1: self.int()? },
            "vmpa-acc" => Op::VmpaAcc { elem: self.ty()?, w0: self.int()?, w1: self.int()? },
            "vtmpy" => Op::Vtmpy { elem: self.ty()?, w0: self.int()?, w1: self.int()? },
            "vtmpy-acc" => Op::VtmpyAcc { elem: self.ty()?, w0: self.int()?, w1: self.int()? },
            "vdmpy" => Op::Vdmpy { elem: self.ty()?, w0: self.int()?, w1: self.int()? },
            "vdmpy-acc" => Op::VdmpyAcc { elem: self.ty()?, w0: self.int()?, w1: self.int()? },
            "vrmpy" => Op::Vrmpy { elem: self.ty()?, w: self.weights4()? },
            "vrmpy-acc" => Op::VrmpyAcc { elem: self.ty()?, w: self.weights4()? },
            "vpack" => {
                Op::Vpack { elem: self.ty()?, sat: self.flag()?, out: self.ty()? }
            }
            "vcombine" => Op::Vcombine,
            "lo" => Op::Lo,
            "hi" => Op::Hi,
            "vshuff-pair" => Op::VshuffPair { elem: self.ty()? },
            "vdeal-pair" => Op::VdealPair { elem: self.ty()? },
            "valign" => Op::Valign { bytes: self.int()? as u32 },
            "vror" => Op::Vror { bytes: self.int()? as u32 },
            "vzxt" => Op::Vzxt { elem: self.ty()? },
            "vsxt" => Op::Vsxt { elem: self.ty()? },
            other => return self.err(format!("unknown hvx op `{other}`")),
        })
    }

    fn expr(&mut self) -> Result<HvxExpr, ParseError> {
        self.eat(b'(')?;
        let head = self.atom()?.to_owned();
        let op = self.op(&head)?;
        let mut args = Vec::new();
        while self.peek_open() {
            args.push(self.expr()?);
        }
        self.eat(b')')?;
        if args.len() != op.arity() {
            return self.err(format!(
                "`{head}` takes {} argument(s), got {}",
                op.arity(),
                args.len()
            ));
        }
        Ok(HvxExpr::op(op, args))
    }
}

/// Parse a canonical HVX S-expression.
///
/// # Errors
///
/// Returns [`ParseError`] on malformed input.
pub fn parse(input: &str) -> Result<HvxExpr, ParseError> {
    let mut p = P { input, pos: 0 };
    let e = p.expr()?;
    p.skip_ws();
    if p.pos != input.len() {
        return p.err("trailing input after expression");
    }
    Ok(e)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lanes::ElemType::{U16, U8};

    fn roundtrip(e: &HvxExpr) {
        let text = to_sexpr(e);
        let back = parse(&text).unwrap_or_else(|err| panic!("reparse `{text}`: {err}"));
        assert_eq!(&back, e, "round-trip failed for `{text}`");
    }

    #[test]
    fn roundtrips_typical_synthesized_tile() {
        // vtmpy row + fused narrow, the gaussian3x3 shape.
        let vt = HvxExpr::op(
            Op::Vtmpy { elem: U8, w0: 1, w1: 2 },
            vec![HvxExpr::vmem("in", U8, -1, 0), HvxExpr::vmem("in", U8, 7, 0)],
        );
        let e = HvxExpr::op(
            Op::VasrNarrow { elem: U16, shift: 4, round: true, sat: true, out: U8 },
            vec![HvxExpr::op(Op::Hi, vec![vt.clone()]), HvxExpr::op(Op::Lo, vec![vt])],
        );
        roundtrip(&e);
    }

    #[test]
    fn roundtrips_every_scalar_form() {
        let x = HvxExpr::vmem("a", U8, 0, 0);
        roundtrip(&HvxExpr::op(
            Op::Vmpyi { elem: U8, scalar: ScalarOperand::Imm(-3) },
            vec![x.clone()],
        ));
        roundtrip(&HvxExpr::op(
            Op::VmpyScalar {
                elem: U8,
                scalar: ScalarOperand::Load { buffer: "w".into(), x: 2, dy: -1 },
            },
            vec![x.clone()],
        ));
        roundtrip(&HvxExpr::vsplat_imm(7, U16));
        roundtrip(&HvxExpr::op(Op::Vrmpy { elem: U8, w: [1, -2, 3, -4] }, vec![x]));
    }

    #[test]
    fn roundtrips_permutes_and_logicals() {
        let a = HvxExpr::vmem("a", U8, 0, 0);
        let b = HvxExpr::vmem("b", U8, 1, 0);
        for e in [
            HvxExpr::op(Op::Valign { bytes: 3 }, vec![a.clone(), b.clone()]),
            HvxExpr::op(Op::Vand, vec![a.clone(), b.clone()]),
            HvxExpr::op(Op::Vnot, vec![a.clone()]),
            HvxExpr::op(
                Op::VshuffPair { elem: U8 },
                vec![HvxExpr::op(Op::Vzxt { elem: U8 }, vec![a.clone()])],
            ),
            HvxExpr::op(
                Op::Vpack { elem: U16, sat: true, out: U8 },
                vec![
                    HvxExpr::op(Op::Hi, vec![HvxExpr::op(Op::Vzxt { elem: U8 }, vec![a.clone()])]),
                    HvxExpr::op(Op::Lo, vec![HvxExpr::op(Op::Vzxt { elem: U8 }, vec![b])]),
                ],
            ),
        ] {
            roundtrip(&e);
        }
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("").is_err());
        assert!(parse("(vadd u8 #f)").is_err()); // missing args
        assert!(parse("(vfrob u8)").is_err()); // unknown op
        assert!(parse("(vmem in u8 0 0) junk").is_err()); // trailing input
        assert!(parse("(vadd u99 #f (vmem a u8 0 0) (vmem b u8 0 0))").is_err());
    }
}
